// R7 fixture: direct singleton access outside src/core/.
//
// Client code (data structures, tests, benches) must route through a bound
// OrcDomain — grabbing the compatibility façade pins the operation to the
// global domain no matter which domain the structure was constructed in.
#pragma once

namespace orcgc {

inline void singleton_retire(orc_base* node) {
    OrcEngine::instance().retire(node);  // must fire R7
}

inline int singleton_alias() {
    auto& engine = OrcEngine::instance();  // must fire R7 too
    return engine.handover_count(0);
}

}  // namespace orcgc
