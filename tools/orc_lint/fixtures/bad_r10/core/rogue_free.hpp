// Fixture: raw frees of orc_base-derived objects outside the domain free
// path — R10 must flag all four forms: delete of a typed variable, delete
// through an explicit cast, free(), and ::operator delete (never compiled —
// linted only). The Node* delete at the bottom must stay silent: untracked
// types are not R10's business.
#pragma once

#include <cstdlib>

namespace fixture {

struct orc_base;

struct Node {
    int key;
};

inline void rogue_delete(orc_base* victim) {
    delete victim;
}

inline void rogue_cast_delete(void* erased) {
    delete static_cast<orc_base*>(erased);
}

inline void rogue_c_free(orc_base* victim) {
    std::free(victim);
}

inline void rogue_operator_delete(orc_base* victim) {
    ::operator delete(victim);
}

inline void untracked_delete(Node* node) {
    delete node;
}

}  // namespace fixture
