// Fixture: an orc-lint suppression without a reason — the bare allow() is
// itself an error and must not suppress the underlying diagnostic (never
// compiled — linted only).
#pragma once

#include <atomic>

namespace fixture {

struct Counter {
    std::atomic<int> v{0};
    int read() const { return v.load(); }  // orc-lint: allow(R1)
};

}  // namespace fixture
