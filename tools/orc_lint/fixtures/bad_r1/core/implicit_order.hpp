// Fixture: every atomic access here relies on the implicit seq_cst default,
// which R1 must flag (never compiled — linted only).
#pragma once

#include <atomic>

namespace fixture {

struct Counter {
    std::atomic<int> v{0};
    std::atomic<void*> p{nullptr};

    int read() const { return v.load(); }
    void write(int x) { v.store(x); }
    void bump() { v.fetch_add(1); }
    bool swap_in(int expected, int desired) {
        return v.compare_exchange_strong(expected, desired);
    }
    void* take() { return p.exchange(nullptr); }
};

}  // namespace fixture
