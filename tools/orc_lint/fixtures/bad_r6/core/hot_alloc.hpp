// Fixture: heap allocation inside an engine file — R6 must flag the raw
// `new` and the malloc() call on the retire path, honor the justified
// suppression, and leave `delete` alone (it is the reclamation free itself).
// Never compiled — linted only.
#pragma once

#include <cstdlib>

namespace fixture {

struct Retired {
    Retired* next;
};

class Engine {
  public:
    void retire(Retired* obj) {
        // Allocating a tracking cell per retire: exactly the pattern R6 bans.
        Retired* cell = new Retired{obj};
        pending_ = cell;
    }

    void retire_c_style(std::size_t n) {
        scratch_ = std::malloc(n);
    }

    void reclaim(Retired* obj) {
        delete obj;  // legal: this is the free the whole protocol works for
    }

  private:
    // orc-lint: allow(R6) one-time pool grown at engine construction, never on a retire
    Retired* pool_ = new Retired[8];
    Retired* pending_ = nullptr;
    void* scratch_ = nullptr;
};

}  // namespace fixture
