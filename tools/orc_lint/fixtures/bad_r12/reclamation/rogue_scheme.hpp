// R12 fixture: a scheme that re-forks the substrate's state instead of
// deriving SchemeBase. The raw slot array, the ad-hoc retire vector and the
// scheme-owned SchemeMetrics must each fire once; the scan scratch vector,
// the plain loop bound and the justified suppression must stay silent.
// Never compiled — linted only.
#pragma once

#include <atomic>
#include <vector>

namespace fixture {

inline constexpr int kMaxThreads = 128;
inline constexpr int kCacheLineSize = 64;

class RogueScheme {
  private:
    // alignas keeps R4 satisfied: the violation here is R12's — per-thread
    // slot state belongs in a State mixin handed to SchemeBase.
    struct alignas(kCacheLineSize) Slot {
        std::atomic<void*> hp{nullptr};
        std::vector<void*> retired;  // fires: ad-hoc retire list
    };

    Slot tl_[kMaxThreads];  // fires: raw slot array outside the substrate

    telemetry::SchemeMetrics metrics_;  // fires: scheme-owned metrics

    std::vector<void*> hazards;  // silent: scan scratch, not a retire buffer

    // orc-lint: allow(R12) teardown snapshot for a death-test assertion
    std::vector<void*> limbo_snapshot;

    void scan() {
        for (int i = 0; i < kMaxThreads; ++i) {  // silent: loop bound, no array
            (void)i;
        }
    }
};

}  // namespace fixture
