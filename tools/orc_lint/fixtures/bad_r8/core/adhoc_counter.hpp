// Fixture: ad-hoc atomic counters in an engine file — R8 must flag the two
// counter-named integral atomics, honor the justified suppression, and leave
// non-counter atomics (watermarks, eras, protocol words) alone.
// Never compiled — linted only.
#pragma once

#include <atomic>
#include <cstdint>

namespace fixture {

class Engine {
  public:
    void retire() {
        retired_count.fetch_add(1, std::memory_order_relaxed);
        stat_scans.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    // Exactly the pattern R8 bans: shared counters bolted onto engine state
    // instead of going through the telemetry layer.
    std::atomic<std::size_t> retired_count{0};
    std::atomic<std::uint64_t> stat_scans{0};

    // Non-counter atomics stay clean: protocol state, not statistics.
    std::atomic<std::uint64_t> reservation{0};
    std::atomic<int> hp_watermark{1};
    std::atomic<std::uint64_t> del_era{0};

    // orc-lint: allow(R8) debug-only tally, stripped before release builds
    std::atomic<std::uint64_t> drop_count{0};
};

}  // namespace fixture
