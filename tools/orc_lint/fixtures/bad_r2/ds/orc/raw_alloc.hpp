// Fixture: raw allocation in an OrcGC data structure — R2 must flag the
// new/delete/malloc/free calls (never compiled — linted only).
#pragma once

#include <cstdlib>

namespace fixture {

struct Node {
    int key;
    Node* next;
};

inline Node* make_node(int k) {
    return new Node{k, nullptr};
}

inline void drop_node(Node* n) {
    delete n;
}

inline void* grab_buffer(std::size_t n) {
    return std::malloc(n);
}

inline void drop_buffer(void* p) {
    std::free(p);
}

}  // namespace fixture
