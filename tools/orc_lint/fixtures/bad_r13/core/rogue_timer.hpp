// R13 fixture: raw timing calls in an engine file outside the telemetry
// layer. The rdtsc intrinsic, the POSIX clock call and the steady_clock::now
// read must all fire; the steady_clock type mention (no ::now) and the
// justified suppression must stay silent.
#pragma once

#include <chrono>
#include <ctime>

namespace fixture {

struct RogueTimer {
    using Deadline = std::chrono::steady_clock::time_point;  // silent: no clock read

    unsigned long long stamp() {
        return __builtin_ia32_rdtsc();  // fires: rdtsc outside the telemetry layer
    }

    long stamp_posix() {
        timespec ts{};
        clock_gettime(CLOCK_MONOTONIC, &ts);  // fires: raw POSIX clock call
        return ts.tv_nsec;
    }

    Deadline deadline() {
        return std::chrono::steady_clock::now();  // fires: raw clock read
    }

    long long sanctioned() {
        // orc-lint: allow(R13) test double for the tick source; mirrors coarse_now
        return std::chrono::steady_clock::now().time_since_epoch().count();
    }
};

}  // namespace fixture
