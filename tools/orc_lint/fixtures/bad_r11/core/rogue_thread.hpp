// R11 fixture: raw std::thread in an engine file outside the background
// reclaimer unit. The member declaration and the spawn site must both fire;
// std::this_thread (a different token) and the justified suppression must
// stay silent.
#pragma once

#include <thread>

namespace fixture {

struct RogueScanner {
    std::thread worker;  // fires: a thread lifecycle hidden from the domain dtor

    void start() {
        worker = std::thread([] {});  // fires: spawn site outside the bg unit
        std::this_thread::yield();    // silent: not a thread spawn
    }

    // orc-lint: allow(R11) test double for the reclaimer; joined in stop()
    std::thread spare;
};

}  // namespace fixture
