// Fixture: disciplined OrcGC data-structure code — allocation through
// make_orc, unmark before dereference, dereference through the orc_ptr. The
// linter must stay silent on this tree (never compiled — linted only).
#pragma once

namespace fixture {

template <typename T>
struct orc_ptr {
    T get() const;
    T operator->() const;
};

template <typename T>
T* get_marked(T* p) noexcept;
template <typename T>
T* get_unmarked(T* p) noexcept;

template <typename L>
bool insert_like(L& list, int key) {
    // Allocation goes through make_orc, never raw new.
    auto node = list.template make_node(key);
    auto curr = list.head_.load();
    // Raw values may be compared and CASed, just not dereferenced.
    if (curr.get() == nullptr) return false;
    // Mark bits are stripped before any dereference.
    auto* clean = get_unmarked(curr.get());
    (void)clean;
    // Dereference happens through the protecting orc_ptr.
    return curr->key == key ? false : list.head_.cas(curr, node);
}

}  // namespace fixture
