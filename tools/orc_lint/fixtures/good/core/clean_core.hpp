// Fixture: disciplined core-style code — explicit memory orders, padded
// per-thread arrays, and a justified suppression. The linter must stay
// silent on this entire tree (never compiled — linted only).
#pragma once

#include <atomic>

namespace fixture {

inline constexpr int kMaxThreads = 128;
inline constexpr int kCacheLineSize = 128;

template <typename T>
struct CachelinePadded {
    T value;
};

struct alignas(kCacheLineSize) Slot {
    std::atomic<void*> hp{nullptr};
};

class Engine {
  public:
    void publish(void* ptr, int tid) {
        // Release is enough here: the scan side's process-wide heavy fence
        // supplies the ordering (R9 forbids a hand-rolled seq_cst publish).
        tl_[tid].hp.store(ptr, std::memory_order_release);
    }
    void publish_pinned(void* ptr, int tid) {
        // orc-lint: allow(R9) bootstrap publish before the fence mode resolves
        tl_[tid].hp.store(ptr, std::memory_order_seq_cst);
    }
    void* read(int tid) const { return tl_[tid].hp.load(std::memory_order_acquire); }
    void bump() { epoch_.fetch_add(1, std::memory_order_relaxed); }
    bool claim(int tid) {
        bool expected = false;
        return flags_[tid].value.compare_exchange_strong(expected, true,
                                                         std::memory_order_acq_rel);
    }

  private:
    Slot tl_[kMaxThreads];
    struct orc_base;  // stand-in for the engine's tracked-object base
    void teardown_sweep(orc_base* leaked) {
        // orc-lint: allow(R10) lenient global-domain teardown mirrors the domain free path
        delete leaked;
    }
    CachelinePadded<std::atomic<bool>> flags_[kMaxThreads];
    // orc-lint: allow(R4) observational samples read off the hot path only
    std::atomic<int> samples_[kMaxThreads] = {};
    // Protocol clock, not a statistic: R8 must leave it alone.
    std::atomic<long> epoch_{0};
};

}  // namespace fixture
