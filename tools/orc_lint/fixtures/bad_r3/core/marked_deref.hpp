// Fixture: dereferencing pointers that still carry mark bits — R3 must flag
// both the direct and the escaped-variable form (never compiled — linted
// only).
#pragma once

namespace fixture {

struct Node {
    int key;
    Node* next;
};

template <typename T>
T* get_marked(T* p) noexcept;
template <typename T>
T* get_unmarked(T* p) noexcept;

inline int direct_deref(Node* p) {
    return get_marked(p)->key;
}

inline int escaped_deref(Node* p) {
    Node* m = get_marked(p);
    return m->key;
}

}  // namespace fixture
