// Fixture: a per-thread array whose elements are not cacheline-padded — R4
// must flag it (never compiled — linted only).
#pragma once

#include <atomic>

namespace fixture {

inline constexpr int kMaxThreads = 128;

class Scheme {
    std::atomic<int> reservations_[kMaxThreads] = {};
};

}  // namespace fixture
