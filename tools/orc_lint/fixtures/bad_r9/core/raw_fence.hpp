// Fixture: a second membarrier site and hand-rolled seq_cst slot publishes
// — exactly what R9 forbids. Four diagnostics: the `membarrier` token, the
// `syscall` token, the seq_cst hp store, and the seq_cst guard exchange.
// The handover drain and the release publish below must stay silent (never
// compiled — linted only).
#pragma once

#include <atomic>

namespace fixture {

struct Thread {
    std::atomic<void*> hp[8];
    std::atomic<void*> guard{nullptr};
    std::atomic<void*> handovers[8];
};

inline long barrier_everyone() {
    return membarrier(1 << 3, 0, 0);
}

inline long barrier_everyone_raw() {
    return ::syscall(324, 1 << 3, 0, 0);
}

inline void publish(Thread& t, void* ptr, int idx) {
    t.hp[idx].store(ptr, std::memory_order_seq_cst);
}

inline void* swap_guard(Thread& t, void* ptr) {
    return t.guard.exchange(ptr, std::memory_order_seq_cst);
}

inline void* drain_one(Thread& t, int idx) {
    // A handover is not a protection slot: draining stays seq_cst and clean.
    return t.handovers[idx].exchange(nullptr, std::memory_order_seq_cst);
}

inline void publish_release(Thread& t, void* ptr, int idx) {
    // The sanctioned shape (what asym::publish does internally).
    t.hp[idx].store(ptr, std::memory_order_release);
}

}  // namespace fixture
