// Fixture: raw pointers escaping their orc_ptr protection scope and being
// dereferenced — R5 must flag the direct .get()->, the load_unsafe()->, and
// the escaped-variable forms (never compiled — linted only).
#pragma once

namespace fixture {

template <typename P>
int direct_get_deref(P& protected_ptr) {
    return protected_ptr.get()->key;
}

template <typename A>
int direct_unsafe_deref(A& link) {
    return link.load_unsafe()->key;
}

template <typename P>
int escaped_deref(P& protected_ptr) {
    auto raw = protected_ptr.get();
    return raw->key;
}

}  // namespace fixture
