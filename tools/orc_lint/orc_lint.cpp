// orc-lint: project-specific static checker for reclamation discipline.
//
// OrcGC's safety story is "automatic by construction" — but only if client
// and engine code obey the usage discipline the paper's proofs assume. This
// tool walks the source tree and mechanically enforces the rules that code
// review keeps missing (token/line level on purpose: no libclang dependency,
// runs in milliseconds as a ctest on every build):
//
//   R1  every std::atomic load/store/RMW in src/core/ and src/reclamation/
//       must name an explicit memory_order — an implicit seq_cst reads as
//       "the author did not think about ordering", which in reclamation code
//       is indistinguishable from a bug.
//   R2  no raw new/delete/malloc/free in src/ds/orc/ — OrcGC structures
//       allocate through make_orc<T>() and free through retire; a stray
//       delete bypasses the hazard scan and is a use-after-free factory.
//   R3  a pointer produced by the marked_ptr.hpp bit-stealing helpers
//       (get_marked / get_flagged) must pass through get_unmarked before it
//       is dereferenced — dereferencing a marked address is misaligned UB.
//   R4  per-thread arrays indexed by tid (declared [kMaxThreads]) must be
//       CachelinePadded (or a type locally declared alignas(kCacheLineSize))
//       so thread i's writes never invalidate the line thread j spins on.
//   R5  in src/ds/orc/, a raw pointer escaped from an orc_ptr (via .get() or
//       load_unsafe()) may be compared and CASed but never dereferenced —
//       dereference must go through the orc_ptr, whose lifetime is the
//       protection scope.
//   R6  no heap allocation (new/malloc/...) in src/core/ engine files other
//       than make_orc.hpp — retire() runs on every reclamation and must be
//       allocation-free; scratch state lives in grown-once thread-local
//       buffers. `delete` stays legal: it IS the reclamation free.
//   R7  outside src/core/, no direct OrcEngine::instance() — the singleton
//       is a compatibility façade over OrcDomain::global(); client code that
//       grabs it bypasses the domain a structure is bound to and silently
//       pins everything to the global domain. Bind an OrcDomain (or use
//       OrcDomain::global() explicitly when the global domain is meant).
//   R8  in src/core/ and src/reclamation/, no ad-hoc std::atomic counters
//       (integral atomics whose name says count/counter/total/stat/num) —
//       metrics belong in the telemetry layer (telemetry::PerThreadCounters,
//       SchemeMetrics, OrcMetrics), which pads per-thread, aggregates on
//       read, and exports through the one registry. A stray shared counter
//       is both a false-sharing hazard and an invisible metric. The layer
//       itself (orc_metrics.hpp) is exempt.
//   R9  the asymmetric-fence discipline (src/common/asym_fence.hpp) is the
//       ONE place allowed to touch the membarrier syscall or to decide
//       publish strength. Two sub-checks: (a) everywhere except
//       asym_fence.{hpp,cpp}, no `membarrier`/`syscall` tokens — a second
//       registration site or a raw barrier bypasses the mode resolver and
//       its TSan/fallback degradations; (b) in src/core/ and
//       src/reclamation/, no seq_cst .store()/.exchange() whose receiver
//       names a protection slot (hp/he/guard/res/upper/lower/...) — slot
//       publication goes through asym::publish(), which picks the per-mode
//       strength; a hand-rolled seq_cst publish silently reverts that slot
//       to the pre-asymmetric cost model. Handover/link exchanges are not
//       publishes and stay seq_cst.
//   R10 no raw delete/free/::operator delete of an orc_base-derived object
//       anywhere except src/core/orc_domain.hpp — OrcDomain::destroy() is
//       the single sanctioned free path (it is where the hazard scan, the
//       handover protocol and OrcSan's quarantine diversion live); a rogue
//       free bypasses all three and is the exact bug class OrcSan's shadow
//       machine exists to catch at runtime.
//   R11 no raw std::thread in src/core/ or src/reclamation/ outside
//       src/core/orc_bg_reclaimer.hpp — the background-reclaimer unit is
//       the engine's ONE sanctioned thread-spawning site, because a spawned
//       thread registers a dense tid and MUST be joined before the
//       destruction-to-quiescence protocol runs (and never while holding
//       the registry mutex its exit hook needs). A thread spawned anywhere
//       else hides a lifecycle the domain destructor does not know about.
//   R12 scheme files in src/reclamation/ ride the shared substrate
//       (scheme_base.hpp): no raw `...[kMaxThreads]` slot-array
//       declarations, no ad-hoc retire-list vectors (std::vector declarators
//       named retired/bag/limbo/...), and no direct telemetry::SchemeMetrics
//       ownership. Each re-forks state SchemeBase exists to own exactly
//       once — and silently escapes the substrate's audited publish/scan
//       memory-ordering contract. scheme_base.hpp itself is the one
//       sanctioned home and is exempt.
//   R13 no raw timing calls (rdtsc intrinsics, clock_gettime, gettimeofday,
//       steady_clock::now) in src/core/ or src/reclamation/ — timestamps in
//       engine/reclamation code go through telemetry::coarse_now()/now_tsc()
//       (src/common/telemetry.hpp), which pick the cheap counter per
//       platform and compile to nothing under -DORCGC_TELEMETRY=OFF. A raw
//       clock call is both an overhead-gate leak (it survives the OFF build)
//       and an incomparable unit (ages and spans must share one tick
//       domain). orc_metrics.hpp — the telemetry layer's engine half — is
//       exempt.
//
// Suppressions: append `// orc-lint: allow(R1) <reason>` to the offending
// line (or put it alone on the line above). Multiple rules:
// `allow(R1,R4) <reason>`. A bare allow() without a reason is itself an
// error — the reason is the reviewable artifact.
//
// Diagnostics: `file:line: RN: message`, one per line, exit 1 if any.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Diag {
    std::string file;
    int line = 0;
    std::string rule;
    std::string msg;

    bool operator<(const Diag& o) const {
        if (file != o.file) return file < o.file;
        if (line != o.line) return line < o.line;
        return rule < o.rule;
    }
};

struct RuleSet {
    bool r1 = false;  // core/ and reclamation/ only
    bool r2 = false;  // ds/orc/ only
    bool r3 = true;
    bool r4 = true;
    bool r5 = false;  // ds/orc/ only
    bool r6 = false;  // core/ engine files (minus make_orc.hpp)
    bool r7 = false;  // everywhere except core/ (the façade's own home)
    bool r8 = false;  // core/ and reclamation/ (minus the telemetry layer)
    bool r9a = true;  // everywhere except common/asym_fence.{hpp,cpp}
    bool r9b = false;  // core/ and reclamation/ only
    bool r10 = true;  // everywhere except core/orc_domain.hpp (the free path)
    bool r11 = false;  // core/ and reclamation/ (minus core/orc_bg_reclaimer.hpp)
    bool r12 = false;  // reclamation/ only (minus scheme_base.hpp, the substrate)
    bool r13 = false;  // core/ and reclamation/ (minus orc_metrics.hpp, the
                       // telemetry layer's engine half)
};

bool is_ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Blanks comments and string/char literals to spaces (newlines preserved)
/// so token scans cannot match inside them. Handles // and /* */ comments,
/// "..." and '...' with escapes, and R"delim(...)delim" raw strings.
std::string strip_comments_and_strings(const std::string& src) {
    std::string out(src);
    enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRawString };
    St st = St::kCode;
    std::string raw_close;  // e.g. )delim"
    for (std::size_t i = 0; i < src.size(); ++i) {
        const char c = src[i];
        const char n = i + 1 < src.size() ? src[i + 1] : '\0';
        switch (st) {
            case St::kCode:
                if (c == '/' && n == '/') {
                    st = St::kLineComment;
                    out[i] = ' ';
                } else if (c == '/' && n == '*') {
                    st = St::kBlockComment;
                    out[i] = ' ';
                } else if (c == 'R' && n == '"' &&
                           (i == 0 || !is_ident_char(src[i - 1]))) {
                    // Raw string: R"delim( ... )delim"
                    std::size_t p = i + 2;
                    std::string delim;
                    while (p < src.size() && src[p] != '(') delim += src[p++];
                    raw_close = ")" + delim + "\"";
                    st = St::kRawString;
                    // keep the R and opening quote blanked below on next turns
                    out[i] = ' ';
                } else if (c == '"') {
                    st = St::kString;
                    out[i] = ' ';
                } else if (c == '\'' && (i == 0 || !is_ident_char(src[i - 1]))) {
                    // Exclude digit separators (1'000'000).
                    st = St::kChar;
                    out[i] = ' ';
                }
                break;
            case St::kLineComment:
                if (c == '\n') {
                    st = St::kCode;
                } else {
                    out[i] = ' ';
                }
                break;
            case St::kBlockComment:
                if (c == '*' && n == '/') {
                    out[i] = ' ';
                    out[i + 1] = ' ';
                    ++i;
                    st = St::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case St::kString:
                if (c == '\\' && n != '\0') {
                    out[i] = ' ';
                    if (n != '\n') out[i + 1] = ' ';
                    ++i;
                } else if (c == '"') {
                    out[i] = ' ';
                    st = St::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case St::kChar:
                if (c == '\\' && n != '\0') {
                    out[i] = ' ';
                    if (n != '\n') out[i + 1] = ' ';
                    ++i;
                } else if (c == '\'') {
                    out[i] = ' ';
                    st = St::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
            case St::kRawString:
                if (src.compare(i, raw_close.size(), raw_close) == 0) {
                    for (std::size_t k = 0; k < raw_close.size(); ++k) out[i + k] = ' ';
                    i += raw_close.size() - 1;
                    st = St::kCode;
                } else if (c != '\n') {
                    out[i] = ' ';
                }
                break;
        }
    }
    return out;
}

std::vector<std::string> split_lines(const std::string& text) {
    std::vector<std::string> lines;
    std::string cur;
    for (char c : text) {
        if (c == '\n') {
            lines.push_back(cur);
            cur.clear();
        } else {
            cur += c;
        }
    }
    lines.push_back(cur);
    return lines;
}

std::string trim(std::string_view s) {
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
    return std::string(s.substr(b, e - b));
}

bool line_is_blank(const std::string& s) {
    return std::all_of(s.begin(), s.end(),
                       [](char c) { return std::isspace(static_cast<unsigned char>(c)); });
}

/// Finds the offset of the matching ')' for the '(' at `open` in `text`,
/// or npos. `text` must already be comment/string-stripped.
std::size_t match_paren(const std::string& text, std::size_t open) {
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
        if (text[i] == '(') ++depth;
        else if (text[i] == ')' && --depth == 0) return i;
    }
    return std::string::npos;
}

class FileLinter {
  public:
    FileLinter(std::string display_path, const std::string& contents, RuleSet rules,
               std::vector<Diag>& out)
        : path_(std::move(display_path)),
          orig_(contents),
          clean_(strip_comments_and_strings(contents)),
          rules_(rules),
          diags_(out) {
        orig_lines_ = split_lines(orig_);
        clean_lines_ = split_lines(clean_);
        line_starts_.reserve(clean_lines_.size());
        std::size_t off = 0;
        for (const auto& l : clean_lines_) {
            line_starts_.push_back(off);
            off += l.size() + 1;
        }
    }

    void run() {
        parse_suppressions();
        if (rules_.r1) check_r1();
        if (rules_.r2) check_r2();
        if (rules_.r3) check_r3();
        if (rules_.r4) check_r4();
        if (rules_.r5) check_r5();
        if (rules_.r6) check_r6();
        if (rules_.r7) check_r7();
        if (rules_.r8) check_r8();
        if (rules_.r9a) check_r9a();
        if (rules_.r9b) check_r9b();
        if (rules_.r10) check_r10();
        if (rules_.r11) check_r11();
        if (rules_.r12) check_r12();
        if (rules_.r13) check_r13();
    }

  private:
    int line_of(std::size_t offset) const {
        auto it = std::upper_bound(line_starts_.begin(), line_starts_.end(), offset);
        return static_cast<int>(it - line_starts_.begin());  // 1-based
    }

    void emit(const char* rule, int line, std::string msg) {
        auto it = suppressed_.find(line);
        if (it != suppressed_.end() && it->second.count(rule) != 0) return;
        diags_.push_back({path_, line, rule, std::move(msg)});
    }

    // ---- suppression comments --------------------------------------------

    void parse_suppressions() {
        for (std::size_t li = 0; li < orig_lines_.size(); ++li) {
            const std::string& line = orig_lines_[li];
            const std::size_t tag = line.find("orc-lint:");
            if (tag == std::string::npos) continue;
            const int lineno = static_cast<int>(li) + 1;
            std::size_t p = tag + std::strlen("orc-lint:");
            while (p < line.size() && line[p] == ' ') ++p;
            if (line.compare(p, 6, "allow(") != 0) {
                emit("suppression", lineno,
                     "malformed orc-lint comment: expected 'orc-lint: allow(Rn[,Rn...]) reason'");
                continue;
            }
            const std::size_t open = p + 5;
            const std::size_t close = line.find(')', open);
            if (close == std::string::npos) {
                emit("suppression", lineno, "unterminated orc-lint allow( list");
                continue;
            }
            std::set<std::string> allowed;
            std::stringstream list(line.substr(open + 1, close - open - 1));
            std::string item;
            while (std::getline(list, item, ',')) {
                item = trim(item);
                if (!item.empty()) allowed.insert(item);
            }
            const std::string reason = trim(line.substr(close + 1));
            if (reason.empty()) {
                emit("suppression", lineno,
                     "orc-lint allow() without a reason — justify the exemption");
                continue;  // a bare allow does not suppress anything
            }
            // A comment-only line suppresses the line below; a trailing
            // comment suppresses its own line.
            const bool own_line =
                li < clean_lines_.size() && line_is_blank(clean_lines_[li]);
            const int target = own_line ? lineno + 1 : lineno;
            suppressed_[target].insert(allowed.begin(), allowed.end());
        }
    }

    // ---- R1: explicit memory_order ---------------------------------------

    void check_r1() {
        static const char* kOps[] = {"load", "store", "exchange", "fetch_add", "fetch_sub",
                                     "fetch_or", "fetch_and", "fetch_xor",
                                     "compare_exchange_strong", "compare_exchange_weak"};
        for (const char* op : kOps) {
            const std::string needle = std::string(op) + "(";
            std::size_t pos = 0;
            while ((pos = clean_.find(needle, pos)) != std::string::npos) {
                const std::size_t call = pos;
                pos += needle.size();
                // Must be a member call: preceded by '.' or '->' (this also
                // skips the definitions of identically named functions).
                if (call == 0) continue;
                const char prev = clean_[call - 1];
                const bool member =
                    prev == '.' || (prev == '>' && call >= 2 && clean_[call - 2] == '-');
                if (!member) continue;
                // `exchange(` would also match inside `compare_exchange_*(`;
                // the '.'/'->' requirement above already rejects that ('_'
                // precedes it), but keep the guard explicit.
                if (is_ident_char(prev)) continue;
                const std::size_t open = call + std::strlen(op);
                const std::size_t close = match_paren(clean_, open);
                if (close == std::string::npos) continue;
                const std::string args = clean_.substr(open + 1, close - open - 1);
                if (args.find("order") == std::string::npos) {
                    emit("R1", line_of(call),
                         std::string("atomic ") + op +
                             "() without an explicit memory_order (implicit seq_cst)");
                }
            }
        }
    }

    // ---- R2: no raw allocation in ds/orc ---------------------------------

    void check_r2() {
        for (std::size_t li = 0; li < clean_lines_.size(); ++li) {
            const std::string& line = clean_lines_[li];
            const std::string t = trim(line);
            if (!t.empty() && t[0] == '#') continue;  // preprocessor (#include <new>)
            const int lineno = static_cast<int>(li) + 1;
            scan_tokens(line, [&](std::string_view tok, std::size_t col) {
                if (tok == "new") {
                    emit("R2", lineno,
                         "raw 'new' in ds/orc — allocate through make_orc<T>()");
                } else if (tok == "delete") {
                    // Skip deleted special members: `= delete`.
                    std::size_t p = col;
                    while (p > 0 && line[p - 1] == ' ') --p;
                    if (p > 0 && line[p - 1] == '=') return;
                    emit("R2", lineno,
                         "raw 'delete' in ds/orc — objects are freed by OrcGC retire");
                } else if (tok == "malloc" || tok == "calloc" || tok == "realloc" ||
                           tok == "free" || tok == "aligned_alloc") {
                    // Only calls (identifier followed by '(').
                    std::size_t p = col + tok.size();
                    while (p < line.size() && line[p] == ' ') ++p;
                    if (p < line.size() && line[p] == '(') {
                        emit("R2", lineno,
                             "raw C allocation call in ds/orc — use make_orc<T>()/retire");
                    }
                }
            });
        }
    }

    // ---- R6: no heap allocation in engine hot paths ----------------------

    void check_r6() {
        for (std::size_t li = 0; li < clean_lines_.size(); ++li) {
            const std::string& line = clean_lines_[li];
            const std::string t = trim(line);
            if (!t.empty() && t[0] == '#') continue;  // preprocessor (#include <new>)
            const int lineno = static_cast<int>(li) + 1;
            scan_tokens(line, [&](std::string_view tok, std::size_t col) {
                if (tok == "new") {
                    emit("R6", lineno,
                         "heap allocation in an engine file — retire paths must be "
                         "allocation-free (allocate in make_orc.hpp or grow a "
                         "thread-local scratch buffer)");
                } else if (tok == "malloc" || tok == "calloc" || tok == "realloc" ||
                           tok == "aligned_alloc") {
                    // Only calls (identifier followed by '(').
                    std::size_t p = col + tok.size();
                    while (p < line.size() && line[p] == ' ') ++p;
                    if (p < line.size() && line[p] == '(') {
                        emit("R6", lineno,
                             "C heap allocation in an engine file — retire paths "
                             "must be allocation-free");
                    }
                }
            });
        }
    }

    // ---- R7: no singleton access outside the core façade ------------------

    void check_r7() {
        static const char kNeedle[] = "OrcEngine::instance";
        std::size_t pos = 0;
        while ((pos = clean_.find(kNeedle, pos)) != std::string::npos) {
            const std::size_t call = pos;
            pos += sizeof(kNeedle) - 1;
            if (call > 0 && (is_ident_char(clean_[call - 1]) || clean_[call - 1] == ':')) {
                continue;  // qualified differently or part of a longer name
            }
            emit("R7", line_of(call),
                 "direct OrcEngine::instance() outside src/core/ — bind an OrcDomain "
                 "(OrcDomain::global() when the default domain is meant) instead of "
                 "the compatibility singleton");
        }
    }

    // ---- R8: no ad-hoc atomic counters outside the telemetry layer --------

    /// True for template arguments naming an integral type (the only kind a
    /// hand-rolled counter uses). Pointers and user types stay clean.
    static bool integral_type_arg(const std::string& arg) {
        if (arg.find('*') != std::string::npos) return false;
        return arg.find("int") != std::string::npos ||     // int, uint64_t, ...
               arg.find("long") != std::string::npos ||
               arg.find("short") != std::string::npos ||
               arg.find("size_t") != std::string::npos ||
               arg == "unsigned" || arg == "char";
    }

    /// True if a declarator name reads as a statistic. Matches on '_'-split
    /// components so names like `state_` or `status` stay clean.
    static bool counter_ish_name(const std::string& name) {
        std::string lower;
        lower.reserve(name.size());
        for (char c : name) lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        std::size_t b = 0;
        while (b <= lower.size()) {
            std::size_t e = lower.find('_', b);
            if (e == std::string::npos) e = lower.size();
            const std::string part = lower.substr(b, e - b);
            if (part.find("count") != std::string::npos ||
                part.find("total") != std::string::npos || part == "num" || part == "nums" ||
                part == "stat" || part == "stats") {
                return true;
            }
            if (e == lower.size()) break;
            b = e + 1;
        }
        return false;
    }

    void check_r8() {
        static const char kNeedle[] = "std::atomic<";
        std::size_t pos = 0;
        while ((pos = clean_.find(kNeedle, pos)) != std::string::npos) {
            const std::size_t start = pos;
            pos += sizeof(kNeedle) - 1;
            if (start > 0 && is_ident_char(clean_[start - 1])) continue;
            // Integral template arguments carry no nested '<>'.
            const std::size_t close = clean_.find('>', start);
            if (close == std::string::npos) continue;
            const std::string arg =
                trim(clean_.substr(start + sizeof(kNeedle) - 1,
                                   close - start - (sizeof(kNeedle) - 1)));
            if (!integral_type_arg(arg)) continue;
            // Declarator name right after the closing '>': absent for casts,
            // parameter types and nested templates.
            std::size_t p = close + 1;
            while (p < clean_.size() &&
                   std::isspace(static_cast<unsigned char>(clean_[p]))) ++p;
            std::size_t b = p;
            while (p < clean_.size() && is_ident_char(clean_[p])) ++p;
            if (p == b) continue;
            const std::string name = clean_.substr(b, p - b);
            if (!counter_ish_name(name)) continue;
            emit("R8", line_of(start),
                 "ad-hoc std::atomic counter '" + name +
                     "' — metrics in engine/reclamation code go through the telemetry "
                     "layer (telemetry::PerThreadCounters / SchemeMetrics / OrcMetrics)");
        }
    }

    // ---- R9a: the membarrier syscall lives in asym_fence only -------------

    void check_r9a() {
        for (std::size_t li = 0; li < clean_lines_.size(); ++li) {
            const std::string& line = clean_lines_[li];
            const std::string t = trim(line);
            if (!t.empty() && t[0] == '#') continue;  // includes name syscall.h
            const int lineno = static_cast<int>(li) + 1;
            bool hit = false;  // one diagnostic per line, however many tokens
            // Exact tokens only: asym::membarrier_supported() and the
            // Mode::kMembarrier enumerator are legal API surface; reaching
            // the kernel needs the literal `syscall` (or a libc `membarrier`
            // wrapper) token somewhere.
            scan_tokens(line, [&](std::string_view tok, std::size_t /*col*/) {
                if (hit) return;
                if (tok == "syscall" || tok == "membarrier") {
                    hit = true;
                    emit("R9", lineno,
                         "raw membarrier/syscall outside src/common/asym_fence — the "
                         "fence facility owns registration, TSan degradation and the "
                         "no-syscall fallback; go through asym::heavy()");
                }
            });
        }
    }

    // ---- R9b: protection slots publish through asym::publish --------------

    /// True if a receiver identifier reads as a protection slot. Matches on
    /// '_'-split components, so `hp_local` and `new_guard` fire while
    /// `handovers` and `link_` stay clean. upper/lower are in the set
    /// because IBR's era slots are publishes too.
    static bool protection_slot_name(const std::string& name) {
        static const std::set<std::string> kSlots = {
            "hp",    "he",          "guard", "guards", "res",  "reservation",
            "upper", "lower",       "wm",    "slot",   "slots", "hazard",
            "haz",   "reservations"};
        std::string lower;
        lower.reserve(name.size());
        for (char c : name) {
            lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        std::size_t b = 0;
        while (b <= lower.size()) {
            std::size_t e = lower.find('_', b);
            if (e == std::string::npos) e = lower.size();
            if (kSlots.count(lower.substr(b, e - b)) != 0) return true;
            if (e == lower.size()) break;
            b = e + 1;
        }
        return false;
    }

    /// Receiver identifier of a member call: `sep_begin` is the offset of
    /// the '.' (or of the '-' in '->'); walks back over any `[...]` index
    /// groups, then reads the trailing identifier (`t.hp[i]` -> "hp").
    std::string receiver_name(std::size_t sep_begin) const {
        std::size_t p = sep_begin;  // first char of '.' or '->'
        while (true) {
            while (p > 0 && std::isspace(static_cast<unsigned char>(clean_[p - 1]))) --p;
            if (p > 0 && clean_[p - 1] == ']') {
                int depth = 0;
                std::size_t q = p;
                while (q > 0) {
                    --q;
                    if (clean_[q] == ']') ++depth;
                    else if (clean_[q] == '[' && --depth == 0) break;
                }
                if (depth != 0) return "";
                p = q;
                continue;
            }
            break;
        }
        std::size_t e = p;
        while (p > 0 && is_ident_char(clean_[p - 1])) --p;
        return clean_.substr(p, e - p);
    }

    void check_r9b() {
        for (const char* op : {"store", "exchange"}) {
            const std::string needle = std::string(op) + "(";
            std::size_t pos = 0;
            while ((pos = clean_.find(needle, pos)) != std::string::npos) {
                const std::size_t call = pos;
                pos += needle.size();
                if (call == 0) continue;
                const char prev = clean_[call - 1];
                // Member call only; '_' before `exchange(` (compare_exchange_*)
                // is rejected by the same test.
                const bool dot = prev == '.';
                const bool arrow = prev == '>' && call >= 2 && clean_[call - 2] == '-';
                if (!dot && !arrow) continue;
                const std::size_t open = call + std::strlen(op);
                const std::size_t close = match_paren(clean_, open);
                if (close == std::string::npos) continue;
                const std::string args = clean_.substr(open + 1, close - open - 1);
                if (args.find("memory_order_seq_cst") == std::string::npos) continue;
                const std::size_t sep = arrow ? call - 2 : call - 1;
                const std::string recv = receiver_name(sep);
                if (recv.empty() || !protection_slot_name(recv)) continue;
                emit("R9", line_of(call),
                     std::string("seq_cst ") + op + "() to protection slot '" + recv +
                         "' — publish through asym::publish() (release + scan-side "
                         "asym::heavy()), not a hand-rolled seq_cst publish");
            }
        }
    }

    // ---- R10: orc_base objects are freed only by the domain free path -----

    /// Finds the offset of the matching ')' for the '(' at `open` within a
    /// single line, or npos (line-local twin of match_paren).
    static std::size_t match_paren_line(const std::string& line, std::size_t open) {
        int depth = 0;
        for (std::size_t i = open; i < line.size(); ++i) {
            if (line[i] == '(') ++depth;
            else if (line[i] == ')' && --depth == 0) return i;
        }
        return std::string::npos;
    }

    void check_r10() {
        // Variables (locals or parameters) statically typed orc_base*. The
        // declarator scan also collects orc_base*-returning function names
        // ("base" in `orc_base* base() const`), which is fine: freeing
        // through either spelling is the same violation.
        std::set<std::string> tainted;
        static const char kType[] = "orc_base";
        std::size_t pos = 0;
        while ((pos = clean_.find(kType, pos)) != std::string::npos) {
            const std::size_t start = pos;
            pos += sizeof(kType) - 1;
            if (start > 0 && is_ident_char(clean_[start - 1])) continue;
            std::size_t p = start + sizeof(kType) - 1;
            if (p < clean_.size() && is_ident_char(clean_[p])) continue;
            while (p < clean_.size() &&
                   std::isspace(static_cast<unsigned char>(clean_[p]))) ++p;
            if (p >= clean_.size() || clean_[p] != '*') continue;
            ++p;
            while (p < clean_.size() &&
                   (std::isspace(static_cast<unsigned char>(clean_[p])) ||
                    clean_[p] == '*')) ++p;
            std::size_t b = p;
            while (p < clean_.size() && is_ident_char(clean_[p])) ++p;
            if (p > b) tainted.insert(clean_.substr(b, p - b));
        }

        // True if a free/delete operand expression names an orc_base object:
        // a tainted variable as a whole word, or an explicit orc_base cast.
        auto frees_orc_base = [&](const std::string& expr) {
            if (expr.find("orc_base") != std::string::npos) return true;
            for (const auto& var : tainted) {
                if (var_occurrence(expr, var,
                                   [](std::size_t, std::size_t) { return true; })) {
                    return true;
                }
            }
            return false;
        };

        for (std::size_t li = 0; li < clean_lines_.size(); ++li) {
            const std::string& line = clean_lines_[li];
            const int lineno = static_cast<int>(li) + 1;
            scan_tokens(line, [&](std::string_view tok, std::size_t col) {
                if (tok == "delete") {
                    // Skip deleted special members: `= delete`.
                    std::size_t q = col;
                    while (q > 0 && line[q - 1] == ' ') --q;
                    if (q > 0 && line[q - 1] == '=') return;
                    if (q >= 8 && line.compare(q - 8, 8, "operator") == 0) {
                        // ::operator delete(expr): the raw deallocation call.
                        const std::size_t open = line.find('(', col + tok.size());
                        if (open == std::string::npos) return;
                        const std::size_t close = match_paren_line(line, open);
                        if (close == std::string::npos) return;
                        if (frees_orc_base(line.substr(open + 1, close - open - 1))) {
                            emit("R10", lineno,
                                 "::operator delete of an orc_base-derived object — "
                                 "OrcGC objects are freed only by OrcDomain::destroy() "
                                 "(retire -> scan -> destroy)");
                        }
                        return;
                    }
                    // delete expr; — the operand runs to the statement end.
                    std::size_t e = line.find(';', col);
                    if (e == std::string::npos) e = line.size();
                    const std::string expr =
                        line.substr(col + tok.size(), e - col - tok.size());
                    if (frees_orc_base(expr)) {
                        emit("R10", lineno,
                             "raw 'delete' of an orc_base-derived object — OrcGC "
                             "objects are freed only by OrcDomain::destroy() "
                             "(retire -> scan -> destroy)");
                    }
                } else if (tok == "free") {
                    // Only calls (identifier followed by '(').
                    std::size_t p = col + tok.size();
                    while (p < line.size() && line[p] == ' ') ++p;
                    if (p >= line.size() || line[p] != '(') return;
                    const std::size_t close = match_paren_line(line, p);
                    if (close == std::string::npos) return;
                    if (frees_orc_base(line.substr(p + 1, close - p - 1))) {
                        emit("R10", lineno,
                             "free() of an orc_base-derived object — OrcGC objects "
                             "are freed only by OrcDomain::destroy() "
                             "(retire -> scan -> destroy)");
                    }
                }
            });
        }
    }

    // ---- R11: thread spawning is confined to the bg-reclaimer unit --------

    void check_r11() {
        static const char kNeedle[] = "std::thread";
        std::size_t pos = 0;
        while ((pos = clean_.find(kNeedle, pos)) != std::string::npos) {
            const std::size_t start = pos;
            pos += sizeof(kNeedle) - 1;
            // Whole token: rejects this_thread/jthread-style neighbors on the
            // left and longer identifiers (std::thread_foo) on the right.
            if (start > 0 &&
                (is_ident_char(clean_[start - 1]) || clean_[start - 1] == ':')) {
                continue;
            }
            const std::size_t end = start + sizeof(kNeedle) - 1;
            if (end < clean_.size() && is_ident_char(clean_[end])) continue;
            emit("R11", line_of(start),
                 "raw std::thread in engine/reclamation code — the background "
                 "reclaimer (core/orc_bg_reclaimer.hpp) is the one sanctioned "
                 "spawn site; hand it a drain callback instead, so the join-"
                 "before-quiescence destruction ordering stays auditable");
        }
    }

    // ---- R12: scheme files ride the shared substrate ----------------------

    /// True if a declarator name reads as a retire buffer. Matches on
    /// '_'-split components so scan scratch like `hazards` or `keep` stays
    /// clean while `retired_`, `my_bag` and `limbo_list` fire.
    static bool retire_list_name(const std::string& name) {
        static const std::set<std::string> kParts = {
            "retired", "retire", "retires", "bag",  "bags",     "limbo",
            "garbage", "zombie", "zombies", "dlist", "rlist",   "graveyard"};
        std::string lower;
        lower.reserve(name.size());
        for (char c : name) {
            lower += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
        }
        std::size_t b = 0;
        while (b <= lower.size()) {
            std::size_t e = lower.find('_', b);
            if (e == std::string::npos) e = lower.size();
            if (kParts.count(lower.substr(b, e - b)) != 0) return true;
            if (e == lower.size()) break;
            b = e + 1;
        }
        return false;
    }

    void check_r12() {
        // (a) Raw per-thread slot arrays: the substrate owns the ONE padded
        // tl_[kMaxThreads] array; schemes key into it through my_slot().
        // Same declaration-vs-subscript discrimination as R4.
        std::size_t pos = 0;
        while ((pos = clean_.find("[kMaxThreads]", pos)) != std::string::npos) {
            const std::size_t bracket = pos;
            pos += 1;
            const int lineno = line_of(bracket);
            const std::string& line = clean_lines_[lineno - 1];
            const std::size_t col = bracket - line_starts_[lineno - 1];
            std::string before = trim(line.substr(0, col));
            std::size_t e = before.size();
            while (e > 0 && is_ident_char(before[e - 1])) --e;
            if (trim(before.substr(0, e)).empty()) continue;  // subscript expression
            emit("R12", lineno,
                 "raw per-thread slot array in a scheme file — SchemeBase owns the one "
                 "padded tl_[kMaxThreads] array; put per-thread protection words in the "
                 "scheme's State mixin and key in through my_slot()");
        }
        // (b) Ad-hoc retire-list vectors: retire buffering (and its adaptive
        // scan threshold + telemetry accounting) lives in the substrate's
        // bags, reached through buffer_retired()/sweep_retired().
        static const char kVec[] = "std::vector<";
        pos = 0;
        while ((pos = clean_.find(kVec, pos)) != std::string::npos) {
            const std::size_t start = pos;
            pos += sizeof(kVec) - 1;
            if (start > 0 && is_ident_char(clean_[start - 1])) continue;
            // Matching '>' with angle-depth so nested element types work.
            std::size_t close = std::string::npos;
            int depth = 0;
            for (std::size_t i = start + sizeof(kVec) - 2; i < clean_.size(); ++i) {
                if (clean_[i] == '<') ++depth;
                else if (clean_[i] == '>' && --depth == 0) {
                    close = i;
                    break;
                }
            }
            if (close == std::string::npos) continue;
            std::size_t p = close + 1;
            while (p < clean_.size() &&
                   std::isspace(static_cast<unsigned char>(clean_[p]))) ++p;
            std::size_t b = p;
            while (p < clean_.size() && is_ident_char(clean_[p])) ++p;
            if (p == b) continue;  // cast, parameter type, nested template
            const std::string name = clean_.substr(b, p - b);
            if (!retire_list_name(name)) continue;
            emit("R12", line_of(start),
                 "ad-hoc retire list '" + name +
                     "' — retired objects go through the substrate's bags "
                     "(SchemeBase::buffer_retired / sweep_retired), which carry the "
                     "adaptive scan threshold and the freed/unreclaimed accounting");
        }
        // (c) Direct SchemeMetrics ownership: the substrate is the provider;
        // schemes count through note_retire()/sweep_retired()/
        // note_freed_objects() so every scheme's telemetry stays uniform.
        for (std::size_t li = 0; li < clean_lines_.size(); ++li) {
            const int lineno = static_cast<int>(li) + 1;
            bool hit = false;  // one diagnostic per line
            scan_tokens(clean_lines_[li], [&](std::string_view tok, std::size_t /*col*/) {
                if (hit || tok != "SchemeMetrics") return;
                hit = true;
                emit("R12", lineno,
                     "direct SchemeMetrics in a scheme file — SchemeBase is the metrics "
                     "provider; count through note_retire()/sweep_retired()/"
                     "note_freed_objects() instead");
            });
        }
    }

    // ---- R13: raw timing calls live in the telemetry layer only -----------

    void check_r13() {
        for (std::size_t li = 0; li < clean_lines_.size(); ++li) {
            const std::string& line = clean_lines_[li];
            const std::string t = trim(line);
            if (!t.empty() && t[0] == '#') continue;  // includes name time.h
            const int lineno = static_cast<int>(li) + 1;
            bool hit = false;  // one diagnostic per line, however many tokens
            scan_tokens(line, [&](std::string_view tok, std::size_t col) {
                if (hit) return;
                // rdtsc in any spelling (rdtsc, _rdtsc, __rdtsc,
                // __builtin_ia32_rdtsc, rdtscp) plus the POSIX clock calls.
                const bool timing_token = tok.find("rdtsc") != std::string_view::npos ||
                                          tok == "clock_gettime" || tok == "gettimeofday";
                // steady_clock alone is legal API surface (time_point
                // parameters, deadline arithmetic); reading the clock needs
                // the trailing ::now.
                bool steady_now = false;
                if (tok == "steady_clock") {
                    std::size_t p = col + tok.size();
                    while (p < line.size() && line[p] == ' ') ++p;
                    if (p + 1 < line.size() && line[p] == ':' && line[p + 1] == ':') {
                        p += 2;
                        while (p < line.size() && line[p] == ' ') ++p;
                        steady_now = line.compare(p, 3, "now") == 0;
                    }
                }
                if (!timing_token && !steady_now) return;
                hit = true;
                emit("R13", lineno,
                     "raw timing call in engine/reclamation code — timestamps go "
                     "through telemetry::coarse_now()/now_tsc() (one tick domain, "
                     "compiled out under -DORCGC_TELEMETRY=OFF)");
            });
        }
    }

    template <typename Fn>
    static void scan_tokens(const std::string& line, Fn&& fn) {
        std::size_t i = 0;
        while (i < line.size()) {
            if (is_ident_char(line[i]) &&
                !std::isdigit(static_cast<unsigned char>(line[i]))) {
                std::size_t b = i;
                while (i < line.size() && is_ident_char(line[i])) ++i;
                fn(std::string_view(line).substr(b, i - b), b);
            } else {
                ++i;
            }
        }
    }

    // ---- taint tracking shared by R3 and R5 ------------------------------

    struct Taint {
        std::string var;
        int depth = 0;
        int line = 0;
    };

    /// True if `line` contains `var` as a whole word at some position for
    /// which `pred(pos_after_var)` holds.
    template <typename Pred>
    static bool var_occurrence(const std::string& line, const std::string& var, Pred&& pred) {
        std::size_t pos = 0;
        while ((pos = line.find(var, pos)) != std::string::npos) {
            const std::size_t end = pos + var.size();
            const bool word = (pos == 0 || !is_ident_char(line[pos - 1])) &&
                              (end >= line.size() || !is_ident_char(line[end]));
            if (word && pred(pos, end)) return true;
            pos = end;
        }
        return false;
    }

    static bool derefs_var(const std::string& line, const std::string& var) {
        return var_occurrence(line, var, [&](std::size_t b, std::size_t e) {
            std::size_t p = e;
            while (p < line.size() && line[p] == ' ') ++p;
            if (p + 1 < line.size() && line[p] == '-' && line[p + 1] == '>') return true;
            // Unary dereference: '*' glued to the variable name.
            if (b > 0 && line[b - 1] == '*' && (b < 2 || line[b - 2] != '*')) return true;
            return false;
        });
    }

    static bool reassigns_var(const std::string& line, const std::string& var) {
        return var_occurrence(line, var, [&](std::size_t /*b*/, std::size_t e) {
            std::size_t p = e;
            while (p < line.size() && line[p] == ' ') ++p;
            if (p >= line.size() || line[p] != '=') return false;
            if (p + 1 < line.size() && line[p + 1] == '=') return false;  // comparison
            return true;
        });
    }

    /// If `line` assigns the result of the call at `callpos` to a variable
    /// (`var = ... call(`), returns the variable name, else "".
    static std::string assigned_var(const std::string& line, std::size_t callpos) {
        const std::size_t eq = line.rfind('=', callpos);
        if (eq == std::string::npos || eq == 0) return "";
        // Reject ==, !=, <=, >=, +=, -=, |=, &=, ^= ...: only a plain '='.
        const char before = line[eq - 1];
        if (std::strchr("=!<>+-*/|&^%", before) != nullptr) return "";
        if (eq + 1 < line.size() && line[eq + 1] == '=') return "";
        // Between '=' and the call there must be no statement separator.
        const std::string between = line.substr(eq + 1, callpos - eq - 1);
        if (between.find(';') != std::string::npos) return "";
        // Variable name: identifier immediately left of '='.
        std::size_t e = eq;
        while (e > 0 && line[e - 1] == ' ') --e;
        std::size_t b = e;
        while (b > 0 && is_ident_char(line[b - 1])) --b;
        if (b == e) return "";
        return line.substr(b, e - b);
    }

    /// Runs the generic tainted-variable pass: `taint_here(line)` returns the
    /// newly tainted variable name (or ""), and any dereference of a live
    /// taint emits `rule` with `msg`.
    template <typename TaintFn>
    void taint_pass(const char* rule, const std::string& msg, TaintFn&& taint_here) {
        std::vector<Taint> taints;
        int depth = 0;
        for (std::size_t li = 0; li < clean_lines_.size(); ++li) {
            const std::string& line = clean_lines_[li];
            const int lineno = static_cast<int>(li) + 1;
            for (const Taint& t : taints) {
                if (derefs_var(line, t.var)) emit(rule, lineno, msg + " ('" + t.var + "')");
            }
            taints.erase(std::remove_if(taints.begin(), taints.end(),
                                        [&](const Taint& t) {
                                            return reassigns_var(line, t.var);
                                        }),
                         taints.end());
            const std::string fresh = taint_here(line);
            if (!fresh.empty()) taints.push_back({fresh, depth, lineno});
            for (char c : line) {
                if (c == '{') ++depth;
                if (c == '}') --depth;
            }
            taints.erase(std::remove_if(taints.begin(), taints.end(),
                                        [&](const Taint& t) { return depth < t.depth; }),
                         taints.end());
        }
    }

    // ---- R3: get_unmarked before dereference ------------------------------

    void check_r3() {
        // Direct form: get_marked(...)-> / get_flagged(...)->
        for (const char* helper : {"get_marked(", "get_flagged("}) {
            std::size_t pos = 0;
            while ((pos = clean_.find(helper, pos)) != std::string::npos) {
                const std::size_t call = pos;
                pos += std::strlen(helper);
                if (call > 0 && is_ident_char(clean_[call - 1])) continue;
                const std::size_t open = call + std::strlen(helper) - 1;
                const std::size_t close = match_paren(clean_, open);
                if (close == std::string::npos) continue;
                std::size_t p = close + 1;
                while (p < clean_.size() && (clean_[p] == ' ' || clean_[p] == '\n')) ++p;
                if (p + 1 < clean_.size() && clean_[p] == '-' && clean_[p + 1] == '>') {
                    emit("R3", line_of(call),
                         "dereference of a marked pointer — apply get_unmarked() first");
                }
            }
        }
        // Escaped form: v = get_marked(...); ... v->field
        taint_pass("R3", "dereference of a pointer that may carry mark bits — "
                         "apply get_unmarked() first",
                   [](const std::string& line) -> std::string {
                       for (const char* helper : {"get_marked(", "get_flagged("}) {
                           const std::size_t call = line.find(helper);
                           if (call == std::string::npos) continue;
                           if (call > 0 && is_ident_char(line[call - 1])) continue;
                           return assigned_var(line, call);
                       }
                       return "";
                   });
    }

    // ---- R4: per-thread arrays must be cacheline-padded -------------------

    void check_r4() {
        // Types declared with alignas in this file are acceptable elements.
        std::set<std::string> padded_types;
        for (const char* intro : {"struct", "class"}) {
            std::size_t pos = 0;
            while ((pos = clean_.find(intro, pos)) != std::string::npos) {
                std::size_t p = pos + std::strlen(intro);
                pos = p;
                if (p >= clean_.size() || is_ident_char(clean_[p])) continue;
                while (p < clean_.size() &&
                       std::isspace(static_cast<unsigned char>(clean_[p]))) ++p;
                if (clean_.compare(p, 8, "alignas(") != 0) continue;
                const std::size_t close = match_paren(clean_, p + 7);
                if (close == std::string::npos) continue;
                p = close + 1;
                while (p < clean_.size() &&
                       std::isspace(static_cast<unsigned char>(clean_[p]))) ++p;
                std::size_t b = p;
                while (p < clean_.size() && is_ident_char(clean_[p])) ++p;
                if (p > b) padded_types.insert(clean_.substr(b, p - b));
            }
        }
        std::size_t pos = 0;
        while ((pos = clean_.find("[kMaxThreads]", pos)) != std::string::npos) {
            const std::size_t bracket = pos;
            pos += 1;
            const int lineno = line_of(bracket);
            const std::string& line = clean_lines_[lineno - 1];
            const std::size_t col = bracket - line_starts_[lineno - 1];
            std::string before = trim(line.substr(0, col));
            // Strip the declarator name.
            std::size_t e = before.size();
            while (e > 0 && is_ident_char(before[e - 1])) --e;
            std::string type = trim(before.substr(0, e));
            if (type.empty()) continue;  // subscript expression, not a declaration
            if (type.find("CachelinePadded") != std::string::npos) continue;
            if (type.find("alignas") != std::string::npos) continue;
            // Leading type identifier (possibly qualified), e.g. Slot,
            // TLInfo, std::atomic.
            std::size_t b = 0;
            while (b < type.size() &&
                   std::isspace(static_cast<unsigned char>(type[b]))) ++b;
            std::size_t te = b;
            while (te < type.size() && (is_ident_char(type[te]) || type[te] == ':')) ++te;
            std::string head = type.substr(b, te - b);
            // Skip storage/cv keywords.
            static const std::set<std::string> kSkips = {"static", "constexpr", "inline",
                                                         "const", "mutable", "extern"};
            while (kSkips.count(head) != 0) {
                b = te;
                while (b < type.size() &&
                       std::isspace(static_cast<unsigned char>(type[b]))) ++b;
                te = b;
                while (te < type.size() && (is_ident_char(type[te]) || type[te] == ':')) ++te;
                head = type.substr(b, te - b);
            }
            if (padded_types.count(head) != 0) continue;
            emit("R4", lineno,
                 "per-thread array '" + type +
                     " ...[kMaxThreads]' is not CachelinePadded — adjacent threads will "
                     "false-share");
        }
    }

    // ---- R5: no raw-pointer dereference escaping a protection scope -------

    void check_r5() {
        // Direct forms: x.get()->f / x.load_unsafe(...)->f
        std::size_t pos = 0;
        while ((pos = clean_.find(".get()", pos)) != std::string::npos) {
            const std::size_t call = pos;
            pos += 6;
            std::size_t p = call + 6;
            while (p < clean_.size() && (clean_[p] == ' ' || clean_[p] == '\n')) ++p;
            if (p + 1 < clean_.size() && clean_[p] == '-' && clean_[p + 1] == '>') {
                emit("R5", line_of(call),
                     "dereference through .get() — use the orc_ptr's own operator->");
            }
        }
        pos = 0;
        while ((pos = clean_.find("load_unsafe(", pos)) != std::string::npos) {
            const std::size_t call = pos;
            pos += std::strlen("load_unsafe(");
            if (call > 0 && is_ident_char(clean_[call - 1])) continue;
            const std::size_t open = call + std::strlen("load_unsafe(") - 1;
            const std::size_t close = match_paren(clean_, open);
            if (close == std::string::npos) continue;
            std::size_t p = close + 1;
            while (p < clean_.size() && (clean_[p] == ' ' || clean_[p] == '\n')) ++p;
            if (p + 1 < clean_.size() && clean_[p] == '-' && clean_[p + 1] == '>') {
                emit("R5", line_of(call),
                     "dereference of a load_unsafe() result — unprotected reads are for "
                     "validation only");
            }
        }
        // Escaped form: raw = x.get(); ... raw->field  (orc_ptr targets are
        // exempt: their operator-> is the protected path).
        taint_pass("R5", "dereference of a raw pointer that escaped its protection scope — "
                         "keep the orc_ptr alive and dereference through it",
                   [](const std::string& line) -> std::string {
                       if (line.find("orc_ptr") != std::string::npos) return "";
                       for (const char* src : {".get()", ".load_unsafe(", "->load_unsafe("}) {
                           const std::size_t call = line.find(src);
                           if (call == std::string::npos) continue;
                           return assigned_var(line, call);
                       }
                       return "";
                   });
    }

    std::string path_;
    std::string orig_;
    std::string clean_;
    RuleSet rules_;
    std::vector<Diag>& diags_;
    std::vector<std::string> orig_lines_;
    std::vector<std::string> clean_lines_;
    std::vector<std::size_t> line_starts_;
    std::map<int, std::set<std::string>> suppressed_;
};

RuleSet rules_for_path(const std::string& generic_path) {
    RuleSet r;
    const bool core = generic_path.find("/core/") != std::string::npos;
    r.r1 = core || generic_path.find("/reclamation/") != std::string::npos;
    const bool ds_orc = generic_path.find("/ds/orc/") != std::string::npos;
    r.r2 = ds_orc;
    r.r5 = ds_orc;
    // make_orc.hpp is the engine's single sanctioned allocation site; every
    // other core file is on a retire/protect hot path.
    r.r6 = core && generic_path.find("/make_orc.hpp") == std::string::npos;
    // The façade itself (and the domain it forwards to) lives in core; every
    // other tree — library, tests, benches, examples — must go through a
    // domain.
    r.r7 = !core;
    // The telemetry layer is where counters are SUPPOSED to live; everywhere
    // else in the engine and the manual schemes, a hand-rolled atomic
    // counter bypasses the registry.
    r.r8 = (core || generic_path.find("/reclamation/") != std::string::npos) &&
           generic_path.find("/orc_metrics.hpp") == std::string::npos;
    // The fence facility is R9's single sanctioned home for the syscall and
    // for publish-strength decisions; everywhere else both sub-rules apply
    // (b only where protection slots live: the engine + the manual schemes).
    const bool asym_home = generic_path.find("/common/asym_fence.") != std::string::npos;
    r.r9a = !asym_home;
    r.r9b = !asym_home &&
            (core || generic_path.find("/reclamation/") != std::string::npos);
    // Client trees (tests/benches/examples) legitimately poke at marked
    // pointers and declare unpadded scratch arrays when exercising the
    // library; the memory-layout rules are library-discipline only.
    const bool client = generic_path.find("/tests/") != std::string::npos ||
                        generic_path.find("/bench/") != std::string::npos ||
                        generic_path.find("/examples/") != std::string::npos;
    if (client) {
        r.r3 = false;
        r.r4 = false;
    }
    // The domain free path is the one sanctioned place to free an orc_base:
    // destroy() and the teardown sweeps live there, as does OrcSan's
    // quarantine diversion. Everywhere else — engine, schemes, structures,
    // clients — a raw free of a tracked object bypasses the hazard scan.
    r.r10 = generic_path.find("/core/orc_domain.hpp") == std::string::npos;
    // The background-reclaimer unit is the engine's one sanctioned
    // thread-spawning site (its header documents the join-before-quiescence
    // contract); a raw std::thread anywhere else in the engine or the manual
    // schemes escapes the domain destruction protocol.
    r.r11 = (core || generic_path.find("/reclamation/") != std::string::npos) &&
            generic_path.find("/core/orc_bg_reclaimer.hpp") == std::string::npos;
    // The manual-scheme substrate is the one sanctioned home for slot
    // arrays, retire bags and the SchemeMetrics provider; a scheme file that
    // re-forks any of them has drifted off the shared (audited) paths.
    r.r12 = generic_path.find("/reclamation/") != std::string::npos &&
            generic_path.find("/scheme_base.hpp") == std::string::npos;
    // Raw clocks are the telemetry layer's business: telemetry.hpp (in
    // common/, outside this rule's scope) and its engine half
    // (orc_metrics.hpp) own the tick source; the rest of the engine and the
    // manual schemes stamp through coarse_now()/now_tsc().
    r.r13 = (core || generic_path.find("/reclamation/") != std::string::npos) &&
            generic_path.find("/orc_metrics.hpp") == std::string::npos;
    return r;
}

bool lintable_extension(const fs::path& p) {
    const std::string ext = p.extension().string();
    return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc" || ext == ".cxx";
}

}  // namespace

int main(int argc, char** argv) {
    std::vector<fs::path> inputs;
    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        if (arg == "--root") {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "orc-lint: --root requires a directory\n");
                return 2;
            }
            inputs.emplace_back(argv[++i]);
        } else if (arg == "--help" || arg == "-h") {
            std::fprintf(stderr,
                         "usage: orc_lint [--root DIR]... [FILE]...\n"
                         "Lints OrcGC reclamation discipline (rules R1-R13).\n");
            return 0;
        } else {
            inputs.emplace_back(argv[i]);
        }
    }
    if (inputs.empty()) {
        std::fprintf(stderr, "orc-lint: no inputs (try --root src)\n");
        return 2;
    }

    std::vector<fs::path> files;
    for (const fs::path& in : inputs) {
        std::error_code ec;
        if (fs::is_directory(in, ec)) {
            for (const auto& entry : fs::recursive_directory_iterator(in)) {
                if (entry.is_regular_file() && lintable_extension(entry.path())) {
                    files.push_back(entry.path());
                }
            }
        } else if (fs::is_regular_file(in, ec)) {
            files.push_back(in);
        } else {
            std::fprintf(stderr, "orc-lint: cannot read %s\n", in.string().c_str());
            return 2;
        }
    }
    std::sort(files.begin(), files.end());

    std::vector<Diag> diags;
    for (const fs::path& file : files) {
        std::ifstream stream(file);
        if (!stream) {
            std::fprintf(stderr, "orc-lint: cannot open %s\n", file.string().c_str());
            return 2;
        }
        std::stringstream buf;
        buf << stream.rdbuf();
        const std::string abs = fs::absolute(file).generic_string();
        FileLinter linter(file.generic_string(), buf.str(), rules_for_path(abs), diags);
        linter.run();
    }

    std::sort(diags.begin(), diags.end());
    for (const Diag& d : diags) {
        std::printf("%s:%d: %s: %s\n", d.file.c_str(), d.line, d.rule.c_str(), d.msg.c_str());
    }
    if (!diags.empty()) {
        std::printf("orc-lint: %zu diagnostic%s\n", diags.size(), diags.size() == 1 ? "" : "s");
        return 1;
    }
    return 0;
}
