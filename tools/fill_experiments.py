#!/usr/bin/env python3
"""Splices measured benchmark output into EXPERIMENTS.md (idempotent).

Usage: tools/fill_experiments.py [bench_output.txt] [--telemetry artifact.json]...

Each experiment section in EXPERIMENTS.md carries one plain fenced code
block of measured rows. This script regenerates every such block from a
`for b in build/bench/*; do $b; done` transcript: a fenced block whose first
line (or `<<TOKEN>>` placeholder) matches a row family is replaced with that
family's current rows. Language-tagged fences (```sh etc.) are left alone.

--telemetry takes a bench `--json` artifact (or a bare orcgc-telemetry-v1
object) and synthesizes one `telemetry <source> ...` row per reclamation
source — the shared counter set (retired/freed/peak backlog/scans) plus the
retire-to-free latency percentiles where the source exports the histogram.
These rows feed the `<<TELEMETRY>>` block. The flag may repeat; later
artifacts win on duplicate source names.
"""
import json
import re
import sys

SECTIONS = {
    "QUEUES": r"^queues\(fig1/2\)",
    "LISTS_SCHEMES": r"^list-1k\(fig3/4\)",
    "LISTS_ORC": r"^lists-orc\(fig5/6\)",
    "TREE_SKIP": r"^tree-skip\(fig7/8\)",
    "MEMORY_BOUND": r"^memory-bound\(tab1\)",
    "FOOTPRINT": r"^skip-footprint",
    "PUBLISH": r"^BM_(Publish|Protect)",
    "OVERHEAD": r"^BM_(Std|Orc|New|Make)",
    "TELEMETRY": r"^telemetry ",
}


def rows_for(lines, pattern):
    rx = re.compile(pattern)
    return [ln.rstrip() for ln in lines if rx.search(ln)]


def hist_percentile(hist, pct):
    """Upper bound of the bucket holding the pct-th percentile record."""
    total = hist.get("count", 0)
    if total <= 0:
        return None
    target = total * pct
    seen = 0
    for bucket in hist.get("buckets", []):
        seen += bucket["count"]
        if seen >= target:
            return bucket["upper"]
    return hist["buckets"][-1]["upper"] if hist.get("buckets") else None


def telemetry_rows(paths):
    """`telemetry <source> ...` rows from bench --json / telemetry exports."""
    sources = {}
    for path in paths:
        doc = json.load(open(path, encoding="utf-8"))
        telem = doc.get("telemetry", doc)  # bench artifact or bare export
        for src in telem.get("sources", []):
            sources[src["name"]] = src
    rows = []
    for name in sorted(sources):
        src = sources[name]
        common = src.get("common", {})
        retired = common.get("retired", 0)
        freed = common.get("freed", 0)
        parts = [
            f"telemetry {name:<12}",
            f"retired={retired}",
            f"freed={freed}",
            f"backlog={max(retired - freed, 0)}",
            f"peak_backlog={common.get('peak_unreclaimed', 0)}",
            f"scans={common.get('scans', 0)}",
        ]
        latency = src.get("histograms", {}).get("retire_latency_gens")
        if latency:
            p50 = hist_percentile(latency, 0.50)
            p99 = hist_percentile(latency, 0.99)
            if p50 is not None:
                parts.append(f"lat_gens_p50<={p50}")
            if p99 is not None:
                parts.append(f"lat_gens_p99<={p99}")
        rows.append(" ".join(parts))
    return rows


def main() -> int:
    args = sys.argv[1:]
    telemetry_paths = []
    while "--telemetry" in args:
        at = args.index("--telemetry")
        if at + 1 >= len(args):
            print("--telemetry requires a JSON artifact path", file=sys.stderr)
            return 2
        telemetry_paths.append(args[at + 1])
        del args[at : at + 2]
    bench_path = args[0] if args else "bench_output.txt"
    bench_lines = open(bench_path, encoding="utf-8", errors="replace").read().splitlines()
    bench_lines += telemetry_rows(telemetry_paths)
    doc_lines = open("EXPERIMENTS.md", encoding="utf-8").read().splitlines()

    out = []
    i = 0
    while i < len(doc_lines):
        line = doc_lines[i]
        if line.startswith("```"):  # opening fence (tagged or plain)
            # Collect the block body up to the closing fence.
            j = i + 1
            body = []
            while j < len(doc_lines) and not doc_lines[j].startswith("```"):
                body.append(doc_lines[j])
                j += 1
            first = body[0] if body else ""
            replaced = False
            if line.strip() == "```":  # only plain fences are replaceable
                for token, pattern in SECTIONS.items():
                    if first.startswith(f"<<{token}>>") or re.search(pattern, first):
                        rows = rows_for(bench_lines, pattern)
                        out.append("```")
                        # The empty marker keeps the <<TOKEN>> so a later run
                        # with a fuller transcript can still find the block.
                        out.extend(rows if rows else
                                   [f"<<{token}>> (no rows captured - rerun the bench)"])
                        out.append("```")
                        replaced = True
                        break
            if not replaced:
                out.append(line)
                out.extend(body)
                out.append("```")
            i = j + 1
            continue
        out.append(line)
        i += 1

    open("EXPERIMENTS.md", "w", encoding="utf-8").write("\n".join(out) + "\n")
    print("EXPERIMENTS.md updated from", bench_path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
