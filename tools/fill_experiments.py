#!/usr/bin/env python3
"""Splices measured benchmark output into EXPERIMENTS.md (idempotent).

Usage: tools/fill_experiments.py [bench_output.txt]

Each experiment section in EXPERIMENTS.md carries one plain fenced code
block of measured rows. This script regenerates every such block from a
`for b in build/bench/*; do $b; done` transcript: a fenced block whose first
line (or `<<TOKEN>>` placeholder) matches a row family is replaced with that
family's current rows. Language-tagged fences (```sh etc.) are left alone.
"""
import re
import sys

SECTIONS = {
    "QUEUES": r"^queues\(fig1/2\)",
    "LISTS_SCHEMES": r"^list-1k\(fig3/4\)",
    "LISTS_ORC": r"^lists-orc\(fig5/6\)",
    "TREE_SKIP": r"^tree-skip\(fig7/8\)",
    "MEMORY_BOUND": r"^memory-bound\(tab1\)",
    "FOOTPRINT": r"^skip-footprint",
    "PUBLISH": r"^BM_(Publish|Protect)",
    "OVERHEAD": r"^BM_(Std|Orc|New|Make)",
}


def rows_for(lines, pattern):
    rx = re.compile(pattern)
    return [ln.rstrip() for ln in lines if rx.search(ln)]


def main() -> int:
    bench_path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    bench_lines = open(bench_path, encoding="utf-8", errors="replace").read().splitlines()
    doc_lines = open("EXPERIMENTS.md", encoding="utf-8").read().splitlines()

    out = []
    i = 0
    while i < len(doc_lines):
        line = doc_lines[i]
        if line.startswith("```"):  # opening fence (tagged or plain)
            # Collect the block body up to the closing fence.
            j = i + 1
            body = []
            while j < len(doc_lines) and not doc_lines[j].startswith("```"):
                body.append(doc_lines[j])
                j += 1
            first = body[0] if body else ""
            replaced = False
            if line.strip() == "```":  # only plain fences are replaceable
                for token, pattern in SECTIONS.items():
                    if first.startswith(f"<<{token}>>") or re.search(pattern, first):
                        rows = rows_for(bench_lines, pattern)
                        out.append("```")
                        out.extend(rows if rows else ["(no rows captured - rerun the bench)"])
                        out.append("```")
                        replaced = True
                        break
            if not replaced:
                out.append(line)
                out.extend(body)
                out.append("```")
            i = j + 1
            continue
        out.append(line)
        i += 1

    open("EXPERIMENTS.md", "w", encoding="utf-8").write("\n".join(out) + "\n")
    print("EXPERIMENTS.md updated from", bench_path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
