#!/usr/bin/env python3
"""orc_top: terminal viewer for OrcGC telemetry exports.

Renders the per-source counter table (plus histograms with --hist) from an
"orcgc-telemetry-v1" JSON export — either a bare export (ORC_TELEMETRY_JSON,
ORC_TELEMETRY_DUMP_MS) or a bench --json artifact carrying a "telemetry" key.
Stdlib only.

Usage:
  tools/orc_top.py telemetry.json             one-shot table
  tools/orc_top.py --hist telemetry.json      table + histograms
  tools/orc_top.py --watch 2 telemetry.json   re-read and redraw every 2 s
                                              (pair with ORC_TELEMETRY_DUMP_MS
                                              for a live view of a running
                                              process)

Columns: retired/freed/scans are monotonic totals; backlog is retired−freed
at capture; peak is the sampled high-water backlog. Histogram buckets are
powers of two (b holds values in [2^(b−1), 2^b−1]).

When the export carries an "orcsan" source (a -DORCGC_ORCSAN=ON build, see
DESIGN.md §1.9), a sanitizer panel follows the table: the four violation
counters (double_retire, unprotected_deref, poison_torn, cross_domain_retire
— any non-zero value is flagged) and the quarantine occupancy/peak gauges.

Sources whose export carries sharded-retirement activity (see DESIGN.md
§1.3e) get a shard panel: the displacement/drain counters, the cooperative
shared-scan install/steal counters, the background-reclaimer wake/park
counters, and the live shard_backlog gauge (objects currently parked across
the domain's MPSC inboxes).

Sources carrying a retire_free_age histogram (see DESIGN.md §1.8) get a
latency panel: retire→free age percentiles (p50/p99/p999, in
telemetry::coarse_now ticks) plus the stalled-reader watchdog gauges —
stall_suspects (reader slots whose heartbeat froze while pinning growing
garbage; any non-zero value is flagged) and stall_pinned (objects those
slots hold hostage).
"""
import argparse
import json
import sys
import time


def load_sources(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    telem = doc.get("telemetry", doc)
    if telem.get("schema") != "orcgc-telemetry-v1":
        raise ValueError(f"{path}: not an orcgc-telemetry-v1 export")
    return telem.get("sources", [])


def fmt_count(n):
    if n >= 10_000_000:
        return f"{n / 1e6:.0f}M"
    if n >= 10_000:
        return f"{n / 1e3:.0f}k"
    return str(n)


def render_table(sources, out):
    header = f"{'SOURCE':<16} {'RETIRED':>9} {'FREED':>9} {'BACKLOG':>8} {'PEAK':>8} {'SCANS':>9}"
    print(header, file=out)
    print("-" * len(header), file=out)
    for src in sorted(sources, key=lambda s: s["name"]):
        c = src.get("common", {})
        retired, freed = c.get("retired", 0), c.get("freed", 0)
        print(
            f"{src['name']:<16} {fmt_count(retired):>9} {fmt_count(freed):>9} "
            f"{fmt_count(max(retired - freed, 0)):>8} "
            f"{fmt_count(c.get('peak_unreclaimed', 0)):>8} {fmt_count(c.get('scans', 0)):>9}",
            file=out,
        )


ORCSAN_VIOLATIONS = ("double_retire", "unprotected_deref", "poison_torn",
                     "cross_domain_retire")


def render_orcsan(sources, out):
    """Sanitizer panel for -DORCGC_ORCSAN=ON exports: violation counters
    (flagged when non-zero) and the quarantine gauges."""
    for src in sources:
        if src.get("name") != "orcsan":
            continue
        counters = src.get("counters", {})
        gauges = src.get("gauges", {})
        total = sum(counters.get(k, 0) for k in ORCSAN_VIOLATIONS)
        verdict = "!! VIOLATIONS" if total else "clean"
        print(f"\norcsan [{verdict}]", file=out)
        for k in ORCSAN_VIOLATIONS:
            n = counters.get(k, 0)
            flag = "  <-- " + "!" * 8 if n else ""
            print(f"  {k:<20} {fmt_count(n):>9}{flag}", file=out)
        print(f"  {'quarantine':<20} {fmt_count(gauges.get('quarantine_occupancy', 0)):>9}"
              f"  (peak {fmt_count(gauges.get('quarantine_peak', 0))})", file=out)


SHARD_COUNTERS = ("shard_pushes", "shard_drained", "scans_shared",
                  "chunks_stolen", "items_stolen", "bg_wakes", "bg_parks")


def render_shards(sources, out):
    """Shard-occupancy panel for the sharded retire path: rendered for every
    source with any shard/steal/bg activity (or a live backlog gauge)."""
    for src in sorted(sources, key=lambda s: s["name"]):
        counters = src.get("counters", {})
        gauges = src.get("gauges", {})
        backlog = gauges.get("shard_backlog")
        if not any(counters.get(k, 0) for k in SHARD_COUNTERS) and not backlog:
            continue
        print(f"\n{src['name']} shards", file=out)
        print(f"  {'pushed':<14} {fmt_count(counters.get('shard_pushes', 0)):>9}"
              f"   {'drained':<14} {fmt_count(counters.get('shard_drained', 0)):>9}",
              file=out)
        print(f"  {'shared_scans':<14} {fmt_count(counters.get('scans_shared', 0)):>9}"
              f"   {'chunks_stolen':<14} {fmt_count(counters.get('chunks_stolen', 0)):>9}",
              file=out)
        print(f"  {'items_stolen':<14} {fmt_count(counters.get('items_stolen', 0)):>9}"
              f"   {'bg_wakes/parks':<14} "
              f"{fmt_count(counters.get('bg_wakes', 0))}/"
              f"{fmt_count(counters.get('bg_parks', 0)):>{1}}", file=out)
        if backlog is not None:
            print(f"  {'backlog (live)':<14} {fmt_count(backlog):>9}", file=out)


def render_latency(sources, out):
    """Reclamation-latency panel: retire→free age percentiles per source
    plus the stalled-reader watchdog gauges (flagged when suspects > 0)."""
    rows = []
    for src in sorted(sources, key=lambda s: s["name"]):
        age = src.get("histograms", {}).get("retire_free_age")
        gauges = src.get("gauges", {})
        suspects = gauges.get("stall_suspects")
        if (age is None or age.get("count", 0) == 0) and not suspects:
            continue
        rows.append((src["name"], age or {}, gauges))
    if not rows:
        return
    header = (f"\n{'LATENCY':<16} {'AGE n':>9} {'p50':>8} {'p99':>8} "
              f"{'p999':>8} {'STALLS':>7} {'PINNED':>7}")
    print(header, file=out)
    print("-" * len(header), file=out)
    for name, age, gauges in rows:
        suspects = gauges.get("stall_suspects", 0)
        flag = "  <-- stalled reader(s)" if suspects else ""
        print(
            f"{name:<16} {fmt_count(age.get('count', 0)):>9} "
            f"{fmt_count(age.get('p50', 0)):>8} {fmt_count(age.get('p99', 0)):>8} "
            f"{fmt_count(age.get('p999', 0)):>8} {fmt_count(suspects):>7} "
            f"{fmt_count(gauges.get('stall_pinned', 0)):>7}{flag}",
            file=out,
        )


def render_histograms(sources, out):
    for src in sorted(sources, key=lambda s: s["name"]):
        for name, hist in sorted(src.get("histograms", {}).items()):
            count = hist.get("count", 0)
            if count == 0:
                continue
            print(f"\n{src['name']} / {name} (n={count})", file=out)
            buckets = [b for b in hist.get("buckets", []) if b["count"] > 0]
            top = max(b["count"] for b in buckets)
            for b in buckets:
                span = str(b["lower"]) if b["lower"] == b["upper"] else f"{b['lower']}-{b['upper']}"
                bar = "#" * max(1, round(40 * b["count"] / top))
                print(f"  {span:>12} {b['count']:>9} {bar}", file=out)


def main() -> int:
    parser = argparse.ArgumentParser(description="OrcGC telemetry viewer")
    parser.add_argument("artifact", help="telemetry JSON (bare export or bench --json)")
    parser.add_argument("--hist", action="store_true", help="also render histograms")
    parser.add_argument("--watch", type=float, metavar="SECS",
                        help="redraw every SECS seconds until interrupted")
    args = parser.parse_args()

    while True:
        try:
            sources = load_sources(args.artifact)
        except (OSError, ValueError, json.JSONDecodeError) as err:
            print(f"orc_top: {err}", file=sys.stderr)
            if args.watch is None:
                return 1
            time.sleep(args.watch)
            continue
        if args.watch is not None:
            sys.stdout.write("\x1b[2J\x1b[H")  # clear + home
        render_table(sources, sys.stdout)
        render_latency(sources, sys.stdout)
        render_shards(sources, sys.stdout)
        render_orcsan(sources, sys.stdout)
        if args.hist:
            render_histograms(sources, sys.stdout)
        sys.stdout.flush()
        if args.watch is None:
            return 0
        try:
            time.sleep(args.watch)
        except KeyboardInterrupt:
            return 0


if __name__ == "__main__":
    raise SystemExit(main())
