#!/usr/bin/env python3
"""orc_trace: convert OrcGC trace-ring dumps into Chrome trace-event JSON.

Input is the JSONL file ORC_TRACE_DUMP=<path> produces at process exit (one
object per ring record: source, tid, tsc, type, obj, arg). Output is the
Chrome trace-event format — load the result in chrome://tracing or Perfetto
(ui.perfetto.dev). Stdlib only.

Usage:
  tools/orc_trace.py trace_dump.jsonl -o trace.json     convert
  tools/orc_trace.py trace_dump.jsonl --validate        check, no output
  tools/orc_trace.py dump.jsonl -o t.json --tsc-ghz 3.0 calibrated timestamps

Mapping:
  * One track per (source, tid): each telemetry source becomes a trace
    process (pid), each OrcGC dense thread id a thread (tid) inside it.
  * span_begin/span_end records (TraceSpan pairs — scan generations, steal
    chunks, handover drains, bg cycles, heavy fences) become duration events
    (ph B/E) named by their SpanKind; the end record's obj field carries the
    span's item count as args.items.
  * Every other record type (retire, free_batch, handover, ...) becomes an
    instant event (ph i, thread scope) with obj/arg attached as args.
  * Timestamps are (tsc - min_tsc) / (tsc_ghz * 1000) microseconds. The
    default --tsc-ghz 1.0 keeps relative ordering and proportions; pass the
    machine's invariant-TSC frequency for wall-clock-accurate spans.

Validation (--validate, also run before every conversion):
  * per-track tsc monotonicity (the rings are single-writer, so a
    non-monotone track means a corrupt or hand-edited dump);
  * balanced span pairing per track, with ring-wrap tolerance: a bounded
    ring may evict a span's begin while keeping its end (orphan end at the
    start of a track) or be dumped while a span is open (dangling begin at
    the end) — both are dropped with a note, anything else fails.
"""
import argparse
import json
import sys

# Kept in sync with telemetry::SpanKind (src/common/telemetry.hpp).
SPAN_KINDS = {
    1: "scan_generation",
    2: "steal_chunk",
    3: "handover_drain",
    4: "bg_cycle",
    5: "heavy_fence",
}


def load_records(path):
    """Parses a JSONL ring dump into a list of record dicts."""
    records = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as err:
                raise ValueError(f"{path}:{lineno}: not JSON: {err}") from err
            for key in ("source", "tid", "tsc", "type"):
                if key not in rec:
                    raise ValueError(f"{path}:{lineno}: record missing '{key}'")
            records.append(rec)
    return records


def group_tracks(records):
    """Groups records by (source, tid), preserving dump order (which is ring
    order — oldest first — per track)."""
    tracks = {}
    for rec in records:
        tracks.setdefault((rec["source"], rec["tid"]), []).append(rec)
    return tracks


def validate(tracks, out=sys.stderr):
    """Returns (ok, notes): hard failures make ok False; wrap-tolerated
    orphans only produce notes."""
    ok = True
    notes = []
    for (source, tid), recs in sorted(tracks.items()):
        label = f"{source}/tid{tid}"
        last_tsc = None
        open_spans = []  # stack of (kind, tsc)
        seen_any_span_activity = False
        for rec in recs:
            tsc = rec["tsc"]
            if last_tsc is not None and tsc < last_tsc:
                print(f"orc_trace: {label}: tsc went backwards "
                      f"({last_tsc} -> {tsc})", file=out)
                ok = False
            last_tsc = tsc
            if rec["type"] == "span_begin":
                seen_any_span_activity = True
                open_spans.append((rec.get("arg", 0), tsc))
            elif rec["type"] == "span_end":
                if not open_spans:
                    if seen_any_span_activity:
                        # An end after balanced activity with no open begin
                        # cannot come from ring eviction: wrap only eats the
                        # OLDEST records.
                        print(f"orc_trace: {label}: unpaired span_end "
                              f"mid-track at tsc={tsc}", file=out)
                        ok = False
                    else:
                        notes.append(f"{label}: orphan span_end at track "
                                     f"start (ring wrap), dropped")
                    continue
                seen_any_span_activity = True
                kind, _ = open_spans.pop()
                if rec.get("arg", 0) != kind:
                    print(f"orc_trace: {label}: span_end kind "
                          f"{rec.get('arg')} does not match open span_begin "
                          f"kind {kind} at tsc={tsc}", file=out)
                    ok = False
        for kind, tsc in open_spans:
            notes.append(f"{label}: dangling span_begin "
                         f"({SPAN_KINDS.get(kind, kind)}) at tsc={tsc} "
                         f"(dump raced the span or ring wrapped), dropped")
    return ok, notes


def to_chrome(tracks, tsc_ghz):
    """Builds the Chrome trace-event object. Orphan/dangling span records
    (already reported by validate) are skipped."""
    t0 = min((rec["tsc"] for recs in tracks.values() for rec in recs),
             default=0)

    def ts(tsc):
        return (tsc - t0) / (tsc_ghz * 1000.0)

    events = []
    pids = {}
    for (source, tid), recs in sorted(tracks.items()):
        pid = pids.setdefault(source, len(pids) + 1)
        depth = 0
        pending_ends = 0
        # Pre-count wrap-orphaned ends so the B/E stream stays balanced.
        for rec in recs:
            if rec["type"] == "span_begin":
                pending_ends += 1
            elif rec["type"] == "span_end" and pending_ends > 0:
                pending_ends -= 1
        for rec in recs:
            if rec["type"] == "span_begin":
                depth += 1
                events.append({
                    "ph": "B", "pid": pid, "tid": tid, "ts": ts(rec["tsc"]),
                    "name": SPAN_KINDS.get(rec.get("arg", 0),
                                           f"span{rec.get('arg', 0)}"),
                    "cat": "orcgc",
                })
            elif rec["type"] == "span_end":
                if depth == 0:
                    continue  # orphan end (ring wrap)
                depth -= 1
                events.append({
                    "ph": "E", "pid": pid, "tid": tid, "ts": ts(rec["tsc"]),
                    "args": {"items": int(rec.get("obj", "0x0"), 16)},
                })
            else:
                events.append({
                    "ph": "i", "pid": pid, "tid": tid, "ts": ts(rec["tsc"]),
                    "name": rec["type"], "s": "t", "cat": "orcgc",
                    "args": {"obj": rec.get("obj", "0x0"),
                             "arg": rec.get("arg", 0)},
                })
        # Close dangling begins at the track's last timestamp so viewers
        # render them instead of discarding the whole track.
        if depth > 0 and recs:
            for _ in range(depth):
                events.append({
                    "ph": "E", "pid": pid, "tid": tid,
                    "ts": ts(recs[-1]["tsc"]),
                    "args": {"items": 0, "truncated": True},
                })
    # Name the process tracks after their telemetry sources.
    for source, pid in pids.items():
        events.append({"ph": "M", "pid": pid, "tid": 0,
                       "name": "process_name",
                       "args": {"name": f"orcgc:{source}"}})
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def main() -> int:
    parser = argparse.ArgumentParser(
        description="OrcGC ring dump -> Chrome trace-event JSON")
    parser.add_argument("dump", help="JSONL ring dump (ORC_TRACE_DUMP)")
    parser.add_argument("-o", "--output", metavar="PATH",
                        help="write Chrome trace JSON here")
    parser.add_argument("--validate", action="store_true",
                        help="validate only (no output unless -o given)")
    parser.add_argument("--tsc-ghz", type=float, default=1.0,
                        help="TSC frequency in GHz for microsecond "
                             "timestamps (default 1.0: raw tick scale)")
    args = parser.parse_args()
    if not args.validate and not args.output:
        parser.error("need -o/--output and/or --validate")
    if args.tsc_ghz <= 0:
        parser.error("--tsc-ghz must be positive")

    try:
        records = load_records(args.dump)
    except (OSError, ValueError) as err:
        print(f"orc_trace: {err}", file=sys.stderr)
        return 1
    if not records:
        print(f"orc_trace: {args.dump}: empty dump (was tracing enabled? "
              f"run with ORC_TRACE=1)", file=sys.stderr)
        return 1

    tracks = group_tracks(records)
    ok, notes = validate(tracks)
    for note in notes:
        print(f"orc_trace: note: {note}", file=sys.stderr)
    if not ok:
        print("orc_trace: validation FAILED", file=sys.stderr)
        return 1
    spans = sum(1 for r in records if r["type"] == "span_begin")
    print(f"orc_trace: {len(records)} records, {len(tracks)} tracks, "
          f"{spans} spans: OK", file=sys.stderr)

    if args.output:
        doc = to_chrome(tracks, args.tsc_ghz)
        with open(args.output, "w", encoding="utf-8") as f:
            json.dump(doc, f, indent=1)
            f.write("\n")
        print(f"orc_trace: wrote {len(doc['traceEvents'])} events to "
              f"{args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
