#!/usr/bin/env python3
"""A/B gate for the always-on telemetry overhead.

Runs the two retire-path benches that stress the instrumented hot paths —
bench_retire_batch (hoard48 mix, t=8: every retire scans past 48 parked hp
slots, counters firing per token/free/snapshot) and bench_domains (solo
series: private-domain cascade churn) — against a telemetry-ON build and a
-DORCGC_TELEMETRY=OFF build of the same tree, and fails if ON loses more
than the budget (default 2%).

Per point the best of --repeats alternating runs is compared (max filters
scheduler noise on shared runners; the A/B alternation keeps thermal or
load drift from biasing one side). The result is written as
BENCH_telemetry.json:

  { "schema": "orcgc-telemetry-overhead-v1", "budget": B,
    "points": [ {bench, series, mix, threads, on_ops, off_ops, ratio}, ...],
    "geomean_ratio": R, "overhead": 1-R, "pass": true|false }

Usage:
  tools/telemetry_overhead.py --on-dir build --off-dir build-notelem \
      [--out BENCH_telemetry.json] [--budget 0.02] [--repeats 3]

The OFF tree is configured and built automatically when --off-dir does not
contain the bench binaries. ORC_BENCH_MS/RUNS control the per-run window
(defaults here: 300 ms x 2).
"""
import argparse
import json
import math
import os
import subprocess
import sys
import tempfile

# (binary, env, row filter) per measured bench. retire_batch runs t=8 only;
# domains keeps its own thread sweep but only solo rows are scored.
BENCHES = [
    ("bench_retire_batch", {"ORC_BENCH_THREADS": "8"},
     lambda r: r["bench"] == "retire_batch" and r["mix"] == "hoard48"),
    ("bench_domains", {},
     lambda r: r["bench"] == "domains" and r["mix"] == "solo"),
]


def ensure_off_build(off_dir, source_dir):
    targets = ["bench_retire_batch", "bench_domains"]
    if all(os.path.exists(os.path.join(off_dir, "bench", t)) for t in targets):
        return
    print(f"configuring telemetry-OFF tree in {off_dir} ...", flush=True)
    subprocess.run(["cmake", "-B", off_dir, "-S", source_dir,
                    "-DORCGC_TELEMETRY=OFF"], check=True, stdout=subprocess.DEVNULL)
    subprocess.run(["cmake", "--build", off_dir, "-j", "--target"] + targets,
                   check=True, stdout=subprocess.DEVNULL)


def run_bench(build_dir, name, extra_env, run_ms, runs):
    binary = os.path.join(build_dir, "bench", name)
    # ORC_BENCH_SKIP_GATE: the telemetry-on binary's quiescent gate sections
    # would otherwise run extra cascades before the timed series, handing the
    # two sides different allocator states. Identical preambles or it is not
    # an A/B.
    env = dict(os.environ, ORC_BENCH_MS=str(run_ms), ORC_BENCH_RUNS=str(runs),
               ORC_BENCH_SKIP_GATE="1", **extra_env)
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tmp:
        json_path = tmp.name
    try:
        # Gate failures exit non-zero but still flush rows; only a missing
        # artifact is fatal here.
        subprocess.run([binary, "--json", json_path], env=env,
                       stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        with open(json_path, encoding="utf-8") as f:
            return json.load(f)["rows"]
    finally:
        os.unlink(json_path)


def main() -> int:
    parser = argparse.ArgumentParser(description="telemetry overhead A/B gate")
    parser.add_argument("--on-dir", default="build")
    parser.add_argument("--off-dir", default="build-notelem")
    parser.add_argument("--source-dir", default=".")
    parser.add_argument("--out", default="BENCH_telemetry.json")
    parser.add_argument("--budget", type=float, default=0.02,
                        help="max tolerated throughput loss (fraction)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--run-ms", type=int, default=300)
    parser.add_argument("--runs", type=int, default=2)
    args = parser.parse_args()

    ensure_off_build(args.off_dir, args.source_dir)

    best = {}  # (side, bench, series, mix, threads) -> best mean ops/s
    sides = [("on", args.on_dir), ("off", args.off_dir)]
    for rep in range(args.repeats):
        for name, env, wanted in BENCHES:
            # Sides back-to-back per bench, order flipped each pass: load on
            # a shared runner drifts on the minute scale, so the two sides
            # must sample the same window and neither may always go first.
            for side, build_dir in (sides if rep % 2 == 0 else sides[::-1]):
                for row in run_bench(build_dir, name, env, args.run_ms, args.runs):
                    if not wanted(row):
                        continue
                    key = (side, row["bench"], row["series"], row["mix"], row["threads"])
                    best[key] = max(best.get(key, 0.0), row["mean_ops_per_sec"])
        print(f"pass {rep + 1}/{args.repeats} done", flush=True)

    points = []
    for (side, bench, series, mix, threads), on_ops in sorted(best.items()):
        if side != "on":
            continue
        off_ops = best.get(("off", bench, series, mix, threads), 0.0)
        if off_ops <= 0:
            print(f"missing OFF point for {bench}/{series}/{mix}/t={threads}",
                  file=sys.stderr)
            return 2
        points.append({"bench": bench, "series": series, "mix": mix,
                       "threads": threads, "on_ops": round(on_ops, 1),
                       "off_ops": round(off_ops, 1),
                       "ratio": round(on_ops / off_ops, 4)})

    geomean = math.exp(sum(math.log(p["ratio"]) for p in points) / len(points))
    overhead = 1.0 - geomean
    ok = overhead <= args.budget
    result = {"schema": "orcgc-telemetry-overhead-v1", "budget": args.budget,
              "points": points, "geomean_ratio": round(geomean, 4),
              "overhead": round(overhead, 4), "pass": ok}
    with open(args.out, "w", encoding="utf-8") as f:
        json.dump(result, f, indent=2)
        f.write("\n")

    for p in points:
        print(f"{p['bench']:<16} {p['series']:<12} {p['mix']:<8} t={p['threads']:<3} "
              f"on={p['on_ops']:>12.0f} off={p['off_ops']:>12.0f} ratio={p['ratio']:.3f}")
    print(f"geomean ratio {geomean:.4f} -> overhead {overhead * 100:.2f}% "
          f"(budget {args.budget * 100:.0f}%): {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
