// Scenario: a tiny job system built entirely from the library's structures.
//
// Dispatchers push jobs into a high-throughput LCRQ run queue; workers pull
// jobs, execute them, and record job ids in a CRF-skip index so a control
// thread can query "has job J completed?" while everything is in flight.
// All three structures reclaim memory automatically through OrcGC — no
// retire calls anywhere in this file.
//
// Build & run:  ./examples/priority_jobs
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/orc/crf_skiplist_orc.hpp"
#include "ds/orc/lcrq_orc.hpp"

int main() {
    constexpr int kDispatchers = 2;
    constexpr int kWorkers = 3;
    constexpr std::uint64_t kJobsPerDispatcher = 40000;
    constexpr std::uint64_t kTotalJobs = kDispatchers * kJobsPerDispatcher;

    orcgc::LCRQOrc<std::uint64_t> run_queue;
    orcgc::CRFSkipListOrc<std::uint64_t> completed_index;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<int> dispatchers_left{kDispatchers};

    std::vector<std::thread> threads;
    for (int d = 0; d < kDispatchers; ++d) {
        threads.emplace_back([&, d] {
            for (std::uint64_t i = 0; i < kJobsPerDispatcher; ++i) {
                run_queue.enqueue(d * kJobsPerDispatcher + i);
            }
            dispatchers_left.fetch_sub(1);
        });
    }
    for (int w = 0; w < kWorkers; ++w) {
        threads.emplace_back([&] {
            while (true) {
                auto job = run_queue.dequeue();
                if (!job.has_value()) {
                    if (dispatchers_left.load() != 0) continue;
                    job = run_queue.dequeue();
                    if (!job.has_value()) break;
                }
                // "Execute" the job, then publish completion.
                completed_index.insert(*job);
                executed.fetch_add(1);
            }
        });
    }
    // Control thread: polls completion of a few tracer jobs while the system
    // runs (exercising concurrent lookups against inserts).
    std::thread control([&] {
        std::uint64_t observed = 0;
        while (observed < 5) {
            if (completed_index.contains(kTotalJobs - 1 - observed * 1000)) ++observed;
            std::this_thread::yield();
        }
    });

    for (auto& t : threads) t.join();
    control.join();

    // Verify: every job executed exactly once (index holds each id).
    std::uint64_t indexed = 0;
    for (std::uint64_t j = 0; j < kTotalJobs; ++j) {
        if (completed_index.contains(j)) ++indexed;
    }
    std::printf("executed %llu jobs, %llu indexed as complete (expected %llu)\n",
                (unsigned long long)executed.load(), (unsigned long long)indexed,
                (unsigned long long)kTotalJobs);
    const bool ok = executed.load() == kTotalJobs && indexed == kTotalJobs;
    std::printf("%s\n", ok ? "OK: run queue and completion index stayed consistent"
                           : "MISMATCH");
    return ok ? 0 : 1;
}
