// Scenario: concurrent de-duplication of an event stream.
//
// Several ingest threads receive overlapping batches of event ids and must
// decide, exactly once per id, whether the event is new. A lock-free ordered
// set is the natural structure; this example runs the same workload over
//   * MichaelListOrc  — automatic reclamation, annotation only (§4.1.1)
//   * MichaelList<HP> — the classic manual hazard-pointer integration
// and checks they agree, illustrating that OrcGC's API is a drop-in for the
// manually-integrated structure.
//
// Build & run:  ./examples/concurrent_set
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ds/michael_list.hpp"
#include "ds/orc/michael_list_orc.hpp"
#include "reclamation/hazard_pointers.hpp"

namespace {

template <typename Set>
std::uint64_t dedup_stream(int ingest_threads, int events_per_thread, std::uint64_t id_space) {
    Set seen;
    std::atomic<std::uint64_t> unique{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < ingest_threads; ++t) {
        threads.emplace_back([&, t] {
            // Overlapping streams: every thread draws from the same id space
            // with the same seed family, so most events are duplicates.
            orcgc::Xoshiro256 rng(1234 + t % 2);
            for (int i = 0; i < events_per_thread; ++i) {
                const std::uint64_t id = rng.next_bounded(id_space);
                if (seen.insert(id)) {
                    unique.fetch_add(1);  // first sighting: process the event
                }
            }
        });
    }
    for (auto& th : threads) th.join();
    return unique.load();
}

}  // namespace

int main() {
    constexpr int kThreads = 4;
    constexpr int kEvents = 50000;
    constexpr std::uint64_t kIdSpace = 20000;

    const std::uint64_t unique_orc =
        dedup_stream<orcgc::MichaelListOrc<std::uint64_t>>(kThreads, kEvents, kIdSpace);
    const std::uint64_t unique_hp =
        dedup_stream<orcgc::MichaelList<std::uint64_t, orcgc::HazardPointers>>(kThreads, kEvents,
                                                                               kIdSpace);

    std::printf("unique events: OrcGC-annotated list = %llu, hazard-pointer list = %llu\n",
                (unsigned long long)unique_orc, (unsigned long long)unique_hp);
    // The two runs use the same streams, so both must find the same uniques
    // (every id drawn at least once is counted exactly once).
    std::printf("%s\n", unique_orc == unique_hp ? "OK: identical dedup results" : "MISMATCH");
    return unique_orc == unique_hp ? 0 : 1;
}
