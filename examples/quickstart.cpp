// Quickstart: the paper's Algorithm 1 in action.
//
// A Michael–Scott queue made memory-safe by type annotation alone — the four
// methodology steps of §4.1.1:
//   1. nodes extend orc_base                (inside MSQueueOrc)
//   2. nodes are created with make_orc<T>() (inside MSQueueOrc)
//   3. links are orc_atomic<Node*>          (inside MSQueueOrc)
//   4. locals are orc_ptr<Node*>            (inside MSQueueOrc)
// Nothing here calls protect() or retire(); nodes are reclaimed with
// lock-free progress while producers and consumers run.
//
// Build & run:  ./examples/quickstart
#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "ds/orc/ms_queue_orc.hpp"

int main() {
    constexpr int kProducers = 2;
    constexpr int kConsumers = 2;
    constexpr std::uint64_t kPerProducer = 100000;

    orcgc::MSQueueOrc<std::uint64_t> queue;
    std::atomic<std::uint64_t> sum_consumed{0};
    std::atomic<std::uint64_t> count_consumed{0};
    std::atomic<int> producers_left{kProducers};

    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                queue.enqueue(p * kPerProducer + i);
            }
            producers_left.fetch_sub(1);
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            while (true) {
                auto v = queue.dequeue();
                if (v.has_value()) {
                    sum_consumed.fetch_add(*v);
                    count_consumed.fetch_add(1);
                } else if (producers_left.load() == 0) {
                    if (!(v = queue.dequeue()).has_value()) break;
                    sum_consumed.fetch_add(*v);
                    count_consumed.fetch_add(1);
                }
            }
        });
    }
    for (auto& t : threads) t.join();

    const std::uint64_t n = kProducers * kPerProducer;
    const std::uint64_t expected_sum = n * (n - 1) / 2;
    std::printf("consumed %llu items (expected %llu), sum %llu (expected %llu)\n",
                (unsigned long long)count_consumed.load(), (unsigned long long)n,
                (unsigned long long)sum_consumed.load(), (unsigned long long)expected_sum);
    std::printf("%s\n", count_consumed.load() == n && sum_consumed.load() == expected_sum
                            ? "OK: no item lost or duplicated, all nodes reclaimed lock-free"
                            : "MISMATCH");
    return count_consumed.load() == n && sum_consumed.load() == expected_sum ? 0 : 1;
}
