// Scenario: why the reclamation *bound* matters, not just throughput.
//
// A monitoring agent with a strict memory budget keeps a hot working set in
// a lock-free list while one reader thread occasionally stalls (GC pause,
// page fault, cgroup throttle — here simulated with a sleep inside the
// read-side critical section). This demo churns the list under that stall
// and prints the retired-but-unreclaimed backlog for:
//   * EBR — blocking: the stalled reader pins every epoch, backlog grows
//           without bound (Table 1's ∞ row);
//   * PTP — lock-free with the paper's O(H·t) bound: backlog stays tiny no
//           matter how long the stall lasts.
//
// Build & run:  ./examples/memory_bound_demo
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "ds/michael_list.hpp"
#include "reclamation/epoch_based.hpp"
#include "reclamation/pass_the_pointer.hpp"

namespace {

template <typename Set>
std::size_t churn_with_stalled_reader(const char* name) {
    Set set;
    for (std::uint64_t k = 0; k < 64; ++k) set.insert(k);

    std::atomic<bool> stop{false};
    std::atomic<bool> reader_in{false};

    // The stalling reader: enters a read-side operation and parks there.
    std::thread reader([&] {
        set.reclaimer().begin_op();
        reader_in.store(true);
        while (!stop.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
        set.reclaimer().end_op();
    });
    while (!reader_in.load()) std::this_thread::yield();

    // Two writers churn the hot set while the reader is parked.
    std::vector<std::thread> writers;
    std::atomic<std::size_t> peak{0};
    for (int t = 0; t < 2; ++t) {
        writers.emplace_back([&, t] {
            orcgc::Xoshiro256 rng(17 + t);
            for (int i = 0; i < 30000; ++i) {
                const std::uint64_t k = rng.next_bounded(64);
                if (rng.next_bounded(2) == 0) {
                    set.insert(k);
                } else {
                    set.remove(k);
                }
                const std::size_t backlog = set.reclaimer().unreclaimed_count();
                std::size_t prev = peak.load();
                while (prev < backlog && !peak.compare_exchange_weak(prev, backlog)) {
                }
            }
        });
    }
    for (auto& w : writers) w.join();
    stop.store(true);
    reader.join();

    std::printf("  %-4s peak retired-but-unreclaimed backlog during the stall: %zu objects\n",
                name, peak.load());
    return peak.load();
}

}  // namespace

int main() {
    std::printf("Churning a 64-key lock-free list while one reader is stalled mid-operation:\n");
    const std::size_t ebr_peak =
        churn_with_stalled_reader<orcgc::MichaelList<std::uint64_t, orcgc::EpochBasedReclaimer>>(
            "EBR");
    const std::size_t ptp_peak =
        churn_with_stalled_reader<orcgc::MichaelList<std::uint64_t, orcgc::PassThePointer>>(
            "PTP");
    std::printf("\nEBR's backlog scales with the churn performed during the stall;\n"
                "PTP's stays within its t*(H+1) bound (the paper's Table 1 contrast).\n");
    std::printf("%s\n", ptp_peak * 10 < ebr_peak ? "OK: PTP bound held under a stalled reader"
                                                 : "UNEXPECTED: bounds did not separate");
    return ptp_peak * 10 < ebr_peak ? 0 : 1;
}
