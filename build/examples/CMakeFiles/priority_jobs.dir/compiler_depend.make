# Empty compiler generated dependencies file for priority_jobs.
# This may be replaced when dependencies are built.
