file(REMOVE_RECURSE
  "CMakeFiles/priority_jobs.dir/priority_jobs.cpp.o"
  "CMakeFiles/priority_jobs.dir/priority_jobs.cpp.o.d"
  "priority_jobs"
  "priority_jobs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_jobs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
