file(REMOVE_RECURSE
  "CMakeFiles/memory_bound_demo.dir/memory_bound_demo.cpp.o"
  "CMakeFiles/memory_bound_demo.dir/memory_bound_demo.cpp.o.d"
  "memory_bound_demo"
  "memory_bound_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memory_bound_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
