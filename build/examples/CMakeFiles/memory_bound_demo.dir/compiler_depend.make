# Empty compiler generated dependencies file for memory_bound_demo.
# This may be replaced when dependencies are built.
