# Empty dependencies file for bench_lists_orc.
# This may be replaced when dependencies are built.
