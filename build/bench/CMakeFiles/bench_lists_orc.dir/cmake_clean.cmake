file(REMOVE_RECURSE
  "CMakeFiles/bench_lists_orc.dir/bench_lists_orc.cpp.o"
  "CMakeFiles/bench_lists_orc.dir/bench_lists_orc.cpp.o.d"
  "bench_lists_orc"
  "bench_lists_orc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lists_orc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
