file(REMOVE_RECURSE
  "CMakeFiles/bench_queues.dir/bench_queues.cpp.o"
  "CMakeFiles/bench_queues.dir/bench_queues.cpp.o.d"
  "bench_queues"
  "bench_queues.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_queues.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
