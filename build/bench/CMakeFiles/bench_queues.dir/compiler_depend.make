# Empty compiler generated dependencies file for bench_queues.
# This may be replaced when dependencies are built.
