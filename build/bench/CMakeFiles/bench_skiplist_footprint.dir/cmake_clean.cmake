file(REMOVE_RECURSE
  "CMakeFiles/bench_skiplist_footprint.dir/bench_skiplist_footprint.cpp.o"
  "CMakeFiles/bench_skiplist_footprint.dir/bench_skiplist_footprint.cpp.o.d"
  "bench_skiplist_footprint"
  "bench_skiplist_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skiplist_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
