# Empty dependencies file for bench_skiplist_footprint.
# This may be replaced when dependencies are built.
