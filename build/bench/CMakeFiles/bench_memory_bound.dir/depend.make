# Empty dependencies file for bench_memory_bound.
# This may be replaced when dependencies are built.
