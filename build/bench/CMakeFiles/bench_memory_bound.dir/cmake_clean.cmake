file(REMOVE_RECURSE
  "CMakeFiles/bench_memory_bound.dir/bench_memory_bound.cpp.o"
  "CMakeFiles/bench_memory_bound.dir/bench_memory_bound.cpp.o.d"
  "bench_memory_bound"
  "bench_memory_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_memory_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
