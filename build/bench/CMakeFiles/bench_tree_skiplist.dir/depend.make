# Empty dependencies file for bench_tree_skiplist.
# This may be replaced when dependencies are built.
