file(REMOVE_RECURSE
  "CMakeFiles/bench_tree_skiplist.dir/bench_tree_skiplist.cpp.o"
  "CMakeFiles/bench_tree_skiplist.dir/bench_tree_skiplist.cpp.o.d"
  "bench_tree_skiplist"
  "bench_tree_skiplist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tree_skiplist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
