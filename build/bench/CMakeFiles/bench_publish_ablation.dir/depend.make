# Empty dependencies file for bench_publish_ablation.
# This may be replaced when dependencies are built.
