file(REMOVE_RECURSE
  "CMakeFiles/bench_publish_ablation.dir/bench_publish_ablation.cpp.o"
  "CMakeFiles/bench_publish_ablation.dir/bench_publish_ablation.cpp.o.d"
  "bench_publish_ablation"
  "bench_publish_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_publish_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
