# Empty dependencies file for bench_orc_overhead.
# This may be replaced when dependencies are built.
