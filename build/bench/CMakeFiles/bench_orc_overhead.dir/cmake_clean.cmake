file(REMOVE_RECURSE
  "CMakeFiles/bench_orc_overhead.dir/bench_orc_overhead.cpp.o"
  "CMakeFiles/bench_orc_overhead.dir/bench_orc_overhead.cpp.o.d"
  "bench_orc_overhead"
  "bench_orc_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_orc_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
