file(REMOVE_RECURSE
  "CMakeFiles/bench_list_schemes.dir/bench_list_schemes.cpp.o"
  "CMakeFiles/bench_list_schemes.dir/bench_list_schemes.cpp.o.d"
  "bench_list_schemes"
  "bench_list_schemes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_list_schemes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
