# Empty dependencies file for bench_list_schemes.
# This may be replaced when dependencies are built.
