# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_orc_core "/root/repo/build/tests/test_orc_core")
set_tests_properties(test_orc_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_lists "/root/repo/build/tests/test_lists")
set_tests_properties(test_lists PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_trees "/root/repo/build/tests/test_trees")
set_tests_properties(test_trees PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_skiplists "/root/repo/build/tests/test_skiplists")
set_tests_properties(test_skiplists PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_queues "/root/repo/build/tests/test_queues")
set_tests_properties(test_queues PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_reclamation "/root/repo/build/tests/test_reclamation")
set_tests_properties(test_reclamation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_properties "/root/repo/build/tests/test_properties")
set_tests_properties(test_properties PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_hash_map "/root/repo/build/tests/test_hash_map")
set_tests_properties(test_hash_map PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_orc_backlog "/root/repo/build/tests/test_orc_backlog")
set_tests_properties(test_orc_backlog PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_differential "/root/repo/build/tests/test_differential")
set_tests_properties(test_differential PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;18;add_test;/root/repo/tests/CMakeLists.txt;0;")
