# Empty dependencies file for test_skiplists.
# This may be replaced when dependencies are built.
