file(REMOVE_RECURSE
  "CMakeFiles/test_skiplists.dir/test_skiplists.cpp.o"
  "CMakeFiles/test_skiplists.dir/test_skiplists.cpp.o.d"
  "test_skiplists"
  "test_skiplists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_skiplists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
