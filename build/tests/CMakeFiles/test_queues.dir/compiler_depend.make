# Empty compiler generated dependencies file for test_queues.
# This may be replaced when dependencies are built.
