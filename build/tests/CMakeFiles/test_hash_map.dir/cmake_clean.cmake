file(REMOVE_RECURSE
  "CMakeFiles/test_hash_map.dir/test_hash_map.cpp.o"
  "CMakeFiles/test_hash_map.dir/test_hash_map.cpp.o.d"
  "test_hash_map"
  "test_hash_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hash_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
