# Empty compiler generated dependencies file for test_hash_map.
# This may be replaced when dependencies are built.
