# Empty dependencies file for test_lists.
# This may be replaced when dependencies are built.
