file(REMOVE_RECURSE
  "CMakeFiles/test_lists.dir/test_lists.cpp.o"
  "CMakeFiles/test_lists.dir/test_lists.cpp.o.d"
  "test_lists"
  "test_lists.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lists.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
