# Empty dependencies file for test_orc_core.
# This may be replaced when dependencies are built.
