file(REMOVE_RECURSE
  "CMakeFiles/test_orc_core.dir/test_orc_core.cpp.o"
  "CMakeFiles/test_orc_core.dir/test_orc_core.cpp.o.d"
  "test_orc_core"
  "test_orc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
