file(REMOVE_RECURSE
  "CMakeFiles/test_reclamation.dir/test_reclamation.cpp.o"
  "CMakeFiles/test_reclamation.dir/test_reclamation.cpp.o.d"
  "test_reclamation"
  "test_reclamation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reclamation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
