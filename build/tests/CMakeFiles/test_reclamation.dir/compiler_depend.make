# Empty compiler generated dependencies file for test_reclamation.
# This may be replaced when dependencies are built.
