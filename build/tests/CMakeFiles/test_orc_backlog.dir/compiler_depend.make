# Empty compiler generated dependencies file for test_orc_backlog.
# This may be replaced when dependencies are built.
