file(REMOVE_RECURSE
  "CMakeFiles/test_orc_backlog.dir/test_orc_backlog.cpp.o"
  "CMakeFiles/test_orc_backlog.dir/test_orc_backlog.cpp.o.d"
  "test_orc_backlog"
  "test_orc_backlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_orc_backlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
