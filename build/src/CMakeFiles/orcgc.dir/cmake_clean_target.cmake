file(REMOVE_RECURSE
  "liborcgc.a"
)
