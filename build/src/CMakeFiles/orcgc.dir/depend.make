# Empty dependencies file for orcgc.
# This may be replaced when dependencies are built.
