file(REMOVE_RECURSE
  "CMakeFiles/orcgc.dir/common/alloc_tracker.cpp.o"
  "CMakeFiles/orcgc.dir/common/alloc_tracker.cpp.o.d"
  "CMakeFiles/orcgc.dir/common/thread_registry.cpp.o"
  "CMakeFiles/orcgc.dir/common/thread_registry.cpp.o.d"
  "liborcgc.a"
  "liborcgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orcgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
