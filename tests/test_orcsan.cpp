// OrcSan sanitizer tests (src/common/orcsan.hpp, DESIGN.md §1.9).
//
// True-positive coverage: death tests drive the deliberately-buggy list in
// orcsan_buggy_list.hpp (and two engine-level misuses) into each of the four
// violation classes and assert the report NAMES the violated invariant —
// the message, not just the abort, is the contract. False-positive coverage
// is the rest of the suite running green under -DORCGC_ORCSAN=ON (the
// build this file is gated on; see tests/CMakeLists.txt).
//
// The shadow tests pin the state machine itself: Live → Retired (parked) →
// Quarantined (diverted) → gone (evicted), and conservation — every object
// a domain allocates is Freed by the time the domain is destroyed.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <new>
#include <string>

#include "common/alloc_tracker.hpp"
#include "common/orcsan.hpp"
#include "common/telemetry.hpp"
#include "core/orc.hpp"
#include "ds/orc/michael_list_orc.hpp"
#include "orcsan_buggy_list.hpp"

namespace orcgc {
namespace {

using orcsan_fixture::BuggyMichaelList;

struct Node : orc_base, TrackedObject {
    std::uint64_t value = 0;
    orc_atomic<Node*> next{nullptr};
    Node() = default;
    explicit Node(std::uint64_t v) : value(v) {}
};

/// Raw storage an orc_ptr is placement-new'd into and never destroyed —
/// models a protection abandoned by a crashed/exited scope (same idiom as
/// test_domains.cpp).
struct AbandonedSlot {
    alignas(orc_ptr<Node*>) unsigned char raw[sizeof(orc_ptr<Node*>)];
};

/// Allocates a node in `dom`, links it from `root`, abandons the protecting
/// orc_ptr, then unlinks — the retire scan finds the abandoned hp and PARKS
/// the node: it stays Retired, not reclaimed.
Node* park_one(OrcDomain& dom, orc_atomic<Node*>& root, AbandonedSlot& storage) {
    orc_ptr<Node*> p = make_orc_in<Node>(dom, 42);
    Node* raw = p.get();
    root.store(p);
    ::new (storage.raw) orc_ptr<Node*>(std::move(p));
    root.store(nullptr);
    return raw;
}

/// Restores the default abort-on-violation mode even when a test fails.
struct ScopedNoAbort {
    ScopedNoAbort() { orcsan::testing::set_abort(false); }
    ~ScopedNoAbort() { orcsan::testing::set_abort(true); }
};

// ---- death tests: the four violation classes, named in the report ---------

TEST(OrcSanDeath, DoubleRetireIsCaughtAndNamed) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            OrcDomain dom;
            BuggyMichaelList list(dom);
            list.push_front(1);
            // Unlink retires automatically; the fixture's manual retire on
            // top of it is the second token.
            list.pop_front_with_manual_retire();
        },
        "orcsan: double_retire: object");
}

TEST(OrcSanDeath, DerefWithProtectRemovedIsCaughtAndNamed) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            OrcDomain dom;
            BuggyMichaelList list(dom);
            list.push_front(7);
            BuggyMichaelList::Node* snapshot = list.begin_unprotected();
            list.pop_front();  // node reclaimed (quarantined) under the reader
            list.read_unprotected(snapshot);
        },
        "orcsan: unprotected_deref: object");
}

TEST(OrcSanDeath, DerefAfterEarlyClearIsCaughtAndNamed) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            OrcDomain dom;
            BuggyMichaelList list(dom);
            list.push_front(3);
            // Protection taken, then the published slot is cleared while the
            // orc_ptr is still in use; the pop then reclaims the node.
            orc_ptr<BuggyMichaelList::Node*> p = list.front_with_early_clear();
            list.pop_front();
            (void)p->key;
        },
        "orcsan: unprotected_deref: object");
}

TEST(OrcSanDeath, CrossDomainRetireIsCaughtAndNamed) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            OrcDomain a;
            OrcDomain b;
            orc_atomic<Node*> root;
            {
                orc_ptr<Node*> p = make_orc_in<Node>(a, 1);
                root.store(p);
            }
            // Bypassed domain_of routing: the last-link decrement runs in b,
            // so the retire scan would walk b's hp slots — where a's
            // protections can never be found.
            b.decrement_orc(OrcDomain::to_base(root.load_unsafe()));
        },
        "orcsan: cross_domain_retire: object");
}

TEST(OrcSanDeath, QuarantineWriteIsCaughtAtEviction) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            auto dom = std::make_unique<OrcDomain>();
            std::uint64_t* stale = nullptr;
            {
                orc_ptr<Node*> p = make_orc_in<Node>(*dom, 5);
                stale = &p->value;
            }  // last protection dropped, zero links: destroyed + quarantined
            // Use-after-free WRITE through a raw pointer — uninstrumented,
            // invisible to the deref checks. The 0xDD poison it tears is
            // verified when the domain's quarantine flushes.
            *stale = 0xBEEF;
            dom.reset();
        },
        "orcsan: poison_torn: object");
}

// ---- shadow state machine --------------------------------------------------

TEST(OrcSanShadow, StateFollowsTheObjectLifecycle) {
    auto dom = std::make_unique<OrcDomain>();
    orc_base* base = nullptr;
    {
        orc_ptr<Node*> p = make_orc_in<Node>(*dom, 9);
        base = OrcDomain::to_base(p.get());
        EXPECT_EQ(orcsan::state_of(base), orcsan::State::kLive);
    }
    // Reclaimed: under OrcSan the free path diverts into the quarantine, so
    // the shadow entry survives (and the memory stays poisoned, not reused).
    EXPECT_EQ(orcsan::state_of(base), orcsan::State::kQuarantined);
    dom.reset();  // quarantine flush: verified, freed, entry erased
    EXPECT_EQ(orcsan::state_of(base), orcsan::State::kUnknown);
}

TEST(OrcSanShadow, ParkedObjectReadsRetired) {
    auto dom = std::make_unique<OrcDomain>();
    orc_atomic<Node*> root;
    AbandonedSlot abandoned;
    Node* raw = park_one(*dom, root, abandoned);
    ASSERT_EQ(dom->object_count(), 1) << "node should be parked, not freed";
    EXPECT_EQ(orcsan::state_of(OrcDomain::to_base(raw)), orcsan::State::kRetired);
    dom.reset();  // destruction drains the handover and reclaims the node
    EXPECT_EQ(orcsan::state_of(OrcDomain::to_base(raw)), orcsan::State::kUnknown);
}

TEST(OrcSanShadow, ListChurnConservesShadowEntries) {
    const orcsan::Stats before = orcsan::stats();
    const std::size_t entries_before = orcsan::live_entries();
    {
        OrcDomain dom;
        MichaelListOrc<int> list(&dom);
        for (int i = 0; i < 200; ++i) ASSERT_TRUE(list.insert(i));
        for (int i = 0; i < 200; i += 2) ASSERT_TRUE(list.remove(i));
    }  // list cascade + domain destruction (quarantine flush)
    const orcsan::Stats after = orcsan::stats();
    EXPECT_EQ(after.allocated - before.allocated, 200u);
    // Conservation: every object the domain allocated ended Freed.
    EXPECT_EQ(after.freed - before.freed, after.allocated - before.allocated);
    EXPECT_EQ(orcsan::live_entries(), entries_before);
    EXPECT_EQ(after.quarantine_occupancy, before.quarantine_occupancy);
}

// ---- quarantine ------------------------------------------------------------

TEST(OrcSanQuarantine, RingIsBoundedAndFlushedAtDomainDeath) {
    const orcsan::Stats before = orcsan::stats();
    auto dom = std::make_unique<OrcDomain>();
    for (int i = 0; i < 100; ++i) {
        orc_ptr<Node*> p = make_orc_in<Node>(*dom, i);
    }  // each drop reclaims immediately: 100 quarantine insertions
    const orcsan::Stats mid = orcsan::stats();
    EXPECT_EQ(mid.quarantined - before.quarantined, 100u);
    // Bounded ring: whatever is not held is already verified + freed.
    EXPECT_EQ((mid.freed - before.freed) +
                  (mid.quarantine_occupancy - before.quarantine_occupancy),
              100u);
    EXPECT_GT(mid.quarantine_peak, 0u);
    dom.reset();
    const orcsan::Stats after = orcsan::stats();
    EXPECT_EQ(after.freed - before.freed, 100u);
    EXPECT_EQ(after.quarantine_occupancy, before.quarantine_occupancy);
}

// ---- non-abort mode and telemetry ------------------------------------------

TEST(OrcSanReporting, NonAbortModeCountsViolationsAndContinues) {
    ScopedNoAbort no_abort;
    const orcsan::Stats before = orcsan::stats();
    {
        auto dom = std::make_unique<OrcDomain>();
        orc_atomic<Node*> root;
        AbandonedSlot abandoned;
        orc_ptr<Node*> p = make_orc_in<Node>(*dom, 1);
        root.store(p);
        dom->protect_ptr(nullptr, p.index());  // the early-clear bug
        root.store(nullptr);  // unlink: no protection found, so reclaimed
        EXPECT_EQ(orcsan::state_of(OrcDomain::to_base(p.get())),
                  orcsan::State::kQuarantined);
        // Instrumented deref of a quarantined object. operator-> alone runs
        // the orcsan check; completing the member access would additionally
        // be real UB on the poisoned block (UBSan's vptr check fires), and
        // non-abort mode keeps the process running into it.
        (void)p.operator->();
        // Abandon p: its slot no longer matches what the release protocol
        // expects (the test lied to the engine on purpose).
        ::new (abandoned.raw) orc_ptr<Node*>(std::move(p));
        dom.reset();
    }
    const orcsan::Stats after = orcsan::stats();
    EXPECT_EQ(after.unprotected_deref - before.unprotected_deref, 1u);
}

TEST(OrcSanReporting, TelemetryExportsTheOrcsanSource) {
    if (!telemetry::kTelemetryEnabled) GTEST_SKIP() << "telemetry compiled out";
    const std::string json = telemetry::export_json();
    EXPECT_NE(json.find("\"orcsan\""), std::string::npos) << json;
    EXPECT_NE(json.find("double_retire"), std::string::npos) << json;
    EXPECT_NE(json.find("quarantine_occupancy"), std::string::npos) << json;
}

}  // namespace
}  // namespace orcgc
