// Typed tests for every ordered-set (linked-list) variant in the library:
// Michael's list under all seven manual reclamation schemes, and the three
// OrcGC-annotated lists (Michael, Harris original, Herlihy–Shavit wait-free
// lookups). All share the insert/remove/contains API, so one suite covers
// sequential semantics, concurrent linearizability-style invariants and
// reclamation soundness uniformly.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "ds/michael_list.hpp"
#include "ds/orc/harris_list_orc.hpp"
#include "ds/orc/hs_list_orc.hpp"
#include "ds/orc/michael_list_orc.hpp"
#include "reclamation/reclamation.hpp"
#include "common/workload.hpp"

namespace orcgc {
namespace {

using Key = std::uint64_t;

template <typename ListT>
class ListTest : public ::testing::Test {};

using ListTypes = ::testing::Types<
    MichaelList<Key, ReclaimerNone>, MichaelList<Key, HazardPointers>,
    MichaelList<Key, PassTheBuck>, MichaelList<Key, EpochBasedReclaimer>,
    MichaelList<Key, HazardEras>, MichaelList<Key, IntervalBasedReclaimer>,
    MichaelList<Key, PassThePointer>, MichaelListOrc<Key>, HarrisListOrc<Key>, HSListOrc<Key>>;
TYPED_TEST_SUITE(ListTest, ListTypes);

TYPED_TEST(ListTest, EmptyListContainsNothing) {
    TypeParam list;
    EXPECT_FALSE(list.contains(0));
    EXPECT_FALSE(list.contains(42));
    EXPECT_FALSE(list.remove(42));
}

TYPED_TEST(ListTest, InsertThenContains) {
    TypeParam list;
    EXPECT_TRUE(list.insert(5));
    EXPECT_TRUE(list.contains(5));
    EXPECT_FALSE(list.contains(4));
    EXPECT_FALSE(list.contains(6));
}

TYPED_TEST(ListTest, DuplicateInsertFails) {
    TypeParam list;
    EXPECT_TRUE(list.insert(7));
    EXPECT_FALSE(list.insert(7));
    EXPECT_TRUE(list.contains(7));
}

TYPED_TEST(ListTest, RemoveMakesKeyAbsent) {
    TypeParam list;
    EXPECT_TRUE(list.insert(3));
    EXPECT_TRUE(list.remove(3));
    EXPECT_FALSE(list.contains(3));
    EXPECT_FALSE(list.remove(3));
    EXPECT_TRUE(list.insert(3));  // re-insertable after removal
    EXPECT_TRUE(list.contains(3));
}

TYPED_TEST(ListTest, ManyKeysAllOrderings) {
    TypeParam list;
    // Insert in a scrambled order; the list must behave as a set regardless.
    constexpr Key kN = 200;
    Xoshiro256 rng(123);
    std::vector<Key> keys;
    for (Key k = 0; k < kN; ++k) keys.push_back(k);
    for (Key i = kN - 1; i > 0; --i) std::swap(keys[i], keys[rng.next_bounded(i + 1)]);
    for (Key k : keys) EXPECT_TRUE(list.insert(k));
    for (Key k = 0; k < kN; ++k) EXPECT_TRUE(list.contains(k));
    EXPECT_FALSE(list.contains(kN));
    // Remove the even keys.
    for (Key k = 0; k < kN; k += 2) EXPECT_TRUE(list.remove(k));
    for (Key k = 0; k < kN; ++k) EXPECT_EQ(list.contains(k), k % 2 == 1);
}

TYPED_TEST(ListTest, BoundaryKeys) {
    TypeParam list;
    const Key lo = 0;
    const Key hi = ~Key{0} >> 1;  // large but below any sentinel space
    EXPECT_TRUE(list.insert(lo));
    EXPECT_TRUE(list.insert(hi));
    EXPECT_TRUE(list.contains(lo));
    EXPECT_TRUE(list.contains(hi));
    EXPECT_TRUE(list.remove(lo));
    EXPECT_FALSE(list.contains(lo));
    EXPECT_TRUE(list.contains(hi));
}

TYPED_TEST(ListTest, NoLeaksAfterChurnAndDestruction) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        TypeParam list;
        for (Key k = 0; k < 300; ++k) list.insert(k);
        for (Key k = 0; k < 300; k += 3) list.remove(k);
        for (Key k = 0; k < 300; ++k) list.insert(k ^ 0x155);
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

TYPED_TEST(ListTest, ConcurrentDisjointKeyRanges) {
    // Each thread owns keys ≡ tid (mod kThreads); no cross-thread conflicts,
    // so every operation must succeed and the final state is deterministic.
    constexpr int kThreads = 4;
    constexpr Key kPerThread = 400;
    TypeParam list;
    SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            barrier.arrive_and_wait();
            for (Key i = 0; i < kPerThread; ++i) {
                const Key k = i * kThreads + t;
                ASSERT_TRUE(list.insert(k));
                ASSERT_TRUE(list.contains(k));
            }
            for (Key i = 0; i < kPerThread; i += 2) {
                const Key k = i * kThreads + t;
                ASSERT_TRUE(list.remove(k));
            }
        });
    }
    for (auto& th : threads) th.join();
    for (int t = 0; t < kThreads; ++t) {
        for (Key i = 0; i < kPerThread; ++i) {
            const Key k = i * kThreads + t;
            EXPECT_EQ(list.contains(k), i % 2 == 1) << "key " << k;
        }
    }
}

TYPED_TEST(ListTest, ConcurrentContestedKeysLinearizable) {
    // All threads fight over a small key range. Per key, successful inserts
    // and removes must alternate, so (#ins - #rem) ∈ {0, 1} and equals the
    // key's final presence — a linearizability witness for set semantics.
    constexpr int kThreads = 6;
    constexpr Key kKeyRange = 16;
    const int kOpsEach = stress_iters(4000);
    TypeParam list;
    std::atomic<std::int64_t> ins[kKeyRange] = {};
    std::atomic<std::int64_t> rem[kKeyRange] = {};
    SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Xoshiro256 rng(1000 + t);
            barrier.arrive_and_wait();
            for (int i = 0; i < kOpsEach; ++i) {
                const Key k = rng.next_bounded(kKeyRange);
                if (rng.next_bounded(2) == 0) {
                    if (list.insert(k)) ins[k].fetch_add(1, std::memory_order_relaxed);
                } else {
                    if (list.remove(k)) rem[k].fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& th : threads) th.join();
    for (Key k = 0; k < kKeyRange; ++k) {
        const auto balance = ins[k].load() - rem[k].load();
        ASSERT_GE(balance, 0) << "key " << k;
        ASSERT_LE(balance, 1) << "key " << k;
        EXPECT_EQ(list.contains(k), balance == 1) << "key " << k;
    }
}

TYPED_TEST(ListTest, ConcurrentReadersDuringChurn) {
    // Writers toggle a key window while readers hammer contains(); odd keys
    // are immutable ground truth the readers can assert on.
    constexpr int kWriters = 3;
    constexpr int kReaders = 3;
    constexpr Key kRange = 64;
    const int kOpsEach = stress_iters(5000);
    TypeParam list;
    for (Key k = 1; k < kRange; k += 2) ASSERT_TRUE(list.insert(k));
    SpinBarrier barrier(kWriters + kReaders);
    std::vector<std::thread> threads;
    for (int t = 0; t < kWriters; ++t) {
        threads.emplace_back([&, t] {
            Xoshiro256 rng(77 + t);
            barrier.arrive_and_wait();
            for (int i = 0; i < kOpsEach; ++i) {
                const Key k = rng.next_bounded(kRange / 2) * 2;  // even keys only
                if (rng.next_bounded(2) == 0) {
                    list.insert(k);
                } else {
                    list.remove(k);
                }
            }
        });
    }
    for (int t = 0; t < kReaders; ++t) {
        threads.emplace_back([&, t] {
            Xoshiro256 rng(99 + t);
            barrier.arrive_and_wait();
            for (int i = 0; i < kOpsEach; ++i) {
                const Key k = rng.next_bounded(kRange);
                const bool present = list.contains(k);
                if (k % 2 == 1) {
                    ASSERT_TRUE(present) << "immutable key " << k << " vanished";
                }
            }
        });
    }
    for (auto& th : threads) th.join();
}

TYPED_TEST(ListTest, NoLeaksUnderConcurrentChurn) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        TypeParam list;
        constexpr int kThreads = 4;
        const int kOpsEach = stress_iters(3000);
        SpinBarrier barrier(kThreads);
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                Xoshiro256 rng(31 * t + 1);
                barrier.arrive_and_wait();
                for (int i = 0; i < kOpsEach; ++i) {
                    const Key k = rng.next_bounded(32);
                    if (rng.next_bounded(2) == 0) {
                        list.insert(k);
                    } else {
                        list.remove(k);
                    }
                }
            });
        }
        for (auto& th : threads) th.join();
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

}  // namespace
}  // namespace orcgc
