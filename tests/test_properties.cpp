// Parameterized property sweeps (TEST_P): set linearizability witnesses and
// leak-freedom across thread-count × op-mix grids (for the OrcGC list and
// for the Hyaline/DEBRA manual schemes), the PTP linear-bound property
// across thread counts, queue transfer invariants across thread counts, and
// engine edge-case behaviors (index churn, thread-exit drain).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <tuple>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "common/workload.hpp"
#include "ds/michael_list.hpp"
#include "ds/orc/lcrq_orc.hpp"
#include "ds/orc/michael_list_orc.hpp"
#include "ds/orc/ms_queue_orc.hpp"
#include "reclamation/debra.hpp"
#include "reclamation/hyaline.hpp"
#include "reclamation/pass_the_pointer.hpp"

namespace orcgc {
namespace {

using Key = std::uint64_t;

// ------------------------------------------------ set churn property sweep

class SetChurnProperty
    : public ::testing::TestWithParam<std::tuple<int /*threads*/, int /*mix index*/>> {};

TEST_P(SetChurnProperty, OrcListKeepsSetSemanticsAndLeaksNothing) {
    const int threads = std::get<0>(GetParam());
    const OpMix& mix = kAllMixes[std::get<1>(GetParam())];
    constexpr Key kKeyRange = 24;
    const int kOpsEach = stress_iters(2500);

    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        MichaelListOrc<Key> list;
        std::atomic<std::int64_t> ins[kKeyRange] = {};
        std::atomic<std::int64_t> rem[kKeyRange] = {};
        SpinBarrier barrier(threads);
        std::vector<std::thread> workers;
        for (int t = 0; t < threads; ++t) {
            workers.emplace_back([&, t] {
                Xoshiro256 rng(9000 + 13 * t);
                barrier.arrive_and_wait();
                for (int i = 0; i < kOpsEach; ++i) {
                    const Key k = next_key(rng, kKeyRange);
                    switch (next_op(rng, mix)) {
                        case SetOp::kInsert:
                            if (list.insert(k)) ins[k].fetch_add(1, std::memory_order_relaxed);
                            break;
                        case SetOp::kRemove:
                            if (list.remove(k)) rem[k].fetch_add(1, std::memory_order_relaxed);
                            break;
                        case SetOp::kContains:
                            list.contains(k);
                            break;
                    }
                }
            });
        }
        for (auto& w : workers) w.join();
        for (Key k = 0; k < kKeyRange; ++k) {
            const auto balance = ins[k].load() - rem[k].load();
            ASSERT_GE(balance, 0) << "key " << k;
            ASSERT_LE(balance, 1) << "key " << k;
            EXPECT_EQ(list.contains(k), balance == 1) << "key " << k;
        }
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
    EXPECT_EQ(counters.dead_accesses(), 0);
}

INSTANTIATE_TEST_SUITE_P(ThreadsByMix, SetChurnProperty,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(0, 1, 2)),
                         [](const auto& param_info) {
                             return "t" + std::to_string(std::get<0>(param_info.param)) +
                                    "_mix" + std::to_string(std::get<1>(param_info.param));
                         });

// ----------------------------------------- manual-scheme churn (same grid)

// The same churn property over the two newest manual schemes, so Hyaline's
// batch refcounting and DEBRA's bag rotation face the same thread × mix grid
// — and the same leak/double-free/dead-access accounting — as the OrcGC list.
template <typename List>
void run_manual_churn(int threads, const OpMix& mix) {
    constexpr Key kKeyRange = 24;
    const int kOpsEach = stress_iters(1500);

    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        List list;
        std::atomic<std::int64_t> ins[kKeyRange] = {};
        std::atomic<std::int64_t> rem[kKeyRange] = {};
        SpinBarrier barrier(threads);
        std::vector<std::thread> workers;
        for (int t = 0; t < threads; ++t) {
            workers.emplace_back([&, t] {
                Xoshiro256 rng(7000 + 17 * t);
                barrier.arrive_and_wait();
                for (int i = 0; i < kOpsEach; ++i) {
                    const Key k = next_key(rng, kKeyRange);
                    switch (next_op(rng, mix)) {
                        case SetOp::kInsert:
                            if (list.insert(k)) ins[k].fetch_add(1, std::memory_order_relaxed);
                            break;
                        case SetOp::kRemove:
                            if (list.remove(k)) rem[k].fetch_add(1, std::memory_order_relaxed);
                            break;
                        case SetOp::kContains:
                            list.contains(k);
                            break;
                    }
                }
            });
        }
        for (auto& w : workers) w.join();
        for (Key k = 0; k < kKeyRange; ++k) {
            const auto balance = ins[k].load() - rem[k].load();
            ASSERT_GE(balance, 0) << "key " << k;
            ASSERT_LE(balance, 1) << "key " << k;
            EXPECT_EQ(list.contains(k), balance == 1) << "key " << k;
        }
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
    EXPECT_EQ(counters.dead_accesses(), 0);
}

class ManualSchemeChurnProperty
    : public ::testing::TestWithParam<std::tuple<int /*threads*/, int /*mix index*/>> {};

TEST_P(ManualSchemeChurnProperty, HyalineListKeepsSetSemanticsAndLeaksNothing) {
    run_manual_churn<MichaelList<Key, Hyaline>>(std::get<0>(GetParam()),
                                               kAllMixes[std::get<1>(GetParam())]);
}

TEST_P(ManualSchemeChurnProperty, DebraListKeepsSetSemanticsAndLeaksNothing) {
    run_manual_churn<MichaelList<Key, Debra>>(std::get<0>(GetParam()),
                                             kAllMixes[std::get<1>(GetParam())]);
}

INSTANTIATE_TEST_SUITE_P(ThreadsByMix, ManualSchemeChurnProperty,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(0, 1, 2)),
                         [](const auto& param_info) {
                             return "t" + std::to_string(std::get<0>(param_info.param)) +
                                    "_mix" + std::to_string(std::get<1>(param_info.param));
                         });

// ---------------------------------------------------- PTP bound vs threads

class PtpBoundProperty : public ::testing::TestWithParam<int /*threads*/> {};

TEST_P(PtpBoundProperty, PeakUnreclaimedIsLinearInThreads) {
    const int threads = GetParam();
    constexpr int kHPs = 2;
    struct Node : ReclaimableBase, TrackedObject {};
    PassThePointer<Node, kHPs> gc;
    std::vector<std::atomic<Node*>> links(threads);
    for (auto& l : links) l.store(new Node());
    std::atomic<std::size_t> peak{0};
    std::atomic<bool> stop{false};
    SpinBarrier barrier(threads + 1);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            Xoshiro256 rng(t);
            barrier.arrive_and_wait();
            const int ops_each = stress_iters(2000);
            for (int i = 0; i < ops_each; ++i) {
                auto& link = links[rng.next_bounded(threads)];
                Node* old = gc.get_protected(link, i % kHPs);
                Node* fresh = new Node();
                Node* expected = old;
                if (old != nullptr && link.compare_exchange_strong(expected, fresh)) {
                    gc.retire(old);
                } else {
                    delete fresh;
                }
            }
            for (int h = 0; h < kHPs; ++h) gc.clear_one(h);
        });
    }
    std::thread monitor([&] {
        barrier.arrive_and_wait();
        while (!stop.load(std::memory_order_acquire)) {
            const std::size_t count = gc.unreclaimed_count();
            std::size_t prev = peak.load();
            while (prev < count && !peak.compare_exchange_weak(prev, count)) {
            }
            std::this_thread::yield();
        }
    });
    for (auto& w : workers) w.join();
    stop.store(true, std::memory_order_release);
    monitor.join();
    for (auto& l : links) {
        if (Node* n = l.exchange(nullptr)) gc.retire(n);
    }
    EXPECT_LE(peak.load(), static_cast<std::size_t>(thread_id_watermark()) * (kHPs + 1));
}

INSTANTIATE_TEST_SUITE_P(Threads, PtpBoundProperty, ::testing::Values(1, 2, 4, 8),
                         [](const auto& param_info) { return "t" + std::to_string(param_info.param); });

// -------------------------------------------------- queue transfer sweep

template <typename Queue>
void run_transfer(int pairs, std::uint64_t per_producer) {
    Queue queue;
    std::vector<std::atomic<std::uint8_t>> seen(pairs * per_producer);
    std::atomic<std::uint64_t> consumed{0};
    std::atomic<int> producers_left{pairs};
    SpinBarrier barrier(2 * pairs);
    std::vector<std::thread> threads;
    for (int p = 0; p < pairs; ++p) {
        threads.emplace_back([&, p] {
            barrier.arrive_and_wait();
            for (std::uint64_t i = 0; i < per_producer; ++i) queue.enqueue(p * per_producer + i);
            producers_left.fetch_sub(1);
        });
        threads.emplace_back([&] {
            barrier.arrive_and_wait();
            while (true) {
                auto v = queue.dequeue();
                if (!v.has_value()) {
                    if (producers_left.load() != 0) continue;
                    v = queue.dequeue();
                    if (!v.has_value()) break;
                }
                ASSERT_EQ(seen[*v].fetch_add(1), 0);
                consumed.fetch_add(1);
            }
        });
    }
    for (auto& t : threads) t.join();
    ASSERT_EQ(consumed.load(), pairs * per_producer);
}

class QueueTransferProperty : public ::testing::TestWithParam<int /*producer/consumer pairs*/> {
};

TEST_P(QueueTransferProperty, MSQueueOrc) { run_transfer<MSQueueOrc<Key>>(GetParam(), 4000); }
TEST_P(QueueTransferProperty, LCRQOrcSmallRing) {
    run_transfer<LCRQOrc<Key, 5>>(GetParam(), 4000);  // 32-slot rings: heavy segment churn
}

INSTANTIATE_TEST_SUITE_P(Pairs, QueueTransferProperty, ::testing::Values(1, 2, 4),
                         [](const auto& param_info) { return "p" + std::to_string(param_info.param); });

// ------------------------------------------------------ engine edge cases

struct EngNode : orc_base, TrackedObject {
    orc_atomic<EngNode*> next{nullptr};
};

TEST(OrcEngineEdge, DeepOrcPtrNestingStaysWithinIndexBudget) {
    // kMaxHPs-2 live orc_ptrs on one thread must be fine (1 scratch slot,
    // and each live orc_ptr owns one index).
    orc_ptr<EngNode*> holders[OrcDomain::kMaxHPs - 2];
    for (auto& h : holders) h = make_orc<EngNode>();
    for (auto& h : holders) EXPECT_TRUE(static_cast<bool>(h));
    // Copies share indices, so they are free.
    orc_ptr<EngNode*> copies[OrcDomain::kMaxHPs - 2];
    for (std::size_t i = 0; i < std::size(holders); ++i) copies[i] = holders[i];
    for (std::size_t i = 0; i < std::size(holders); ++i) {
        EXPECT_EQ(copies[i].index(), holders[i].index());
    }
}

TEST(OrcEngineEdge, ObjectParkedAtExitingThreadIsReclaimed) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        orc_atomic<EngNode*> root;
        {
            orc_ptr<EngNode*> node = make_orc<EngNode>();
            root.store(node);
        }
        SpinBarrier holding(2), released(2);
        std::thread holder([&] {
            orc_ptr<EngNode*> mine = root.load();  // protect on the worker
            holding.arrive_and_wait();
            released.arrive_and_wait();  // main retires while we protect
            // mine drops here; then the thread exits and its slots drain
        });
        holding.arrive_and_wait();
        root.store(nullptr);  // retire -> handover parks at the holder
        released.arrive_and_wait();
        holder.join();
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

TEST(OrcEngineEdge, ExceptionSafetyNoLeakOnThrowingUse) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    try {
        orc_ptr<EngNode*> node = make_orc<EngNode>();
        throw std::runtime_error("boom");
    } catch (const std::runtime_error&) {
    }
    EXPECT_EQ(counters.live_count(), live_before);  // RAII released + retired
}

TEST(OrcEngineEdge, SelfReferencingNodeIsNotLeakedWhenBroken) {
    // Cycles must be broken before becoming unreachable (§4 requirement);
    // breaking the self-link makes the node collectable.
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        orc_ptr<EngNode*> node = make_orc<EngNode>();
        node->next.store(node);              // self-cycle: _orc = 1
        EXPECT_EQ(counters.live_count(), live_before + 1);
        node->next.store(nullptr);           // break the cycle
    }
    EXPECT_EQ(counters.live_count(), live_before);
}

TEST(OrcEngineEdge, LongChainTeardownDoesNotOverflowStack) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    constexpr int kChain = 200000;  // would blow the stack if retire recursed
    {
        orc_atomic<EngNode*> root;
        {
            orc_ptr<EngNode*> head = make_orc<EngNode>();
            orc_ptr<EngNode*> cur = head;
            for (int i = 1; i < kChain; ++i) {
                orc_ptr<EngNode*> next = make_orc<EngNode>();
                cur->next.store(next);
                cur = next;
            }
            root.store(head);
        }
    }
    EXPECT_EQ(counters.live_count(), live_before);
}

}  // namespace
}  // namespace orcgc
