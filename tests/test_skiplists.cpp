// Typed tests for the two OrcGC skip lists: the ported Herlihy–Shavit skip
// list and the paper's CRF-skip. Covers set semantics, concurrent
// linearizability witnesses, reclamation soundness, and the CRF-specific
// isolation property (poisoned nodes hold no hard links).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "ds/orc/crf_skiplist_orc.hpp"
#include "ds/orc/hs_skiplist_orc.hpp"
#include "common/workload.hpp"

namespace orcgc {
namespace {

using Key = std::uint64_t;

template <typename SkipListT>
class SkipListTest : public ::testing::Test {};

using SkipListTypes = ::testing::Types<HSSkipListOrc<Key>, CRFSkipListOrc<Key>>;
TYPED_TEST_SUITE(SkipListTest, SkipListTypes);

TYPED_TEST(SkipListTest, EmptyList) {
    TypeParam sl;
    EXPECT_FALSE(sl.contains(0));
    EXPECT_FALSE(sl.contains(123));
    EXPECT_FALSE(sl.remove(123));
}

TYPED_TEST(SkipListTest, InsertContainsRemove) {
    TypeParam sl;
    EXPECT_TRUE(sl.insert(42));
    EXPECT_TRUE(sl.contains(42));
    EXPECT_FALSE(sl.insert(42));
    EXPECT_TRUE(sl.remove(42));
    EXPECT_FALSE(sl.contains(42));
    EXPECT_FALSE(sl.remove(42));
}

TYPED_TEST(SkipListTest, KeyZeroAndLargeKeys) {
    TypeParam sl;
    EXPECT_TRUE(sl.insert(0));
    EXPECT_TRUE(sl.insert(~Key{0}));
    EXPECT_TRUE(sl.contains(0));
    EXPECT_TRUE(sl.contains(~Key{0}));
    EXPECT_TRUE(sl.remove(0));
    EXPECT_FALSE(sl.contains(0));
    EXPECT_TRUE(sl.contains(~Key{0}));
}

TYPED_TEST(SkipListTest, RandomizedAgainstReferenceSet) {
    TypeParam sl;
    std::vector<bool> reference(256, false);
    Xoshiro256 rng(7771);
    for (int i = 0; i < 20000; ++i) {
        const Key k = rng.next_bounded(256);
        switch (rng.next_bounded(3)) {
            case 0:
                EXPECT_EQ(sl.insert(k), !reference[k]) << "key " << k;
                reference[k] = true;
                break;
            case 1:
                EXPECT_EQ(sl.remove(k), reference[k]) << "key " << k;
                reference[k] = false;
                break;
            default:
                EXPECT_EQ(sl.contains(k), static_cast<bool>(reference[k])) << "key " << k;
        }
    }
}

TYPED_TEST(SkipListTest, ManySequentialKeys) {
    TypeParam sl;
    for (Key k = 0; k < 1000; ++k) EXPECT_TRUE(sl.insert(k));
    for (Key k = 0; k < 1000; ++k) EXPECT_TRUE(sl.contains(k));
    for (Key k = 0; k < 1000; k += 2) EXPECT_TRUE(sl.remove(k));
    for (Key k = 0; k < 1000; ++k) EXPECT_EQ(sl.contains(k), k % 2 == 1);
}

TYPED_TEST(SkipListTest, NoLeaksAfterChurnAndDestruction) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        TypeParam sl;
        Xoshiro256 rng(31337);
        for (int i = 0; i < 8000; ++i) {
            const Key k = rng.next_bounded(128);
            if (rng.next_bounded(2) == 0) {
                sl.insert(k);
            } else {
                sl.remove(k);
            }
        }
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

TYPED_TEST(SkipListTest, ConcurrentDisjointKeyRanges) {
    constexpr int kThreads = 4;
    constexpr Key kPerThread = 250;
    TypeParam sl;
    SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            barrier.arrive_and_wait();
            for (Key i = 0; i < kPerThread; ++i) {
                const Key k = i * kThreads + t;
                ASSERT_TRUE(sl.insert(k));
                ASSERT_TRUE(sl.contains(k));
            }
            for (Key i = 0; i < kPerThread; i += 2) {
                ASSERT_TRUE(sl.remove(i * kThreads + t));
            }
        });
    }
    for (auto& th : threads) th.join();
    for (int t = 0; t < kThreads; ++t) {
        for (Key i = 0; i < kPerThread; ++i) {
            EXPECT_EQ(sl.contains(i * kThreads + t), i % 2 == 1);
        }
    }
}

TYPED_TEST(SkipListTest, ConcurrentContestedKeysLinearizable) {
    constexpr int kThreads = 6;
    constexpr Key kKeyRange = 10;
    const int kOpsEach = stress_iters(3000);
    TypeParam sl;
    std::atomic<std::int64_t> ins[kKeyRange] = {};
    std::atomic<std::int64_t> rem[kKeyRange] = {};
    SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Xoshiro256 rng(808 + t);
            barrier.arrive_and_wait();
            for (int i = 0; i < kOpsEach; ++i) {
                const Key k = rng.next_bounded(kKeyRange);
                if (rng.next_bounded(2) == 0) {
                    if (sl.insert(k)) ins[k].fetch_add(1, std::memory_order_relaxed);
                } else {
                    if (sl.remove(k)) rem[k].fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& th : threads) th.join();
    for (Key k = 0; k < kKeyRange; ++k) {
        const auto balance = ins[k].load() - rem[k].load();
        ASSERT_GE(balance, 0) << "key " << k;
        ASSERT_LE(balance, 1) << "key " << k;
        EXPECT_EQ(sl.contains(k), balance == 1) << "key " << k;
    }
}

TYPED_TEST(SkipListTest, ReinsertionChurnSingleKey) {
    // Obstacle 3 stressor: threads insert/remove the same key continuously,
    // exercising the half-inserted-node removal + re-link path.
    constexpr int kThreads = 4;
    const int kOpsEach = stress_iters(5000);
    TypeParam sl;
    SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            barrier.arrive_and_wait();
            for (int i = 0; i < kOpsEach; ++i) {
                if ((i + t) % 2 == 0) {
                    sl.insert(5);
                } else {
                    sl.remove(5);
                }
                sl.contains(5);
            }
        });
    }
    for (auto& th : threads) th.join();
    // The list must still be a coherent set for this key.
    if (sl.contains(5)) {
        EXPECT_TRUE(sl.remove(5));
    }
    EXPECT_FALSE(sl.contains(5));
    EXPECT_TRUE(sl.insert(5));
    EXPECT_TRUE(sl.contains(5));
}

TYPED_TEST(SkipListTest, NoLeaksUnderConcurrentChurn) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        TypeParam sl;
        constexpr int kThreads = 4;
        SpinBarrier barrier(kThreads);
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                Xoshiro256 rng(4242 * (t + 1));
                barrier.arrive_and_wait();
                const int ops_each = stress_iters(2500);
                for (int i = 0; i < ops_each; ++i) {
                    const Key k = rng.next_bounded(40);
                    if (rng.next_bounded(2) == 0) {
                        sl.insert(k);
                    } else {
                        sl.remove(k);
                    }
                }
            });
        }
        for (auto& th : threads) th.join();
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

// ---- CRF-specific: isolation of removed nodes -------------------------

TEST(CRFSkipList, PoisonValueIsInert) {
    using SL = CRFSkipListOrc<Key>;
    EXPECT_TRUE(SL::is_poison(SL::poison()));
    EXPECT_EQ(get_unmarked(SL::poison()), nullptr);  // orc machinery sees null
    EXPECT_FALSE(is_marked(SL::poison()));           // and it is not a delete mark
}

TEST(CRFSkipList, SequentialRemovalReclaimsImmediately) {
    // With CRF, once remove() returns (single-threaded), the victim has been
    // detached and poisoned, so nothing should stay behind: live count after
    // insert+remove of N keys equals the empty-structure baseline.
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        CRFSkipListOrc<Key> sl;
        const auto live_empty = counters.live_count();
        for (Key k = 0; k < 200; ++k) ASSERT_TRUE(sl.insert(k));
        for (Key k = 0; k < 200; ++k) ASSERT_TRUE(sl.remove(k));
        EXPECT_EQ(counters.live_count(), live_empty);  // zero stragglers
    }
    EXPECT_EQ(counters.live_count(), live_before);
}

}  // namespace
}  // namespace orcgc
