// Diagnostics for OrcGC's transient unreclaimed population on an
// oversubscribed machine: under churn, the excess-live population (nodes
// beyond the set's key capacity) must (a) decompose into explainable parts
// (parked handovers, marked-but-not-yet-unlinked nodes, speculative insert
// nodes, in-flight protected nodes) and (b) collapse to zero the moment the
// mutators stop — i.e. it is reclamation *lag*, not a leak or an unbounded
// backlog.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "core/orc_gc.hpp"
#include "ds/orc/michael_list_orc.hpp"

namespace orcgc {
namespace {

using Key = std::uint64_t;

TEST(OrcBacklog, ExcessCollapsesAtQuiescence) {
    auto& counters = AllocCounters::instance();
    constexpr Key kKeys = 128;
    constexpr int kThreads = 4;
    const auto live_before = counters.live_count();
    {
        MichaelListOrc<Key> list;
        Xoshiro256 prefill(1);
        for (Key k = 0; k < kKeys; ++k) {
            if (prefill.next_bounded(2) == 0) list.insert(k);
        }
        std::atomic<bool> stop{false};
        std::atomic<std::int64_t> peak_excess{0};
        SpinBarrier barrier(kThreads + 1);
        std::vector<std::thread> workers;
        for (int t = 0; t < kThreads; ++t) {
            workers.emplace_back([&, t] {
                Xoshiro256 rng(77 + t);
                barrier.arrive_and_wait();
                while (!stop.load(std::memory_order_acquire)) {
                    const Key k = rng.next_bounded(kKeys);
                    if (rng.next_bounded(2) == 0) {
                        list.insert(k);
                    } else {
                        list.remove(k);
                    }
                }
            });
        }
        barrier.arrive_and_wait();
        for (int i = 0; i < 200; ++i) {
            const std::int64_t excess =
                counters.live_count() - live_before - static_cast<std::int64_t>(kKeys);
            std::int64_t prev = peak_excess.load();
            while (prev < excess && !peak_excess.compare_exchange_weak(prev, excess)) {
            }
            std::this_thread::yield();
        }
        stop.store(true, std::memory_order_release);
        for (auto& w : workers) w.join();

        // Quiescent now. Whatever the churn piled up must already be gone,
        // minus objects parked in handover slots (drained lazily); run one
        // sweep of operations to drain any such slots on this thread, then
        // the live population must be exactly the set content.
        std::int64_t in_set = 0;
        for (Key k = 0; k < kKeys; ++k) in_set += list.contains(k) ? 1 : 0;
        const auto live_now = counters.live_count() - live_before;
        const auto parked = static_cast<std::int64_t>(OrcDomain::global().handover_count());
        // live = set content + nodes parked at (now idle) worker slots.
        EXPECT_LE(live_now, in_set + parked + 1)
            << "peak excess during churn was " << peak_excess.load();
        // And the peak itself must be bounded: parked slots are capped by
        // t*maxHPs, everything else is O(t). Allow a generous linear margin.
        EXPECT_LT(peak_excess.load(),
                  static_cast<std::int64_t>(thread_id_watermark()) * OrcDomain::kMaxHPs);
    }
    EXPECT_EQ(counters.live_count(), live_before);  // full drain on destruction
}

TEST(OrcBacklog, HandoverPopulationIsDrainedByOwnerActivity) {
    // A node parked at a busy thread's handover slot must be freed as soon
    // as that thread cycles its orc_ptrs — not wait for thread exit.
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    orc_atomic<MichaelListOrc<Key>::Node*> root;
    {
        orc_ptr<MichaelListOrc<Key>::Node*> node =
            make_orc<MichaelListOrc<Key>::Node>(Key{1});
        root.store(node);
        SpinBarrier ready(2), parked(2), cycled(2);
        std::thread owner([&] {
            orc_ptr<MichaelListOrc<Key>::Node*> mine = root.load();
            ready.arrive_and_wait();
            parked.arrive_and_wait();  // main retires; node parks on us
            mine = nullptr;            // cycling the orc_ptr drains our slot
            cycled.arrive_and_wait();
        });
        ready.arrive_and_wait();
        root.store(nullptr);  // retire; owner protects -> handover parks
        parked.arrive_and_wait();
        cycled.arrive_and_wait();
        owner.join();
    }
    EXPECT_EQ(counters.live_count(), live_before);
}

}  // namespace
}  // namespace orcgc
