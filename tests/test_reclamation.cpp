// White-box tests for the manual reclamation schemes: the protect/retire
// contract (a protected object is never freed; retired objects are
// eventually freed), scheme-specific mechanics (PTP handover, HP scan,
// PTB handoff), and the memory-bound property that is PTP's headline claim
// (Table 1: O(H·t) vs O(H·t²)).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/asym_fence.hpp"
#include "common/barrier.hpp"
#include "common/thread_registry.hpp"
#include "core/orc_gc.hpp"
#include "reclamation/reclamation.hpp"
#include "common/workload.hpp"

namespace orcgc {
namespace {

struct TestNode : ReclaimableBase, TrackedObject {
    std::uint64_t value;
    explicit TestNode(std::uint64_t v = 0) : value(v) {}
};

template <typename ReclaimerT>
class ReclaimerContractTest : public ::testing::Test {};

using Reclaimers =
    ::testing::Types<HazardPointers<TestNode, 4>, PassTheBuck<TestNode, 4>,
                     EpochBasedReclaimer<TestNode, 4>, HazardEras<TestNode, 4>,
                     IntervalBasedReclaimer<TestNode, 4>, PassThePointer<TestNode, 4>,
                     Hyaline<TestNode, 4>, Debra<TestNode, 4>>;
TYPED_TEST_SUITE(ReclaimerContractTest, Reclaimers);

TYPED_TEST(ReclaimerContractTest, RetiredObjectsEventuallyFreed) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        TypeParam gc;
        std::atomic<TestNode*> link{nullptr};
        // Churn enough to trip every scheme's scan threshold repeatedly.
        for (int i = 0; i < 5000; ++i) {
            gc.begin_op();
            TestNode* node = new TestNode(i);
            link.store(node, std::memory_order_seq_cst);
            TestNode* seen = gc.get_protected(link, 0);
            EXPECT_EQ(seen, node);
            EXPECT_TRUE(seen->check_alive());
            link.store(nullptr, std::memory_order_seq_cst);
            gc.end_op();
            gc.retire(node);
        }
        // Everything is quiescent now; whatever is still buffered is freed by
        // the reclaimer's destructor.
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

TYPED_TEST(ReclaimerContractTest, ProtectedObjectSurvivesConcurrentRetire) {
    auto& counters = AllocCounters::instance();
    {
        TypeParam gc;
        const int kRounds = stress_iters(300);
        std::atomic<TestNode*> link{nullptr};
        std::atomic<bool> stop{false};
        SpinBarrier barrier(2);

        std::thread protector([&] {
            barrier.arrive_and_wait();
            while (!stop.load(std::memory_order_acquire)) {
                gc.begin_op();
                TestNode* node = gc.get_protected(link, 0);
                if (node != nullptr) {
                    // The retirer may retire the node at any time; protection
                    // must keep the canary alive through these reads.
                    for (int i = 0; i < 50; ++i) {
                        ASSERT_TRUE(node->check_alive());
                    }
                }
                gc.end_op();
            }
        });
        std::thread retirer([&] {
            barrier.arrive_and_wait();
            for (int i = 0; i < kRounds; ++i) {
                TestNode* node = new TestNode(i);
                link.store(node, std::memory_order_seq_cst);
                std::this_thread::yield();
                TestNode* expected = node;
                if (link.compare_exchange_strong(expected, nullptr)) {
                    gc.begin_op();
                    gc.retire(node);
                    gc.end_op();
                }
            }
            stop.store(true, std::memory_order_release);
        });
        protector.join();
        retirer.join();
    }
    EXPECT_EQ(counters.dead_accesses(), 0);
    EXPECT_EQ(counters.double_destroys(), 0);
}

// The concurrent protect-vs-retire race of ProtectedObjectSurvivesConcurrentRetire,
// run explicitly under each safe fence strategy: the scheme scans' asym::heavy()
// must uphold the no-UAF guarantee whether it is the process-wide barrier or
// the two-sided fallback. (The *_fencemode ctest leg additionally reruns the
// whole suite with ORC_ASYM_FENCE=fence from the environment.)
TYPED_TEST(ReclaimerContractTest, ProtectionHoldsUnderBothFenceModes) {
    auto& counters = AllocCounters::instance();
    for (const asym::Mode mode : {asym::Mode::kMembarrier, asym::Mode::kFence}) {
        asym::testing::ScopedMode scoped(mode);
        {
            TypeParam gc;
            const int kRounds = stress_iters(120);
            std::atomic<TestNode*> link{nullptr};
            std::atomic<bool> stop{false};
            SpinBarrier barrier(2);
            std::thread protector([&] {
                barrier.arrive_and_wait();
                while (!stop.load(std::memory_order_acquire)) {
                    gc.begin_op();
                    TestNode* node = gc.get_protected(link, 0);
                    if (node != nullptr) {
                        for (int i = 0; i < 50; ++i) {
                            ASSERT_TRUE(node->check_alive());
                        }
                    }
                    gc.end_op();
                }
            });
            std::thread retirer([&] {
                barrier.arrive_and_wait();
                for (int i = 0; i < kRounds; ++i) {
                    TestNode* node = new TestNode(i);
                    link.store(node, std::memory_order_seq_cst);
                    std::this_thread::yield();
                    TestNode* expected = node;
                    if (link.compare_exchange_strong(expected, nullptr)) {
                        gc.begin_op();
                        gc.retire(node);
                        gc.end_op();
                    }
                }
                stop.store(true, std::memory_order_release);
            });
            protector.join();
            retirer.join();
        }
        EXPECT_EQ(counters.dead_accesses(), 0) << "UAF under mode " << asym::mode_name(mode);
        EXPECT_EQ(counters.double_destroys(), 0)
            << "double destroy under mode " << asym::mode_name(mode);
    }
}

TYPED_TEST(ReclaimerContractTest, UnreclaimedCountDrainsToZeroAfterQuiescence) {
    TypeParam gc;
    std::atomic<TestNode*> dummy{nullptr};
    for (int i = 0; i < 2000; ++i) {
        gc.begin_op();
        (void)gc.get_protected(dummy, 0);
        gc.end_op();
        gc.retire(new TestNode(i));
    }
    // With no protections held, further retirements must be able to flush the
    // backlog (schemes scan on retire).
    for (int i = 0; i < 2000; ++i) gc.retire(new TestNode(i));
    EXPECT_LT(gc.unreclaimed_count(), 2000u);
}

// ---------------------------------------------------------------- PTP-only

TEST(PassThePointer, RetireOfUnprotectedObjectFreesImmediately) {
    auto& counters = AllocCounters::instance();
    PassThePointer<TestNode, 4> gc;
    const auto live_before = counters.live_count();
    gc.retire(new TestNode(1));
    // No thread protects it: handover_or_delete must delete on the spot.
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(gc.unreclaimed_count(), 0u);
}

TEST(PassThePointer, HandoverParksAtProtectorAndClearFrees) {
    auto& counters = AllocCounters::instance();
    PassThePointer<TestNode, 4> gc;
    std::atomic<TestNode*> link{new TestNode(7)};
    const auto live_before = counters.live_count();

    // This thread protects the node...
    TestNode* node = gc.get_protected(link, 2);
    ASSERT_NE(node, nullptr);
    link.store(nullptr);

    // ...while another thread retires it: the retire must hand the node over
    // to us (parked, not freed).
    std::thread([&] { gc.retire(node); }).join();
    EXPECT_EQ(counters.live_count(), live_before);  // still alive
    EXPECT_TRUE(node->check_alive());
    // unreclaimed_count is retired-minus-freed from the telemetry counters,
    // which the overhead-baseline build compiles out.
    if (telemetry::kTelemetryEnabled) {
        EXPECT_EQ(gc.unreclaimed_count(), 1u);  // parked in our handover slot
    }

    // Clearing the hazard pointer drains the handover and frees it.
    gc.clear_one(2);
    EXPECT_EQ(counters.live_count(), live_before - 1);
    if (telemetry::kTelemetryEnabled) {
        EXPECT_EQ(gc.unreclaimed_count(), 0u);
    }
}

TEST(PassThePointer, LinearMemoryBoundUnderChurn) {
    // The paper's headline property (§3.1): at most t*(H+1) retired but
    // undeleted objects at any time — measured here as the peak of
    // unreclaimed_count() + 1 in-flight object per thread.
    constexpr int kThreads = 6;
    constexpr int kHPs = 3;
    PassThePointer<TestNode, kHPs> gc;
    std::atomic<TestNode*> links[kThreads];
    for (auto& l : links) l.store(new TestNode());
    std::atomic<std::size_t> peak{0};
    std::atomic<bool> stop{false};
    SpinBarrier barrier(kThreads + 1);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            barrier.arrive_and_wait();
            const int ops_each = stress_iters(3000);
            for (int i = 0; i < ops_each; ++i) {
                // Protect a random link, replace the node, retire the old one.
                auto& link = links[(t + i) % kThreads];
                TestNode* old = gc.get_protected(link, i % kHPs);
                TestNode* fresh = new TestNode(i);
                TestNode* expected = old;
                if (old != nullptr && link.compare_exchange_strong(expected, fresh)) {
                    gc.retire(old);
                } else {
                    delete fresh;
                }
                if (i % 64 == 0) {
                    for (int h = 0; h < kHPs; ++h) gc.clear_one(h);
                }
            }
            for (int h = 0; h < kHPs; ++h) gc.clear_one(h);
        });
    }
    std::thread monitor([&] {
        barrier.arrive_and_wait();
        while (!stop.load(std::memory_order_acquire)) {
            const std::size_t count = gc.unreclaimed_count();
            std::size_t prev = peak.load();
            while (prev < count && !peak.compare_exchange_weak(prev, count)) {
            }
            std::this_thread::yield();
        }
    });
    for (auto& t : threads) t.join();
    stop.store(true, std::memory_order_release);
    monitor.join();
    for (auto& l : links) {
        if (TestNode* n = l.exchange(nullptr)) gc.retire(n);
    }
    // Linear bound with the paper's constant: t*(H+1), measured against every
    // registered thread slot to be conservative.
    const std::size_t bound =
        static_cast<std::size_t>(thread_id_watermark()) * (kHPs + 1);
    EXPECT_LE(peak.load(), bound);
}

// -------------------------------------------------------------- EBR-only

TEST(EpochBased, StalledReaderBlocksReclamation) {
    // The ∞-bound of Table 1: a reader parked inside a critical section pins
    // every epoch, so nothing retired after its epoch can be freed.
    EpochBasedReclaimer<TestNode, 4> gc;
    auto& counters = AllocCounters::instance();
    SpinBarrier entered(2), release(2);
    std::thread reader([&] {
        gc.begin_op();
        entered.arrive_and_wait();
        release.arrive_and_wait();  // stall inside the critical section
        gc.end_op();
    });
    entered.arrive_and_wait();
    const auto live_before = counters.live_count();
    for (int i = 0; i < 500; ++i) gc.retire(new TestNode(i));
    // The stalled reader prevents the epoch from advancing twice: nothing of
    // consequence can have been freed.
    EXPECT_GE(counters.live_count(), live_before + 400);
    release.arrive_and_wait();
    reader.join();
    // After the reader leaves, continued retiring drains the backlog.
    for (int i = 0; i < 200; ++i) gc.retire(new TestNode(i));
    EXPECT_LT(gc.unreclaimed_count(), 700u);
}

// ---------------------------------------------------------- OrcGC engine

TEST(OrcEngineIntrospection, HandoverCountIsBounded) {
    auto& engine = OrcDomain::global();
    // No structure in flight on this thread: nothing parked, scratch free.
    EXPECT_LE(engine.handover_count(),
              static_cast<std::size_t>(thread_id_watermark()) * OrcDomain::kMaxHPs);
    EXPECT_GE(engine.hp_watermark(), 1);
}

}  // namespace
}  // namespace orcgc
