// Tests for the always-on telemetry layer (common/telemetry.hpp,
// core/orc_metrics.hpp) and its process registry/exporters.
//
// Covered contracts:
//   * PerThreadCounters: exact aggregation under concurrent owner-thread
//     increments; drain() is lossless against racing add().
//   * LogHistogram: bucket boundaries are exact powers of two; merge adds
//     bucket-wise; concurrent record() loses nothing.
//   * TraceRing: keeps the last `capacity` records across wraps with fields
//     intact; unreserved rings ignore record().
//   * OrcMetrics: at quiescence every retire token is accounted for
//     (freed + resurrected), reset() zeroes, snapshot/reset race safely with
//     live churn, and tracing is off by default but togglable per domain.
//   * Registry/exporters: live and destroyed providers both appear (folded
//     by name), the manual schemes report the shared counter subset, and the
//     Prometheus rendering sanitizes names.
//   * The load/protect fast path (get_protected / protect_ptr /
//     scratch_protect) carries zero instrumentation — enforced by reading
//     the engine source, so a regression fails this suite, not a bench gate.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/bench_harness.hpp"
#include "common/telemetry.hpp"
#include "core/orc.hpp"
#include "reclamation/hazard_pointers.hpp"

namespace orcgc {
namespace {

// Static-teardown ordering regression probe (runs at process scope, not as a
// TEST): constructed during static initialization of this TU, BEFORE any
// telemetry provider registers (domains and schemes are all lazy), exactly
// the order bench binaries create with `--json`. The recorder's destructor
// exports the registry at exit; without telemetry::touch() in its
// constructor, the registry — constructed later, on the first registration a
// test below triggers — is destroyed first, and the exit flush walks a
// destroyed std::map (the bench_publish_ablation teardown use-after-free).
// A regression crashes this binary at exit under the ASan ctest leg.
[[maybe_unused]] const bool g_flush_ordering_probe = [] {
    BenchJsonRecorder::instance().enable("orcgc_test_flush_ordering.json");
    return true;
}();

using telemetry::HistogramSnapshot;
using telemetry::LogHistogram;
using telemetry::PerThreadCounters;
using telemetry::SchemeMetrics;
using telemetry::TraceRecord;
using telemetry::TraceRing;
using telemetry::TraceType;

static_assert(telemetry::kTelemetryEnabled,
              "the test suite does not support -DORCGC_TELEMETRY=OFF builds");

struct Node : orc_base {
    std::uint64_t value = 0;
    orc_atomic<Node*> next{nullptr};
    Node() = default;
    explicit Node(std::uint64_t v) : value(v) {}
};

// ---- PerThreadCounters -----------------------------------------------------

TEST(PerThreadCountersTest, ConcurrentAddsAggregateExactly) {
    constexpr int kThreads = 8;
    constexpr int kIters = 20000;
    PerThreadCounters<2> counters;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) {
                counters.add(0);
                counters.add(1, 3);
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(counters.sum(0), std::uint64_t{kThreads} * kIters);
    EXPECT_EQ(counters.sum(1), std::uint64_t{kThreads} * kIters * 3);
}

TEST(PerThreadCountersTest, AddReturnsRunningPerThreadValue) {
    PerThreadCounters<1> counters;
    EXPECT_EQ(counters.add(0), 1u);
    EXPECT_EQ(counters.add(0, 5), 6u);
    EXPECT_EQ(counters.add(0), 7u);
}

TEST(PerThreadCountersTest, DrainIsLosslessAgainstConcurrentAdds) {
    constexpr int kThreads = 4;
    constexpr int kIters = 50000;
    PerThreadCounters<1> counters;
    std::atomic<bool> stop{false};
    std::uint64_t drained = 0;
    std::thread drainer([&] {
        while (!stop.load(std::memory_order_acquire)) {
            drained += counters.drain(0);
        }
    });
    std::vector<std::thread> adders;
    for (int t = 0; t < kThreads; ++t) {
        adders.emplace_back([&] {
            for (int i = 0; i < kIters; ++i) counters.add(0);
        });
    }
    for (auto& t : adders) t.join();
    stop.store(true, std::memory_order_release);
    drainer.join();
    // Every increment landed either in some drain() or is still in place.
    EXPECT_EQ(drained + counters.sum(0), std::uint64_t{kThreads} * kIters);
}

// ---- LogHistogram ----------------------------------------------------------

TEST(LogHistogramTest, BucketBoundariesAreExactPowersOfTwo) {
    // bucket_of(v) == bit_width(v): 0 -> 0, [2^(b-1), 2^b - 1] -> b.
    EXPECT_EQ(LogHistogram::bucket_of(0), 0);
    EXPECT_EQ(LogHistogram::bucket_of(1), 1);
    EXPECT_EQ(LogHistogram::bucket_of(2), 2);
    EXPECT_EQ(LogHistogram::bucket_of(3), 2);
    EXPECT_EQ(LogHistogram::bucket_of(4), 3);
    EXPECT_EQ(LogHistogram::bucket_of(~std::uint64_t{0}), 64);
    for (int b = 1; b < LogHistogram::kBuckets; ++b) {
        // Both edges of every bucket map back into it, and the value one
        // below the lower edge does not.
        EXPECT_EQ(LogHistogram::bucket_of(LogHistogram::bucket_lower(b)), b);
        EXPECT_EQ(LogHistogram::bucket_of(LogHistogram::bucket_upper(b)), b);
        EXPECT_EQ(LogHistogram::bucket_of(LogHistogram::bucket_lower(b) - 1), b - 1);
    }
}

TEST(LogHistogramTest, RecordLandsInTheRightBucket) {
    LogHistogram hist;
    hist.record(0);
    hist.record(1);
    hist.record(2);
    hist.record(3);
    hist.record(1023);
    hist.record(1024);
    HistogramSnapshot snap;
    hist.read_into(snap);
    EXPECT_EQ(snap.buckets[0], 1u);   // {0}
    EXPECT_EQ(snap.buckets[1], 1u);   // {1}
    EXPECT_EQ(snap.buckets[2], 2u);   // {2, 3}
    EXPECT_EQ(snap.buckets[10], 1u);  // [512, 1023]
    EXPECT_EQ(snap.buckets[11], 1u);  // [1024, 2047]
    EXPECT_EQ(snap.count(), 6u);
}

TEST(LogHistogramTest, MergeAddsBucketwise) {
    LogHistogram a;
    LogHistogram b;
    a.record(5);
    a.record(5);
    b.record(5);
    b.record(100);
    HistogramSnapshot snap;
    a.read_into(snap);
    b.read_into(snap);  // read_into accumulates == merge
    EXPECT_EQ(snap.buckets[3], 3u);  // 5 -> bucket 3, from both sides
    EXPECT_EQ(snap.buckets[7], 1u);  // 100 -> [64, 127]
    EXPECT_EQ(snap.count(), 4u);
    HistogramSnapshot other;
    b.drain_into(other);
    HistogramSnapshot folded;
    folded.merge(snap);
    folded.merge(other);
    EXPECT_EQ(folded.count(), snap.count() + other.count());
    // Drain left b empty.
    HistogramSnapshot empty;
    b.read_into(empty);
    EXPECT_EQ(empty.count(), 0u);
}

TEST(HistogramPercentileTest, EmptyHistogramReadsZero) {
    HistogramSnapshot snap;
    EXPECT_EQ(snap.percentile(0.0), 0.0);
    EXPECT_EQ(snap.percentile(0.5), 0.0);
    EXPECT_EQ(snap.percentile(1.0), 0.0);
}

TEST(HistogramPercentileTest, InterpolatesInsideTheBucket) {
    // 4 counts in bucket 3 = [4, 7]: ranks spread uniformly over the bucket.
    HistogramSnapshot snap;
    snap.buckets[3] = 4;
    EXPECT_DOUBLE_EQ(snap.percentile(0.0), 4.0);   // lower edge
    EXPECT_DOUBLE_EQ(snap.percentile(0.5), 5.5);   // rank 2 of 4: 4 + 0.5*3
    EXPECT_DOUBLE_EQ(snap.percentile(1.0), 7.0);   // upper edge
    EXPECT_DOUBLE_EQ(snap.percentile(0.25), 4.75);  // rank 1 of 4
}

TEST(HistogramPercentileTest, WalksCumulativeRanksAcrossBuckets) {
    // 1 count at value 1 (bucket 1, a point bucket) and 1 in [8, 15].
    HistogramSnapshot snap;
    snap.buckets[1] = 1;
    snap.buckets[4] = 1;
    EXPECT_DOUBLE_EQ(snap.percentile(0.5), 1.0);    // rank 1 exhausts bucket 1
    EXPECT_DOUBLE_EQ(snap.percentile(0.75), 11.5);  // half into [8, 15]
    EXPECT_DOUBLE_EQ(snap.percentile(1.0), 15.0);
    // Tail quantiles of a skewed fill: 99 low values, 1 high outlier.
    HistogramSnapshot skew;
    skew.buckets[0] = 99;
    skew.buckets[10] = 1;  // [512, 1023]
    EXPECT_DOUBLE_EQ(skew.percentile(0.5), 0.0);
    EXPECT_GE(skew.percentile(0.999), 512.0);  // the outlier dominates p999
    // Out-of-range quantiles clamp instead of walking off the array.
    EXPECT_DOUBLE_EQ(skew.percentile(-1.0), skew.percentile(0.0));
    EXPECT_DOUBLE_EQ(skew.percentile(2.0), skew.percentile(1.0));
}

TEST(HistogramPercentileTest, SubtractClampsBucketwise) {
    HistogramSnapshot after;
    after.buckets[2] = 5;
    HistogramSnapshot before;
    before.buckets[2] = 3;
    before.buckets[5] = 10;  // e.g. a racing reset between the two reads
    after.subtract(before);
    EXPECT_EQ(after.buckets[2], 2u);
    EXPECT_EQ(after.buckets[5], 0u) << "negative deltas must clamp, not wrap";
    EXPECT_EQ(after.count(), 2u);
}

TEST(LogHistogramTest, ConcurrentRecordsLoseNothing) {
    constexpr int kThreads = 8;
    constexpr int kIters = 20000;
    LogHistogram hist;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (int i = 0; i < kIters; ++i) {
                hist.record(static_cast<std::uint64_t>(t * kIters + i));
            }
        });
    }
    for (auto& t : threads) t.join();
    HistogramSnapshot snap;
    hist.read_into(snap);
    EXPECT_EQ(snap.count(), std::uint64_t{kThreads} * kIters);
}

// ---- TraceRing -------------------------------------------------------------

TEST(TraceRingTest, WrapKeepsTheLastCapacityRecordsIntact) {
    constexpr std::size_t kCap = 16;
    constexpr std::uint64_t kTotal = 40;
    TraceRing ring;
    ring.reserve(kCap);
    for (std::uint64_t i = 0; i < kTotal; ++i) {
        ring.record(TraceType::kRetire, reinterpret_cast<const void*>(i), i * 2);
    }
    EXPECT_EQ(ring.written(), kTotal);
    const std::vector<TraceRecord> records = ring.snapshot();
    ASSERT_EQ(records.size(), kCap);
    for (std::size_t i = 0; i < records.size(); ++i) {
        const std::uint64_t expect = kTotal - kCap + i;  // oldest-first
        EXPECT_EQ(records[i].obj, expect);
        EXPECT_EQ(records[i].arg, expect * 2) << "fields from different records paired";
        EXPECT_EQ(records[i].type, TraceType::kRetire);
        if (i > 0) {
            // Single-writer ring: timestamps are monotone within a thread.
            EXPECT_GE(records[i].tsc, records[i - 1].tsc);
        }
    }
}

TEST(TraceRingTest, UnreservedRingIgnoresRecords) {
    TraceRing ring;
    EXPECT_FALSE(ring.reserved());
    ring.record(TraceType::kFree, nullptr, 0);
    EXPECT_EQ(ring.written(), 0u);
    EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRingTest, ReserveIsIdempotent) {
    TraceRing ring;
    ring.reserve(8);
    ring.record(TraceType::kRetire, nullptr, 1);
    ring.reserve(1024);  // must not discard the existing buffer
    EXPECT_EQ(ring.written(), 1u);
    ASSERT_EQ(ring.snapshot().size(), 1u);
    EXPECT_EQ(ring.snapshot()[0].arg, 1u);
}

// ---- TraceSpan -------------------------------------------------------------

TEST(TraceSpanTest, NullRingIsANoOp) {
    telemetry::TraceSpan span(nullptr, telemetry::SpanKind::kBgCycle);
    span.note_items(42);  // must not crash or record anywhere
}

TEST(TraceSpanTest, PairsCarryKindAndItemsAcrossRingWrap) {
    // An odd capacity against 2-record pairs forces the wrap to cut a pair
    // in half: the snapshot must start with exactly one orphan kSpanEnd
    // (its begin evicted), then strictly alternating begin/end pairs whose
    // kind and items payload survive intact.
    constexpr std::size_t kCap = 7;
    constexpr std::uint64_t kSpans = 20;
    TraceRing ring;
    ring.reserve(kCap);
    for (std::uint64_t i = 0; i < kSpans; ++i) {
        telemetry::TraceSpan span(&ring, telemetry::SpanKind::kStealChunk);
        span.note_items(i);
    }
    const std::vector<TraceRecord> records = ring.snapshot();
    ASSERT_EQ(records.size(), kCap);
    // 40 records into a 7-slot ring: oldest surviving record is #33, an end.
    EXPECT_EQ(records[0].type, TraceType::kSpanEnd);
    int open = 0;
    for (std::size_t i = 0; i < records.size(); ++i) {
        const TraceRecord& r = records[i];
        EXPECT_EQ(r.arg,
                  static_cast<std::uint64_t>(telemetry::SpanKind::kStealChunk));
        if (r.type == TraceType::kSpanBegin) {
            EXPECT_EQ(open, 0) << "begin while a span is open";
            ++open;
        } else {
            ASSERT_EQ(r.type, TraceType::kSpanEnd);
            EXPECT_TRUE(open == 1 || i == 0) << "orphan end past the wrap point";
            open = 0;
            // End records carry the items payload; record #33 closed span 16.
            EXPECT_EQ(r.obj, (33 + i) / 2u);
        }
    }
    EXPECT_EQ(open, 0) << "the newest span's end record must be present";
}

TEST(TraceSpanTest, SpanKindNamesMatchTheExporterContract) {
    // tools/orc_trace.py hard-codes this mapping (SPAN_KINDS); renaming a
    // kind here without updating the exporter breaks the Chrome traces.
    using telemetry::SpanKind;
    using telemetry::span_kind_name;
    EXPECT_STREQ(span_kind_name(SpanKind::kScanGeneration), "scan_generation");
    EXPECT_STREQ(span_kind_name(SpanKind::kStealChunk), "steal_chunk");
    EXPECT_STREQ(span_kind_name(SpanKind::kHandoverDrain), "handover_drain");
    EXPECT_STREQ(span_kind_name(SpanKind::kBgCycle), "bg_cycle");
    EXPECT_STREQ(span_kind_name(SpanKind::kHeavyFence), "heavy_fence");
}

// ---- OrcMetrics end-to-end -------------------------------------------------

TEST(OrcMetricsTest, EveryRetireTokenIsAccountedForAtQuiescence) {
    auto domain = std::make_unique<OrcDomain>();
    for (int i = 0; i < 1000; ++i) {
        orc_ptr<Node*> p = make_orc_in<Node>(*domain, i);
    }
    const OrcMetrics::Snapshot s = domain->metrics().snapshot();
    EXPECT_GT(s.retired, 0u);
    // Conservation: every token ends as a batch free, a slow free, or a
    // resurrection — nothing is outstanding once the churn stops.
    EXPECT_EQ(s.retired, s.freed_batch + s.freed_slow + s.resurrected);
    EXPECT_EQ(s.unreclaimed, 0u);
    EXPECT_GT(s.cascades, 0u);
    EXPECT_GT(s.scans + s.snapshots, 0u);
    // The peak sampler must have caught at least one in-flight object.
    EXPECT_GE(s.peak_unreclaimed, 1u);
    // The latency histogram records one entry per free.
    EXPECT_EQ(s.retire_latency_gens.count(), s.freed_batch + s.freed_slow);
}

TEST(OrcMetricsTest, RetireFreeAgeSamplesFreesAndExportsPercentiles) {
    auto domain = std::make_unique<OrcDomain>();
    for (int i = 0; i < 1000; ++i) {
        orc_ptr<Node*> p = make_orc_in<Node>(*domain, i);
    }
    const OrcMetrics::Snapshot s = domain->metrics().snapshot();
    // Ages are 1-in-64 sampled (telemetry::kAgeSampleMask): 1000 same-thread
    // retires must stamp floor-or-ceil of 1000/64 of them — the thread's
    // sample phase at entry is arbitrary (earlier tests also retire), so
    // only the rate is exact, not the offset. Every stamped object frees
    // inside the loop, so the histogram count IS the stamp count.
    const std::uint64_t period = telemetry::kAgeSampleMask + 1;
    EXPECT_GE(s.retire_free_age.count(), 1000 / period);
    EXPECT_LE(s.retire_free_age.count(), 1000 / period + 1);
    EXPECT_LT(s.retire_free_age.count(), s.freed_batch + s.freed_slow);
    // p50 <= p99 <= p999 by construction; all finite and within the tick
    // domain (immediate scope-exit frees land in the low buckets).
    const double p50 = s.retire_free_age.percentile(0.5);
    const double p99 = s.retire_free_age.percentile(0.99);
    const double p999 = s.retire_free_age.percentile(0.999);
    EXPECT_LE(p50, p99);
    EXPECT_LE(p99, p999);
    // The JSON export carries the percentile keys inside the histogram
    // object (what orc_top's latency panel and the bench artifacts read).
    const std::string json = telemetry::export_json();
    const std::size_t at = json.find("\"retire_free_age\"");
    ASSERT_NE(at, std::string::npos);
    const std::size_t scope_end = json.find("]", at);  // buckets array close
    const std::string scope = json.substr(at, scope_end - at);
    EXPECT_NE(scope.find("\"p50\":"), std::string::npos) << scope;
    EXPECT_NE(scope.find("\"p99\":"), std::string::npos) << scope;
    EXPECT_NE(scope.find("\"p999\":"), std::string::npos) << scope;
}

TEST(OrcMetricsTest, ResetZeroesEverything) {
    auto domain = std::make_unique<OrcDomain>();
    for (int i = 0; i < 200; ++i) {
        orc_ptr<Node*> p = make_orc_in<Node>(*domain, i);
    }
    ASSERT_GT(domain->metrics().snapshot().retired, 0u);
    domain->metrics().reset();
    const OrcMetrics::Snapshot s = domain->metrics().snapshot();
    EXPECT_EQ(s.retired, 0u);
    EXPECT_EQ(s.freed_batch + s.freed_slow, 0u);
    EXPECT_EQ(s.scans, 0u);
    EXPECT_EQ(s.snapshots, 0u);
    EXPECT_EQ(s.cascades, 0u);
    EXPECT_EQ(s.peak_unreclaimed, 0u);
    EXPECT_EQ(s.retire_latency_gens.count(), 0u);
}

TEST(OrcMetricsTest, SnapshotAndResetRaceSafelyWithLiveChurn) {
    auto domain = std::make_unique<OrcDomain>();
    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    for (int t = 0; t < 4; ++t) {
        workers.emplace_back([&] {
            for (int i = 0; i < 3000; ++i) {
                orc_ptr<Node*> p = make_orc_in<Node>(*domain, i);
            }
        });
    }
    // Reader hammers snapshot/reset against the live hooks. reset() is
    // documented exact-only-at-quiescence: a drain racing a live hook can
    // split a retire from its later free across the reset boundary, so no
    // tight transient inequality between the two holds mid-race. What must
    // hold is that no field is ever torn or runaway — every value stays
    // within the total churn this test can generate. (TSan covers the
    // data-race side; exact conservation is asserted at join points in
    // EveryRetireTokenIsAccountedForAtQuiescence and below.)
    std::thread reader([&] {
        constexpr std::uint64_t kSane = 1u << 20;  // far above 4x3000 creates
        while (!stop.load(std::memory_order_acquire)) {
            const OrcMetrics::Snapshot s = domain->metrics().snapshot();
            EXPECT_LT(s.retired, kSane) << "torn or runaway retired counter";
            EXPECT_LT(s.freed_batch + s.freed_slow, kSane)
                << "torn or runaway free counters";
            EXPECT_LT(s.resurrected, kSane) << "torn or runaway resurrected counter";
            domain->metrics().reset();
        }
    });
    for (auto& t : workers) t.join();
    stop.store(true, std::memory_order_release);
    reader.join();
    domain->metrics().reset();
    EXPECT_EQ(domain->metrics().snapshot().retired, 0u);
}

TEST(OrcMetricsTest, TracingIsOffByDefaultAndTogglable) {
    if (std::getenv("ORC_TRACE") != nullptr) {
        GTEST_SKIP() << "ORC_TRACE is set; default-off cannot be observed";
    }
    auto domain = std::make_unique<OrcDomain>();
    EXPECT_FALSE(domain->metrics().tracing());
    for (int i = 0; i < 64; ++i) {
        orc_ptr<Node*> p = make_orc_in<Node>(*domain, i);
    }
    EXPECT_TRUE(domain->metrics().trace_records().empty())
        << "tracing off must record nothing";

    domain->set_tracing(true);
    for (int i = 0; i < 64; ++i) {
        orc_ptr<Node*> p = make_orc_in<Node>(*domain, i);
    }
    const std::vector<TraceRecord> records = domain->metrics().trace_records();
    ASSERT_FALSE(records.empty());
    bool saw_retire = false;
    bool saw_free = false;
    for (const TraceRecord& r : records) {
        saw_retire |= r.type == TraceType::kRetire;
        saw_free |= r.type == TraceType::kFree;
    }
    EXPECT_TRUE(saw_retire);
    EXPECT_TRUE(saw_free);

    domain->set_tracing(false);
    const std::size_t before = domain->metrics().trace_records().size();
    for (int i = 0; i < 64; ++i) {
        orc_ptr<Node*> p = make_orc_in<Node>(*domain, i);
    }
    EXPECT_EQ(domain->metrics().trace_records().size(), before)
        << "disabling must stop recording but keep what was captured";
}

// ---- registry and exporters ------------------------------------------------

/// Extracts `"key": <u64>` scoped to the source object named `source` in an
/// orcgc-telemetry-v1 JSON export. Returns 0 when absent.
std::uint64_t json_u64(const std::string& json, const std::string& source,
                       const std::string& key) {
    const std::string name_tag = "\"name\": \"" + source + "\"";
    const std::size_t at = json.find(name_tag);
    if (at == std::string::npos) return 0;
    const std::size_t end = json.find("\"name\": \"", at + name_tag.size());
    const std::string scope = json.substr(at, end == std::string::npos ? end : end - at);
    const std::string key_tag = "\"" + key + "\": ";
    const std::size_t kat = scope.find(key_tag);
    if (kat == std::string::npos) return 0;
    return std::strtoull(scope.c_str() + kat + key_tag.size(), nullptr, 10);
}

TEST(TelemetryRegistryTest, LiveProvidersAppearInTheJsonExport) {
    SchemeMetrics metrics("test/live");
    metrics.note_retired(10);
    metrics.note_freed(4);
    metrics.note_scan();
    EXPECT_EQ(metrics.unreclaimed(), 6u);
    const std::string json = telemetry::export_json();
    EXPECT_NE(json.find("\"schema\": \"orcgc-telemetry-v1\""), std::string::npos);
    EXPECT_EQ(json_u64(json, "test/live", "retired"), 10u);
    EXPECT_EQ(json_u64(json, "test/live", "freed"), 4u);
    EXPECT_EQ(json_u64(json, "test/live", "scans"), 1u);
    EXPECT_EQ(json_u64(json, "test/live", "unreclaimed"), 6u);  // gauge
    EXPECT_GE(json_u64(json, "test/live", "peak_unreclaimed"), 6u);
}

TEST(TelemetryRegistryTest, DeadProvidersFoldIntoAccumulatedTotalsByName) {
    {
        SchemeMetrics metrics("test/fold");
        metrics.note_retired(7);
        metrics.note_freed(7);
    }
    EXPECT_EQ(json_u64(telemetry::export_json(), "test/fold", "retired"), 7u);
    {
        // A second incarnation under the same name adds to the fold — the
        // exit dump covers every instance that ever lived.
        SchemeMetrics metrics("test/fold");
        metrics.note_retired(3);
        metrics.note_freed(3);
    }
    const std::string json = telemetry::export_json();
    EXPECT_EQ(json_u64(json, "test/fold", "retired"), 10u);
    EXPECT_EQ(json_u64(json, "test/fold", "freed"), 10u);
}

TEST(TelemetryRegistryTest, ManualSchemeReportsTheSharedCounterSubset) {
    struct Obj {
        int payload = 0;
    };
    const std::string before = telemetry::export_json();
    const std::uint64_t retired_before = json_u64(before, "HP", "retired");
    {
        HazardPointers<Obj, 2> hp;
        for (int i = 0; i < 100; ++i) hp.retire(new Obj);
        EXPECT_LE(hp.unreclaimed_count(), 100u);
    }
    // Instance destroyed: its totals folded under the scheme name.
    const std::string json = telemetry::export_json();
    EXPECT_EQ(json_u64(json, "HP", "retired"), retired_before + 100);
    EXPECT_EQ(json_u64(json, "HP", "freed"),
              json_u64(json, "HP", "retired"));  // dtor frees the backlog
}

TEST(TelemetryRegistryTest, PrometheusExportSanitizesAndTypesMetrics) {
    SchemeMetrics metrics("test/prom metrics");
    metrics.note_retired(2);
    const std::string prom = telemetry::export_prometheus();
    EXPECT_NE(prom.find("# TYPE orcgc_retired_total counter"), std::string::npos);
    // '/' and ' ' are not legal label characters: both become '_'.
    EXPECT_NE(prom.find("orcgc_retired_total{source=\"test_prom_metrics\"} 2"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE orcgc_peak_unreclaimed gauge"), std::string::npos);
}

TEST(TelemetryCommonCountersTest, MergeAddsCountersAndMaxesPeaks) {
    telemetry::CommonCounters a;
    a.retired = 10;
    a.freed = 8;
    a.peak_unreclaimed = 5;
    a.scans = 2;
    telemetry::CommonCounters b;
    b.retired = 1;
    b.freed = 1;
    b.peak_unreclaimed = 3;
    b.scans = 1;
    a.merge(b);
    EXPECT_EQ(a.retired, 11u);
    EXPECT_EQ(a.freed, 9u);
    EXPECT_EQ(a.scans, 3u);
    EXPECT_EQ(a.peak_unreclaimed, 5u);  // max, not sum
}

// ---- fast-path purity ------------------------------------------------------

/// Returns the body (signature line through matching close brace) of the
/// member function whose declaration contains `marker`.
std::string function_body(const std::string& source, const std::string& marker) {
    const std::size_t at = source.find(marker);
    if (at == std::string::npos) return {};
    const std::size_t open = source.find('{', at);
    if (open == std::string::npos) return {};
    int depth = 0;
    for (std::size_t i = open; i < source.size(); ++i) {
        if (source[i] == '{') ++depth;
        if (source[i] == '}' && --depth == 0) return source.substr(at, i - at + 1);
    }
    return {};
}

TEST(FastPathPurityTest, LoadAndProtectPathsCarryNoInstrumentation) {
    // Acceptance gate from the telemetry design: the always-on layer adds
    // ZERO atomics to the read-side fast path. Grep the engine source so any
    // future hook added there fails a unit test instead of a bench gate.
    std::ifstream in(ORCGC_DOMAIN_HEADER);
    ASSERT_TRUE(in.good()) << "cannot read " << ORCGC_DOMAIN_HEADER;
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string source = buf.str();
    for (const char* marker :
         {"T get_protected(", "void protect_ptr(", "void scratch_protect("}) {
        const std::string body = function_body(source, marker);
        ASSERT_FALSE(body.empty()) << marker << " not found in orc_domain.hpp";
        EXPECT_EQ(body.find("metrics_"), std::string::npos)
            << marker << " must not touch the metrics provider";
        EXPECT_EQ(body.find("trace"), std::string::npos)
            << marker << " must not trace";
        EXPECT_EQ(body.find("telemetry::"), std::string::npos)
            << marker << " must not reach into the telemetry layer";
        // The stalled-reader watchdog infers publish-path progress from the
        // published-value fingerprint precisely so these paths never tick
        // the heartbeat (see watchdog_sample).
        EXPECT_EQ(body.find("beat_tick"), std::string::npos)
            << marker << " must not carry the watchdog heartbeat";
    }
}

}  // namespace
}  // namespace orcgc
