// Unit tests for the asymmetric-fence facility (src/common/asym_fence.hpp):
// the mode resolver's precedence (CMake default < env override, with TSan
// and no-membarrier degradation), heavy-fence accounting — the count must
// scale with scans, never with protected loads — and in-process mode-parity
// churn through the OrcGC engine under both safe fence strategies. The ctest
// side adds *_fencemode reruns of the reclamation/retire-path suites with
// ORC_ASYM_FENCE=fence (tests/CMakeLists.txt).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/asym_fence.hpp"
#include "common/rng.hpp"
#include "common/tsan_annotations.hpp"
#include "common/workload.hpp"
#include "core/orc.hpp"
#include "reclamation/hazard_pointers.hpp"

namespace orcgc {
namespace {

using asym::Mode;
using asym::testing::resolve;
using asym::testing::ScopedMode;

// ------------------------------------------------------------ the resolver

TEST(AsymFenceResolver, CompiledDefaultWinsWithoutEnv) {
    EXPECT_EQ(resolve(nullptr, Mode::kMembarrier, false, true), Mode::kMembarrier);
    EXPECT_EQ(resolve(nullptr, Mode::kFence, false, true), Mode::kFence);
    EXPECT_EQ(resolve(nullptr, Mode::kOff, false, true), Mode::kOff);
}

TEST(AsymFenceResolver, EnvOverridesCompiledDefault) {
    EXPECT_EQ(resolve("fence", Mode::kMembarrier, false, true), Mode::kFence);
    EXPECT_EQ(resolve("membarrier", Mode::kFence, false, true), Mode::kMembarrier);
    EXPECT_EQ(resolve("off", Mode::kMembarrier, false, true), Mode::kOff);
    EXPECT_EQ(resolve("seqcst", Mode::kMembarrier, false, true), Mode::kSeqCst);
}

TEST(AsymFenceResolver, InvalidEnvIsIgnored) {
    EXPECT_EQ(resolve("", Mode::kMembarrier, false, true), Mode::kMembarrier);
    EXPECT_EQ(resolve("definitely-not-a-mode", Mode::kFence, false, true), Mode::kFence);
    EXPECT_EQ(resolve("MEMBARRIER", Mode::kFence, false, true), Mode::kFence);  // case-sensitive
}

TEST(AsymFenceResolver, TsanDegradesMembarrierToFence) {
    // The kernel barrier is invisible to the race detector, so TSan builds
    // must run two-sided — whether the asymmetric mode came from the build
    // default or from the env.
    EXPECT_EQ(resolve(nullptr, Mode::kMembarrier, true, true), Mode::kFence);
    EXPECT_EQ(resolve("membarrier", Mode::kFence, true, true), Mode::kFence);
    // The other modes are TSan-clean and stay as requested.
    EXPECT_EQ(resolve(nullptr, Mode::kFence, true, true), Mode::kFence);
    EXPECT_EQ(resolve("seqcst", Mode::kMembarrier, true, true), Mode::kSeqCst);
    EXPECT_EQ(resolve("off", Mode::kMembarrier, true, true), Mode::kOff);
}

TEST(AsymFenceResolver, MissingSyscallFallsBackToFence) {
    EXPECT_EQ(resolve(nullptr, Mode::kMembarrier, false, false), Mode::kFence);
    EXPECT_EQ(resolve("membarrier", Mode::kFence, false, false), Mode::kFence);
    // Degradation only applies to the mode that needs the syscall.
    EXPECT_EQ(resolve("seqcst", Mode::kMembarrier, false, false), Mode::kSeqCst);
    EXPECT_EQ(resolve(nullptr, Mode::kOff, false, false), Mode::kOff);
}

TEST(AsymFenceResolver, ProcessModeMatchesResolverDecision) {
    // Whatever this process resolved at first use must be exactly what the
    // pure resolver says for this build + environment (ties the cached path
    // to the tested decision function).
    const Mode expected = resolve(std::getenv("ORC_ASYM_FENCE"), asym::compiled_default(),
                                  ORCGC_TSAN_ACTIVE != 0, asym::membarrier_supported());
    EXPECT_EQ(asym::mode(), expected) << "resolved mode " << asym::mode_name(asym::mode())
                                      << " != expected " << asym::mode_name(expected);
}

TEST(AsymFenceResolver, ModeNamesRoundTrip) {
    EXPECT_STREQ(asym::mode_name(Mode::kOff), "off");
    EXPECT_STREQ(asym::mode_name(Mode::kFence), "fence");
    EXPECT_STREQ(asym::mode_name(Mode::kMembarrier), "membarrier");
    EXPECT_STREQ(asym::mode_name(Mode::kSeqCst), "seqcst");
}

// ------------------------------------------------- heavy-fence accounting

TEST(AsymFenceCounting, HeavyCountsInBarrierModesOnly) {
    {
        ScopedMode m(Mode::kFence);
        const std::uint64_t before = asym::heavy_fences();
        asym::heavy();
        asym::heavy();
        EXPECT_EQ(asym::heavy_fences(), before + 2);
    }
    {
        // seqcst (seed-compat) and off issue no scan-side barrier at all.
        ScopedMode m(Mode::kSeqCst);
        const std::uint64_t before = asym::heavy_fences();
        asym::heavy();
        EXPECT_EQ(asym::heavy_fences(), before);
    }
    {
        ScopedMode m(Mode::kOff);
        const std::uint64_t before = asym::heavy_fences();
        asym::heavy();
        EXPECT_EQ(asym::heavy_fences(), before);
    }
}

TEST(AsymFenceCounting, HeavyScalesWithScansNotLoads) {
    // The acceptance criterion, pinned as a unit test: protected loads must
    // not issue heavy fences (that is the whole point of the asymmetric
    // design); retires that trip a scan must.
    HazardPointers<TrackedObject, 4> gc;
    std::atomic<TrackedObject*> link{nullptr};
    TrackedObject obj;
    link.store(&obj, std::memory_order_release);

    const std::uint64_t before_loads = asym::heavy_fences();
    for (int i = 0; i < 10000; ++i) {
        gc.begin_op();
        (void)gc.get_protected(link, 0);
        gc.end_op();
    }
    EXPECT_EQ(asym::heavy_fences(), before_loads)
        << "protected loads must not pay the heavy fence";

    link.store(nullptr, std::memory_order_release);
    const std::uint64_t before_retires = asym::heavy_fences();
    for (int i = 0; i < 2000; ++i) gc.retire(new TrackedObject());
    if (asym::mode() == Mode::kFence || asym::mode() == Mode::kMembarrier) {
        EXPECT_GT(asym::heavy_fences(), before_retires)
            << "retire-triggered scans must issue heavy fences";
    }
}

// ------------------------------------------------------ mode-parity churn

// The RetireChurn workload from test_retire_paths, run explicitly under each
// safe fence strategy: short-lived threads hammer a shared root while
// displaced nodes retire through the full engine; the alloc tracker must
// prove zero leaks and no double destroys in every mode. (Under TSan the
// membarrier request degrades to fence — the parity claim still holds, it is
// just fence-vs-fence there.)
class AsymFenceModeParity : public ::testing::TestWithParam<Mode> {};

struct Node : orc_base, TrackedObject {
    std::uint64_t value;
    orc_atomic<Node*> next{nullptr};
    explicit Node(std::uint64_t v = 0) : value(v) {}
};

TEST_P(AsymFenceModeParity, ChurnLeavesNoLeaksOrDoubleFrees) {
    ScopedMode scoped(GetParam());
    auto& counters = AllocCounters::instance();
    auto& engine = OrcDomain::global();
    const auto live_before = counters.live_count();
    const auto doubles_before = counters.double_destroys();
    {
        orc_atomic<Node*> root;
        {
            orc_ptr<Node*> first = make_orc<Node>(0);
            root.store(first);
        }
        const int rounds = stress_iters(12);
        constexpr int kWave = 6;
        for (int round = 0; round < rounds; ++round) {
            std::vector<std::thread> wave;
            wave.reserve(kWave);
            for (int w = 0; w < kWave; ++w) {
                wave.emplace_back([&root, round, w] {
                    Xoshiro256 rng(1 + round * kWave + w);
                    for (int i = 0; i < 40; ++i) {
                        orc_ptr<Node*> cur = root.load();
                        if (cur != nullptr && !cur->check_alive()) return;
                        if (rng.next_bounded(4) == 0) {
                            orc_ptr<Node*> fresh = make_orc<Node>(i);
                            root.store(fresh);  // displaced node retires here
                        }
                    }
                });
            }
            for (auto& t : wave) t.join();
        }
        root.store(nullptr);
    }
    EXPECT_EQ(engine.handover_count(), 0u);
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), doubles_before);
}

TEST_P(AsymFenceModeParity, DeepCascadeDestroysEveryNodeExactlyOnce) {
    ScopedMode scoped(GetParam());
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    const auto doubles_before = counters.double_destroys();
    const int depth = stress_iters(800);
    {
        orc_atomic<Node*> root;
        {
            orc_ptr<Node*> head = make_orc<Node>(0);
            orc_ptr<Node*> cur = head;
            for (int i = 1; i < depth; ++i) {
                orc_ptr<Node*> nxt = make_orc<Node>(i);
                cur->next.store(nxt);
                cur = nxt;
            }
            root.store(head);
        }
        root.store(nullptr);  // head retires; the chain cascades
        EXPECT_EQ(counters.live_count(), live_before);
    }
    EXPECT_EQ(counters.double_destroys(), doubles_before);
}

INSTANTIATE_TEST_SUITE_P(Modes, AsymFenceModeParity,
                         ::testing::Values(Mode::kMembarrier, Mode::kFence),
                         [](const ::testing::TestParamInfo<Mode>& param_info) {
                             return std::string(asym::mode_name(param_info.param));
                         });

}  // namespace
}  // namespace orcgc
