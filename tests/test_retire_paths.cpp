// Targeted coverage for the retire-path machinery: per-thread hp watermarks,
// the generational batched snapshot path, handover draining under thread
// churn, and exactly-once destruction through deep recursive cascades.
// Companions: DESIGN.md "Retire-path complexity" and bench_retire_batch.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/asym_fence.hpp"
#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "common/workload.hpp"
#include "core/orc.hpp"

namespace orcgc {
namespace {

struct Node : orc_base, TrackedObject {
    std::uint64_t value;
    orc_atomic<Node*> next{nullptr};
    explicit Node(std::uint64_t v = 0) : value(v) {}
};

struct WideNode : orc_base, TrackedObject {
    static constexpr int kChildren = 32;
    orc_atomic<WideNode*> child[kChildren];
};

// ----------------------------------------------------------- thread churn

// Many short-lived threads hammer a shared root, then exit. Every exit runs
// the registry hook (DESIGN.md deviation 3) which must drain that thread's
// handover slots even as its tid is immediately reused by the next wave —
// at quiescence nothing may stay parked and nothing may leak.
TEST(RetireChurn, ShortLivedThreadsLeaveNoParkedHandovers) {
    auto& counters = AllocCounters::instance();
    auto& engine = OrcDomain::global();
    const auto live_before = counters.live_count();
    const auto doubles_before = counters.double_destroys();
    {
        orc_atomic<Node*> root;
        {
            orc_ptr<Node*> first = make_orc<Node>(0);
            root.store(first);
        }
        const int rounds = stress_iters(30);
        constexpr int kWave = 8;
        for (int round = 0; round < rounds; ++round) {
            std::vector<std::thread> wave;
            wave.reserve(kWave);
            for (int w = 0; w < kWave; ++w) {
                wave.emplace_back([&root, round, w] {
                    Xoshiro256 rng(1 + round * kWave + w);
                    for (int i = 0; i < 40; ++i) {
                        orc_ptr<Node*> cur = root.load();
                        if (cur != nullptr && !cur->check_alive()) return;
                        if (rng.next_bounded(4) == 0) {
                            orc_ptr<Node*> fresh = make_orc<Node>(i);
                            root.store(fresh);  // displaced node retires here
                        }
                    }
                    // Thread exits with protections published until the very
                    // last orc_ptr destructor — the exit hook must cope.
                });
            }
            for (auto& t : wave) t.join();
        }
        root.store(nullptr);
    }
    EXPECT_EQ(engine.handover_count(), 0u)
        << "exited threads left objects parked in handover slots";
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), doubles_before);
}

// ------------------------------------------------------------ deep cascades

// A long singly linked chain whose head drop cascades one node per
// generation through recursive_list: every generation has size 1, so this
// pins the per-object slow path inside the generational loop. Every node
// must be destroyed exactly once and none may be left behind.
TEST(RetireCascade, DeepChainDestroysEveryNodeExactlyOnce) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    const auto doubles_before = counters.double_destroys();
    const int depth = stress_iters(2000);
    {
        orc_atomic<Node*> root;
        {
            orc_ptr<Node*> head = make_orc<Node>(0);
            orc_ptr<Node*> cur = head;
            for (int i = 1; i < depth; ++i) {
                orc_ptr<Node*> nxt = make_orc<Node>(i);
                cur->next.store(nxt);
                cur = nxt;
            }
            root.store(head);
            EXPECT_EQ(counters.live_count(), live_before + depth);
        }
        root.store(nullptr);  // head retires; the chain cascades
        EXPECT_EQ(counters.live_count(), live_before);
    }
    EXPECT_EQ(counters.double_destroys(), doubles_before);
}

// A wide fanout cascade: dropping the root retires it (generation 1) and its
// destructor pushes all children at once (generation 2, batched snapshot
// path when kChildren >= kSnapshotMin). Exactly-once destruction again.
TEST(RetireCascade, WideFanoutDestroysEveryNodeExactlyOnce) {
    static_assert(WideNode::kChildren >= static_cast<int>(OrcDomain::kSnapshotMin),
                  "fanout must be wide enough to exercise the batched path");
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    const auto doubles_before = counters.double_destroys();
    const int reps = stress_iters(50);
    for (int r = 0; r < reps; ++r) {
        orc_ptr<WideNode*> root = make_orc<WideNode>();
        for (int i = 0; i < WideNode::kChildren; ++i) {
            orc_ptr<WideNode*> c = make_orc<WideNode>();
            root->child[i].store(c);
        }
        root = nullptr;  // two generations: root, then all children at once
        EXPECT_EQ(counters.live_count(), live_before);
    }
    EXPECT_EQ(counters.double_destroys(), doubles_before);
}

// The acceptance bound is checkable directly from the always-on telemetry: a
// fanout cascade must cost at most 2 full-HP-array snapshots (one per
// generation large enough to batch; the size-1 root generation scans per
// object).
TEST(RetireCascade, FanoutUsesAtMostTwoSnapshotsPerCascade) {
    if (!telemetry::kTelemetryEnabled) {
        GTEST_SKIP() << "snapshot counters compiled out (-DORCGC_TELEMETRY=OFF)";
    }
    auto& engine = OrcDomain::global();
    constexpr int kCascades = 64;
    engine.reset_stats();
    for (int r = 0; r < kCascades; ++r) {
        orc_ptr<WideNode*> root = make_orc<WideNode>();
        for (int i = 0; i < WideNode::kChildren; ++i) {
            orc_ptr<WideNode*> c = make_orc<WideNode>();
            root->child[i].store(c);
        }
        root = nullptr;
    }
    const OrcDomain::RetireStats s = engine.stats();
    EXPECT_LE(s.snapshots, static_cast<std::uint64_t>(2 * kCascades));
    EXPECT_GT(s.batch_frees, 0u) << "fanout children should free via the snapshot path";
}

// Both cascade shapes again, under each safe fence strategy explicitly: the
// retire scans' asym::heavy() must keep the exactly-once guarantee whether it
// is a process-wide barrier or the two-sided fallback. (The *_fencemode ctest
// leg additionally reruns this whole suite with ORC_ASYM_FENCE=fence.)
TEST(RetireCascade, CascadesAreExactlyOnceUnderBothFenceModes) {
    auto& counters = AllocCounters::instance();
    for (const asym::Mode mode : {asym::Mode::kMembarrier, asym::Mode::kFence}) {
        asym::testing::ScopedMode scoped(mode);
        const auto live_before = counters.live_count();
        const auto doubles_before = counters.double_destroys();
        const int depth = stress_iters(500);
        {
            orc_atomic<Node*> root;
            {
                orc_ptr<Node*> head = make_orc<Node>(0);
                orc_ptr<Node*> cur = head;
                for (int i = 1; i < depth; ++i) {
                    orc_ptr<Node*> nxt = make_orc<Node>(i);
                    cur->next.store(nxt);
                    cur = nxt;
                }
                root.store(head);
            }
            root.store(nullptr);
            EXPECT_EQ(counters.live_count(), live_before)
                << "leak under mode " << asym::mode_name(mode);
        }
        {
            orc_ptr<WideNode*> root = make_orc<WideNode>();
            for (int i = 0; i < WideNode::kChildren; ++i) {
                orc_ptr<WideNode*> c = make_orc<WideNode>();
                root->child[i].store(c);
            }
            root = nullptr;  // batched snapshot path
            EXPECT_EQ(counters.live_count(), live_before)
                << "leak under mode " << asym::mode_name(mode);
        }
        EXPECT_EQ(counters.double_destroys(), doubles_before)
            << "double destroy under mode " << asym::mode_name(mode);
    }
}

// -------------------------------------------------------------- watermarks

// The published per-thread scan bound must track the highest claimed hp
// index: raised while orc_ptrs are held, tightened once they are released.
// The lowering has one slot of hysteresis (it only moves when it can drop by
// >= 2) so a claim/release cycle at the bound costs no seq_cst stores —
// hence the <= floor+1 assertions below. hp_watermark() (the peak) stays
// monotonic — it bounds handover draining, not scanning.
TEST(Watermark, TightensWhenIndicesAreReleased) {
    auto& engine = OrcDomain::global();
    EXPECT_EQ(engine.used_idx_count(), 0) << "test requires a quiescent thread";
    EXPECT_LE(engine.hp_watermark_self(), 2);
    constexpr int kHeld = 24;
    {
        std::vector<orc_ptr<Node*>> held;
        held.reserve(kHeld);
        for (int i = 0; i < kHeld; ++i) held.push_back(make_orc<Node>(i));
        EXPECT_GE(engine.hp_watermark_self(), kHeld + 1);
        EXPECT_LE(engine.hp_watermark_self(), OrcDomain::kMaxHPs);
        EXPECT_GE(engine.hp_watermark(), engine.hp_watermark_self());
        // Releasing from the middle must not lower the bound below a still
        // claimed higher index.
        held.erase(held.begin() + 2);
        EXPECT_GE(engine.hp_watermark_self(), kHeld);
    }
    EXPECT_LE(engine.hp_watermark_self(), 2);
    EXPECT_GE(engine.hp_watermark(), kHeld + 1);  // the peak never lowers
}

// Other threads' retires only scan [0, hp_wm) of each thread; a thread that
// held many pointers once must not keep taxing every retire in the process
// afterwards. Observable cheaply through used_idx_count on this thread plus
// the engine-wide invariant tests above; here we just pin the introspection
// unification: both counters use the same per-thread bounds.
TEST(Watermark, IntrospectionAgreesOnBounds) {
    auto& engine = OrcDomain::global();
    {
        orc_ptr<Node*> a = make_orc<Node>(1);
        orc_ptr<Node*> b = make_orc<Node>(2);
        EXPECT_EQ(engine.used_idx_count(), 2);
        EXPECT_GE(engine.hp_watermark_self(), 3);
    }
    EXPECT_EQ(engine.used_idx_count(), 0);
    EXPECT_LE(engine.hp_watermark_self(), 2);
}

}  // namespace
}  // namespace orcgc
