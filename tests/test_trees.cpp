// Typed tests for the Natarajan–Mittal external BST: manual variants under
// the schemes that are sound for its unvalidated seek (None and quiescent
// EBR — see nm_tree.hpp header; HE and our 2GEIBR are *not* sound here:
// ASan/TSan runs catch the resulting use-after-free) plus OrcGC.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "ds/nm_tree.hpp"
#include "ds/orc/nm_tree_orc.hpp"
#include "reclamation/reclamation.hpp"
#include "common/workload.hpp"

namespace orcgc {
namespace {

using Key = std::uint64_t;

template <typename TreeT>
class TreeTest : public ::testing::Test {};

using TreeTypes = ::testing::Types<NMTree<Key, ReclaimerNone>,
                                   NMTree<Key, EpochBasedReclaimer>, NMTreeOrc<Key>>;
TYPED_TEST_SUITE(TreeTest, TreeTypes);

TYPED_TEST(TreeTest, EmptyTree) {
    TypeParam tree;
    EXPECT_FALSE(tree.contains(1));
    EXPECT_FALSE(tree.remove(1));
}

TYPED_TEST(TreeTest, InsertContainsRemove) {
    TypeParam tree;
    EXPECT_TRUE(tree.insert(10));
    EXPECT_TRUE(tree.contains(10));
    EXPECT_FALSE(tree.insert(10));
    EXPECT_TRUE(tree.remove(10));
    EXPECT_FALSE(tree.contains(10));
    EXPECT_FALSE(tree.remove(10));
}

TYPED_TEST(TreeTest, ReinsertAfterRemove) {
    TypeParam tree;
    for (int round = 0; round < 5; ++round) {
        EXPECT_TRUE(tree.insert(7));
        EXPECT_TRUE(tree.contains(7));
        EXPECT_TRUE(tree.remove(7));
        EXPECT_FALSE(tree.contains(7));
    }
}

TYPED_TEST(TreeTest, SortedAndReverseSortedInserts) {
    // Degenerate shapes: external BST devolves into a spine; semantics must
    // be unaffected.
    TypeParam tree;
    for (Key k = 0; k < 128; ++k) EXPECT_TRUE(tree.insert(k));
    for (Key k = 0; k < 128; ++k) EXPECT_TRUE(tree.contains(k));
    for (Key k = 0; k < 128; ++k) EXPECT_TRUE(tree.remove(k));
    for (Key k = 300; k > 200; --k) EXPECT_TRUE(tree.insert(k));
    for (Key k = 300; k > 200; --k) EXPECT_TRUE(tree.contains(k));
}

TYPED_TEST(TreeTest, RandomizedAgainstReferenceSet) {
    TypeParam tree;
    std::vector<bool> reference(512, false);
    Xoshiro256 rng(2024);
    for (int i = 0; i < 20000; ++i) {
        const Key k = rng.next_bounded(512);
        switch (rng.next_bounded(3)) {
            case 0:
                EXPECT_EQ(tree.insert(k), !reference[k]) << "key " << k;
                reference[k] = true;
                break;
            case 1:
                EXPECT_EQ(tree.remove(k), reference[k]) << "key " << k;
                reference[k] = false;
                break;
            default:
                EXPECT_EQ(tree.contains(k), static_cast<bool>(reference[k])) << "key " << k;
        }
    }
}

TYPED_TEST(TreeTest, MaxUserKeyIsUsable) {
    TypeParam tree;
    const Key k = TypeParam::max_user_key();
    EXPECT_TRUE(tree.insert(k));
    EXPECT_TRUE(tree.contains(k));
    EXPECT_TRUE(tree.remove(k));
}

TYPED_TEST(TreeTest, NoLeaksAfterChurnAndDestruction) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        TypeParam tree;
        Xoshiro256 rng(5);
        for (int i = 0; i < 5000; ++i) {
            const Key k = rng.next_bounded(128);
            if (rng.next_bounded(2) == 0) {
                tree.insert(k);
            } else {
                tree.remove(k);
            }
        }
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

TYPED_TEST(TreeTest, ConcurrentDisjointKeyRanges) {
    constexpr int kThreads = 4;
    constexpr Key kPerThread = 300;
    TypeParam tree;
    SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            barrier.arrive_and_wait();
            for (Key i = 0; i < kPerThread; ++i) {
                const Key k = i * kThreads + t;
                ASSERT_TRUE(tree.insert(k));
                ASSERT_TRUE(tree.contains(k));
            }
            for (Key i = 0; i < kPerThread; i += 2) {
                ASSERT_TRUE(tree.remove(i * kThreads + t));
            }
        });
    }
    for (auto& th : threads) th.join();
    for (int t = 0; t < kThreads; ++t) {
        for (Key i = 0; i < kPerThread; ++i) {
            EXPECT_EQ(tree.contains(i * kThreads + t), i % 2 == 1);
        }
    }
}

TYPED_TEST(TreeTest, ConcurrentContestedKeysLinearizable) {
    constexpr int kThreads = 6;
    constexpr Key kKeyRange = 12;
    const int kOpsEach = stress_iters(4000);
    TypeParam tree;
    std::atomic<std::int64_t> ins[kKeyRange] = {};
    std::atomic<std::int64_t> rem[kKeyRange] = {};
    SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Xoshiro256 rng(500 + t);
            barrier.arrive_and_wait();
            for (int i = 0; i < kOpsEach; ++i) {
                const Key k = rng.next_bounded(kKeyRange);
                if (rng.next_bounded(2) == 0) {
                    if (tree.insert(k)) ins[k].fetch_add(1, std::memory_order_relaxed);
                } else {
                    if (tree.remove(k)) rem[k].fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& th : threads) th.join();
    for (Key k = 0; k < kKeyRange; ++k) {
        const auto balance = ins[k].load() - rem[k].load();
        ASSERT_GE(balance, 0) << "key " << k;
        ASSERT_LE(balance, 1) << "key " << k;
        EXPECT_EQ(tree.contains(k), balance == 1) << "key " << k;
    }
}

TYPED_TEST(TreeTest, NoLeaksUnderConcurrentChurn) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        TypeParam tree;
        constexpr int kThreads = 4;
        SpinBarrier barrier(kThreads);
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                Xoshiro256 rng(91 * t + 3);
                barrier.arrive_and_wait();
                const int ops_each = stress_iters(3000);
                for (int i = 0; i < ops_each; ++i) {
                    const Key k = rng.next_bounded(48);
                    if (rng.next_bounded(2) == 0) {
                        tree.insert(k);
                    } else {
                        tree.remove(k);
                    }
                }
            });
        }
        for (auto& th : threads) th.join();
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

}  // namespace
}  // namespace orcgc
