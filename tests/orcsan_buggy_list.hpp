// Deliberately-buggy Michael-list variant: the OrcSan true-positive fixture
// (tests/test_orcsan.cpp; sanitizer model in src/common/orcsan.hpp).
//
// ds/orc/michael_list_orc.hpp shows the correct discipline; this variant
// seeds the three classic SMR protocol bugs the ISSUE names, each behind its
// own entry point so a death test can trigger exactly one:
//
//   bug                  entry point                     violation class
//   -------------------  ------------------------------  -----------------
//   protect call removed begin_unprotected() +           unprotected_deref
//                        read_unprotected()
//   early clear          front_with_early_clear()        unprotected_deref
//   double retire        pop_front_with_manual_retire()  double_retire
//
// The list itself (push/pop at the head) is intentionally tiny — the bugs,
// not the algorithm, are the point. Never compiled into a default build:
// only test_orcsan.cpp (gated on ORCGC_ORCSAN) includes it.
#pragma once

#include <cstdint>

#include "common/alloc_tracker.hpp"
#include "core/orc.hpp"
#include "reclamation/hazard_pointers.hpp"

namespace orcgc {
namespace orcsan_fixture {

class BuggyMichaelList {
  public:
    struct Node : orc_base, TrackedObject {
        std::uint64_t key;
        orc_atomic<Node*> next{nullptr};
        explicit Node(std::uint64_t k) : key(k) {}
    };

    explicit BuggyMichaelList(OrcDomain& dom) : dom_(dom) {}
    BuggyMichaelList(const BuggyMichaelList&) = delete;
    BuggyMichaelList& operator=(const BuggyMichaelList&) = delete;

    // ---- correct operations (the control group) ---------------------------

    void push_front(std::uint64_t key) {
        ScopedDomain guard(dom_);
        orc_ptr<Node*> node = make_orc<Node>(key);
        node->next.store(head_.load());
        head_.store(node);
    }

    /// Unlinks the head node; the store drops its last hard link and OrcGC
    /// retires it automatically.
    bool pop_front() {
        ScopedDomain guard(dom_);
        orc_ptr<Node*> curr = head_.load();
        if (!curr) return false;
        head_.store(curr->next.load());
        return true;
    }

    // ---- BUG 1: protect call removed --------------------------------------

    /// Snapshots the head WITHOUT publishing a protection — the reader
    /// pattern of a scheme port where the protect call was dropped. The raw
    /// pointer is only stored here, never dereferenced (that is the caller's
    /// mistake to make via read_unprotected).
    Node* begin_unprotected() { return head_.load_unsafe(); }

    /// Dereferences a snapshot taken by begin_unprotected(). The index-less
    /// orc_ptr goes through the instrumented deref path with no hp slot
    /// behind it: fine while the node is Live, an unprotected_deref violation
    /// once a concurrent (or here: interleaved) pop reclaimed it.
    std::uint64_t read_unprotected(Node* snapshot) {
        orc_ptr<Node*> p(snapshot, /*idx=*/-1, /*dom=*/nullptr);
        return p->key;
    }

    // ---- BUG 2: early clear -----------------------------------------------

    /// Takes a protection correctly, then clears the published hp slot while
    /// the orc_ptr is still live — the "I'm done scanning, release early"
    /// bug. The returned reference looks protected but is not: a pop after
    /// this call reclaims the node under it.
    orc_ptr<Node*> front_with_early_clear() {
        ScopedDomain guard(dom_);
        orc_ptr<Node*> p = head_.load();
        if (p) dom_.protect_ptr(nullptr, p.index());
        return p;
    }

    // ---- BUG 3: double retire ---------------------------------------------

    /// Pops the head and then ALSO retires it into a manual hazard-pointer
    /// scheme — the belt-and-braces reflex of code ported from manual SMR.
    /// The unlink already took the retire token (OrcGC retires on the last
    /// hard-link drop), so the manual retire is a second token on an object
    /// that is already Retired/Quarantined.
    void pop_front_with_manual_retire() {
        ScopedDomain guard(dom_);
        orc_ptr<Node*> curr = head_.load();
        if (!curr) return;
        Node* raw = curr.get();
        head_.store(curr->next.load());  // unlink: automatic retire
        curr = nullptr;                  // drop the protection: node reclaimed
        manual_.retire(raw);             // second retire token — the bug
    }

  private:
    OrcDomain& dom_;
    orc_atomic<Node*> head_;
    HazardPointers<Node> manual_;
};

}  // namespace orcsan_fixture
}  // namespace orcgc
