// Sharded retirement, cooperative scanning, and the background reclaimer
// (core/orc_domain.hpp + core/orc_bg_reclaimer.hpp).
//
// The contract under test:
//   * A scan that displaces an object out of another thread's handover slot
//     pushes it onto THAT shard's MPSC inbox instead of re-scanning it
//     inline; the inbox is soft-capped so a stalled shard bounds the
//     unreclaimed memory it can strand (the paper's O(H·t) argument).
//   * Inboxes drain at the owner's next unpublish, at thread exit (BEFORE
//     the registry slot is recycled — the churn test), at domain
//     destruction, and from the background reclaimer.
//   * The cooperative shared scan settles every generation item exactly
//     once however many threads steal chunks (no double-free — the stress
//     test runs under whatever sanitizer the build carries).
//   * The adaptive wake threshold is pure, clamped and monotone.
//
// Displacement is driven DETERMINISTICALLY through the raw protection API
// (get_new_idx / protect_ptr / release_idx — the same calls orc_ptr makes):
// republishing a new pointer on a held index without releasing it is
// exactly what get_protected's retry loop does, and leaves the previous
// park in the handover slot for the next park to displace.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/orc.hpp"

namespace orcgc {
namespace {

struct Node : orc_base {
    std::uint64_t value = 0;
};

struct Leaf : orc_base {};

constexpr int kStressWide = 48;
struct Wide : orc_base {
    orc_atomic<Leaf*> child[kStressWide];
};

/// Spin-waits (test-only) until `p` reaches `v`.
void await(const std::atomic<int>& p, int v) {
    while (p.load(std::memory_order_acquire) < v) std::this_thread::yield();
}

void advance(std::atomic<int>& p) { p.fetch_add(1, std::memory_order_acq_rel); }

/// Polls `pred` for up to `ms` milliseconds.
template <typename F>
bool eventually(F pred, int ms = 5000) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
    while (!pred()) {
        if (std::chrono::steady_clock::now() > deadline) return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return true;
}

// ---- adaptive threshold (pure function) -----------------------------------

TEST(BgReclaimer, AdaptiveThresholdClampsAndIsMonotone) {
    // Lower clamp: tiny EWMAs never push the threshold under kMinThreshold.
    EXPECT_EQ(BgReclaimer::adaptive_threshold(0), BgReclaimer::kMinThreshold);
    EXPECT_EQ(BgReclaimer::adaptive_threshold(1), BgReclaimer::kMinThreshold);
    EXPECT_EQ(BgReclaimer::adaptive_threshold(BgReclaimer::kMinThreshold / 2),
              BgReclaimer::kMinThreshold);
    // Linear region: 2x the EWMA.
    EXPECT_EQ(BgReclaimer::adaptive_threshold(100), 200u);
    EXPECT_EQ(BgReclaimer::adaptive_threshold(1000), 2000u);
    // Upper clamp, including the overflow guard.
    EXPECT_EQ(BgReclaimer::adaptive_threshold(BgReclaimer::kMaxThreshold),
              BgReclaimer::kMaxThreshold);
    EXPECT_EQ(BgReclaimer::adaptive_threshold(~0ULL), BgReclaimer::kMaxThreshold);
    // Monotone non-decreasing across a sweep.
    std::uint64_t prev = 0;
    for (std::uint64_t e = 0; e < 70000; e += 7) {
        const std::uint64_t t = BgReclaimer::adaptive_threshold(e);
        EXPECT_GE(t, prev) << "threshold decreased at ewma=" << e;
        prev = t;
    }
}

TEST(BgReclaimer, ShouldWakePerMode) {
    using M = BgReclaimer::Mode;
    EXPECT_FALSE(BgReclaimer::should_wake(M::kOff, 1 << 20, 0));
    EXPECT_FALSE(BgReclaimer::should_wake(M::kOn, 0, 0));
    EXPECT_TRUE(BgReclaimer::should_wake(M::kOn, 1, 0));
    // Adaptive: wakes exactly at the threshold.
    const std::uint64_t thr = BgReclaimer::adaptive_threshold(100);
    EXPECT_FALSE(BgReclaimer::should_wake(M::kAdaptive, thr - 1, 100));
    EXPECT_TRUE(BgReclaimer::should_wake(M::kAdaptive, thr, 100));
}

// ---- MPSC inbox: deterministic displacement -------------------------------

/// Domain with the background reclaimer pinned OFF regardless of the
/// ORC_BG_RECLAIM environment (the _bgreclaim ctest leg): the inbox tests
/// assert exact backlog values that a concurrent bg drain would race. The
/// reclaimer's own behavior has dedicated tests below.
std::unique_ptr<OrcDomain> make_quiet_domain() {
    auto dom = std::make_unique<OrcDomain>();
    dom->set_bg_reclaim(BgReclaimer::Mode::kOff);
    return dom;
}

/// One reader thread holds an hp index and republishes on command; the main
/// thread retires the objects the reader protects, so every park — and the
/// displacement of the previous park — is forced, not raced.
TEST(ShardInbox, DisplacedOccupantLandsInProtectorShard) {
    auto dom = make_quiet_domain();
    orc_ptr<Node*> px = make_orc_in<Node>(*dom);
    orc_ptr<Node*> py = make_orc_in<Node>(*dom);
    orc_base* xr = px.get();
    orc_base* yr = py.get();

    std::atomic<int> phase{0};
    std::thread reader([&] {
        const int idx = dom->get_new_idx();
        dom->protect_ptr(xr, idx);
        advance(phase);  // 1: X protected
        await(phase, 2);
        dom->protect_ptr(yr, idx);  // republish, NO drain — X's park stays
        advance(phase);             // 3: Y protected on the same index
        await(phase, 4);
        dom->release_idx(idx, nullptr);  // drains the handover AND the inbox
        advance(phase);                  // 5
    });

    await(phase, 1);
    const std::uint64_t pushes0 =
        telemetry::kTelemetryEnabled ? dom->metrics().snapshot().shard_pushes : 0;
    px = nullptr;  // retire X: the scan finds the reader's hp and parks X
    EXPECT_EQ(dom->handover_count(), 1u);
    EXPECT_EQ(dom->shard_backlog(), 0);
    advance(phase);  // 2
    await(phase, 3);
    py = nullptr;  // retire Y: parks Y, DISPLACING X into the reader's inbox
    EXPECT_EQ(dom->shard_backlog(), 1);
    EXPECT_EQ(dom->handover_count(), 2u);  // Y parked + X inboxed
    if (telemetry::kTelemetryEnabled) {
        EXPECT_GE(dom->metrics().snapshot().shard_pushes, pushes0 + 1);
    }
    advance(phase);  // 4
    await(phase, 5);
    reader.join();

    EXPECT_EQ(dom->shard_backlog(), 0);
    EXPECT_EQ(dom->handover_count(), 0u);
    EXPECT_EQ(dom->object_count(), 0);
    if (telemetry::kTelemetryEnabled) {
        EXPECT_GE(dom->metrics().snapshot().shard_drained, 1u);
    }
}

/// The soft cap bounds what a stalled shard can strand: pile displacements
/// onto one held index; once the inbox is full the displaced object falls
/// back to the displacing thread's own cascade (and frees immediately here,
/// since nothing protects it any more).
TEST(ShardInbox, SoftCapBoundsStalledShardBacklog) {
    auto dom = make_quiet_domain();
    constexpr int kRounds = OrcDomain::kInboxSoftCap + 9;
    std::vector<orc_ptr<Node*>> objs;
    std::vector<orc_base*> raw;
    objs.reserve(kRounds);
    for (int i = 0; i < kRounds; ++i) {
        objs.push_back(make_orc_in<Node>(*dom));
        raw.push_back(objs.back().get());
    }

    std::atomic<int> phase{0};
    std::thread reader([&] {
        const int idx = dom->get_new_idx();
        for (int r = 0; r < kRounds; ++r) {
            dom->protect_ptr(raw[static_cast<std::size_t>(r)], idx);
            advance(phase);          // 2r+1: round r protected
            await(phase, 2 * r + 2);  // main retired round r
        }
        dom->release_idx(idx, nullptr);
        advance(phase);
    });

    for (int r = 0; r < kRounds; ++r) {
        await(phase, 2 * r + 1);
        objs[static_cast<std::size_t>(r)] = nullptr;  // park round r, displace r-1
        advance(phase);
    }
    await(phase, 2 * kRounds + 1);
    reader.join();

    // Everything drained on release; the cap held the backlog the whole way
    // (checked implicitly: overflow objects freed inline, so the final drain
    // had at most kInboxSoftCap inbox entries to settle).
    EXPECT_EQ(dom->shard_backlog(), 0);
    EXPECT_EQ(dom->object_count(), 0);
}

TEST(ShardInbox, BacklogNeverExceedsSoftCap) {
    auto dom = make_quiet_domain();
    constexpr int kRounds = OrcDomain::kInboxSoftCap + 9;
    std::vector<orc_ptr<Node*>> objs;
    std::vector<orc_base*> raw;
    for (int i = 0; i < kRounds; ++i) {
        objs.push_back(make_orc_in<Node>(*dom));
        raw.push_back(objs.back().get());
    }
    std::atomic<int> phase{0};
    std::int64_t peak = 0;
    std::thread reader([&] {
        const int idx = dom->get_new_idx();
        for (int r = 0; r < kRounds; ++r) {
            dom->protect_ptr(raw[static_cast<std::size_t>(r)], idx);
            advance(phase);
            await(phase, 2 * r + 2);
        }
        dom->release_idx(idx, nullptr);
        advance(phase);
    });
    for (int r = 0; r < kRounds; ++r) {
        await(phase, 2 * r + 1);
        objs[static_cast<std::size_t>(r)] = nullptr;
        peak = std::max(peak, dom->shard_backlog());
        advance(phase);
    }
    await(phase, 2 * kRounds + 1);
    reader.join();
    EXPECT_LE(peak, static_cast<std::int64_t>(OrcDomain::kInboxSoftCap));
    EXPECT_GT(peak, 0);  // displacements really happened
    EXPECT_EQ(dom->object_count(), 0);
}

// ---- thread exit hands the shard back (churn regression) -------------------

/// A thread exiting with a non-empty inbox must hand it back BEFORE its
/// registry slot is recycled: rapid create/exit churn, one forced
/// displacement per generation of thread, nothing may leak or crash.
TEST(ShardInbox, ThreadChurnDrainsInboxAtExit) {
    auto dom = make_quiet_domain();
    constexpr int kChurn = 24;  // < kMaxHPs: each abandoned index is gone for good
    for (int i = 0; i < kChurn; ++i) {
        orc_ptr<Node*> px = make_orc_in<Node>(*dom);
        orc_ptr<Node*> py = make_orc_in<Node>(*dom);
        orc_base* xr = px.get();
        orc_base* yr = py.get();
        std::atomic<int> phase{0};
        std::thread worker([&] {
            const int idx = dom->get_new_idx();
            dom->protect_ptr(xr, idx);
            advance(phase);
            await(phase, 2);
            dom->protect_ptr(yr, idx);
            advance(phase);  // 3
            await(phase, 4);
            // Exit abandoning the index: hp published, handover parked (Y),
            // inbox non-empty (X). The exit hook must drain all three.
        });
        await(phase, 1);
        px = nullptr;  // park X at the worker
        advance(phase);
        await(phase, 3);
        py = nullptr;  // park Y, displace X into the worker's inbox
        EXPECT_EQ(dom->shard_backlog(), 1);
        advance(phase);
        worker.join();  // exit hook: unpublish, drain handover + inbox
        EXPECT_EQ(dom->shard_backlog(), 0) << "churn round " << i;
        EXPECT_EQ(dom->object_count(), 0) << "churn round " << i;
    }
}

// ---- cooperative scan: no double-free across stealers ----------------------

/// Concurrency stress for the shared-scan claim protocol: several threads
/// run wide cascades in one domain, so their batched generations overlap
/// and chunks get stolen. Every object must be freed exactly once — the
/// object_count check catches a lost object, the build's sanitizer (ASan /
/// TSan / OrcSan) catches a double free or a racing settle.
TEST(SharedScan, ConcurrentCascadesSettleExactlyOnce) {
    auto dom = std::make_unique<OrcDomain>();
    constexpr int kThreads = 4;
    constexpr int kIters = 300;
    std::atomic<int> go{0};
    std::vector<std::thread> ts;
    for (int t = 0; t < kThreads; ++t) {
        ts.emplace_back([&] {
            await(go, 1);
            for (int i = 0; i < kIters; ++i) {
                orc_ptr<Wide*> root = make_orc_in<Wide>(*dom);
                for (int j = 0; j < kStressWide; ++j) {
                    orc_ptr<Leaf*> c = make_orc_in<Leaf>(*dom);
                    root->child[j].store(c);
                }
                // Dropping root cascades kStressWide+1 nodes through the
                // batched path; concurrent cascades steal each other's
                // settle chunks.
            }
        });
    }
    advance(go);
    for (auto& t : ts) t.join();
    EXPECT_EQ(dom->object_count(), 0);
    EXPECT_EQ(dom->shard_backlog(), 0);
    if (telemetry::kTelemetryEnabled) {
        // The batched path ran shared scans; stealing itself is scheduling-
        // dependent, so only the scan counter is asserted.
        EXPECT_GT(dom->metrics().snapshot().scans_shared, 0u);
    }
}

// ---- background reclaimer ---------------------------------------------------

TEST(BgReclaimer, WakesDrainsParksAndJoinsOnDestroy) {
    auto dom = std::make_unique<OrcDomain>();
    dom->set_bg_reclaim(BgReclaimer::Mode::kOn);
    EXPECT_FALSE(dom->bg_running());  // lazily spawned

    orc_ptr<Node*> px = make_orc_in<Node>(*dom);
    orc_ptr<Node*> py = make_orc_in<Node>(*dom);
    orc_base* xr = px.get();
    orc_base* yr = py.get();
    std::atomic<int> phase{0};
    std::thread reader([&] {
        const int idx = dom->get_new_idx();
        dom->protect_ptr(xr, idx);
        advance(phase);
        await(phase, 2);
        dom->protect_ptr(yr, idx);
        advance(phase);  // 3
        await(phase, 4);  // wait while the BG worker drains the inbox
        dom->release_idx(idx, nullptr);
        advance(phase);  // 5
    });
    await(phase, 1);
    px = nullptr;
    advance(phase);
    await(phase, 3);
    py = nullptr;  // displaces X into the reader's inbox -> backlog 1 -> wake
    // Mode kOn: any backlog wakes the worker; it spawns lazily, drains the
    // inbox (X frees — the reader's hp covers only Y), and parks.
    EXPECT_TRUE(eventually([&] { return dom->shard_backlog() == 0; }));
    EXPECT_TRUE(dom->bg_running());
    if (telemetry::kTelemetryEnabled) {
        EXPECT_TRUE(eventually([&] {
            const OrcMetrics::Snapshot s = dom->metrics().snapshot();
            return s.bg_wakes >= 1 && s.bg_parks >= 1;
        }));
    }
    advance(phase);  // 4
    await(phase, 5);
    reader.join();
    EXPECT_EQ(dom->object_count(), 0);
    // Destruction must stop and join the worker (then pass the quiescence
    // checks); a deadlock here is the regression this test exists for.
    dom.reset();
}

/// stop_and_join() latches: any later start() must refuse to spawn. This is
/// what keeps a retire cascade racing ~OrcDomain from respawning a worker
/// into a domain mid-teardown (the destructor also forces the mode off, but
/// the latch must hold on its own).
TEST(BgReclaimer, StartAfterStopAndJoinIsANoOp) {
    // Never-started reclaimer: stop_and_join is safe and still latches.
    BgReclaimer bg;
    bg.stop_and_join();
    std::atomic<int> drains{0};
    bg.start([&] { drains.fetch_add(1); }, [] {});
    EXPECT_FALSE(bg.running());
    bg.notify();  // only raises a flag; no worker may exist to see it
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_EQ(drains.load(), 0);

    // Live worker: start, stop, then a late start is refused too.
    BgReclaimer bg2;
    bg2.start([&] { drains.fetch_add(1); }, [] {});
    EXPECT_TRUE(bg2.running());
    bg2.stop_and_join();
    EXPECT_FALSE(bg2.running());
    bg2.start([&] { drains.fetch_add(1); }, [] {});
    EXPECT_FALSE(bg2.running());
}

/// Regression for the destructor-respawn race: a domain destroyed in mode
/// kOn with residual backlog runs retire cascades from ~OrcDomain's own
/// drain (step 2), and those cascades end in note_cascade with backlog
/// still nonzero — which must NOT respawn the background worker after
/// stop_and_join() (the respawned worker would race teardown and touch
/// DomainState after tl_ is destroyed; the sanitizer legs catch it).
///
/// Setup: MAIN holds the protection, so the displaced park lands in MAIN's
/// shard inbox — which no thread-exit hook drains — leaving a parked
/// handover plus inbox backlog on the domain at destruction. The retires
/// run on the worker via hard-link decrements (an orc_ptr's hp index is
/// thread-local to main and cannot be released cross-thread).
TEST(BgReclaimer, DestructionWithResidualBacklogDoesNotRespawnWorker) {
    auto dom = make_quiet_domain();  // kOff while building the backlog
    orc_base* xr = nullptr;
    orc_base* yr = nullptr;
    {
        orc_ptr<Node*> px = make_orc_in<Node>(*dom);
        orc_ptr<Node*> py = make_orc_in<Node>(*dom);
        xr = px.get();
        yr = py.get();
        // Hard links keep the orc_ptr releases below from retiring; the
        // worker's decrements are then what drop each counter to zero, so
        // both retire cascades run on the WORKER thread.
        orc_increment(xr);
        orc_increment(yr);
    }
    const int idx = dom->get_new_idx();
    dom->protect_ptr(xr, idx);

    std::atomic<int> phase{0};
    std::thread worker([&] {
        orc_decrement(xr);  // retire X: parks it in MAIN's handover slot
        advance(phase);     // 1
        await(phase, 2);    // main republished Y on the same index
        orc_decrement(yr);  // retire Y: parks Y, displaces X into MAIN's inbox
        advance(phase);     // 3
    });
    await(phase, 1);
    dom->protect_ptr(yr, idx);  // republish, NO release — X's park stays
    advance(phase);             // 2
    await(phase, 3);
    worker.join();
    ASSERT_EQ(dom->shard_backlog(), 1);
    ASSERT_EQ(dom->handover_count(), 2u);  // Y parked + X inboxed
    // idx stays published on purpose: releasing it would drain the very
    // backlog this test needs; the destructor's step-1 unpublish covers it.

    // Flip to kOn only now (a live worker would have drained the backlog),
    // then destroy: the destructor's handover drain retires Y through a
    // full cascade whose note_cascade sees mode-on backlog. The forced
    // mode-off store plus the stop latch must keep the worker dead; the
    // quiescence checks then prove X and Y both freed.
    dom->set_bg_reclaim(BgReclaimer::Mode::kOn);
    dom.reset();
}

TEST(BgReclaimer, AdaptiveStaysAsleepBelowThreshold) {
    auto dom = std::make_unique<OrcDomain>();
    dom->set_bg_reclaim(BgReclaimer::Mode::kAdaptive);

    orc_ptr<Node*> px = make_orc_in<Node>(*dom);
    orc_ptr<Node*> py = make_orc_in<Node>(*dom);
    orc_base* xr = px.get();
    orc_base* yr = py.get();
    std::atomic<int> phase{0};
    std::thread reader([&] {
        const int idx = dom->get_new_idx();
        dom->protect_ptr(xr, idx);
        advance(phase);
        await(phase, 2);
        dom->protect_ptr(yr, idx);
        advance(phase);
        await(phase, 4);
        dom->release_idx(idx, nullptr);
        advance(phase);
    });
    await(phase, 1);
    px = nullptr;
    advance(phase);
    await(phase, 3);
    py = nullptr;  // backlog 1 — far below the adaptive floor (kMinThreshold)
    EXPECT_EQ(dom->shard_backlog(), 1);
    EXPECT_FALSE(dom->bg_running()) << "adaptive mode woke below its threshold";
    advance(phase);
    await(phase, 5);
    reader.join();
    EXPECT_EQ(dom->object_count(), 0);
}

}  // namespace
}  // namespace orcgc
