// Unit tests for the OrcGC core: _orc bit-field arithmetic, orc_ptr/orc_atomic
// lifecycle semantics, reclamation soundness on simple object graphs, and the
// Michael–Scott queue of the paper's Algorithm 1.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/barrier.hpp"
#include "core/orc.hpp"
#include "ds/orc/ms_queue_orc.hpp"
#include "common/workload.hpp"

namespace orcgc {
namespace {

// ---------------------------------------------------------------- bit field

TEST(OrcBits, InitialValueIsZeroUnretired) {
    EXPECT_TRUE(orc::is_zero_unretired(orc::kOrcZero));
    EXPECT_FALSE(orc::is_zero_retired(orc::kOrcZero));
    EXPECT_EQ(orc::link_count(orc::kOrcZero), 0);
    EXPECT_EQ(orc::seq(orc::kOrcZero), 0u);
}

TEST(OrcBits, IncrementAddsLinkAndBumpsSeq) {
    const std::uint64_t v = orc::kOrcZero + orc::kSeqInc + 1;
    EXPECT_EQ(orc::link_count(v), 1);
    EXPECT_EQ(orc::seq(v), 1u);
    EXPECT_FALSE(orc::is_zero_unretired(v));
}

TEST(OrcBits, DecrementBelowBiasGoesNegative) {
    // CAS increments after publication, so a racing unlink can decrement
    // first: counter dips below the bias.
    const std::uint64_t v = orc::kOrcZero + orc::kSeqInc - 1;
    EXPECT_EQ(orc::link_count(v), -1);
    EXPECT_EQ(orc::seq(v), 1u);
    // ...and the matching increment brings it back to zero.
    const std::uint64_t w = v + orc::kSeqInc + 1;
    EXPECT_EQ(orc::link_count(w), 0);
    EXPECT_TRUE(orc::is_zero_unretired(w));
}

TEST(OrcBits, RetiredBitDistinguishesStates) {
    const std::uint64_t v = orc::kOrcZero | orc::kBRetired;
    EXPECT_TRUE(orc::is_zero_retired(v));
    EXPECT_FALSE(orc::is_zero_unretired(v));
    EXPECT_EQ(orc::ocnt(v), orc::kBRetired | orc::kOrcZero);
}

TEST(OrcBits, SeqDoesNotBleedIntoCounter) {
    const std::uint64_t v = orc::kOrcZero + 1000 * orc::kSeqInc;
    EXPECT_TRUE(orc::is_zero_unretired(v));
    EXPECT_EQ(orc::seq(v), 1000u);
}

// ------------------------------------------------------------- object model

struct TestNode : orc_base, TrackedObject {
    std::uint64_t value;
    orc_atomic<TestNode*> next{nullptr};
    explicit TestNode(std::uint64_t v = 0) : value(v) {}
};

std::uint64_t orc_word(const orc_ptr<TestNode*>& p) {
    return p->_orc.load(std::memory_order_relaxed);
}

TEST(OrcLifecycle, UnlinkedObjectIsFreedWhenLastPtrDies) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        orc_ptr<TestNode*> p = make_orc<TestNode>(7);
        EXPECT_EQ(p->value, 7u);
        EXPECT_EQ(counters.live_count(), live_before + 1);
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

TEST(OrcLifecycle, HardLinkKeepsObjectAliveAfterLocalRefDies) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    orc_atomic<TestNode*> root;
    {
        orc_ptr<TestNode*> p = make_orc<TestNode>(1);
        root.store(p);
        EXPECT_EQ(orc::link_count(orc_word(p)), 1);
    }
    EXPECT_EQ(counters.live_count(), live_before + 1);  // held by the hard link
    root.store(nullptr);
    EXPECT_EQ(counters.live_count(), live_before);
}

TEST(OrcLifecycle, StoreDisplacesAndReclaimsOldTarget) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    orc_atomic<TestNode*> root;
    {
        orc_ptr<TestNode*> a = make_orc<TestNode>(1);
        root.store(a);
    }
    {
        orc_ptr<TestNode*> b = make_orc<TestNode>(2);
        root.store(b);  // displaces a, which now has no refs at all
        EXPECT_EQ(counters.live_count(), live_before + 1);
        orc_ptr<TestNode*> check = root.load();
        EXPECT_EQ(check->value, 2u);
    }
    root.store(nullptr);
    EXPECT_EQ(counters.live_count(), live_before);
}

TEST(OrcLifecycle, CasAdjustsBothCounters) {
    orc_atomic<TestNode*> root;
    orc_ptr<TestNode*> a = make_orc<TestNode>(1);
    orc_ptr<TestNode*> b = make_orc<TestNode>(2);
    root.store(a);
    EXPECT_EQ(orc::link_count(orc_word(a)), 1);
    EXPECT_TRUE(root.cas(a, b));
    EXPECT_EQ(orc::link_count(orc_word(a)), 0);
    EXPECT_EQ(orc::link_count(orc_word(b)), 1);
    EXPECT_FALSE(root.cas(a, b));  // expected no longer matches
    root.store(nullptr);
}

TEST(OrcLifecycle, FailedCasChangesNothing) {
    orc_atomic<TestNode*> root;
    orc_ptr<TestNode*> a = make_orc<TestNode>(1);
    orc_ptr<TestNode*> b = make_orc<TestNode>(2);
    root.store(a);
    const std::uint64_t word_a = orc_word(a);
    const std::uint64_t word_b = orc_word(b);
    EXPECT_FALSE(root.cas(b, b));
    EXPECT_EQ(orc_word(a), word_a);
    EXPECT_EQ(orc_word(b), word_b);
    root.store(nullptr);
}

TEST(OrcLifecycle, ExchangeReturnsProtectedOldValue) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    orc_atomic<TestNode*> root;
    {
        orc_ptr<TestNode*> a = make_orc<TestNode>(1);
        root.store(a);
    }
    {
        orc_ptr<TestNode*> old = root.exchange(nullptr);
        ASSERT_TRUE(static_cast<bool>(old));
        EXPECT_EQ(old->value, 1u);
        EXPECT_TRUE(old->check_alive());
        EXPECT_EQ(counters.live_count(), live_before + 1);  // kept alive by orc_ptr
    }
    EXPECT_EQ(counters.live_count(), live_before);
}

TEST(OrcLifecycle, ChainCascadesOnRootDrop) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    constexpr int kChain = 1000;  // long enough to catch stack-overflow regressions
    {
        orc_atomic<TestNode*> root;
        {
            orc_ptr<TestNode*> head = make_orc<TestNode>(0);
            orc_ptr<TestNode*> cur = head;
            for (int i = 1; i < kChain; ++i) {
                orc_ptr<TestNode*> next = make_orc<TestNode>(i);
                cur->next.store(next);
                cur = next;
            }
            root.store(head);
        }
        EXPECT_EQ(counters.live_count(), live_before + kChain);
        // root's destructor drops the head; the whole chain must cascade via
        // the recursion-flattening list, not the program stack.
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

TEST(OrcLifecycle, ReinsertionResurrectsRetiredObject) {
    // Obstacle 3 of §2: an object taken out of a structure and re-inserted
    // must not be freed in between, because a local reference still exists.
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    orc_atomic<TestNode*> root;
    {
        orc_ptr<TestNode*> a = make_orc<TestNode>(42);
        root.store(a);
        root.store(nullptr);  // unlink: counter drops to zero, retire fires
        EXPECT_TRUE(a->check_alive());  // but `a` still protects it
        root.store(a);  // re-insert: the object is resurrected
        EXPECT_EQ(counters.live_count(), live_before + 1);
    }
    orc_ptr<TestNode*> check = root.load();
    ASSERT_TRUE(static_cast<bool>(check));
    EXPECT_EQ(check->value, 42u);
    EXPECT_TRUE(check->check_alive());
    check = nullptr;
    root.store(nullptr);
    EXPECT_EQ(counters.live_count(), live_before);
}

// ------------------------------------------------------------------ orc_ptr

TEST(OrcPtr, CopySharesIndex) {
    orc_ptr<TestNode*> a = make_orc<TestNode>(1);
    orc_ptr<TestNode*> b = a;
    EXPECT_EQ(a.index(), b.index());
    EXPECT_EQ(a.get(), b.get());
}

TEST(OrcPtr, MoveTransfersOwnership) {
    orc_ptr<TestNode*> a = make_orc<TestNode>(1);
    const int idx = a.index();
    orc_ptr<TestNode*> b = std::move(a);
    EXPECT_EQ(b.index(), idx);
    EXPECT_EQ(a.index(), -1);
    EXPECT_EQ(a.get(), nullptr);
}

TEST(OrcPtr, SelfAssignmentIsSafe) {
    orc_ptr<TestNode*> a = make_orc<TestNode>(1);
    auto& alias = a;
    a = alias;
    EXPECT_EQ(a->value, 1u);
}

TEST(OrcPtr, AssignmentReleasesOldIndex) {
    auto& engine = OrcDomain::global();
    const int used_before = engine.used_idx_count();
    {
        orc_ptr<TestNode*> a = make_orc<TestNode>(1);
        orc_ptr<TestNode*> b = make_orc<TestNode>(2);
        EXPECT_EQ(engine.used_idx_count(), used_before + 2);
        a = b;  // a's old slot must be released
        EXPECT_EQ(engine.used_idx_count(), used_before + 1);
    }
    EXPECT_EQ(engine.used_idx_count(), used_before);
}

TEST(OrcPtr, NoIndexLeakOverManyLoads) {
    auto& engine = OrcDomain::global();
    orc_atomic<TestNode*> root;
    {
        orc_ptr<TestNode*> a = make_orc<TestNode>(1);
        root.store(a);
    }
    const int used_before = engine.used_idx_count();
    for (int i = 0; i < 10000; ++i) {
        orc_ptr<TestNode*> p = root.load();
        EXPECT_EQ(p->value, 1u);
    }
    EXPECT_EQ(engine.used_idx_count(), used_before);
    root.store(nullptr);
}

TEST(OrcPtr, MarkBitsDoNotConfuseProtection) {
    orc_ptr<TestNode*> a = make_orc<TestNode>(5);
    orc_ptr<TestNode*> m = a;
    // Simulate Harris-style traversal metadata on the local copy.
    EXPECT_FALSE(m.is_marked());
    EXPECT_EQ(m.unmarked(), a.get());
    m.unmark();
    EXPECT_EQ(m.get(), a.get());
}

// ------------------------------------------------------- MS queue (Alg. 1)

TEST(MSQueueOrc, SequentialFifo) {
    MSQueueOrc<std::uint64_t> queue;
    EXPECT_TRUE(queue.empty());
    for (std::uint64_t i = 0; i < 100; ++i) queue.enqueue(i);
    EXPECT_FALSE(queue.empty());
    for (std::uint64_t i = 0; i < 100; ++i) {
        auto v = queue.dequeue();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(queue.dequeue().has_value());
    EXPECT_TRUE(queue.empty());
}

TEST(MSQueueOrc, DequeueFromEmptyReturnsNullopt) {
    MSQueueOrc<int> queue;
    EXPECT_FALSE(queue.dequeue().has_value());
    queue.enqueue(1);
    EXPECT_EQ(queue.dequeue().value(), 1);
    EXPECT_FALSE(queue.dequeue().has_value());
}

TEST(MSQueueOrc, DestructorReclaimsRemainingNodes) {
    auto& counters = AllocCounters::instance();
    struct Item : TrackedObject {
        int v;
        explicit Item(int x) : v(x) {}
    };
    const auto live_before = counters.live_count();
    {
        MSQueueOrc<std::shared_ptr<Item>> queue;
        for (int i = 0; i < 50; ++i) queue.enqueue(std::make_shared<Item>(i));
        // drop the queue with 50 items still inside
    }
    EXPECT_EQ(counters.live_count(), live_before);
}

TEST(MSQueueOrc, ConcurrentTransferNoLossNoDuplication) {
    constexpr int kProducers = 4;
    constexpr int kConsumers = 4;
    constexpr std::uint64_t kPerProducer = 20000;
    MSQueueOrc<std::uint64_t> queue;
    std::atomic<std::uint64_t> consumed{0};
    std::vector<std::uint8_t> seen(kProducers * kPerProducer, 0);
    std::atomic<bool> producers_done{false};
    SpinBarrier barrier(kProducers + kConsumers);

    std::vector<std::thread> threads;
    std::atomic<int> producers_left{kProducers};
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            barrier.arrive_and_wait();
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                queue.enqueue(p * kPerProducer + i);
            }
            if (producers_left.fetch_sub(1) == 1) producers_done.store(true);
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            barrier.arrive_and_wait();
            while (true) {
                auto v = queue.dequeue();
                if (!v.has_value()) {
                    if (!producers_done.load()) continue;
                    v = queue.dequeue();  // re-check after observing "done"
                    if (!v.has_value()) break;
                }
                // Each value must be seen exactly once.
                ASSERT_EQ(seen[*v]++, 0);
                consumed.fetch_add(1);
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
    EXPECT_TRUE(queue.empty());
}

TEST(MSQueueOrc, PerProducerOrderPreserved) {
    constexpr int kProducers = 3;
    constexpr std::uint64_t kPerProducer = 10000;
    MSQueueOrc<std::uint64_t> queue;  // value = producer * 2^32 + seq
    SpinBarrier barrier(kProducers + 1);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            barrier.arrive_and_wait();
            for (std::uint64_t i = 0; i < kPerProducer; ++i) {
                queue.enqueue((static_cast<std::uint64_t>(p) << 32) | i);
            }
        });
    }
    std::uint64_t last_seq[kProducers];
    for (auto& v : last_seq) v = ~0ULL;
    std::uint64_t drained = 0;
    std::thread consumer([&] {
        barrier.arrive_and_wait();
        while (drained < kProducers * kPerProducer) {
            auto v = queue.dequeue();
            if (!v.has_value()) continue;
            const int p = static_cast<int>(*v >> 32);
            const std::uint64_t seq = *v & 0xFFFFFFFFu;
            // FIFO per producer: sequence numbers strictly increase.
            EXPECT_EQ(seq, last_seq[p] + 1);
            last_seq[p] = seq;
            ++drained;
        }
    });
    for (auto& t : producers) t.join();
    consumer.join();
    EXPECT_EQ(drained, kProducers * kPerProducer);
}

TEST(MSQueueOrc, NoLeaksUnderConcurrentChurn) {
    auto& counters = AllocCounters::instance();
    struct Item : TrackedObject {
        std::uint64_t v;
        explicit Item(std::uint64_t x) : v(x) {}
    };
    const auto live_before = counters.live_count();
    const auto dead_before = counters.dead_accesses();
    {
        MSQueueOrc<std::shared_ptr<Item>> queue;
        constexpr int kThreads = 6;
        const int kOpsEach = stress_iters(5000);
        SpinBarrier barrier(kThreads);
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                barrier.arrive_and_wait();
                for (int i = 0; i < kOpsEach; ++i) {
                    queue.enqueue(std::make_shared<Item>(t * kOpsEach + i));
                    auto v = queue.dequeue();
                    if (v.has_value()) {
                        EXPECT_TRUE((*v)->check_alive());
                    }
                }
            });
        }
        for (auto& t : threads) t.join();
        while (queue.dequeue().has_value()) {
        }
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.dead_accesses(), dead_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

}  // namespace
}  // namespace orcgc
