// Soundness checks for the AllocTracker substrate itself, plus an
// ASan-backed double-free canary.
//
// The reclamation tests lean on TrackedObject to detect double-retire and
// use-after-retire bugs; these tests prove the detector actually detects.
// Construction/destruction here uses placement new into raw storage so the
// double-destroy path exercises only the canary word, never the heap — the
// final test then performs a *real* heap double-delete under a death-test
// fork so an ASan build fails loudly while plain builds skip it.

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/thread_registry.hpp"

#if defined(__SANITIZE_ADDRESS__)
#define ORCGC_TEST_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define ORCGC_TEST_ASAN 1
#endif
#endif
#ifndef ORCGC_TEST_ASAN
#define ORCGC_TEST_ASAN 0
#endif

#if defined(__SANITIZE_THREAD__)
#define ORCGC_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ORCGC_TEST_TSAN 1
#endif
#endif
#ifndef ORCGC_TEST_TSAN
#define ORCGC_TEST_TSAN 0
#endif

namespace orcgc {
namespace {

struct TrackedNode : TrackedObject {
    std::uint64_t payload = 0;
};

TEST(AllocTracker, ConstructDestroyBalances) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    alignas(TrackedNode) unsigned char storage[sizeof(TrackedNode)];
    auto* node = ::new (storage) TrackedNode;
    EXPECT_EQ(counters.live_count(), live_before + 1);
    EXPECT_TRUE(node->check_alive());
    node->~TrackedNode();
    EXPECT_EQ(counters.live_count(), live_before);
}

TEST(AllocTracker, DoubleDestroyTripsCanary) {
    auto& counters = AllocCounters::instance();
    const auto doubles_before = counters.double_destroys();
    alignas(TrackedNode) unsigned char storage[sizeof(TrackedNode)];
    auto* node = ::new (storage) TrackedNode;
    node->~TrackedNode();
    // A second destruction models a double-retire: the same node handed to
    // the reclaimer twice. The canary has already been flipped to kDead, so
    // this must land in double_destroys, not destroyed.
    const auto destroyed_before = counters.destroyed();
    node->~TrackedNode();
    EXPECT_EQ(counters.double_destroys(), doubles_before + 1);
    EXPECT_EQ(counters.destroyed(), destroyed_before);
}

TEST(AllocTracker, UseAfterRetireTripsCanary) {
    auto& counters = AllocCounters::instance();
    const auto dead_before = counters.dead_accesses();
    alignas(TrackedNode) unsigned char storage[sizeof(TrackedNode)];
    auto* node = ::new (storage) TrackedNode;
    node->~TrackedNode();
    // Reading a node after its destructor ran models a protection bug: a
    // reclaimer freed a node another thread still held. check_alive() must
    // report it rather than silently succeed.
    EXPECT_FALSE(node->check_alive());
    EXPECT_EQ(counters.dead_accesses(), dead_before + 1);
}

#if ORCGC_TEST_ASAN
TEST(AllocTrackerDeathTest, HeapDoubleDeleteDiesUnderASan) {
    // The real thing: a genuine heap double-delete, the bug every reclamation
    // scheme here exists to prevent. ASan must abort the (forked) child — the
    // second ~TrackedObject writes its canary into freed memory, so the
    // report is heap-use-after-free (or double-free for a trivial type).
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            auto* node = new TrackedNode;
            delete node;
            delete node;
        },
        "AddressSanitizer: (heap-use-after-free|attempting double-free)");
}
#else
TEST(AllocTrackerDeathTest, HeapDoubleDeleteDiesUnderASan) {
    GTEST_SKIP() << "heap double-delete canary requires an ASan build "
                    "(-DORCGC_SANITIZE=ON)";
}
#endif

#if !ORCGC_TEST_TSAN
TEST(ThreadRegistryDeathTest, ExhaustionIsAFatalDiagnostic) {
    // Registering more than kMaxThreads concurrent threads is a programming
    // error the registry cannot paper over (a dense id array backs every
    // hazardous-pointer scan). It must die with an actionable message, not
    // return a bogus id or corrupt a neighbor's slots. Forked child: the
    // kMaxThreads+1-th registration calls fatal() while the others sit
    // parked on the condition variable.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            std::mutex mu;
            std::condition_variable cv;
            bool release = false;
            std::vector<std::thread> threads;
            threads.reserve(kMaxThreads + 1);
            for (int i = 0; i < kMaxThreads + 1; ++i) {
                threads.emplace_back([&] {
                    (void)thread_id();  // claim a dense id, hold it while parked
                    std::unique_lock<std::mutex> lock(mu);
                    cv.wait(lock, [&] { return release; });
                });
            }
            for (auto& t : threads) t.join();  // unreachable: the last spawn aborts
        },
        "thread registry exhausted");
}
#else
TEST(ThreadRegistryDeathTest, ExhaustionIsAFatalDiagnostic) {
    GTEST_SKIP() << "death-test fork with 129 threads is not reliable under TSan";
}
#endif

}  // namespace
}  // namespace orcgc
