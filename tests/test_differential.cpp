// Differential and edge-case tests:
//   * equivalence — every set implementation must produce identical results
//     for the same randomized operation tape (catching semantic drift
//     between the manual and OrcGC variants of the same algorithm);
//   * LCRQ ring edges — full-ring closure, tiny rings, value-range limits;
//   * orc_atomic::exchange – displaced-value protection semantics.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/rng.hpp"
#include "ds/michael_list.hpp"
#include "ds/nm_tree.hpp"
#include "ds/orc/crf_skiplist_orc.hpp"
#include "ds/orc/harris_list_orc.hpp"
#include "ds/orc/hash_map_orc.hpp"
#include "ds/orc/hs_list_orc.hpp"
#include "ds/orc/hs_skiplist_orc.hpp"
#include "ds/orc/lcrq_orc.hpp"
#include "ds/orc/michael_list_orc.hpp"
#include "ds/orc/nm_tree_orc.hpp"
#include "reclamation/reclamation.hpp"
#include "common/workload.hpp"

namespace orcgc {
namespace {

using Key = std::uint64_t;

// ------------------------------------------------------- differential sets

struct TapeEntry {
    int op;  // 0 insert, 1 remove, 2 contains
    Key key;
};

std::vector<TapeEntry> make_tape(std::uint64_t seed, int length, Key key_range) {
    std::vector<TapeEntry> tape;
    tape.reserve(length);
    Xoshiro256 rng(seed);
    for (int i = 0; i < length; ++i) {
        tape.push_back({static_cast<int>(rng.next_bounded(3)), rng.next_bounded(key_range)});
    }
    return tape;
}

template <typename Set>
std::vector<bool> run_tape(const std::vector<TapeEntry>& tape) {
    Set set;
    std::vector<bool> results;
    results.reserve(tape.size());
    for (const auto& entry : tape) {
        switch (entry.op) {
            case 0: results.push_back(set.insert(entry.key)); break;
            case 1: results.push_back(set.remove(entry.key)); break;
            default: results.push_back(set.contains(entry.key)); break;
        }
    }
    return results;
}

TEST(Differential, AllSetImplementationsAgreeOnRandomTapes) {
    for (std::uint64_t seed : {1ULL, 99ULL, 31337ULL}) {
        const auto tape = make_tape(seed, stress_iters(6000), 96);
        const auto reference = run_tape<MichaelList<Key, HazardPointers>>(tape);
        EXPECT_EQ((run_tape<MichaelList<Key, PassThePointer>>(tape)), reference) << seed;
        EXPECT_EQ((run_tape<MichaelList<Key, Hyaline>>(tape)), reference) << seed;
        EXPECT_EQ((run_tape<MichaelList<Key, Debra>>(tape)), reference) << seed;
        EXPECT_EQ(run_tape<MichaelListOrc<Key>>(tape), reference) << seed;
        EXPECT_EQ(run_tape<HarrisListOrc<Key>>(tape), reference) << seed;
        EXPECT_EQ(run_tape<HSListOrc<Key>>(tape), reference) << seed;
        EXPECT_EQ((run_tape<NMTree<Key, EpochBasedReclaimer>>(tape)), reference) << seed;
        EXPECT_EQ(run_tape<NMTreeOrc<Key>>(tape), reference) << seed;
        EXPECT_EQ(run_tape<HSSkipListOrc<Key>>(tape), reference) << seed;
        EXPECT_EQ(run_tape<CRFSkipListOrc<Key>>(tape), reference) << seed;
        EXPECT_EQ(run_tape<HashMapOrc<Key>>(tape), reference) << seed;
    }
}

// --------------------------------------------------------- LCRQ ring edges

TEST(LCRQEdge, FullRingClosesAndChainsSegments) {
    // Ring of 8 cells: the 9th enqueue without dequeues must close the ring
    // and chain a fresh one — FIFO must survive the seam.
    LCRQOrc<Key, 3> queue;
    for (Key i = 0; i < 100; ++i) queue.enqueue(i);
    for (Key i = 0; i < 100; ++i) {
        auto v = queue.dequeue();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(queue.dequeue().has_value());
}

TEST(LCRQEdge, AlternatingNeverChainsUnnecessarily) {
    auto& counters = AllocCounters::instance();
    LCRQOrc<Key, 3> queue;
    const auto live_start = counters.live_count();
    for (Key i = 0; i < 10000; ++i) {
        queue.enqueue(i);
        EXPECT_EQ(queue.dequeue().value(), i);
    }
    // Steady alternation fits in one ring: no segment churn, no node growth.
    EXPECT_LE(counters.live_count(), live_start + 1);
}

TEST(LCRQEdge, ZeroAndMaxEncodableValues) {
    LCRQOrc<Key> queue;
    queue.enqueue(0);
    queue.enqueue(~Key{0} - 1);  // encoding adds 1; max-1 is the largest safe value
    EXPECT_EQ(queue.dequeue().value(), 0u);
    EXPECT_EQ(queue.dequeue().value(), ~Key{0} - 1);
}

TEST(LCRQEdge, EmptyAfterDrainAcrossSegments) {
    LCRQOrc<Key, 3> queue;
    for (int round = 0; round < 5; ++round) {
        EXPECT_TRUE(queue.empty());
        for (Key i = 0; i < 50; ++i) queue.enqueue(i);
        EXPECT_FALSE(queue.empty());
        for (Key i = 0; i < 50; ++i) EXPECT_TRUE(queue.dequeue().has_value());
        EXPECT_FALSE(queue.dequeue().has_value());
    }
}

// ------------------------------------------------- orc_atomic::exchange

struct XNode : orc_base, TrackedObject {
    int v;
    explicit XNode(int x) : v(x) {}
};

TEST(OrcExchange, DisplacedValueStaysProtected) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    orc_atomic<XNode*> link;
    {
        orc_ptr<XNode*> a = make_orc<XNode>(1);
        link.store(a);
    }
    {
        orc_ptr<XNode*> b = make_orc<XNode>(2);
        orc_ptr<XNode*> old = link.exchange(b.get());
        ASSERT_TRUE(static_cast<bool>(old));
        EXPECT_EQ(old->v, 1);
        EXPECT_TRUE(old->check_alive());
        // old has no hard links left; it must survive exactly as long as the
        // returned orc_ptr does.
        EXPECT_EQ(counters.live_count(), live_before + 2);
    }
    EXPECT_EQ(counters.live_count(), live_before + 1);  // only b remains (linked)
    link.store(nullptr);
    EXPECT_EQ(counters.live_count(), live_before);
}

TEST(OrcExchange, ExchangeWithNullReturnsEmpty) {
    orc_atomic<XNode*> link;
    orc_ptr<XNode*> old = link.exchange(nullptr);
    EXPECT_FALSE(static_cast<bool>(old));
}

}  // namespace
}  // namespace orcgc
