// Stalled-reader watchdog true positive (DESIGN.md §1.8).
//
// The scenario the watchdog exists for: a reader publishes protections
// mid-traversal and then stops making progress — descheduled, blocked on I/O,
// or wedged — while writers keep retiring the nodes it protects. Every such
// retire parks against the reader's handover slots, so the garbage attributed
// to the frozen slot GROWS. The watchdog must flag exactly that slot, report
// the pinned total, and clear the flag once the reader resumes and drains.
//
// Determinism: the test drives watchdog_sample() directly (the cascade-end
// subsampling is a production cadence, not a contract) and builds the
// suspect state one retire at a time. With kStallPinnedMin = 2 and the
// 2-sample streak requirement, the sample sequence is forced:
//
//   sample 1   pinned=0   latches the frozen heartbeat, not qualifying
//   retire n1, sample 2   pinned=1   below kStallPinnedMin, streak stays 0
//   retire n2, sample 3   pinned=2   qualifying, streak 1 — still silent
//   retire n3, sample 4   pinned=3   qualifying, streak 2 — FLAGGED
//
// The reader stalls between protection calls (an atomic spin — equivalent to
// a descheduled thread: what the sampler sees frozen is the published-hp
// fingerprint and the slot-transition heartbeat, and both only move when the
// reader touches its protection set, not because of how the thread is
// parked). Retires run synchronously on the main thread, so every park is
// visible before the next sample; no sleeps, no schedule dependence — the
// ASan/TSan legs run this unchanged.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/telemetry.hpp"
#include "common/thread_registry.hpp"
#include "core/orc.hpp"

namespace orcgc {
namespace {

struct Node : orc_base {
    std::uint64_t value = 0;
};

static_assert(telemetry::kTelemetryEnabled,
              "the watchdog suite does not support -DORCGC_TELEMETRY=OFF builds");

TEST(StalledReaderWatchdogTest, FlagsAStalledReaderPinningGrowingGarbage) {
    auto domain = std::make_unique<OrcDomain>();
    orc_ptr<Node*> n1 = make_orc_in<Node>(*domain);
    orc_ptr<Node*> n2 = make_orc_in<Node>(*domain);
    orc_ptr<Node*> n3 = make_orc_in<Node>(*domain);
    orc_base* r1 = n1.get();
    orc_base* r2 = n2.get();
    orc_base* r3 = n3.get();

    std::atomic<int> phase{0};
    std::atomic<int> reader_tid{-1};
    std::thread reader([&] {
        reader_tid.store(thread_id(), std::memory_order_release);
        const int i1 = domain->get_new_idx();
        const int i2 = domain->get_new_idx();
        const int i3 = domain->get_new_idx();
        domain->protect_ptr(r1, i1);
        domain->protect_ptr(r2, i2);
        domain->protect_ptr(r3, i3);
        phase.store(1, std::memory_order_release);
        // Stalled mid-traversal: no protection calls, heartbeat frozen.
        while (phase.load(std::memory_order_acquire) < 2) std::this_thread::yield();
        domain->release_idx(i3, nullptr);
        domain->release_idx(i2, nullptr);
        domain->release_idx(i1, nullptr);
    });
    while (phase.load(std::memory_order_acquire) < 1) std::this_thread::yield();
    const int tid = reader_tid.load(std::memory_order_acquire);
    ASSERT_GE(tid, 0);

    // Sample 1: latches the frozen heartbeat. Published but pinning nothing —
    // an idle reader is not a suspect.
    domain->watchdog_sample();
    EXPECT_FALSE(domain->stall_suspect(tid));
    EXPECT_EQ(domain->stall_suspects(), 0u);

    // Each drop retires a node the reader protects; the retire scan parks it
    // against the reader's slot synchronously, before the next sample.
    n1 = nullptr;
    domain->watchdog_sample();  // pinned=1 < kStallPinnedMin: still silent
    EXPECT_FALSE(domain->stall_suspect(tid));

    n2 = nullptr;
    domain->watchdog_sample();  // pinned=2, first qualifying sample (streak 1)
    EXPECT_FALSE(domain->stall_suspect(tid)) << "one qualifying sample must not flag";

    n3 = nullptr;
    domain->watchdog_sample();  // pinned=3, streak 2: flagged
    EXPECT_TRUE(domain->stall_suspect(tid));
    EXPECT_EQ(domain->stall_suspects(), 1u);
    EXPECT_GE(domain->stall_pinned(), 3u) << "all three parked nodes attributed";

    // The gauges ride the domain's telemetry source.
    const std::string json = telemetry::export_json();
    EXPECT_NE(json.find("\"stall_suspects\": 1"), std::string::npos) << json;

    // Resume: the releases bump the heartbeat and drain the handovers, so
    // the next pass exonerates the slot.
    phase.store(2, std::memory_order_release);
    reader.join();
    domain->watchdog_sample();
    EXPECT_FALSE(domain->stall_suspect(tid));
    EXPECT_EQ(domain->stall_suspects(), 0u);
    EXPECT_EQ(domain->stall_pinned(), 0u);
}

TEST(StalledReaderWatchdogTest, ActiveReaderIsNeverFlagged) {
    auto domain = std::make_unique<OrcDomain>();
    orc_ptr<Node*> a = make_orc_in<Node>(*domain);
    orc_ptr<Node*> b = make_orc_in<Node>(*domain);
    orc_base* ra = a.get();
    orc_base* rb = b.get();

    std::atomic<bool> stop{false};
    std::thread reader([&] {
        const int idx = domain->get_new_idx();
        // A live traversal publishes a CHANGING sequence of hazards — that
        // moving published-value fingerprint is how the sampler sees
        // progress without the publish fast paths carrying any watchdog
        // code. (The protect fast paths deliberately do not tick the
        // heartbeat; see watchdog_sample.)
        bool flip = false;
        while (!stop.load(std::memory_order_acquire)) {
            domain->protect_ptr(flip ? ra : rb, idx);
            flip = !flip;
        }
        domain->release_idx(idx, nullptr);
    });
    for (int i = 0; i < 16; ++i) {
        domain->watchdog_sample();
        EXPECT_EQ(domain->stall_suspects(), 0u);
        std::this_thread::yield();
    }
    stop.store(true, std::memory_order_release);
    reader.join();
}

}  // namespace
}  // namespace orcgc
