// Unit tests for the common substrate: thread registry, marked pointers,
// RNG, barrier, allocation tracker, workload generators.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/barrier.hpp"
#include "common/marked_ptr.hpp"
#include "common/rng.hpp"
#include "common/thread_registry.hpp"
#include "common/workload.hpp"

namespace orcgc {
namespace {

TEST(ThreadRegistry, MainThreadGetsStableId) {
    const int tid = thread_id();
    EXPECT_GE(tid, 0);
    EXPECT_LT(tid, kMaxThreads);
    EXPECT_EQ(tid, thread_id());  // idempotent per thread
}

TEST(ThreadRegistry, ConcurrentIdsAreUnique) {
    constexpr int kThreads = 16;
    std::vector<int> ids(kThreads, -1);
    std::vector<std::thread> threads;
    SpinBarrier barrier(kThreads);
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&, i] {
            ids[i] = thread_id();
            // Hold the slot until every thread has claimed one, so exits
            // cannot recycle ids into still-starting threads.
            barrier.arrive_and_wait();
        });
    }
    for (auto& t : threads) t.join();
    std::set<int> unique(ids.begin(), ids.end());
    EXPECT_EQ(unique.size(), static_cast<std::size_t>(kThreads));
    for (int id : ids) {
        EXPECT_GE(id, 0);
        EXPECT_LT(id, kMaxThreads);
    }
}

TEST(ThreadRegistry, IdsAreReusedAfterThreadExit) {
    int first = -1;
    std::thread([&] { first = thread_id(); }).join();
    int second = -1;
    std::thread([&] { second = thread_id(); }).join();
    EXPECT_EQ(first, second);  // the slot freed by the first thread is reused
}

TEST(ThreadRegistry, WatermarkCoversAllIssuedIds) {
    std::vector<std::thread> threads;
    std::atomic<int> max_seen{0};
    for (int i = 0; i < 8; ++i) {
        threads.emplace_back([&] {
            int tid = thread_id();
            int cur = max_seen.load();
            while (cur < tid && !max_seen.compare_exchange_weak(cur, tid)) {
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_GE(thread_id_watermark(), max_seen.load() + 1);
}

TEST(MarkedPtr, RoundTrip) {
    int x = 0;
    int* p = &x;
    EXPECT_FALSE(is_marked(p));
    int* m = get_marked(p);
    EXPECT_TRUE(is_marked(m));
    EXPECT_EQ(get_unmarked(m), p);
    EXPECT_EQ(get_unmarked(p), p);
}

TEST(MarkedPtr, FlagBitIndependentOfMarkBit) {
    long v = 0;
    long* p = &v;
    long* f = get_flagged(p);
    EXPECT_TRUE(is_flagged(f));
    EXPECT_FALSE(is_marked(f));
    long* fm = get_marked(f);
    EXPECT_TRUE(is_flagged(fm));
    EXPECT_TRUE(is_marked(fm));
    EXPECT_EQ(get_unmarked(fm), p);
}

TEST(MarkedPtr, WithBitsOfTransfersLowBits) {
    int a = 0, b = 0;
    int* src = get_marked(&a);
    int* dst = with_bits_of(&b, src);
    EXPECT_TRUE(is_marked(dst));
    EXPECT_EQ(get_unmarked(dst), &b);
}

TEST(MarkedPtr, NullHandling) {
    int* null = nullptr;
    EXPECT_FALSE(is_marked(null));
    EXPECT_EQ(get_unmarked(null), nullptr);
    EXPECT_TRUE(is_marked(get_marked(null)));
}

TEST(Rng, DeterministicForSameSeed) {
    Xoshiro256 a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Xoshiro256 a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() != b.next()) ++differing;
    }
    EXPECT_GT(differing, 90);
}

TEST(Rng, BoundedStaysInBounds) {
    Xoshiro256 rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_bounded(bound), bound);
    }
}

TEST(Rng, BoundedIsRoughlyUniform) {
    Xoshiro256 rng(99);
    constexpr int kBuckets = 10;
    constexpr int kSamples = 100000;
    int histogram[kBuckets] = {};
    for (int i = 0; i < kSamples; ++i) ++histogram[rng.next_bounded(kBuckets)];
    for (int count : histogram) {
        EXPECT_GT(count, kSamples / kBuckets * 0.9);
        EXPECT_LT(count, kSamples / kBuckets * 1.1);
    }
}

TEST(Rng, DoubleInUnitInterval) {
    Xoshiro256 rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double d = rng.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Barrier, ReleasesAllParties) {
    constexpr int kThreads = 8;
    SpinBarrier barrier(kThreads);
    std::atomic<int> before{0}, after{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&] {
            before.fetch_add(1);
            barrier.arrive_and_wait();
            EXPECT_EQ(before.load(), kThreads);  // nobody passes before all arrive
            after.fetch_add(1);
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(after.load(), kThreads);
}

TEST(Barrier, ReusableAcrossGenerations) {
    constexpr int kThreads = 4;
    constexpr int kRounds = 50;
    SpinBarrier barrier(kThreads);
    std::atomic<int> counter{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kThreads; ++i) {
        threads.emplace_back([&] {
            for (int r = 0; r < kRounds; ++r) {
                barrier.arrive_and_wait();
                counter.fetch_add(1);
                barrier.arrive_and_wait();
                // Between the two barriers every thread of this round has
                // incremented: the count is a multiple of kThreads.
                EXPECT_EQ(counter.load() % kThreads, 0);
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(counter.load(), kThreads * kRounds);
}

TEST(AllocTracker, CountsConstructionsAndDestructions) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        TrackedObject a;
        TrackedObject b;
        EXPECT_EQ(counters.live_count(), live_before + 2);
    }
    EXPECT_EQ(counters.live_count(), live_before);
}

TEST(AllocTracker, DetectsDeadAccess) {
    auto& counters = AllocCounters::instance();
    const auto dead_before = counters.dead_accesses();
    alignas(TrackedObject) unsigned char storage[sizeof(TrackedObject)];
    auto* obj = new (storage) TrackedObject();
    EXPECT_TRUE(obj->check_alive());
    obj->~TrackedObject();
    EXPECT_FALSE(obj->check_alive());
    EXPECT_EQ(counters.dead_accesses(), dead_before + 1);
}

TEST(Workload, MixPercentagesRespected) {
    Xoshiro256 rng(5);
    constexpr int kSamples = 100000;
    for (const auto& mix : kAllMixes) {
        int inserts = 0, removes = 0, lookups = 0;
        for (int i = 0; i < kSamples; ++i) {
            switch (next_op(rng, mix)) {
                case SetOp::kInsert: ++inserts; break;
                case SetOp::kRemove: ++removes; break;
                case SetOp::kContains: ++lookups; break;
            }
        }
        EXPECT_NEAR(inserts * 100.0 / kSamples, mix.insert_pct, 1.5) << mix.name;
        EXPECT_NEAR(removes * 100.0 / kSamples, mix.remove_pct, 1.5) << mix.name;
        EXPECT_NEAR(lookups * 100.0 / kSamples, 100 - mix.update_pct(), 1.5) << mix.name;
    }
}

TEST(Workload, ReadOnlyMixNeverWrites) {
    Xoshiro256 rng(11);
    for (int i = 0; i < 10000; ++i) EXPECT_EQ(next_op(rng, kReadOnly), SetOp::kContains);
}

}  // namespace
}  // namespace orcgc
