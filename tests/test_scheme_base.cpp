// Substrate unit tests: drive SchemeBase directly through a minimal probe
// scheme, independent of any real reclaimer's scan logic. Covers the shared
// slot lifecycle (dense per-thread slots, reuse after thread exit), the
// retire-bag park/sweep/destructor paths, the adaptive scan threshold
// (widen-while-pinned, cap, snap-back), the validated protect loop, and the
// registry-exhaustion fatal() now firing from the shared my_slot() path.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/barrier.hpp"
#include "common/telemetry.hpp"
#include "common/thread_registry.hpp"
#include "reclamation/reclaimable.hpp"
#include "reclamation/scheme_base.hpp"

namespace orcgc {
namespace {

struct ProbeNode : ReclaimableBase, TrackedObject {};

struct ProbeState {
    std::atomic<ProbeNode*> hp{nullptr};
};

// Minimal scheme: forwards the protected substrate surface so the tests can
// poke each shared mechanism in isolation.
class ProbeScheme : public SchemeBase<ProbeScheme, ProbeNode, 2, ProbeState> {
    using Base = SchemeBase<ProbeScheme, ProbeNode, 2, ProbeState>;

  public:
    static constexpr const char* kName = "Probe";
    static constexpr bool kUsesEras = false;
    static constexpr int kHPs = 2;

    int slot_index() { return static_cast<int>(&my_slot() - tl_); }

    void retire_parked(ProbeNode* node) {
        note_retire(node);
        buffer_retired(my_slot(), node);
    }

    std::size_t buffered() { return my_slot().retired[0].size(); }
    std::size_t threshold() { return scan_threshold(my_slot()); }
    bool past_threshold() { return past_scan_threshold(my_slot()); }

    /// Sweeps the calling thread's bag, freeing the first `free_n` items.
    void sweep_first(std::size_t free_n) {
        enter_scan();
        std::size_t taken = 0;
        sweep_retired<true>(my_slot(), [&](ProbeNode*) { return taken++ < free_n; });
    }

    ProbeNode* protect(const std::atomic<ProbeNode*>& src) {
        return protect_pointer_loop(src, my_slot().hp);
    }
    void clear() { clear_pointer(my_slot().hp); }
};

// --------------------------------------------------------- slot lifecycle

TEST(SchemeBaseSlots, ThreadsGetStableDistinctSlotsWithinCapacity) {
    ProbeScheme gc;
    const int main_idx = gc.slot_index();
    EXPECT_GE(main_idx, 0);
    EXPECT_LT(main_idx, kMaxThreads);
    EXPECT_EQ(gc.slot_index(), main_idx);  // stable across calls

    constexpr int kWorkers = 8;
    int idx[kWorkers];
    SpinBarrier barrier(kWorkers);
    std::vector<std::thread> workers;
    for (int t = 0; t < kWorkers; ++t) {
        workers.emplace_back([&, t] {
            const int mine = gc.slot_index();
            barrier.arrive_and_wait();  // hold all registrations concurrent
            idx[t] = mine;
            EXPECT_EQ(gc.slot_index(), mine);
        });
    }
    for (auto& w : workers) w.join();
    for (int a = 0; a < kWorkers; ++a) {
        EXPECT_GE(idx[a], 0);
        EXPECT_LT(idx[a], kMaxThreads);
        EXPECT_NE(idx[a], main_idx) << "worker " << a;
        for (int b = a + 1; b < kWorkers; ++b) {
            EXPECT_NE(idx[a], idx[b]) << "workers " << a << "," << b;
        }
    }
}

TEST(SchemeBaseSlots, ExitedThreadsSlotIsReusedDensely) {
    ProbeScheme gc;
    int first = -1;
    std::thread([&] { first = gc.slot_index(); }).join();
    int second = -2;
    std::thread([&] { second = gc.slot_index(); }).join();
    // The registry hands out the lowest free id, so a sequential successor
    // lands on the slot the exited thread released.
    EXPECT_EQ(second, first);
}

// ------------------------------------------------------------- retire bags

TEST(SchemeBaseBags, RetiresParkUntilSweptAndDestructorFreesLeftovers) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        ProbeScheme gc;
        for (int i = 0; i < 10; ++i) gc.retire_parked(new ProbeNode);
        EXPECT_EQ(gc.buffered(), 10u);
        EXPECT_EQ(counters.live_count(), live_before + 10);  // parked, not freed
        gc.sweep_first(10);
        EXPECT_EQ(gc.buffered(), 0u);
        EXPECT_EQ(counters.live_count(), live_before);
        if constexpr (telemetry::kTelemetryEnabled) {
            EXPECT_EQ(gc.unreclaimed_count(), 0u);
        }
        for (int i = 0; i < 7; ++i) gc.retire_parked(new ProbeNode);
    }
    // Base destructor drains every bag.
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

TEST(SchemeBaseBags, SweepKeepsItemsThePredicateRejects) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        ProbeScheme gc;
        for (int i = 0; i < 6; ++i) gc.retire_parked(new ProbeNode);
        gc.sweep_first(2);  // frees 2, keeps 4 in retire order
        EXPECT_EQ(gc.buffered(), 4u);
        EXPECT_EQ(counters.live_count(), live_before + 4);
    }
    EXPECT_EQ(counters.live_count(), live_before);
}

// ------------------------------------------------------ adaptive threshold

TEST(SchemeBaseThreshold, WidensWhileScansComeBackEmptyThenSnapsBack) {
    ProbeScheme gc;
    (void)gc.slot_index();  // pin the watermark before computing the base
    const std::size_t base = static_cast<std::size_t>(ProbeScheme::kHPs) *
                                 thread_id_watermark() +
                             ProbeScheme::kHPs + 8;
    ASSERT_EQ(gc.threshold(), base);

    auto park = [&](int n) {
        for (int i = 0; i < n; ++i) gc.retire_parked(new ProbeNode);
    };

    // Empty scans (freed*4 < scanned) widen the threshold, one doubling per
    // scan, capped at 8x base.
    park(4);
    gc.sweep_first(0);
    EXPECT_EQ(gc.threshold(), base * 2);
    gc.sweep_first(0);
    gc.sweep_first(0);
    EXPECT_EQ(gc.threshold(), base * 8);
    gc.sweep_first(0);  // capped
    EXPECT_EQ(gc.threshold(), base * 8);

    // A middling scan (a quarter freed: neither starving nor productive)
    // holds the current width.
    gc.sweep_first(1);
    EXPECT_EQ(gc.threshold(), base * 8);

    // A productive scan (at least half freed) snaps straight back to base.
    gc.sweep_first(3);
    EXPECT_EQ(gc.threshold(), base);
    EXPECT_EQ(gc.buffered(), 0u);

    EXPECT_FALSE(gc.past_threshold());
}

// -------------------------------------------------- validated protect loop

TEST(SchemeBaseProtect, ProtectLoopReturnsSourceValidatedValue) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        ProbeScheme gc;
        ProbeNode* a = new ProbeNode;
        std::atomic<ProbeNode*> src{a};
        EXPECT_EQ(gc.protect(src), a);
        src.store(nullptr, std::memory_order_release);
        EXPECT_EQ(gc.protect(src), nullptr);  // revalidates against the source
        gc.clear();
        delete a;
    }
    EXPECT_EQ(counters.live_count(), live_before);
}

// -------------------------------------------------------- exhaustion death

TEST(SchemeBaseDeath, ThreadBeyondRegistryCapacityDiesOnSharedSlotPath) {
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            ProbeScheme gc;
            // kMaxThreads + 1 threads all claim a slot through the shared
            // my_slot() path and then park, so registrations stay concurrent;
            // by pigeonhole one claimant must overflow the registry and hit
            // the fatal() diagnostic.
            std::atomic<int> arrived{0};
            std::vector<std::thread> workers;
            for (int t = 0; t < kMaxThreads + 1; ++t) {
                workers.emplace_back([&] {
                    (void)gc.slot_index();
                    arrived.fetch_add(1, std::memory_order_acq_rel);
                    while (arrived.load(std::memory_order_acquire) < kMaxThreads + 1) {
                        std::this_thread::yield();
                    }
                });
            }
            for (auto& w : workers) w.join();
        },
        "thread registry exhausted");
}

}  // namespace
}  // namespace orcgc
