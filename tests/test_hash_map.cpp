// Tests for the OrcGC hash set: set semantics across bucket counts
// (including bucket_count = 1, which degenerates to the plain list),
// concurrent linearizability witnesses and reclamation soundness.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/barrier.hpp"
#include "common/rng.hpp"
#include "ds/orc/hash_map_orc.hpp"
#include "common/workload.hpp"

namespace orcgc {
namespace {

using Key = std::uint64_t;

TEST(HashMapOrc, BucketCountRoundsUpToPowerOfTwo) {
    EXPECT_EQ(HashMapOrc<Key>(1).bucket_count(), 1u);
    EXPECT_EQ(HashMapOrc<Key>(2).bucket_count(), 2u);
    EXPECT_EQ(HashMapOrc<Key>(3).bucket_count(), 4u);
    EXPECT_EQ(HashMapOrc<Key>(1000).bucket_count(), 1024u);
}

TEST(HashMapOrc, MixHashSpreadsDenseKeys) {
    // Dense integer keys must not pile into few buckets.
    constexpr std::size_t kBuckets = 64;
    constexpr std::uint64_t kKeys = 6400;
    std::vector<int> histogram(kBuckets, 0);
    for (std::uint64_t k = 0; k < kKeys; ++k) ++histogram[mix_hash(k) & (kBuckets - 1)];
    for (int count : histogram) {
        EXPECT_GT(count, 50);   // ±50% of the 100 expected
        EXPECT_LT(count, 150);
    }
}

class HashMapParam : public ::testing::TestWithParam<std::size_t /*buckets*/> {};

TEST_P(HashMapParam, SetSemanticsAgainstReference) {
    HashMapOrc<Key> map(GetParam());
    std::vector<bool> reference(512, false);
    Xoshiro256 rng(4096);
    for (int i = 0; i < 20000; ++i) {
        const Key k = rng.next_bounded(512);
        switch (rng.next_bounded(3)) {
            case 0:
                EXPECT_EQ(map.insert(k), !reference[k]) << "key " << k;
                reference[k] = true;
                break;
            case 1:
                EXPECT_EQ(map.remove(k), reference[k]) << "key " << k;
                reference[k] = false;
                break;
            default:
                EXPECT_EQ(map.contains(k), static_cast<bool>(reference[k])) << "key " << k;
        }
    }
}

TEST_P(HashMapParam, ConcurrentContestedKeysLinearizable) {
    constexpr int kThreads = 6;
    constexpr Key kKeyRange = 64;
    const int kOpsEach = stress_iters(3000);
    HashMapOrc<Key> map(GetParam());
    std::atomic<std::int64_t> ins[kKeyRange] = {};
    std::atomic<std::int64_t> rem[kKeyRange] = {};
    SpinBarrier barrier(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            Xoshiro256 rng(606 + t);
            barrier.arrive_and_wait();
            for (int i = 0; i < kOpsEach; ++i) {
                const Key k = rng.next_bounded(kKeyRange);
                if (rng.next_bounded(2) == 0) {
                    if (map.insert(k)) ins[k].fetch_add(1, std::memory_order_relaxed);
                } else {
                    if (map.remove(k)) rem[k].fetch_add(1, std::memory_order_relaxed);
                }
            }
        });
    }
    for (auto& th : threads) th.join();
    for (Key k = 0; k < kKeyRange; ++k) {
        const auto balance = ins[k].load() - rem[k].load();
        ASSERT_GE(balance, 0);
        ASSERT_LE(balance, 1);
        EXPECT_EQ(map.contains(k), balance == 1) << "key " << k;
    }
}

TEST_P(HashMapParam, NoLeaksUnderConcurrentChurn) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        HashMapOrc<Key> map(GetParam());
        constexpr int kThreads = 4;
        SpinBarrier barrier(kThreads);
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                Xoshiro256 rng(515 * (t + 1));
                barrier.arrive_and_wait();
                const int ops_each = stress_iters(3000);
                for (int i = 0; i < ops_each; ++i) {
                    const Key k = rng.next_bounded(96);
                    if (rng.next_bounded(2) == 0) {
                        map.insert(k);
                    } else {
                        map.remove(k);
                    }
                }
            });
        }
        for (auto& th : threads) th.join();
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

INSTANTIATE_TEST_SUITE_P(Buckets, HashMapParam, ::testing::Values(1, 4, 64, 1024),
                         [](const auto& param_info) { return "b" + std::to_string(param_info.param); });

}  // namespace
}  // namespace orcgc
