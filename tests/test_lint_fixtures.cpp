// Self-tests for the orc-lint static checker (tools/orc_lint/).
//
// Each rule R1–R13 must fire on its crafted bad fixture tree and stay silent
// on the good tree; the suppression grammar must reject a bare allow() and
// honor a justified one. The last test is the enforcement gate itself: the
// real src/ tree must lint clean. Fixture paths and the linter binary
// location are injected by the build (see tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <sys/wait.h>

namespace {

struct LintResult {
    int exit_code = -1;
    std::string output;
};

LintResult run_lint(const std::string& root) {
    const std::string cmd = std::string(ORC_LINT_BIN) + " --root " + root + " 2>&1";
    FILE* pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << "failed to spawn: " << cmd;
    LintResult result;
    if (pipe == nullptr) return result;
    char buf[4096];
    while (std::fgets(buf, sizeof(buf), pipe) != nullptr) result.output += buf;
    const int status = pclose(pipe);
    result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    return result;
}

std::string fixture(const char* name) {
    return std::string(ORC_LINT_FIXTURES) + "/" + name;
}

/// Number of diagnostics tagged with `rule` ("R1"..."R5", "suppression").
int count_rule(const std::string& output, const std::string& rule) {
    const std::string tag = ": " + rule + ": ";
    int n = 0;
    for (std::size_t pos = 0; (pos = output.find(tag, pos)) != std::string::npos;
         pos += tag.size()) {
        ++n;
    }
    return n;
}

TEST(OrcLintFixtures, R1FiresOnImplicitMemoryOrder) {
    const LintResult r = run_lint(fixture("bad_r1"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // load, store, fetch_add, compare_exchange_strong, exchange: all five.
    EXPECT_EQ(count_rule(r.output, "R1"), 5) << r.output;
}

TEST(OrcLintFixtures, R2FiresOnRawAllocation) {
    const LintResult r = run_lint(fixture("bad_r2"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // new, delete, malloc, free.
    EXPECT_EQ(count_rule(r.output, "R2"), 4) << r.output;
}

TEST(OrcLintFixtures, R3FiresOnMarkedDereference) {
    const LintResult r = run_lint(fixture("bad_r3"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // Direct get_marked(...)->  and the escaped-variable form.
    EXPECT_EQ(count_rule(r.output, "R3"), 2) << r.output;
}

TEST(OrcLintFixtures, R4FiresOnUnpaddedPerThreadArray) {
    const LintResult r = run_lint(fixture("bad_r4"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_EQ(count_rule(r.output, "R4"), 1) << r.output;
}

TEST(OrcLintFixtures, R5FiresOnProtectionEscape) {
    const LintResult r = run_lint(fixture("bad_r5"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // .get()->, load_unsafe()->, and the escaped raw variable.
    EXPECT_EQ(count_rule(r.output, "R5"), 3) << r.output;
}

TEST(OrcLintFixtures, R6FiresOnEngineHeapAllocation) {
    const LintResult r = run_lint(fixture("bad_r6"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // The raw new and the malloc call; the justified pool suppression and
    // the reclamation delete must both stay silent.
    EXPECT_EQ(count_rule(r.output, "R6"), 2) << r.output;
}

TEST(OrcLintFixtures, R7FiresOnSingletonAccessOutsideCore) {
    const LintResult r = run_lint(fixture("bad_r7"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // The direct call and the aliased reference.
    EXPECT_EQ(count_rule(r.output, "R7"), 2) << r.output;
}

TEST(OrcLintFixtures, R8FiresOnAdHocAtomicCounters) {
    const LintResult r = run_lint(fixture("bad_r8"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // retired_count and stat_scans; the justified suppression and the
    // non-counter atomics (reservation, watermark, era) must stay silent.
    EXPECT_EQ(count_rule(r.output, "R8"), 2) << r.output;
}

TEST(OrcLintFixtures, R9FiresOnRawFencesAndSeqCstSlotPublishes) {
    const LintResult r = run_lint(fixture("bad_r9"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // The membarrier token, the syscall token, the seq_cst hp store, and the
    // seq_cst guard exchange; the handover drain (not a protection slot) and
    // the release publish must stay silent.
    EXPECT_EQ(count_rule(r.output, "R9"), 4) << r.output;
}

TEST(OrcLintFixtures, R10FiresOnRawFreeOfOrcBase) {
    const LintResult r = run_lint(fixture("bad_r10"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // delete of a typed variable, delete through an orc_base cast, std::free,
    // and ::operator delete; the untracked Node* delete must stay silent.
    EXPECT_EQ(count_rule(r.output, "R10"), 4) << r.output;
}

TEST(OrcLintFixtures, R11FiresOnRawThreadInEngine) {
    const LintResult r = run_lint(fixture("bad_r11"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // The member declaration and the spawn site; std::this_thread and the
    // justified suppression stay silent. (core/orc_bg_reclaimer.hpp itself
    // is exempt — covered by RepositoryTreeIsClean.)
    EXPECT_EQ(count_rule(r.output, "R11"), 2) << r.output;
}

TEST(OrcLintFixtures, R12FiresOnSubstrateForksInSchemeFiles) {
    const LintResult r = run_lint(fixture("bad_r12"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // The raw slot array, the ad-hoc retire vector, and the scheme-owned
    // SchemeMetrics; the scan scratch vector, the plain loop bound and the
    // justified suppression stay silent. (scheme_base.hpp itself is exempt —
    // the substrate being clean is covered by RepositoryTreeIsClean.)
    EXPECT_EQ(count_rule(r.output, "R12"), 3) << r.output;
}

TEST(OrcLintFixtures, R13FiresOnRawTimingInEngine) {
    const LintResult r = run_lint(fixture("bad_r13"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    // The rdtsc intrinsic, the clock_gettime call, and the
    // steady_clock::now read; the time_point type mention and the justified
    // suppression stay silent. (telemetry.hpp lives in common/, outside the
    // rule's scope; orc_metrics.hpp's exemption is covered by
    // RepositoryTreeIsClean.)
    EXPECT_EQ(count_rule(r.output, "R13"), 3) << r.output;
}

TEST(OrcLintFixtures, BareSuppressionIsAnErrorAndDoesNotSuppress) {
    const LintResult r = run_lint(fixture("bad_suppression"));
    EXPECT_EQ(r.exit_code, 1) << r.output;
    EXPECT_EQ(count_rule(r.output, "suppression"), 1) << r.output;
    // The malformed allow must not swallow the underlying R1 diagnostic.
    EXPECT_EQ(count_rule(r.output, "R1"), 1) << r.output;
}

TEST(OrcLintFixtures, GoodTreeIsClean) {
    // The good tree exercises explicit orders, CachelinePadded and
    // alignas-declared per-thread arrays, get_unmarked-before-deref,
    // orc_ptr-mediated dereference, and a *justified* suppression — none of
    // which may produce a diagnostic.
    const LintResult r = run_lint(fixture("good"));
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(OrcLintFixtures, RepositoryTreeIsClean) {
    const LintResult r = run_lint(ORC_LINT_SRC_DIR);
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(OrcLintFixtures, ClientTreesAreClean) {
    // R7 applies to every tree outside src/core/: tests, benches, and
    // examples must reach the engine through an OrcDomain, never the
    // compatibility singleton.
    for (const char* dir : {ORC_LINT_TESTS_DIR, ORC_LINT_BENCH_DIR, ORC_LINT_EXAMPLES_DIR}) {
        const LintResult r = run_lint(dir);
        EXPECT_EQ(r.exit_code, 0) << dir << ":\n" << r.output;
        EXPECT_TRUE(r.output.empty()) << dir << ":\n" << r.output;
    }
}

}  // namespace
