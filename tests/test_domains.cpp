// Lifecycle and isolation tests for instance-scoped reclamation domains
// (core/orc_domain.hpp).
//
// The contract under test: objects are tagged with their owning domain at
// allocation and every counter update / retire routes to that domain, while
// protection uses the ambient domain (ScopedDomain). A domain's retire scans
// see only its own hp slots, so activity in one domain can neither free nor
// delay objects of another; destroying a domain drains everything it parked
// and dies loudly if objects provably outlive it.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <new>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "core/orc.hpp"
#include "ds/orc/michael_list_orc.hpp"
#include "ds/orc/ms_queue_orc.hpp"

#if defined(__SANITIZE_THREAD__)
#define ORCGC_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ORCGC_TEST_TSAN 1
#endif
#endif
#ifndef ORCGC_TEST_TSAN
#define ORCGC_TEST_TSAN 0
#endif

namespace orcgc {
namespace {

struct Node : orc_base, TrackedObject {
    std::uint64_t value = 0;
    orc_atomic<Node*> next{nullptr};
    Node() = default;
    explicit Node(std::uint64_t v) : value(v) {}
};

/// Raw storage an orc_ptr is placement-new'd into and never destroyed —
/// models a protection abandoned by a crashed/exited scope: the hp slot
/// stays published with no live orc_ptr object behind it.
struct AbandonedSlot {
    alignas(orc_ptr<Node*>) unsigned char raw[sizeof(orc_ptr<Node*>)];
};

/// Allocates a node in `dom`, links it from `root`, then abandons the
/// protecting orc_ptr (placement-new; the destructor never runs) so its hp
/// slot stays published. Unlinking from `root` afterwards retires the node,
/// and the retire scan — finding the abandoned hp — must PARK it in `dom`'s
/// handover slot instead of freeing it. Returns the raw node for identity
/// checks only.
Node* park_one(OrcDomain& dom, orc_atomic<Node*>& root, AbandonedSlot& storage) {
    orc_ptr<Node*> p = make_orc_in<Node>(dom, 42);
    Node* raw = p.get();
    root.store(p);                                     // +1 hard link
    ::new (storage.raw) orc_ptr<Node*>(std::move(p));  // abandon the protection
    root.store(nullptr);                               // unlink -> retire -> park
    return raw;
}

TEST(OrcDomainBasics, MakeOrcInTagsAndCounts) {
    auto domain = std::make_unique<OrcDomain>();
    EXPECT_FALSE(domain->is_global());
    EXPECT_EQ(domain->object_count(), 0);
    {
        orc_ptr<Node*> p = make_orc_in<Node>(*domain, 7);
        EXPECT_EQ(p->value, 7u);
        EXPECT_EQ(p.domain(), domain.get());
        EXPECT_EQ(domain->object_count(), 1);
        // The global domain must not have adopted it.
        EXPECT_EQ(&domain_of(OrcDomain::to_base(p.get())), domain.get());
    }
    // Dropping the only protection with zero hard links reclaims in-domain.
    EXPECT_EQ(domain->object_count(), 0);
}

TEST(OrcDomainBasics, MakeOrcDefaultsToAmbientDomain) {
    auto domain = std::make_unique<OrcDomain>();
    {
        ScopedDomain guard(*domain);
        orc_ptr<Node*> p = make_orc<Node>(9);
        EXPECT_EQ(p.domain(), domain.get());
        EXPECT_EQ(domain->object_count(), 1);
    }
    EXPECT_EQ(domain->object_count(), 0);
}

TEST(OrcDomainBasics, ScopedDomainNestsAndRestores) {
    OrcDomain a;
    OrcDomain b;
    EXPECT_EQ(&current_domain(), &OrcDomain::global());
    {
        ScopedDomain ga(a);
        EXPECT_EQ(&current_domain(), &a);
        {
            ScopedDomain gb(b);
            EXPECT_EQ(&current_domain(), &b);
        }
        EXPECT_EQ(&current_domain(), &a);
    }
    EXPECT_EQ(&current_domain(), &OrcDomain::global());
}

TEST(OrcDomainIsolation, RetireChurnInOneDomainNeverFreesAnothersParkedObject) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    auto a = std::make_unique<OrcDomain>();
    auto b = std::make_unique<OrcDomain>();
    {
        // Park one object in A behind an abandoned protection.
        orc_atomic<Node*> root;
        AbandonedSlot abandoned;
        park_one(*a, root, abandoned);
        ASSERT_EQ(a->object_count(), 1) << "node should be parked, not freed";
        ASSERT_EQ(counters.live_count(), live_before + 1);

        // Heavy allocate/retire churn in B: thousands of retire scans, every
        // one of which walks only B's hp slots. A's parked object must be
        // untouched — B's scans cannot see (let alone free) it.
        for (int i = 0; i < 5000; ++i) {
            orc_ptr<Node*> p = make_orc_in<Node>(*b, i);
        }
        EXPECT_EQ(b->object_count(), 0);
        EXPECT_EQ(a->object_count(), 1);
        EXPECT_EQ(counters.live_count(), live_before + 1);
    }
    // Destroying A drains its handover and frees the parked object.
    a.reset();
    EXPECT_EQ(counters.live_count(), live_before);
    b.reset();
}

TEST(OrcDomainLifecycle, DestructionDrainsHandoversWithZeroLeaks) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    const auto doubles_before = counters.double_destroys();
    auto domain = std::make_unique<OrcDomain>();
    {
        orc_atomic<Node*> root;
        AbandonedSlot abandoned;
        park_one(*domain, root, abandoned);
        ASSERT_EQ(domain->object_count(), 1);
        ASSERT_GE(domain->handover_count(), 1u);
        domain.reset();  // must drain, free exactly once, and not fatal()
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), doubles_before);
}

TEST(OrcDomainLifecycle, ThreadExitHookDrainsEveryLiveDomain) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    auto a = std::make_unique<OrcDomain>();
    auto b = std::make_unique<OrcDomain>();
    std::atomic<bool> parked{false};
    std::atomic<bool> release{false};
    std::thread worker([&] {
        // Park one object in EACH domain behind abandoned protections, then
        // exit while both are still parked. The single registry-level exit
        // hook must drain this thread's slots in every live domain.
        orc_atomic<Node*> root_a;
        orc_atomic<Node*> root_b;
        AbandonedSlot s1;
        AbandonedSlot s2;
        park_one(*a, root_a, s1);
        park_one(*b, root_b, s2);
        EXPECT_EQ(a->object_count(), 1);
        EXPECT_EQ(b->object_count(), 1);
        parked.store(true, std::memory_order_release);
        while (!release.load(std::memory_order_acquire)) std::this_thread::yield();
    });
    while (!parked.load(std::memory_order_acquire)) std::this_thread::yield();
    release.store(true, std::memory_order_release);
    worker.join();
    // The exit hook ran before join() returned: both domains are empty.
    EXPECT_EQ(a->object_count(), 0);
    EXPECT_EQ(b->object_count(), 0);
    EXPECT_EQ(counters.live_count(), live_before);
    a.reset();
    b.reset();
}

TEST(OrcDomainStructures, StructureBoundToPrivateDomainReclaimsThere) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    auto domain = std::make_unique<OrcDomain>();
    {
        MichaelListOrc<std::uint64_t> list(domain.get());
        EXPECT_EQ(&list.domain(), domain.get());
        for (std::uint64_t k = 0; k < 128; ++k) EXPECT_TRUE(list.insert(k));
        EXPECT_GT(domain->object_count(), 0);
        EXPECT_EQ(OrcDomain::global().is_global(), true);
        for (std::uint64_t k = 0; k < 128; k += 2) EXPECT_TRUE(list.remove(k));
        for (std::uint64_t k = 1; k < 128; k += 2) EXPECT_TRUE(list.contains(k));
    }
    // List destroyed: the cascade freed every node inside the domain.
    EXPECT_EQ(domain->object_count(), 0);
    EXPECT_EQ(counters.live_count(), live_before);
    domain.reset();  // trivially quiescent
}

TEST(OrcDomainStructures, MultiThreadStressAcrossPrivateAndSharedDomains) {
    constexpr int kThreads = 4;
    constexpr int kOps = 4000;
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    auto shared_domain = std::make_unique<OrcDomain>();
    {
        MSQueueOrc<std::uint64_t> shared_queue(shared_domain.get());
        std::vector<std::thread> threads;
        threads.reserve(kThreads);
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                // Each worker churns a queue in its own private domain while
                // also hammering the shared-domain queue.
                OrcDomain private_domain;
                {
                    MSQueueOrc<std::uint64_t> mine(&private_domain);
                    for (int i = 0; i < kOps; ++i) {
                        mine.enqueue(static_cast<std::uint64_t>(i));
                        shared_queue.enqueue(static_cast<std::uint64_t>(t * kOps + i));
                        if ((i & 3) == 0) {
                            (void)mine.dequeue();
                            (void)shared_queue.dequeue();
                        }
                    }
                    while (mine.dequeue()) {
                    }
                }
                // Nodes may remain parked in this thread's handover slots
                // until the domain drains; anything beyond that is a leak.
                EXPECT_LE(private_domain.object_count(),
                          static_cast<std::int64_t>(private_domain.handover_count()));
                // ~OrcDomain runs here, on a live registered thread, with the
                // queue already gone — the strictest in-process teardown. It
                // drains the parked remainder and fatal()s on any real leak.
            });
        }
        for (auto& t : threads) t.join();
        while (shared_queue.dequeue()) {
        }
    }
    // Everything not parked on this (still registered) thread is freed; the
    // domain destructor drains the parked rest, and the allocation counters
    // must balance exactly afterwards.
    EXPECT_LE(shared_domain->object_count(),
              static_cast<std::int64_t>(shared_domain->handover_count()));
    shared_domain.reset();
    EXPECT_EQ(counters.live_count(), live_before);
}

TEST(OrcDomainStats, CountersAreDomainLocal) {
    if (!telemetry::kTelemetryEnabled) {
        GTEST_SKIP() << "retire-path counters compiled out (-DORCGC_TELEMETRY=OFF)";
    }
    auto a = std::make_unique<OrcDomain>();
    auto b = std::make_unique<OrcDomain>();
    a->reset_stats();
    b->reset_stats();
    for (int i = 0; i < 256; ++i) {
        orc_ptr<Node*> p = make_orc_in<Node>(*a, i);
    }
    const OrcDomain::RetireStats sa = a->stats();
    const OrcDomain::RetireStats sb = b->stats();
    EXPECT_GT(sa.scans + sa.snapshots, 0u) << "churn in A must be visible in A";
    EXPECT_EQ(sb.scans, 0u) << "A's churn must not leak into B's counters";
    EXPECT_EQ(sb.snapshots, 0u);
    EXPECT_EQ(sb.slots_scanned, 0u);
    a.reset();
    b.reset();
}

#if !ORCGC_TEST_TSAN
TEST(OrcDomainDeathTest, DestroyingADomainWithLiveObjectsIsFatal) {
    // An object still hard-linked when its domain dies is a protocol
    // violation: the domain must abort with an actionable message, not free
    // memory a surviving structure still points into.
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            auto* root = new orc_atomic<Node*>();  // never destroyed: keeps the link
            auto* domain = new OrcDomain();
            {
                orc_ptr<Node*> p = make_orc_in<Node>(*domain, 1);
                root->store(p);
            }
            delete domain;  // object_count() == 1 -> fatal()
        },
        "unreclaimed");
}
#else
TEST(OrcDomainDeathTest, DestroyingADomainWithLiveObjectsIsFatal) {
    GTEST_SKIP() << "death-test forks are not reliable under TSan";
}
#endif

}  // namespace
}  // namespace orcgc
