// Typed tests for every MPMC queue in the library: the Michael–Scott queue
// under each manual reclamation scheme, the OrcGC-annotated MS queue
// (Algorithm 1), and the Kogan–Petrank wait-free queue (OrcGC-only,
// obstacle 1). All share the enqueue/dequeue(optional) API.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/barrier.hpp"
#include "ds/ms_queue.hpp"
#include "ds/orc/kp_queue_orc.hpp"
#include "ds/orc/lcrq_orc.hpp"
#include "ds/orc/ms_queue_orc.hpp"
#include "reclamation/reclamation.hpp"
#include "common/workload.hpp"

namespace orcgc {
namespace {

using Value = std::uint64_t;

template <typename QueueT>
class QueueTest : public ::testing::Test {};

using QueueTypes =
    ::testing::Types<MSQueue<Value, ReclaimerNone>, MSQueue<Value, HazardPointers>,
                     MSQueue<Value, PassTheBuck>, MSQueue<Value, EpochBasedReclaimer>,
                     MSQueue<Value, HazardEras>, MSQueue<Value, IntervalBasedReclaimer>,
                     MSQueue<Value, PassThePointer>, MSQueueOrc<Value>, KPQueueOrc<Value>,
                     LCRQOrc<Value>, LCRQOrc<Value, 4>>;  // small ring exercises segment turnover
TYPED_TEST_SUITE(QueueTest, QueueTypes);

TYPED_TEST(QueueTest, EmptyDequeueReturnsNullopt) {
    TypeParam queue;
    EXPECT_FALSE(queue.dequeue().has_value());
    EXPECT_TRUE(queue.empty());
}

TYPED_TEST(QueueTest, FifoOrderSingleThread) {
    TypeParam queue;
    for (Value i = 0; i < 500; ++i) queue.enqueue(i);
    for (Value i = 0; i < 500; ++i) {
        auto v = queue.dequeue();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(queue.dequeue().has_value());
}

TYPED_TEST(QueueTest, InterleavedEnqueueDequeue) {
    TypeParam queue;
    Value next_in = 0, next_out = 0;
    for (int round = 0; round < 100; ++round) {
        for (int i = 0; i < 3; ++i) queue.enqueue(next_in++);
        for (int i = 0; i < 2; ++i) {
            auto v = queue.dequeue();
            ASSERT_TRUE(v.has_value());
            EXPECT_EQ(*v, next_out++);
        }
    }
    while (next_out < next_in) {
        auto v = queue.dequeue();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, next_out++);
    }
    EXPECT_TRUE(queue.empty());
}

TYPED_TEST(QueueTest, DrainToEmptyRepeatedly) {
    TypeParam queue;
    for (int round = 0; round < 50; ++round) {
        EXPECT_TRUE(queue.empty());
        for (Value i = 0; i < 20; ++i) queue.enqueue(round * 100 + i);
        EXPECT_FALSE(queue.empty());
        for (Value i = 0; i < 20; ++i) {
            auto v = queue.dequeue();
            ASSERT_TRUE(v.has_value());
            EXPECT_EQ(*v, round * 100 + i);
        }
        EXPECT_FALSE(queue.dequeue().has_value());
    }
}

TYPED_TEST(QueueTest, ConcurrentTransferNoLossNoDuplication) {
    constexpr int kProducers = 3;
    constexpr int kConsumers = 3;
    const Value kPerProducer = stress_iters(8000);
    TypeParam queue;
    std::vector<std::atomic<std::uint8_t>> seen(kProducers * kPerProducer);
    std::atomic<std::uint64_t> consumed{0};
    std::atomic<int> producers_left{kProducers};
    SpinBarrier barrier(kProducers + kConsumers);
    std::vector<std::thread> threads;
    for (int p = 0; p < kProducers; ++p) {
        threads.emplace_back([&, p] {
            barrier.arrive_and_wait();
            for (Value i = 0; i < kPerProducer; ++i) queue.enqueue(p * kPerProducer + i);
            producers_left.fetch_sub(1);
        });
    }
    for (int c = 0; c < kConsumers; ++c) {
        threads.emplace_back([&] {
            barrier.arrive_and_wait();
            while (true) {
                auto v = queue.dequeue();
                if (!v.has_value()) {
                    // Only stop once the queue is empty *after* observing all
                    // producers done (re-check in that order, keep any value
                    // a late producer slipped in).
                    if (producers_left.load() != 0) continue;
                    v = queue.dequeue();
                    if (!v.has_value()) break;
                }
                ASSERT_EQ(seen[*v].fetch_add(1), 0) << "duplicate value " << *v;
                consumed.fetch_add(1);
            }
        });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
    for (auto& s : seen) EXPECT_EQ(s.load(), 1);
    EXPECT_TRUE(queue.empty());
}

TYPED_TEST(QueueTest, PerProducerFifoPreserved) {
    constexpr int kProducers = 3;
    const Value kPerProducer = stress_iters(5000);
    TypeParam queue;
    SpinBarrier barrier(kProducers + 1);
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
        producers.emplace_back([&, p] {
            barrier.arrive_and_wait();
            for (Value i = 0; i < kPerProducer; ++i) {
                queue.enqueue((static_cast<Value>(p) << 32) | i);
            }
        });
    }
    std::thread consumer([&] {
        barrier.arrive_and_wait();
        Value last_seq[kProducers];
        for (auto& v : last_seq) v = ~Value{0};
        Value drained = 0;
        while (drained < kProducers * kPerProducer) {
            auto v = queue.dequeue();
            if (!v.has_value()) continue;
            const int p = static_cast<int>(*v >> 32);
            const Value seq = *v & 0xFFFFFFFFu;
            ASSERT_EQ(seq, last_seq[p] + 1) << "producer " << p << " order violated";
            last_seq[p] = seq;
            ++drained;
        }
    });
    for (auto& t : producers) t.join();
    consumer.join();
}

TYPED_TEST(QueueTest, DestructionWithItemsInsideDoesNotLeak) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        TypeParam queue;
        for (Value i = 0; i < 100; ++i) queue.enqueue(i);
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

TYPED_TEST(QueueTest, NoLeaksUnderConcurrentChurn) {
    auto& counters = AllocCounters::instance();
    const auto live_before = counters.live_count();
    {
        TypeParam queue;
        constexpr int kThreads = 4;
        SpinBarrier barrier(kThreads);
        std::vector<std::thread> threads;
        for (int t = 0; t < kThreads; ++t) {
            threads.emplace_back([&, t] {
                barrier.arrive_and_wait();
                const int ops_each = stress_iters(4000);
                for (int i = 0; i < ops_each; ++i) {
                    queue.enqueue(t * 10000 + i);
                    queue.dequeue();
                }
            });
        }
        for (auto& t : threads) t.join();
        while (queue.dequeue().has_value()) {
        }
    }
    EXPECT_EQ(counters.live_count(), live_before);
    EXPECT_EQ(counters.double_destroys(), 0);
}

}  // namespace
}  // namespace orcgc
