// Shared driver for the ordered-set benchmarks (Figs. 3–8): prefill a set
// to ~50% occupancy of the key range, then run the paper's operation mixes
// for a timed window on t threads and report ops/s.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/bench_harness.hpp"
#include "common/rng.hpp"
#include "common/workload.hpp"

namespace orcgc {

/// One (structure, mix, thread-count) measurement. Constructs a fresh
/// structure per repetition via `factory` (returning a unique_ptr-like or
/// value-semantic handle is overkill for benchmarks: factory returns a new
/// heap instance, owned here).
template <typename Set>
RunStats run_set_point(int threads, const BenchConfig& cfg, std::uint64_t key_range,
                       const OpMix& mix) {
    std::vector<double> samples;
    samples.reserve(cfg.runs);
    // Prefill keys in shuffled order: ordered insertion would degenerate the
    // external BST into a spine (the list/skip-list shapes don't care).
    std::vector<std::uint64_t> prefill_keys;
    {
        Xoshiro256 prefill_rng(42);
        prefill_keys.reserve(key_range / 2 + 1);
        for (std::uint64_t k = 0; k < key_range; ++k) {
            if (prefill_rng.next_bounded(2) == 0) prefill_keys.push_back(k);
        }
        for (std::uint64_t i = prefill_keys.size(); i > 1; --i) {
            std::swap(prefill_keys[i - 1], prefill_keys[prefill_rng.next_bounded(i)]);
        }
    }
    for (int r = 0; r < cfg.runs; ++r) {
        Set set;
        for (std::uint64_t k : prefill_keys) set.insert(k);
        std::atomic<bool> stop{false};
        std::atomic<std::uint64_t> total_ops{0};
        SpinBarrier barrier(threads + 1);
        std::vector<std::thread> workers;
        workers.reserve(threads);
        for (int t = 0; t < threads; ++t) {
            workers.emplace_back([&, t] {
                Xoshiro256 rng(0x9000 + 31 * t + r);
                std::uint64_t ops = 0;
                barrier.arrive_and_wait();
                while (!stop.load(std::memory_order_acquire)) {
                    const std::uint64_t key = next_key(rng, key_range);
                    switch (next_op(rng, mix)) {
                        case SetOp::kInsert: set.insert(key); break;
                        case SetOp::kRemove: set.remove(key); break;
                        case SetOp::kContains: set.contains(key); break;
                    }
                    ++ops;
                }
                total_ops.fetch_add(ops, std::memory_order_relaxed);
            });
        }
        barrier.arrive_and_wait();
        const auto t0 = std::chrono::steady_clock::now();
        std::this_thread::sleep_for(std::chrono::milliseconds(cfg.run_ms));
        stop.store(true, std::memory_order_release);
        for (auto& w : workers) w.join();
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        samples.push_back(static_cast<double>(total_ops.load()) / secs);
    }
    RunStats stats;
    for (double s : samples) stats.mean_ops_per_sec += s;
    stats.mean_ops_per_sec /= samples.size();
    for (double s : samples) {
        const double d = s - stats.mean_ops_per_sec;
        stats.stddev += d * d;
    }
    stats.stddev = std::sqrt(stats.stddev / samples.size());
    return stats;
}

}  // namespace orcgc
