// Ablation: the per-operation cost of OrcGC's automation, measured in
// isolation. The paper attributes OrcGC's single-thread slowdown to "the
// extra code execution that automatically protects an object and retires an
// object that is no longer accessible" (§5); these microbenchmarks separate
// that cost per primitive: protected load (hp publish + validate) vs plain
// atomic load, counter-updating store/CAS vs plain, and allocation through
// make_orc vs new/delete.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>

#include "core/orc.hpp"

namespace orcgc {
namespace {

struct PlainNode {
    std::uint64_t v = 0;
    std::atomic<PlainNode*> next{nullptr};
};

struct OrcNode : orc_base {
    std::uint64_t v = 0;
    orc_atomic<OrcNode*> next{nullptr};
};

// ---- load --------------------------------------------------------------

void BM_StdAtomicLoad(benchmark::State& state) {
    static PlainNode node;
    static std::atomic<PlainNode*> link{&node};
    for (auto _ : state) {
        benchmark::DoNotOptimize(link.load(std::memory_order_acquire));
    }
}
BENCHMARK(BM_StdAtomicLoad);

void BM_OrcAtomicLoad(benchmark::State& state) {
    static orc_atomic<OrcNode*> link;
    {
        orc_ptr<OrcNode*> n = make_orc<OrcNode>();
        link.store(n);
    }
    for (auto _ : state) {
        orc_ptr<OrcNode*> p = link.load();  // publish + validate + idx bookkeeping
        benchmark::DoNotOptimize(p.get());
    }
    link.store(nullptr);
}
BENCHMARK(BM_OrcAtomicLoad);

// ---- store -------------------------------------------------------------

void BM_StdAtomicStore(benchmark::State& state) {
    static PlainNode a, b;
    static std::atomic<PlainNode*> link{&a};
    bool flip = false;
    for (auto _ : state) {
        link.store(flip ? &a : &b, std::memory_order_seq_cst);
        flip = !flip;
    }
}
BENCHMARK(BM_StdAtomicStore);

void BM_OrcAtomicStore(benchmark::State& state) {
    static orc_atomic<OrcNode*> link;
    orc_ptr<OrcNode*> a = make_orc<OrcNode>();
    orc_ptr<OrcNode*> b = make_orc<OrcNode>();
    bool flip = false;
    for (auto _ : state) {
        link.store(flip ? a : b);  // two counter RMWs + scratch publish
        flip = !flip;
    }
    link.store(nullptr);
}
BENCHMARK(BM_OrcAtomicStore);

// ---- cas ---------------------------------------------------------------

void BM_StdAtomicCas(benchmark::State& state) {
    static PlainNode a, b;
    static std::atomic<PlainNode*> link{&a};
    PlainNode* cur = &a;
    PlainNode* other = &b;
    for (auto _ : state) {
        PlainNode* expected = cur;
        benchmark::DoNotOptimize(link.compare_exchange_strong(expected, other));
        std::swap(cur, other);
    }
}
BENCHMARK(BM_StdAtomicCas);

void BM_OrcAtomicCas(benchmark::State& state) {
    static orc_atomic<OrcNode*> link;
    orc_ptr<OrcNode*> a = make_orc<OrcNode>();
    orc_ptr<OrcNode*> b = make_orc<OrcNode>();
    link.store(a);
    OrcNode* cur = a.get();
    OrcNode* other = b.get();
    for (auto _ : state) {
        benchmark::DoNotOptimize(link.cas(cur, other));
        std::swap(cur, other);
    }
    link.store(nullptr);
}
BENCHMARK(BM_OrcAtomicCas);

// ---- allocate + reclaim ------------------------------------------------

void BM_NewDelete(benchmark::State& state) {
    for (auto _ : state) {
        auto* node = new OrcNode();
        benchmark::DoNotOptimize(node);
        delete node;
    }
}
BENCHMARK(BM_NewDelete);

void BM_MakeOrcDropped(benchmark::State& state) {
    for (auto _ : state) {
        orc_ptr<OrcNode*> node = make_orc<OrcNode>();  // retired+freed at scope exit
        benchmark::DoNotOptimize(node.get());
    }
}
BENCHMARK(BM_MakeOrcDropped);

// ---- domain indirection --------------------------------------------------
// Same primitives, routed through a private OrcDomain instead of the global
// default. Compared against BM_OrcAtomicLoad / BM_MakeOrcDropped these rows
// price the domain machinery itself: the ambient-domain lookup on protect and
// the _orc_dom tag routing on retire.

void BM_OrcAtomicLoadPrivateDomain(benchmark::State& state) {
    auto dom = std::make_unique<OrcDomain>();
    ScopedDomain guard(*dom);
    orc_atomic<OrcNode*> link;
    {
        orc_ptr<OrcNode*> n = make_orc<OrcNode>();
        link.store(n);
    }
    for (auto _ : state) {
        orc_ptr<OrcNode*> p = link.load();
        benchmark::DoNotOptimize(p.get());
    }
    link.store(nullptr);
}
BENCHMARK(BM_OrcAtomicLoadPrivateDomain);

void BM_MakeOrcDroppedPrivateDomain(benchmark::State& state) {
    auto dom = std::make_unique<OrcDomain>();
    ScopedDomain guard(*dom);
    for (auto _ : state) {
        orc_ptr<OrcNode*> node = make_orc<OrcNode>();  // retired+freed in *dom
        benchmark::DoNotOptimize(node.get());
    }
}
BENCHMARK(BM_MakeOrcDroppedPrivateDomain);

// ---- orc_ptr copy vs raw copy -------------------------------------------

void BM_OrcPtrCopy(benchmark::State& state) {
    orc_ptr<OrcNode*> node = make_orc<OrcNode>();
    for (auto _ : state) {
        orc_ptr<OrcNode*> copy = node;  // used_haz refcount only
        benchmark::DoNotOptimize(copy.get());
    }
}
BENCHMARK(BM_OrcPtrCopy);

}  // namespace
}  // namespace orcgc

BENCHMARK_MAIN();
