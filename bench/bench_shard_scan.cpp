// Sharded-retirement / cooperative-scan bench (the walk-park engine's
// headline numbers; BENCH_shard_scan.json is the committed artifact).
//
// The shape that isolates the batched retire path is a WIDE cascade: one
// root holding kWide orc_atomic children whose targets are bare orc_base
// leaves. Dropping the root retires kWide+1 nodes in two generations, and
// the second generation settles under ONE asym::heavy() + hp walk — the
// direction-swapped scan sorts the generation and probes each published hp
// into it, parking covered members in place instead of re-scanning them.
// Leaves carry no orc_atomic members, so per-node cost is the engine floor:
// allocation + the _orc token RMWs + the generation's share of the walk.
//
//   wide/N       the headline series (nodes retired per second).
//   fanout/32    the exact bench_retire_batch shape, for apples-to-apples
//                comparison against BENCH_retire_batch.json (the t=1 row is
//                the no-regression gate).
//   contended/N  every thread cascades simultaneously while protecting a
//                shared node another thread is likely to retire — the
//                displacement-heavy case the per-shard MPSC inboxes absorb.
//
// Mixes mirror bench_retire_batch: `bare` first, then `hoard48` (the main
// thread parks 48 live orc_ptrs, so every walk must prove those slots do
// not cover the generation). A final `bg` section re-runs the contended
// series with the background reclaimer forced ON so the wake/park/drain
// counters land in the telemetry export.
//
// Ops are counted in nodes retired. JSON: --json <path> or ORC_BENCH_JSON;
// the artifact's "telemetry" key carries the shard/steal/bg counters.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/bench_harness.hpp"
#include "core/orc.hpp"

namespace orcgc {
namespace {

constexpr int kWide = 96;
constexpr int kFanout = 32;
constexpr int kHoardPtrs = 48;

struct Leaf : orc_base {};

struct WideNode : orc_base {
    orc_atomic<Leaf*> child[kWide];
};

struct FanNode : orc_base {
    orc_atomic<FanNode*> child[kFanout];
};

struct ChainNode : orc_base {
    orc_atomic<ChainNode*> next{nullptr};
};

/// One wide build-and-drop: returns the number of nodes retired.
std::uint64_t wide_cascade() {
    {
        orc_ptr<WideNode*> root = make_orc<WideNode>();
        for (int i = 0; i < kWide; ++i) {
            orc_ptr<Leaf*> c = make_orc<Leaf>();
            root->child[i].store(c);
        }
    }
    // Dropping the never-linked root retires it (generation 1); its
    // destructor pushes all kWide leaves at once (generation 2).
    return static_cast<std::uint64_t>(kWide) + 1;
}

/// The bench_retire_batch fanout shape, bit for bit (parity series).
std::uint64_t fanout_cascade() {
    {
        orc_ptr<FanNode*> root = make_orc<FanNode>();
        for (int i = 0; i < kFanout; ++i) {
            orc_ptr<FanNode*> c = make_orc<FanNode>();
            root->child[i].store(c);
        }
    }
    return static_cast<std::uint64_t>(kFanout) + 1;
}

using Body = std::function<std::uint64_t(int, const std::atomic<bool>&)>;

void run_series(const char* series, const char* mix, const BenchConfig& cfg, const Body& body) {
    for (int threads : cfg.thread_counts) {
        // Delta the domain's retire→free age histogram around the run so the
        // row carries this series' own latency percentiles (coarse ticks).
        const telemetry::HistogramSnapshot age_before =
            OrcDomain::global().metrics().snapshot().retire_free_age;
        RunStats stats = timed_run(threads, cfg.run_ms, cfg.runs, body);
        fill_age_percentiles(stats, OrcDomain::global().metrics().snapshot().retire_free_age,
                             age_before);
        print_row("shard_scan", series, mix, threads, stats);
    }
}

constexpr int kSharedSlots = 8;
struct SharedPool {
    orc_atomic<ChainNode*> slot[kSharedSlots];
};
SharedPool g_pool;

/// Contended multi-retirer body: cascade under a protection on a pooled
/// node, then swap the pooled node out (retiring an object other threads
/// often have published — handover + shard displacement traffic).
std::uint64_t contended_iter(int tid, std::uint64_t i) {
    const int s = static_cast<int>((static_cast<std::uint64_t>(tid) + i) % kSharedSlots);
    orc_ptr<ChainNode*> held = g_pool.slot[s].load();
    std::uint64_t ops = wide_cascade();
    orc_ptr<ChainNode*> fresh = make_orc<ChainNode>();
    g_pool.slot[s].store(fresh);
    return ops + 1;
}

void run_contended(const char* series, const char* mix, const BenchConfig& cfg) {
    for (int i = 0; i < kSharedSlots; ++i) {
        orc_ptr<ChainNode*> n = make_orc<ChainNode>();
        g_pool.slot[i].store(n);
    }
    run_series(series, mix, cfg, [](int tid, const std::atomic<bool>& stop) {
        std::uint64_t ops = 0;
        std::uint64_t i = 0;
        while (!stop.load(std::memory_order_acquire)) ops += contended_iter(tid, i++);
        return ops;
    });
    for (int i = 0; i < kSharedSlots; ++i) g_pool.slot[i].store(nullptr);
}

/// Deterministic displacement probe (the recipe tests/test_shard_scan.cpp
/// proves out): a reader republishes on a held hp index while the main
/// thread retires what it protects, forcing a park, then a displacement into
/// the reader's MPSC inbox — which, with the reclaimer ON, forces a wake.
/// Guarantees the artifact's shard_pushes / shard_drained / bg_wakes /
/// bg_parks counters are non-zero even under schedules where the contended
/// series happens never to displace.
void bg_probe() {
    auto& dom = OrcDomain::global();
    orc_ptr<ChainNode*> px = make_orc<ChainNode>();
    orc_ptr<ChainNode*> py = make_orc<ChainNode>();
    orc_base* xr = px.get();
    orc_base* yr = py.get();
    std::atomic<int> phase{0};
    auto await = [&](int v) {
        while (phase.load(std::memory_order_acquire) < v) std::this_thread::yield();
    };
    std::thread reader([&] {
        const int idx = dom.get_new_idx();
        dom.protect_ptr(xr, idx);
        phase.fetch_add(1, std::memory_order_acq_rel);  // 1
        await(2);
        dom.protect_ptr(yr, idx);  // republish without draining: X's park stays
        phase.fetch_add(1, std::memory_order_acq_rel);  // 3
        await(4);
        dom.release_idx(idx, nullptr);
    });
    await(1);
    px = nullptr;  // parks X in the reader's handover slot
    phase.fetch_add(1, std::memory_order_acq_rel);  // 2
    await(3);
    py = nullptr;  // parks Y, displacing X into the reader's inbox -> wake
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (dom.shard_backlog() > 0 && std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    phase.fetch_add(1, std::memory_order_acq_rel);  // 4
    reader.join();
}

void run_all_shapes(const char* mix, const BenchConfig& cfg) {
    char wide_name[32];
    std::snprintf(wide_name, sizeof(wide_name), "wide/%d", kWide);
    run_series(wide_name, mix, cfg, [](int, const std::atomic<bool>& stop) {
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_acquire)) ops += wide_cascade();
        return ops;
    });
    run_series("fanout/32", mix, cfg, [](int, const std::atomic<bool>& stop) {
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_acquire)) ops += fanout_cascade();
        return ops;
    });
    char cont_name[32];
    std::snprintf(cont_name, sizeof(cont_name), "contended/%d", kWide);
    run_contended(cont_name, mix, cfg);
}

/// Quiescent instrumented pass: the wide cascade must settle in at most 2
/// full-HP walks per cascade (one per generation of kSnapshotMin+ members —
/// the regression gate for the batched path), and the shard counters must
/// be live. Skipped in -DORCGC_TELEMETRY=OFF builds where counters read 0.
bool report_stats() {
    auto& engine = OrcDomain::global();
    constexpr int kCascades = 200;
    // Delta-based (no reset): the process-cumulative counters — including
    // the contended runs' shard pushes and the bg section's wakes — must
    // survive into the artifact's telemetry export at flush.
    const OrcMetrics::Snapshot s0 = engine.metrics().snapshot();
    std::uint64_t nodes = 0;
    for (int i = 0; i < kCascades; ++i) nodes += wide_cascade();
    const OrcMetrics::Snapshot s = engine.metrics().snapshot();
    const double snapshots_per_cascade =
        static_cast<double>(s.snapshots - s0.snapshots) / kCascades;
    const double slots_per_node =
        static_cast<double>(s.slots_scanned - s0.slots_scanned) / static_cast<double>(nodes);
    std::printf(
        "shard_stats  wide/%-3d     snapshots/cascade=%.2f slots/node=%.2f shared_scans=%llu "
        "shard_pushes=%llu shard_drained=%llu chunks_stolen=%llu bg_wakes=%llu\n",
        kWide, snapshots_per_cascade, slots_per_node,
        static_cast<unsigned long long>(s.scans_shared),
        static_cast<unsigned long long>(s.shard_pushes),
        static_cast<unsigned long long>(s.shard_drained),
        static_cast<unsigned long long>(s.chunks_stolen),
        static_cast<unsigned long long>(s.bg_wakes));
    RunStats row;
    row.mean_ops_per_sec = snapshots_per_cascade;
    row.stddev = static_cast<double>(s.scans_shared);
    print_row("shard_stats", "wide", "quiescent", 1, row, slots_per_node);
    if (snapshots_per_cascade > 2.0) {
        std::fprintf(stderr,
                     "FAIL: wide cascade used %.2f full-HP walks per cascade (budget: 2)\n",
                     snapshots_per_cascade);
        return false;
    }
    return true;
}

}  // namespace
}  // namespace orcgc

int main(int argc, char** argv) {
    using namespace orcgc;
    bench_json_init(argc, argv);
    const BenchConfig cfg = BenchConfig::from_env();

    run_all_shapes("bare", cfg);
    {
        std::vector<orc_ptr<ChainNode*>> hoard;
        hoard.reserve(kHoardPtrs);
        for (int i = 0; i < kHoardPtrs; ++i) hoard.push_back(make_orc<ChainNode>());
        run_all_shapes("hoard48", cfg);

        // Background-reclaimer section: force the worker on so its wake /
        // park / drain counters land in the telemetry export, then restore
        // the environment-selected mode.
        const BgReclaimer::Mode env_mode = OrcDomain::global().bg_reclaim_mode();
        OrcDomain::global().set_bg_reclaim(BgReclaimer::Mode::kOn);
        char cont_name[32];
        std::snprintf(cont_name, sizeof(cont_name), "contended/%d", kWide);
        run_contended(cont_name, "bg", cfg);
        bg_probe();
        OrcDomain::global().set_bg_reclaim(env_mode);
    }

    bool ok = true;
    if (telemetry::kTelemetryEnabled) ok = report_stats();
    BenchJsonRecorder::instance().flush();
    return ok ? 0 : 1;
}
