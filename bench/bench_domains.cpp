// Reclamation-domain isolation: a noisy neighbor must not tax quiet domains.
//
// OrcGC's retire path scans hazardous-pointer slots to prove Lemma 1's "no hp
// covers me" condition. With a single process-wide engine, one thread parking
// many live orc_ptrs (48 here — three quarters of kMaxHPs) raises the scan
// bound for *every* retire in the process. Reclamation domains confine that
// cost: each OrcDomain owns its own hp arrays, so a hoarder only slows
// retires in the domain it actually uses.
//
// Mixes (series chain/16, ops counted in nodes retired):
//
//   solo       t quiet workers, each churning build-and-drop chain cascades
//              in its own private OrcDomain. The baseline.
//   noisy48    same quiet workers, plus a neighbor thread parking 48 live
//              orc_ptrs in its OWN separate domain. The isolation claim:
//              quiet throughput must match solo.
//   shared48   everyone in ONE domain — the same neighbor parks its 48 ptrs
//              where the workers retire. The cost domains eliminate: every
//              quiet retire now walks the hoarder's slots.
//
// The neighbor is deliberately mostly idle (one cascade per millisecond):
// its interference must come from published hp slots, not from stealing CPU,
// or the solo/noisy comparison measures the scheduler instead of the engine.
//
// A quiescent single-threaded section runs FIRST (before any worker thread
// registers, keeping the thread watermark minimal) and gates
// deterministically on slots scanned per node retired in the quiet domain,
// as counted by the always-on per-domain telemetry: noisy must stay within
// 1.25x of solo, and shared must visibly pay for the parked slots —
// otherwise the bench has lost its power and the process exits non-zero.
// The gate is skipped in -DORCGC_TELEMETRY=OFF overhead-measurement builds
// (compiled out) and under ORC_BENCH_SKIP_GATE=1: an A/B overhead run
// (tools/telemetry_overhead.py) must put the timed series behind the same
// preamble on both sides, and the gate's cascades and hoards would otherwise
// hand the telemetry-on binary a different allocator state than the
// telemetry-off one. JSON mirroring: --json <path> or ORC_BENCH_JSON.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "common/bench_harness.hpp"
#include "core/orc.hpp"

namespace orcgc {
namespace {

constexpr int kChainDepth = 16;
constexpr int kHoardPtrs = 48;

struct ChainNode : orc_base {
    orc_atomic<ChainNode*> next{nullptr};
};

/// One chain build-and-drop inside `dom`: returns the number of nodes
/// retired. Same shape as bench_retire_batch's chain cascade — generations
/// of size 1, the worst case for the retire scan.
std::uint64_t chain_cascade_in(OrcDomain& dom) {
    ScopedDomain guard(dom);
    orc_atomic<ChainNode*> root;
    {
        orc_ptr<ChainNode*> head = make_orc<ChainNode>();
        orc_ptr<ChainNode*> cur = head;
        for (int i = 1; i < kChainDepth; ++i) {
            orc_ptr<ChainNode*> nxt = make_orc<ChainNode>();
            cur->next.store(nxt);
            cur = nxt;
        }
        root.store(head);
    }
    // root's destructor drops the head; the chain cascades one generation
    // per node through dom's recursive-retire list.
    return static_cast<std::uint64_t>(kChainDepth);
}

/// The antagonist: parks kHoardPtrs live orc_ptrs — in `shared` when given,
/// otherwise in a private domain of its own — then idles, trickling one
/// cascade per millisecond so its domain's retire path stays warm without
/// competing for CPU. Construction blocks until the hoard is published.
class NoisyNeighbor {
  public:
    explicit NoisyNeighbor(OrcDomain* shared) : thread_([this, shared] { run(shared); }) {
        while (!ready_.load(std::memory_order_acquire)) std::this_thread::yield();
    }
    ~NoisyNeighbor() {
        stop_.store(true, std::memory_order_release);
        thread_.join();
    }

  private:
    void run(OrcDomain* shared) {
        std::unique_ptr<OrcDomain> own;
        if (shared == nullptr) own = std::make_unique<OrcDomain>();
        OrcDomain& dom = (shared != nullptr) ? *shared : *own;
        {
            ScopedDomain guard(dom);
            std::vector<orc_ptr<ChainNode*>> hoard;
            hoard.reserve(kHoardPtrs);
            for (int i = 0; i < kHoardPtrs; ++i) hoard.push_back(make_orc<ChainNode>());
            ready_.store(true, std::memory_order_release);
            while (!stop_.load(std::memory_order_acquire)) {
                chain_cascade_in(dom);
                std::this_thread::sleep_for(std::chrono::milliseconds(1));
            }
        }
        // hoard released above; a private domain drains and dies on return.
    }

    std::atomic<bool> ready_{false};
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

using Body = std::function<std::uint64_t(int, const std::atomic<bool>&)>;

/// Each worker churns in a freshly constructed private domain.
Body private_domain_body() {
    return [](int, const std::atomic<bool>& stop) {
        auto dom = std::make_unique<OrcDomain>();
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_acquire)) ops += chain_cascade_in(*dom);
        return ops;
    };
}

/// Every worker churns in the one domain the hoarder also lives in.
Body shared_domain_body(OrcDomain* dom) {
    return [dom](int, const std::atomic<bool>& stop) {
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_acquire)) ops += chain_cascade_in(*dom);
        return ops;
    };
}

void run_series(const char* mix, const BenchConfig& cfg, const Body& body) {
    for (int threads : cfg.thread_counts) {
        const RunStats stats = timed_run(threads, cfg.run_ms, cfg.runs, body);
        print_row("domains", "chain/16", mix, threads, stats);
    }
}

/// Slots scanned per node retired for kCascades quiet cascades in `dom`, as
/// counted by dom's own stats — the deterministic proxy for the retire-path
/// tax the timed section measures in wall-clock.
double slots_per_node(OrcDomain& dom, int cascades) {
    dom.reset_stats();
    std::uint64_t nodes = 0;
    for (int i = 0; i < cascades; ++i) nodes += chain_cascade_in(dom);
    const OrcDomain::RetireStats s = dom.stats();
    return static_cast<double>(s.slots_scanned) / static_cast<double>(nodes);
}

void report_gate_row(const char* mix, double slots, double vs_solo) {
    std::printf("domain_stats %-8s slots/node=%.2f vs_solo=%.2fx\n", mix, slots, vs_solo);
    RunStats row;
    row.mean_ops_per_sec = slots;
    print_row("domain_stats", "chain/16", mix, 1, row, vs_solo);
}

/// Single-threaded, quiescent, deterministic: measure the quiet domain's
/// slots-per-free in the three arrangements and enforce the isolation
/// contract. Runs before any worker thread registers so the thread-id
/// watermark — and with it the baseline scan cost — is minimal and stable.
bool isolation_gate() {
    constexpr int kCascades = 256;
    bool ok = true;

    double solo = 0.0;
    {
        auto quiet = std::make_unique<OrcDomain>();
        solo = slots_per_node(*quiet, kCascades);
    }

    double noisy = 0.0;
    {
        auto quiet = std::make_unique<OrcDomain>();
        auto hoarder_home = std::make_unique<OrcDomain>();
        ScopedDomain guard(*hoarder_home);
        std::vector<orc_ptr<ChainNode*>> hoard;
        hoard.reserve(kHoardPtrs);
        for (int i = 0; i < kHoardPtrs; ++i) hoard.push_back(make_orc<ChainNode>());
        noisy = slots_per_node(*quiet, kCascades);
        hoard.clear();
        quiet.reset();  // before hoarder_home: guard still points into it
    }

    double shared = 0.0;
    {
        auto dom = std::make_unique<OrcDomain>();
        {
            ScopedDomain guard(*dom);
            std::vector<orc_ptr<ChainNode*>> hoard;
            hoard.reserve(kHoardPtrs);
            for (int i = 0; i < kHoardPtrs; ++i) hoard.push_back(make_orc<ChainNode>());
            shared = slots_per_node(*dom, kCascades);
        }
    }

    report_gate_row("solo", solo, 1.0);
    report_gate_row("noisy48", noisy, noisy / solo);
    report_gate_row("shared48", shared, shared / solo);

    if (noisy > solo * 1.25 + 0.5) {
        std::fprintf(stderr,
                     "FAIL: 48 hps parked in a FOREIGN domain raised the quiet domain's "
                     "retire scan from %.2f to %.2f slots/node (budget: 1.25x) — "
                     "domain isolation is broken\n",
                     solo, noisy);
        ok = false;
    }
    if (shared < noisy + 8.0) {
        std::fprintf(stderr,
                     "FAIL: 48 hps parked in the SAME domain only moved the scan from "
                     "%.2f to %.2f slots/node — the bench has lost its power to detect "
                     "interference\n",
                     noisy, shared);
        ok = false;
    }
    return ok;
}

}  // namespace
}  // namespace orcgc

int main(int argc, char** argv) {
    using namespace orcgc;
    bench_json_init(argc, argv);
    const BenchConfig cfg = BenchConfig::from_env();

    bool ok = true;
    const char* skip_gate = std::getenv("ORC_BENCH_SKIP_GATE");
    if (telemetry::kTelemetryEnabled && !(skip_gate != nullptr && skip_gate[0] == '1')) {
        ok = isolation_gate();
    }

    run_series("solo", cfg, private_domain_body());
    {
        NoisyNeighbor neighbor(nullptr);
        run_series("noisy48", cfg, private_domain_body());
    }
    {
        auto shared = std::make_unique<OrcDomain>();
        {
            NoisyNeighbor neighbor(shared.get());
            run_series("shared48", cfg, shared_domain_body(shared.get()));
        }
        // neighbor has released its hoard and exited; the domain drains any
        // handovers left by departed workers as it dies here.
    }

    BenchJsonRecorder::instance().flush();
    return ok ? 0 : 1;
}
