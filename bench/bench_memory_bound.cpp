// Empirical counterpart of Table 1's "bound on memory usage" column: run the
// Michael–Harris list under a write-heavy mix and record the *peak* number of
// retired-but-unreclaimed objects each scheme accumulates, next to its
// theoretical bound. PTP's peak should stay around t*(H+1) — linear in
// threads — while HP/PTB grow with their scan thresholds (the quadratic
// family) and EBR is limited only by how fast epochs turn.
//
// For OrcGC (which has no retired lists at all) we report the peak number of
// nodes alive beyond the key-range capacity of the set — i.e. unlinked nodes
// not yet handed back to the allocator.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/barrier.hpp"
#include "common/bench_harness.hpp"
#include "common/rng.hpp"
#include "ds/michael_list.hpp"
#include "ds/orc/michael_list_orc.hpp"
#include "reclamation/reclamation.hpp"

namespace orcgc {
namespace {

using Key = std::uint64_t;
constexpr std::uint64_t kKeys = 128;
constexpr int kListHPs = 3;  // H for the Michael list

/// Runs 50i/50r churn on `set` with `threads` workers for `run_ms` while a
/// monitor thread records the peak of `sample()`.
template <typename Set>
std::size_t churn_peak(Set& set, int threads, int run_ms,
                       const std::function<std::size_t()>& sample) {
    Xoshiro256 prefill(1);
    for (Key k = 0; k < kKeys; ++k) {
        if (prefill.next_bounded(2) == 0) set.insert(k);
    }
    std::atomic<bool> stop{false};
    std::atomic<std::size_t> peak{0};
    SpinBarrier barrier(threads + 2);
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
        workers.emplace_back([&, t] {
            Xoshiro256 rng(77 + t);
            barrier.arrive_and_wait();
            while (!stop.load(std::memory_order_acquire)) {
                const Key k = rng.next_bounded(kKeys);
                if (rng.next_bounded(2) == 0) {
                    set.insert(k);
                } else {
                    set.remove(k);
                }
            }
        });
    }
    std::thread monitor([&] {
        barrier.arrive_and_wait();
        while (!stop.load(std::memory_order_acquire)) {
            const std::size_t count = sample();
            std::size_t prev = peak.load();
            while (prev < count && !peak.compare_exchange_weak(prev, count)) {
            }
            std::this_thread::yield();
        }
    });
    barrier.arrive_and_wait();
    std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
    stop.store(true, std::memory_order_release);
    for (auto& w : workers) w.join();
    monitor.join();
    return peak.load();
}

template <template <class, int> class ReclaimerTmpl>
void run_manual(const char* name, const char* bound, const BenchConfig& cfg) {
    using Set = MichaelList<Key, ReclaimerTmpl>;
    for (int threads : cfg.thread_counts) {
        std::size_t peak;
        {
            Set set;
            peak = churn_peak(set, threads, cfg.run_ms,
                              [&set] { return set.reclaimer().unreclaimed_count(); });
        }
        std::printf("memory-bound(tab1)     %-6s t=%-3d H=%d  peak_unreclaimed=%-8zu bound=%s\n",
                    name, threads, kListHPs, peak, bound);
        std::fflush(stdout);
        // JSON row: mean carries the peak; the theoretical bound rides the
        // mix column so the artifact is self-describing.
        BenchJsonRecorder::instance().record("memory-bound(tab1)", name, bound, threads,
                                             RunStats{static_cast<double>(peak), 0.0}, -1.0);
    }
}

void run_orc(const BenchConfig& cfg) {
    auto& counters = AllocCounters::instance();
    for (int threads : cfg.thread_counts) {
        const auto live_before = counters.live_count();
        std::size_t peak;
        {
            MichaelListOrc<Key> set;
            peak = churn_peak(set, threads, cfg.run_ms, [&counters, live_before] {
                const auto live = counters.live_count() - live_before;
                return live > static_cast<std::int64_t>(kKeys)
                           ? static_cast<std::size_t>(live - kKeys)
                           : std::size_t{0};
            });
        }
        std::printf(
            "memory-bound(tab1)     %-6s t=%-3d H=*  peak_unreclaimed=%-8zu bound=O(Ht)\n",
            "OrcGC", threads, peak);
        std::fflush(stdout);
        BenchJsonRecorder::instance().record("memory-bound(tab1)", "OrcGC", "O(Ht)", threads,
                                             RunStats{static_cast<double>(peak), 0.0}, -1.0);
    }
}

}  // namespace
}  // namespace orcgc

int main(int argc, char** argv) {
    using namespace orcgc;
    bench_json_init(argc, argv);
    const BenchConfig cfg = BenchConfig::from_env();
    std::printf("# Peak unreclaimed objects under 50i/50r churn, %llu keys (Table 1 bounds)\n",
                static_cast<unsigned long long>(kKeys));
    run_manual<HazardPointers>("HP", "O(Ht^2)", cfg);
    run_manual<PassTheBuck>("PTB", "O(Ht^2)", cfg);
    run_manual<EpochBasedReclaimer>("EBR", "unbounded", cfg);
    run_manual<HazardEras>("HE", "O(#L*Ht^2)", cfg);
    run_manual<IntervalBasedReclaimer>("IBR", "O(#L*Ht^2)", cfg);
    run_manual<PassThePointer>("PTP", "O(Ht)", cfg);
    // Batches only detach once a slot-count of cells is pushed, so Hyaline's
    // robust variant inherits the era family's bound; DEBRA, like any
    // neutralization-free epoch scheme, is stalled-thread-unbounded.
    run_manual<Hyaline>("Hyaline", "O(#L*Ht^2)", cfg);
    run_manual<Debra>("DEBRA", "unbounded", cfg);
    run_orc(cfg);
    BenchJsonRecorder::instance().flush();
    return 0;
}
