// Retire-path cost vs cascade shape and thread count.
//
// OrcGC's hot reclamation cost is OrcDomain::retire(): every retired object —
// including each node flattened through the recursive-retire list during
// cascading destructor retires — must prove Lemma 1's "no hazardous pointer
// covers me" condition against the published hp arrays. This bench measures
// that cost directly, end to end, for the three shapes that matter:
//
//   single_drop  make_orc + drop: one retire, no cascade (the orc_ptr clear
//                protocol of Algorithm 5 in isolation).
//   chain/D      a D-node singly linked chain whose head drop cascades one
//                node per generation (worst case for batching: generations of
//                size 1).
//   fanout/F     a root holding F orc_atomic children: dropping the root
//                retires F+1 nodes in two generations (1 then F) — the shape
//                the batched snapshot path amortizes.
//
// The two mixes separate the watermark effect from the batching effect:
//
//   bare         workers only; each thread holds a handful of live orc_ptrs.
//   hoard48      the main thread additionally parks 48 live orc_ptrs for the
//                duration of the run. An engine that scans a global
//                max-used-index watermark pays 48+ slots per registered
//                thread on *every* retire; per-thread watermarks confine the
//                cost to the hoarder's own array.
//
// All `bare` rows run before any `hoard48` row on purpose: a global-watermark
// engine can never lower its scan bound again once the hoarder has raised it.
//
// A quiescent instrumented section reports scans, snapshots and slots
// scanned per shape (the counters are always on — OrcDomain::metrics()), and
// fails the process if the fanout cascade needs more than 2 full-HP-array
// snapshots — the regression gate for the batched retire path. The section
// is skipped only in -DORCGC_TELEMETRY=OFF overhead-measurement builds,
// where every counter reads zero.
//
// Ops are counted in *nodes retired* (not cascades), so rows are comparable
// across shapes. JSON mirroring: --json <path> or ORC_BENCH_JSON.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/bench_harness.hpp"
#include "core/orc.hpp"

namespace orcgc {
namespace {

constexpr int kFanout = 32;
constexpr int kHoardPtrs = 48;

struct ChainNode : orc_base {
    orc_atomic<ChainNode*> next{nullptr};
};

struct FanNode : orc_base {
    orc_atomic<FanNode*> child[kFanout];
};

/// One chain build-and-drop: returns the number of nodes retired.
std::uint64_t chain_cascade(int depth) {
    orc_atomic<ChainNode*> root;
    {
        orc_ptr<ChainNode*> head = make_orc<ChainNode>();
        orc_ptr<ChainNode*> cur = head;
        for (int i = 1; i < depth; ++i) {
            orc_ptr<ChainNode*> nxt = make_orc<ChainNode>();
            cur->next.store(nxt);
            cur = nxt;
        }
        root.store(head);
    }
    // root's destructor drops the head; the whole chain cascades through the
    // engine's recursive-retire list, one generation per node.
    return static_cast<std::uint64_t>(depth);
}

/// One fanout build-and-drop: returns the number of nodes retired.
std::uint64_t fanout_cascade() {
    {
        orc_ptr<FanNode*> root = make_orc<FanNode>();
        for (int i = 0; i < kFanout; ++i) {
            orc_ptr<FanNode*> c = make_orc<FanNode>();
            root->child[i].store(c);
        }
    }
    // Dropping the never-linked root retires it (generation 1); its
    // destructor pushes all children at once (generation 2).
    return static_cast<std::uint64_t>(kFanout) + 1;
}

using Body = std::function<std::uint64_t(int, const std::atomic<bool>&)>;

void run_series(const char* series, const char* mix, const BenchConfig& cfg, const Body& body) {
    for (int threads : cfg.thread_counts) {
        // Delta the domain's retire→free age histogram around the run so the
        // row carries this series' own latency percentiles (coarse ticks).
        const telemetry::HistogramSnapshot age_before =
            OrcDomain::global().metrics().snapshot().retire_free_age;
        RunStats stats = timed_run(threads, cfg.run_ms, cfg.runs, body);
        fill_age_percentiles(stats, OrcDomain::global().metrics().snapshot().retire_free_age,
                             age_before);
        print_row("retire_batch", series, mix, threads, stats);
    }
}

/// Contended multi-retirer scenario: every thread cascades simultaneously
/// WHILE holding a protection on a shared node another thread is likely to
/// retire. Each iteration protects one of a small shared pool of nodes, runs
/// a full fanout cascade under that protection, then swaps the pooled node
/// for a fresh one — retiring an object that other threads often have
/// published, which drives the handover/park path and (in the sharded
/// engine) displacement traffic between shards. Ops count nodes retired,
/// comparable with the other series.
void run_contended(const char* mix, const BenchConfig& cfg) {
    constexpr int kSharedSlots = 8;
    struct SharedPool {
        orc_atomic<ChainNode*> slot[kSharedSlots];
    };
    static SharedPool pool;  // static: series bodies run on many threads
    for (int i = 0; i < kSharedSlots; ++i) {
        orc_ptr<ChainNode*> n = make_orc<ChainNode>();
        pool.slot[i].store(n);
    }
    run_series("contended/32", mix, cfg, [](int tid, const std::atomic<bool>& stop) {
        std::uint64_t ops = 0;
        std::uint64_t i = 0;
        while (!stop.load(std::memory_order_acquire)) {
            const int s = static_cast<int>((static_cast<std::uint64_t>(tid) + i++) % kSharedSlots);
            orc_ptr<ChainNode*> held = pool.slot[s].load();  // protect a shared node
            ops += fanout_cascade();                         // cascade under protection
            orc_ptr<ChainNode*> fresh = make_orc<ChainNode>();
            pool.slot[s].store(fresh);  // retire the old node (often protected elsewhere)
            ops += 1;
        }
        return ops;
    });
    // Quiesce the pool before the next series (all workers joined by now).
    for (int i = 0; i < kSharedSlots; ++i) pool.slot[i].store(nullptr);
}

void run_all_shapes(const char* mix, const BenchConfig& cfg) {
    run_series("single_drop", mix, cfg, [](int, const std::atomic<bool>& stop) {
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_acquire)) {
            orc_ptr<ChainNode*> n = make_orc<ChainNode>();  // retired+freed at scope exit
            ops += 1;
        }
        return ops;
    });
    for (int depth : {16, 64}) {
        char name[32];
        std::snprintf(name, sizeof(name), "chain/%d", depth);
        run_series(name, mix, cfg, [depth](int, const std::atomic<bool>& stop) {
            std::uint64_t ops = 0;
            while (!stop.load(std::memory_order_acquire)) ops += chain_cascade(depth);
            return ops;
        });
    }
    run_series("fanout/32", mix, cfg, [](int, const std::atomic<bool>& stop) {
        std::uint64_t ops = 0;
        while (!stop.load(std::memory_order_acquire)) ops += fanout_cascade();
        return ops;
    });
    run_contended(mix, cfg);
}

/// Quiescent, single-threaded instrumented pass: per cascade shape, report
/// how many hp-array scans/snapshots the engine performed and how many slots
/// it touched. Returns false if the fanout cascade exceeded the 2-snapshot
/// budget the batched path is designed to meet.
bool report_stats() {
    auto& engine = OrcDomain::global();
    constexpr int kCascades = 200;
    bool ok = true;
    struct Shape {
        const char* name;
        std::uint64_t (*one)();
        bool gated;
    };
    static const Shape kShapes[] = {
        {"chain/16", [] { return chain_cascade(16); }, false},
        {"fanout/32", [] { return fanout_cascade(); }, true},
    };
    for (const Shape& shape : kShapes) {
        engine.reset_stats();
        std::uint64_t nodes = 0;
        for (int i = 0; i < kCascades; ++i) nodes += shape.one();
        const OrcDomain::RetireStats s = engine.stats();
        const double snapshots_per_cascade = static_cast<double>(s.snapshots) / kCascades;
        const double scans_per_node = static_cast<double>(s.scans) / static_cast<double>(nodes);
        const double slots_per_node =
            static_cast<double>(s.slots_scanned) / static_cast<double>(nodes);
        std::printf(
            "retire_stats %-12s snapshots/cascade=%.2f scans/node=%.2f slots/node=%.2f "
            "batch_frees=%llu slow=%llu\n",
            shape.name, snapshots_per_cascade, scans_per_node, slots_per_node,
            static_cast<unsigned long long>(s.batch_frees),
            static_cast<unsigned long long>(s.slow_frees));
        // Mirror into the JSON artifact: mean = snapshots/cascade,
        // normalized = slots scanned per node retired.
        RunStats row;
        row.mean_ops_per_sec = snapshots_per_cascade;
        row.stddev = scans_per_node;
        print_row("retire_stats", shape.name, "quiescent", 1, row, slots_per_node);
        if (shape.gated && snapshots_per_cascade > 2.0) {
            std::fprintf(stderr,
                         "FAIL: fanout cascade used %.2f full-HP snapshots per cascade "
                         "(budget: 2)\n",
                         snapshots_per_cascade);
            ok = false;
        }
    }
    return ok;
}

}  // namespace
}  // namespace orcgc

int main(int argc, char** argv) {
    using namespace orcgc;
    bench_json_init(argc, argv);
    const BenchConfig cfg = BenchConfig::from_env();

    run_all_shapes("bare", cfg);
    {
        // Park kHoardPtrs live orc_ptrs on the main thread for the rest of
        // the process: every retire below must now prove these slots do not
        // cover the object being freed.
        std::vector<orc_ptr<ChainNode*>> hoard;
        hoard.reserve(kHoardPtrs);
        for (int i = 0; i < kHoardPtrs; ++i) hoard.push_back(make_orc<ChainNode>());
        run_all_shapes("hoard48", cfg);
    }

    bool ok = true;
    if (telemetry::kTelemetryEnabled) ok = report_stats();
    BenchJsonRecorder::instance().flush();
    return ok ? 0 : 1;
}
