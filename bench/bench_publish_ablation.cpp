// Ablation for the §5 discussion of hazard-pointer publication cost: the
// paper publishes with an atomic exchange and notes that replacing it with
// an mfence-based store made AMD behave like Intel. This google-benchmark
// binary measures the three publication idioms in isolation, plus the full
// protect loops of each scheme family (pointer-based publish-per-read vs
// era-based publish-per-era-change vs epoch-based publish-per-op).
#include <benchmark/benchmark.h>

#include <atomic>

#include "common/cacheline.hpp"
#include "reclamation/reclamation.hpp"

namespace orcgc {
namespace {

struct AblNode : ReclaimableBase {
    std::uint64_t v = 0;
};

alignas(kCacheLineSize) std::atomic<AblNode*> g_hp{nullptr};
alignas(kCacheLineSize) std::atomic<AblNode*> g_link{nullptr};
AblNode g_node;

void BM_PublishExchange(benchmark::State& state) {
    for (auto _ : state) {
        g_hp.exchange(&g_node, std::memory_order_seq_cst);
        benchmark::DoNotOptimize(g_link.load(std::memory_order_acquire));
    }
}
BENCHMARK(BM_PublishExchange);

void BM_PublishStoreSeqCst(benchmark::State& state) {
    for (auto _ : state) {
        g_hp.store(&g_node, std::memory_order_seq_cst);
        benchmark::DoNotOptimize(g_link.load(std::memory_order_acquire));
    }
}
BENCHMARK(BM_PublishStoreSeqCst);

void BM_PublishStorePlusMfence(benchmark::State& state) {
    for (auto _ : state) {
        g_hp.store(&g_node, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_seq_cst);
        benchmark::DoNotOptimize(g_link.load(std::memory_order_acquire));
    }
}
BENCHMARK(BM_PublishStorePlusMfence);

// Full protect-loop cost per scheme family, reading a stable link (the
// steady-state case a list traversal hits on every hop).

void BM_ProtectHazardPointers(benchmark::State& state) {
    static HazardPointers<AblNode, 4> gc;
    g_link.store(&g_node);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gc.get_protected(g_link, 0));
    }
}
BENCHMARK(BM_ProtectHazardPointers);

void BM_ProtectPassThePointer(benchmark::State& state) {
    static PassThePointer<AblNode, 4> gc;
    g_link.store(&g_node);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gc.get_protected(g_link, 0));
    }
}
BENCHMARK(BM_ProtectPassThePointer);

void BM_ProtectHazardEras(benchmark::State& state) {
    static HazardEras<AblNode, 4> gc;
    g_link.store(&g_node);
    for (auto _ : state) {
        benchmark::DoNotOptimize(gc.get_protected(g_link, 0));
    }
}
BENCHMARK(BM_ProtectHazardEras);

void BM_ProtectEpochBased(benchmark::State& state) {
    static EpochBasedReclaimer<AblNode, 4> gc;
    g_link.store(&g_node);
    for (auto _ : state) {
        gc.begin_op();
        benchmark::DoNotOptimize(gc.get_protected(g_link, 0));
        gc.end_op();
    }
}
BENCHMARK(BM_ProtectEpochBased);

}  // namespace
}  // namespace orcgc

BENCHMARK_MAIN();
