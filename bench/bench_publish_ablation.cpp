// Ablation for the §5 discussion of hazard-pointer publication cost, updated
// for the asymmetric-fence facility (src/common/asym_fence.hpp): the paper
// publishes protections with an atomic exchange; asym::publish makes the
// publish a release store whose ordering is supplied by the scan side's
// process-wide heavy fence. This binary A/Bs the three strategies in ONE
// process by flipping the runtime mode between series:
//
//   seed-seqcst   the paper/seed idiom (publish = seq_cst exchange)
//   fence         release store + two-sided seq_cst thread fence
//   membarrier    release store + compiler barrier; scans pay membarrier
//
// Two row families: a t=1 micro loop of bare publishes (instruction cost of
// the publish idiom itself) and a read-only (0i-0r-100l) Michael-list
// traversal at the configured thread counts — the workload the asymmetric
// fence is designed for, since every list hop republishes. Traversal rows
// carry heavy-fences-per-operation in the `normalized` column: the
// acceptance evidence that heavy fences scale with scans (none here — the
// mix never retires), not with protected loads.
//
// Perf gates (skippable via ORC_ABLATION_SKIP_GATE=1, thresholds tunable so
// CI smoke can run loose while the committed BENCH_asym_fence.json run uses
// the ISSUE's 15%/5% bars):
//   ORC_ABLATION_MIN_GAIN  membarrier/seed ops ratio at max threads (1.05)
//   ORC_ABLATION_PARITY    max fractional fence-vs-seed regression   (0.15)
// plus a fixed heavy-scaling gate: <= 0.01 heavy fences per traversal op.
#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <utility>

#include "common/asym_fence.hpp"
#include "common/bench_harness.hpp"
#include "common/cacheline.hpp"
#include "common/rng.hpp"
#include "common/workload.hpp"
#include "ds/orc/michael_list_orc.hpp"

namespace orcgc {
namespace {

struct ModePoint {
    asym::Mode mode;
    const char* series;
};

constexpr ModePoint kModes[] = {
    {asym::Mode::kSeqCst, "seed-seqcst"},
    {asym::Mode::kFence, "fence"},
    {asym::Mode::kMembarrier, "membarrier"},
};

struct AblNode {
    std::uint64_t v = 0;
};

alignas(kCacheLineSize) std::atomic<AblNode*> g_hp{nullptr};
alignas(kCacheLineSize) std::atomic<AblNode*> g_link{nullptr};
alignas(kCacheLineSize) std::atomic<std::uintptr_t> g_sink{0};
AblNode g_node;

/// Bare publish idiom + a dependent acquire load (the shape of one list-hop
/// protect), single-threaded: isolates the per-publish instruction cost.
RunStats micro_publish(const BenchConfig& cfg) {
    g_link.store(&g_node, std::memory_order_release);
    return timed_run(1, cfg.run_ms, cfg.runs, [](int, const std::atomic<bool>& stop) {
        std::uint64_t ops = 0;
        std::uintptr_t sink = 0;
        while (!stop.load(std::memory_order_acquire)) {
            for (int i = 0; i < 64; ++i) {
                asym::publish(g_hp, &g_node);
                sink += reinterpret_cast<std::uintptr_t>(g_link.load(std::memory_order_acquire));
            }
            ops += 64;
        }
        g_sink.fetch_add(sink, std::memory_order_relaxed);
        return ops;
    });
}

struct TraversalPoint {
    RunStats stats;
    double heavy_per_op = 0;
};

/// Read-only traversal of a half-full Michael list through the full OrcGC
/// protect path. heavy_per_op is measured across the timed window only
/// (prefill before, list destruction after), so retire-driven scans cannot
/// pollute the loads-don't-pay-heavy evidence.
TraversalPoint list_traversal(int threads, const BenchConfig& cfg, std::uint64_t keys) {
    TraversalPoint point;
    MichaelListOrc<std::uint64_t> list;
    for (std::uint64_t k = 0; k < keys; k += 2) list.insert(k);
    const std::uint64_t heavy_before = asym::heavy_fences();
    point.stats =
        timed_run(threads, cfg.run_ms, cfg.runs, [&](int t, const std::atomic<bool>& stop) {
            Xoshiro256 rng(0xab1a710 + 31 * t);
            std::uint64_t ops = 0;
            while (!stop.load(std::memory_order_acquire)) {
                list.contains(next_key(rng, keys));
                ++ops;
            }
            return ops;
        });
    const double heavy_delta = static_cast<double>(asym::heavy_fences() - heavy_before);
    const double total_ops =
        point.stats.mean_ops_per_sec * (cfg.run_ms / 1000.0) * cfg.runs;
    point.heavy_per_op = total_ops > 0 ? heavy_delta / total_ops : 0;
    return point;
}

}  // namespace
}  // namespace orcgc

int main(int argc, char** argv) {
    using namespace orcgc;
    bench_json_init(argc, argv);
    const BenchConfig cfg = BenchConfig::from_env();
    const std::uint64_t keys = cfg.keys ? cfg.keys : 1000;
    std::printf("# Publish-idiom ablation, Michael list, %llu keys; startup mode: %s\n",
                static_cast<unsigned long long>(keys), asym::mode_name(asym::mode()));

    struct Point {
        double ops = 0;
        double heavy_per_op = 0;
    };
    std::map<std::pair<std::string, int>, Point> traversal;
    bool membarrier_degraded = false;

    for (const ModePoint& mp : kModes) {
        asym::testing::ScopedMode scoped(mp.mode);
        if (asym::mode() != mp.mode) {
            // TSan build or no kernel support: the request degraded to fence.
            // Run the series anyway (rows keep the requested label) but tell
            // the gate the membarrier-vs-seed comparison is meaningless.
            std::printf("# series %s degraded to %s — gain gate disabled\n", mp.series,
                        asym::mode_name(asym::mode()));
            if (mp.mode == asym::Mode::kMembarrier) membarrier_degraded = true;
        }
        print_row("publish-ablation", mp.series, "publish", 1, micro_publish(cfg));
        for (int threads : cfg.thread_counts) {
            const TraversalPoint p = list_traversal(threads, cfg, keys);
            print_row("publish-ablation", mp.series, kReadOnly.name.data(), threads, p.stats,
                      p.heavy_per_op);
            traversal[{mp.series, threads}] = {p.stats.mean_ops_per_sec, p.heavy_per_op};
        }
    }

    if (std::getenv("ORC_ABLATION_SKIP_GATE") != nullptr) return 0;

    double min_gain = 1.05;
    double parity = 0.15;
    if (const char* g = std::getenv("ORC_ABLATION_MIN_GAIN")) min_gain = std::atof(g);
    if (const char* p = std::getenv("ORC_ABLATION_PARITY")) parity = std::atof(p);
    const int tmax = *std::max_element(cfg.thread_counts.begin(), cfg.thread_counts.end());
    const double seed = traversal[{"seed-seqcst", tmax}].ops;
    const double fence = traversal[{"fence", tmax}].ops;
    const double memb = traversal[{"membarrier", tmax}].ops;
    bool failed = false;

    if (!membarrier_degraded && seed > 0 && memb / seed < min_gain) {
        std::fprintf(stderr,
                     "GATE FAIL: membarrier/seed = %.3f at t=%d (need >= %.2f)\n",
                     memb / seed, tmax, min_gain);
        failed = true;
    }
    if (seed > 0 && fence < seed * (1.0 - parity)) {
        std::fprintf(stderr, "GATE FAIL: fence/seed = %.3f at t=%d (need >= %.2f)\n",
                     fence / seed, tmax, 1.0 - parity);
        failed = true;
    }
    for (const auto& [key, point] : traversal) {
        if (point.heavy_per_op > 0.01) {
            std::fprintf(stderr,
                         "GATE FAIL: %s t=%d paid %.4f heavy fences per read-only op — "
                         "heavy must scale with scans, not loads\n",
                         key.first.c_str(), key.second, point.heavy_per_op);
            failed = true;
        }
    }
    if (failed) {
        BenchJsonRecorder::instance().flush();  // keep the evidence of the failing run
        return 1;
    }
    std::printf("# gates OK: membarrier/seed=%.3f fence/seed=%.3f at t=%d\n",
                seed > 0 ? memb / seed : 0, seed > 0 ? fence / seed : 0, tmax);
    return 0;
}
