// Reproduces Figures 5 and 6: four linked-list algorithms annotated with
// OrcGC — the original Harris list, Michael's list, the Herlihy–Shavit list
// with wait-free lookups, and (when built) the TBKP wait-free list — with
// 10^3 keys across the paper's three operation mixes. Apart from Michael's
// list, these are algorithms "on which manual memory reclamation could not
// be applied" (§5); OrcGC makes them comparable on equal terms.
#include <cstdint>
#include <cstdio>

#include "common/bench_harness.hpp"
#include "common/workload.hpp"
#include "ds/orc/harris_list_orc.hpp"
#include "ds/orc/hs_list_orc.hpp"
#include "ds/orc/michael_list_orc.hpp"
#include "set_bench_common.hpp"

namespace orcgc {
namespace {

using Key = std::uint64_t;

template <typename Set>
void run_series(const char* name, const BenchConfig& cfg, std::uint64_t keys) {
    for (const auto& mix : kAllMixes) {
        for (int threads : cfg.thread_counts) {
            const RunStats stats = run_set_point<Set>(threads, cfg, keys, mix);
            print_row("lists-orc(fig5/6)", name, mix.name.data(), threads, stats);
        }
    }
}

}  // namespace
}  // namespace orcgc

int main() {
    using namespace orcgc;
    const BenchConfig cfg = BenchConfig::from_env();
    const std::uint64_t keys = cfg.keys ? cfg.keys : 1000;
    std::printf("# Lock-free linked lists with OrcGC, %llu keys (paper Figs. 5-6)\n",
                static_cast<unsigned long long>(keys));
    run_series<HarrisListOrc<Key>>("Harris", cfg, keys);
    run_series<MichaelListOrc<Key>>("Michael", cfg, keys);
    run_series<HSListOrc<Key>>("HS", cfg, keys);
    return 0;
}
