// Reproduces Figures 7 and 8: the Natarajan–Mittal lock-free tree under the
// reclamation schemes its traversal admits (None and EBR — see nm_tree.hpp
// on why the other manual schemes are excluded) plus OrcGC,
// together with the two OrcGC skip lists (the ported Herlihy–Shavit skip
// list and the paper's CRF-skip).
//
// The paper runs 10^6 keys; the container default is 10^5 for time budget —
// override with ORC_BENCH_KEYS=1000000 to match the paper exactly.
#include <cstdint>
#include <cstdio>

#include "common/bench_harness.hpp"
#include "common/workload.hpp"
#include "ds/nm_tree.hpp"
#include "ds/orc/crf_skiplist_orc.hpp"
#include "ds/orc/hs_skiplist_orc.hpp"
#include "ds/orc/nm_tree_orc.hpp"
#include "reclamation/reclamation.hpp"
#include "set_bench_common.hpp"

namespace orcgc {
namespace {

using Key = std::uint64_t;

template <typename Set>
void run_series(const char* name, const BenchConfig& cfg, std::uint64_t keys) {
    for (const auto& mix : kAllMixes) {
        for (int threads : cfg.thread_counts) {
            const RunStats stats = run_set_point<Set>(threads, cfg, keys, mix);
            print_row("tree-skip(fig7/8)", name, mix.name.data(), threads, stats);
        }
    }
}

}  // namespace
}  // namespace orcgc

int main() {
    using namespace orcgc;
    const BenchConfig cfg = BenchConfig::from_env();
    const std::uint64_t keys = cfg.keys ? cfg.keys : 100000;
    std::printf("# NM tree + skip lists, %llu keys (paper Figs. 7-8; paper uses 10^6)\n",
                static_cast<unsigned long long>(keys));
    run_series<NMTree<Key, ReclaimerNone>>("NM-None", cfg, keys);
    run_series<NMTree<Key, EpochBasedReclaimer>>("NM-EBR", cfg, keys);
    run_series<NMTreeOrc<Key>>("NM-OrcGC", cfg, keys);
    run_series<HSSkipListOrc<Key>>("HS-skip-OrcGC", cfg, keys);
    run_series<CRFSkipListOrc<Key>>("CRF-skip-OrcGC", cfg, keys);
    return 0;
}
