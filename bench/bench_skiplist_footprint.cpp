// Reproduces the §5 memory-footprint observation: under sustained churn the
// Herlihy–Shavit skip list accumulates removed-but-still-chained nodes
// (the paper measured ~19 GB against <1 GB for CRF-skip). We track the peak
// number of live nodes during an insert/remove-heavy run and report it with
// an estimated byte footprint.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/alloc_tracker.hpp"
#include "common/barrier.hpp"
#include "common/bench_harness.hpp"
#include "common/rng.hpp"
#include "ds/orc/crf_skiplist_orc.hpp"
#include "ds/orc/hs_skiplist_orc.hpp"

namespace orcgc {
namespace {

using Key = std::uint64_t;

template <typename SkipList>
void run_series(const char* name, const BenchConfig& cfg, std::uint64_t keys,
                std::size_t node_bytes) {
    auto& counters = AllocCounters::instance();
    for (int threads : cfg.thread_counts) {
        const auto live_before = counters.live_count();
        std::int64_t peak = 0;
        std::int64_t residual = 0;
        {
            SkipList sl;
            Xoshiro256 prefill(1);
            for (Key k = 0; k < keys; ++k) {
                if (prefill.next_bounded(2) == 0) sl.insert(k);
            }
            std::atomic<bool> stop{false};
            std::atomic<std::int64_t> peak_live{0};
            SpinBarrier barrier(threads + 2);
            std::vector<std::thread> workers;
            for (int t = 0; t < threads; ++t) {
                workers.emplace_back([&, t] {
                    Xoshiro256 rng(55 + t);
                    barrier.arrive_and_wait();
                    while (!stop.load(std::memory_order_acquire)) {
                        const Key k = rng.next_bounded(keys);
                        if (rng.next_bounded(2) == 0) {
                            sl.insert(k);
                        } else {
                            sl.remove(k);
                        }
                    }
                });
            }
            std::thread monitor([&] {
                barrier.arrive_and_wait();
                while (!stop.load(std::memory_order_acquire)) {
                    const auto live = counters.live_count() - live_before;
                    std::int64_t prev = peak_live.load();
                    while (prev < live && !peak_live.compare_exchange_weak(prev, live)) {
                    }
                    std::this_thread::yield();
                }
            });
            barrier.arrive_and_wait();
            std::this_thread::sleep_for(std::chrono::milliseconds(cfg.run_ms * 4));
            stop.store(true, std::memory_order_release);
            for (auto& w : workers) w.join();
            monitor.join();
            peak = peak_live.load();
            residual = counters.live_count() - live_before;  // after quiescence
        }
        std::printf(
            "skip-footprint(§5)     %-14s t=%-3d keys=%-8llu peak_live=%-8lld (~%.1f MB) "
            "residual_after_churn=%lld\n",
            name, threads, static_cast<unsigned long long>(keys), static_cast<long long>(peak),
            static_cast<double>(peak) * node_bytes / (1024.0 * 1024.0),
            static_cast<long long>(residual));
        std::fflush(stdout);
    }
}

}  // namespace
}  // namespace orcgc

int main() {
    using namespace orcgc;
    const BenchConfig cfg = BenchConfig::from_env();
    const std::uint64_t keys = cfg.keys ? cfg.keys : 16384;
    std::printf("# Skip-list memory footprint under churn (paper §5: HS ~19GB vs CRF <1GB)\n");
    run_series<HSSkipListOrc<Key>>("HS-skip",
                                   cfg, keys, sizeof(HSSkipListOrc<Key>::Node));
    run_series<CRFSkipListOrc<Key>>("CRF-skip", cfg, keys,
                                    sizeof(CRFSkipListOrc<Key>::Node));
    return 0;
}
