// Reproduces Figures 1 and 2: lock-free and wait-free queues running
// enqueue/dequeue pairs. The paper plots throughput normalized per
// algorithm family; we print absolute ops/s plus normalization against the
// MS-queue/no-reclamation baseline at the same thread count.
//
// Series: Michael–Scott under manual schemes (None/HP/HE/PTP), MS with
// OrcGC (the paper's Algorithm 1), the Kogan–Petrank wait-free queue
// (OrcGC-only — obstacle 1), and LCRQ/TurnQueue when built.
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <map>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/bench_harness.hpp"
#include "ds/ms_queue.hpp"
#include "ds/orc/kp_queue_orc.hpp"
#include "ds/orc/lcrq_orc.hpp"
#include "ds/orc/ms_queue_orc.hpp"
#include "reclamation/reclamation.hpp"

namespace orcgc {
namespace {

using Value = std::uint64_t;

std::map<int, double> g_baseline;  // threads -> MS-None ops/s

template <typename Queue>
RunStats run_queue_point(int threads, const BenchConfig& cfg) {
    std::vector<double> samples;
    for (int r = 0; r < cfg.runs; ++r) {
        Queue queue;
        for (Value i = 0; i < 256; ++i) queue.enqueue(i);  // warm prefill
        std::atomic<bool> stop{false};
        std::atomic<std::uint64_t> total_ops{0};
        SpinBarrier barrier(threads + 1);
        std::vector<std::thread> workers;
        for (int t = 0; t < threads; ++t) {
            workers.emplace_back([&, t] {
                std::uint64_t ops = 0;
                Value v = t;
                barrier.arrive_and_wait();
                while (!stop.load(std::memory_order_acquire)) {
                    queue.enqueue(v++);
                    queue.dequeue();
                    ops += 2;  // a pair, as in the paper's 10^7-pairs runs
                }
                total_ops.fetch_add(ops, std::memory_order_relaxed);
            });
        }
        barrier.arrive_and_wait();
        const auto t0 = std::chrono::steady_clock::now();
        std::this_thread::sleep_for(std::chrono::milliseconds(cfg.run_ms));
        stop.store(true, std::memory_order_release);
        for (auto& w : workers) w.join();
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
        samples.push_back(static_cast<double>(total_ops.load()) / secs);
    }
    RunStats stats;
    for (double s : samples) stats.mean_ops_per_sec += s;
    stats.mean_ops_per_sec /= samples.size();
    for (double s : samples) {
        const double d = s - stats.mean_ops_per_sec;
        stats.stddev += d * d;
    }
    stats.stddev = std::sqrt(stats.stddev / samples.size());
    return stats;
}

template <typename Queue>
void run_series(const char* name, const BenchConfig& cfg, bool is_baseline) {
    for (int threads : cfg.thread_counts) {
        const RunStats stats = run_queue_point<Queue>(threads, cfg);
        if (is_baseline) g_baseline[threads] = stats.mean_ops_per_sec;
        const double base = g_baseline.count(threads) ? g_baseline[threads] : 0.0;
        print_row("queues(fig1/2)", name, "enq-deq", threads, stats,
                  base > 0 ? stats.mean_ops_per_sec / base : -1.0);
    }
}

}  // namespace
}  // namespace orcgc

int main() {
    using namespace orcgc;
    const BenchConfig cfg = BenchConfig::from_env();
    std::printf("# Queues, enqueue/dequeue pairs (paper Figs. 1-2)\n");
    std::printf("# norm = throughput relative to MS-queue without reclamation\n");
    run_series<MSQueue<Value, ReclaimerNone>>("MS-None", cfg, /*is_baseline=*/true);
    run_series<MSQueue<Value, HazardPointers>>("MS-HP", cfg, false);
    run_series<MSQueue<Value, HazardEras>>("MS-HE", cfg, false);
    run_series<MSQueue<Value, PassThePointer>>("MS-PTP", cfg, false);
    run_series<MSQueueOrc<Value>>("MS-OrcGC", cfg, false);
    run_series<LCRQOrc<Value>>("LCRQ-OrcGC", cfg, false);
    run_series<KPQueueOrc<Value>>("KP-OrcGC", cfg, false);
    return 0;
}
