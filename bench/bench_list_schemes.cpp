// Reproduces Figures 3 and 4: the Michael–Harris lock-free linked list with
// 10^3 keys under every manual reclamation scheme plus OrcGC, across the
// paper's three operation mixes (50i/50r, 5i/5r/90l, 100l) and a thread
// sweep. The paper normalizes against the leak baseline ("None"); each row
// prints absolute ops/s and the same normalization.
//
// Environment knobs: ORC_BENCH_MS, ORC_BENCH_RUNS, ORC_BENCH_THREADS,
// ORC_BENCH_KEYS (default 1000, the paper's value). With --json <path> the
// flushed artifact carries a "telemetry" object holding the shared counter
// set (retired / freed / peak_unreclaimed / scans) for every scheme that ran,
// OrcGC and all manual baselines alike — one registry, one schema.
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>

#include "common/bench_harness.hpp"
#include "common/workload.hpp"
#include "ds/michael_list.hpp"
#include "ds/orc/michael_list_orc.hpp"
#include "reclamation/reclamation.hpp"
#include "set_bench_common.hpp"

namespace orcgc {
namespace {

using Key = std::uint64_t;

struct PointKey {
    std::string mix;
    int threads;
    bool operator<(const PointKey& o) const {
        return mix != o.mix ? mix < o.mix : threads < o.threads;
    }
};
std::map<PointKey, double> g_baseline;

template <typename Set>
void run_series(const char* name, const BenchConfig& cfg, std::uint64_t keys,
                bool is_baseline) {
    for (const auto& mix : kAllMixes) {
        for (int threads : cfg.thread_counts) {
            const RunStats stats = run_set_point<Set>(threads, cfg, keys, mix);
            const PointKey pk{std::string(mix.name), threads};
            if (is_baseline) g_baseline[pk] = stats.mean_ops_per_sec;
            const double base = g_baseline.count(pk) ? g_baseline[pk] : 0.0;
            print_row("list-1k(fig3/4)", name, mix.name.data(), threads, stats,
                      base > 0 ? stats.mean_ops_per_sec / base : -1.0);
        }
    }
}

}  // namespace
}  // namespace orcgc

int main(int argc, char** argv) {
    using namespace orcgc;
    bench_json_init(argc, argv);
    const BenchConfig cfg = BenchConfig::from_env();
    const std::uint64_t keys = cfg.keys ? cfg.keys : 1000;
    std::printf("# Michael-Harris lock-free list, %llu keys (paper Figs. 3-4)\n",
                static_cast<unsigned long long>(keys));
    std::printf("# norm = throughput relative to the no-reclamation baseline\n");
    run_series<MichaelList<Key, ReclaimerNone>>("None", cfg, keys, /*is_baseline=*/true);
    run_series<MichaelList<Key, HazardPointers>>("HP", cfg, keys, false);
    run_series<MichaelList<Key, PassTheBuck>>("PTB", cfg, keys, false);
    run_series<MichaelList<Key, EpochBasedReclaimer>>("EBR", cfg, keys, false);
    run_series<MichaelList<Key, HazardEras>>("HE", cfg, keys, false);
    run_series<MichaelList<Key, IntervalBasedReclaimer>>("IBR", cfg, keys, false);
    run_series<MichaelList<Key, PassThePointer>>("PTP", cfg, keys, false);
    run_series<MichaelList<Key, Hyaline>>("Hyaline", cfg, keys, false);
    run_series<MichaelList<Key, Debra>>("DEBRA", cfg, keys, false);
    run_series<MichaelListOrc<Key>>("OrcGC", cfg, keys, false);
    BenchJsonRecorder::instance().flush();
    return 0;
}
