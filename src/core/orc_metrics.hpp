// OrcMetrics: the per-OrcDomain telemetry provider.
//
// Every OrcDomain owns one of these (domain->metrics()); the domain's retire
// machinery calls the on_* hooks at the protocol points the paper's §5
// evaluates — token takes, hp scans, snapshots, handovers, frees. Hooks fire
// through a Hot handle that resolves the calling thread's cacheline-padded
// block once per cascade; each block has exactly one writer, so every
// increment is a plain relaxed load+store pair (no lock prefix — see
// bump()) and the always-on cost per retired node is a few ordinary stores
// the pipeline hides (tools/telemetry_overhead.py gates the total at 2%).
// The load /
// protect fast path (get_protected, protect_ptr, scratch_protect) is NOT
// instrumented at all — tests/test_telemetry.cpp greps the engine source to
// keep it that way.
//
// Counter taxonomy (DESIGN.md "Observability"):
//   retired        fresh retire tokens taken (release_idx / increment_orc /
//                  decrement_orc CAS successes). NOT one per retire() call:
//                  handover drains re-enter retire() with an already-counted
//                  token.
//   freed_batch    deletes proven by a generation snapshot
//   freed_slow     deletes proven by a per-object scan
//   resurrected    retire tokens dropped because the counter left zero
//                  (a later decrement re-takes — and re-counts — the token)
//   scans          per-object try_handover passes
//   snapshots      full-hp-array snapshots taken
//   slots_scanned  hp slots loaded by scans + snapshots
//   handovers      objects parked on another thread's handover slot
//   cascades       top-level retire() calls (cascade roots)
//   shard_pushes   displaced handover occupants pushed onto a shard's MPSC
//                  inbox (instead of an inline rescan chain)
//   shard_drained  objects exchanged back out of shard inboxes
//   scans_shared   cooperative shared scans installed (owner side)
//   chunks_stolen  claim-ticket chunks settled by a non-owner thread
//   items_stolen   objects inside those stolen chunks
//   bg_wakes       background-reclaimer wakeups
//   bg_parks       background-reclaimer drain passes completed (re-parks)
//
// Histograms (log2 buckets):
//   retire_latency_gens   cascade generation index at free — how many scan
//                         generations an object waited from cascade start
//   handover_chain_len    successful handovers per retire_one invocation
//   snapshot_hps          published hps captured per snapshot
//   cascade_slots_scanned hp slots touched per top-level cascade
//   retire_free_age       coarse_now() ticks from the retire-token CAS that
//                         stamped the object (orc_base::_orc_rts) to its
//                         delete — the wall-clock life of one piece of
//                         garbage. SAMPLED 1-in-64 per retiring thread
//                         (telemetry::kAgeSampleMask): stamped objects are
//                         measured at full clock resolution on whichever
//                         free path settles them (batched walk-park,
//                         per-object rescan, shard drain, bg reclaimer),
//                         unstamped ones record nothing. Exported with
//                         p50/p99/p999
//
// peak_unreclaimed is SAMPLED, not exact: a per-node aggregate walk would
// put kMaxThreads relaxed loads of other threads' lines on the retire path.
// Instead the walk runs every 64th per-thread token take and on every
// external read (snapshot / common_counters), which is exact at quiescence.
//
// Event tracing: off by default; enabled per domain via set_tracing(true) or
// process-wide for new domains via ORC_TRACE=1. While off, the only cost on
// the instrumented paths is one relaxed load of a read-mostly flag per Hot
// handle (latched at construction); no ring storage exists until the first
// enable.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/cacheline.hpp"
#include "common/telemetry.hpp"
#include "common/thread_registry.hpp"

namespace orcgc {

class OrcMetrics final : public telemetry::MetricProvider {
    struct ThreadBlock;  // defined below; Hot holds a reference

    enum : int {
        kRetired,
        kFreedBatch,
        kFreedSlow,
        kResurrected,
        kScans,
        kSnapshots,
        kSlotsScanned,
        kHandovers,
        kCascades,
        kShardPushes,
        kShardDrained,
        kScansShared,
        kChunksStolen,
        kItemsStolen,
        kBgWakes,
        kBgParks,
        kNumCounters
    };
    enum : int {
        kHistLatencyGens,
        kHistChainLen,
        kHistSnapshotHps,
        kHistCascadeSlots,
        kHistAge,
        kNumHists
    };

  public:
    /// Trace ring capacity per thread (records kept per thread once tracing
    /// is enabled; older records are overwritten).
    static constexpr std::size_t kTraceCapacity = 256;

    explicit OrcMetrics(bool is_global) : name_(is_global ? "orc/global" : "orc/domain") {
        if constexpr (telemetry::kTelemetryEnabled) {
            telemetry::register_provider(this);
            if (telemetry::trace_requested()) set_tracing(true);
        }
    }
    ~OrcMetrics() {
        if constexpr (telemetry::kTelemetryEnabled) {
            // Unregister first: the registry folds this provider's final
            // totals into its accumulated-by-name table, which reads the
            // blocks about to be freed.
            telemetry::unregister_provider(this);
            for (auto& slot : tl_) delete slot.load(std::memory_order_acquire);
        }
    }
    OrcMetrics(const OrcMetrics&) = delete;
    OrcMetrics& operator=(const OrcMetrics&) = delete;

    // ---- hooks (owner-thread, called from OrcDomain's retire machinery) ----
    //
    // A cascade fires several hooks per retired node. The retire machinery
    // takes one Hot handle up front — one thread_id() lookup for the whole
    // cascade — and drives every hook through it; the standalone on_* members
    // below re-resolve the block and exist for one-shot call sites (token
    // CAS, handover drain) where a handle would not amortize.

    /// Owner-thread hook handle with the calling thread's block resolved
    /// once. Valid only on the creating thread (blocks are keyed by dense
    /// thread id) and only within the call frame that created it.
    ///
    /// Counter bumps go straight to the block — single-writer plain
    /// load+store pairs (see bump()); cascade scratch (generation index,
    /// slots-scanned tally) lives in the handle, and the tracing flag is
    /// latched at construction: one acquire load per cascade instead of one
    /// per hook, so set_tracing() takes effect on the next cascade, not
    /// mid-flight.
    class Hot {
      public:
        /// A fresh retire token was taken for `obj`.
        void on_retire_token(const void* obj) noexcept {
            if constexpr (telemetry::kTelemetryEnabled) {
                const std::uint64_t mine = bump(t_->c[kRetired]);
                // Subsampled peak refresh (see header comment).
                if ((mine & 63) == 0) m_.refresh_peak();
                if (tracing_) t_->trace.record(telemetry::TraceType::kRetire, obj, 0);
            } else {
                (void)obj;
            }
        }

        /// `obj` is about to be deleted; `batched` selects the proving path;
        /// `age` is its retire→free age in coarse_now() ticks, or
        /// telemetry::kNoAge when the object carried no stamp (ages are
        /// 1-in-64 sampled — see telemetry::kAgeSampleMask). kNoAge frees
        /// record nothing: folding them into bucket 0 would crush the
        /// percentiles toward zero.
        void on_free(const void* obj, bool batched,
                     std::uint64_t age = telemetry::kNoAge) noexcept {
            if constexpr (telemetry::kTelemetryEnabled) {
                bump(t_->c[batched ? kFreedBatch : kFreedSlow]);
                t_->hist[kHistLatencyGens].record_owner(gen_);
                if (age != telemetry::kNoAge) {
                    t_->hist[kHistAge].record_owner(age);
                }
                if (tracing_) {
                    t_->trace.record(telemetry::TraceType::kFree, obj, batched ? 1 : 0);
                }
            } else {
                (void)obj;
                (void)batched;
                (void)age;
            }
        }

        /// The retire token for `obj` was dropped because its counter left
        /// zero.
        void on_resurrect(const void* obj) noexcept {
            if constexpr (telemetry::kTelemetryEnabled) bump(t_->c[kResurrected]);
            (void)obj;
        }

        void on_scan_begin(const void* obj) noexcept {
            if constexpr (telemetry::kTelemetryEnabled) {
                bump(t_->c[kScans]);
                if (tracing_) t_->trace.record(telemetry::TraceType::kScanBegin, obj, 0);
            } else {
                (void)obj;
            }
        }

        void on_scan_end(const void* obj, std::uint64_t slots) noexcept {
            if constexpr (telemetry::kTelemetryEnabled) {
                bump(t_->c[kSlotsScanned], slots);
                cascade_slots_ += slots;
                if (tracing_) t_->trace.record(telemetry::TraceType::kScanEnd, obj, slots);
            } else {
                (void)obj;
                (void)slots;
            }
        }

        void on_handover(const void* obj) noexcept {
            if constexpr (telemetry::kTelemetryEnabled) {
                bump(t_->c[kHandovers]);
                if (tracing_) t_->trace.record(telemetry::TraceType::kHandover, obj, 0);
            } else {
                (void)obj;
            }
        }

        /// Successful handovers performed by one retire_one invocation.
        void on_chain(std::uint32_t length) noexcept {
            if constexpr (telemetry::kTelemetryEnabled) {
                if (length != 0) t_->hist[kHistChainLen].record_owner(length);
            } else {
                (void)length;
            }
        }

        /// One generation snapshot: `published` hps captured, `slots` loaded.
        void on_snapshot(std::uint64_t published, std::uint64_t slots) noexcept {
            if constexpr (telemetry::kTelemetryEnabled) {
                bump(t_->c[kSnapshots]);
                bump(t_->c[kSlotsScanned], slots);
                cascade_slots_ += slots;
                t_->hist[kHistSnapshotHps].record_owner(published);
            } else {
                (void)published;
                (void)slots;
            }
        }

        void on_cascade_begin() noexcept {
            if constexpr (telemetry::kTelemetryEnabled) {
                cascade_slots_ = 0;
                gen_ = 0;
            }
        }

        /// Generation index within the current cascade (0 = the root object).
        void set_generation(std::uint32_t gen) noexcept {
            if constexpr (telemetry::kTelemetryEnabled) gen_ = gen;
        }

        void on_cascade_end() noexcept {
            if constexpr (telemetry::kTelemetryEnabled) {
                bump(t_->c[kCascades]);
                t_->hist[kHistCascadeSlots].record_owner(cascade_slots_);
            }
        }

        /// A parked object was taken out of a handover slot for reprocessing.
        void on_drain(const void* obj) noexcept {
            if constexpr (telemetry::kTelemetryEnabled) {
                if (tracing_) t_->trace.record(telemetry::TraceType::kDrain, obj, 0);
            } else {
                (void)obj;
            }
        }

        /// A displaced handover occupant was pushed onto shard `tid`'s MPSC
        /// inbox instead of being rescanned inline (the sharded retire path).
        void on_shard_push(const void* obj, int tid) noexcept {
            if constexpr (telemetry::kTelemetryEnabled) {
                bump(t_->c[kShardPushes]);
                if (tracing_) {
                    t_->trace.record(telemetry::TraceType::kShardPush, obj,
                                     static_cast<std::uint64_t>(tid));
                }
            } else {
                (void)obj;
                (void)tid;
            }
        }

        /// This thread installed a cooperative shared scan (it is the owner).
        void on_shared_scan() noexcept {
            if constexpr (telemetry::kTelemetryEnabled) bump(t_->c[kScansShared]);
        }

        /// One claim-ticket chunk of `items` objects was stolen from another
        /// thread's open shared scan and settled by this thread.
        void on_steal(std::uint64_t items) noexcept {
            if constexpr (telemetry::kTelemetryEnabled) {
                bump(t_->c[kChunksStolen]);
                bump(t_->c[kItemsStolen], items);
            } else {
                (void)items;
            }
        }

        /// The calling thread's trace ring while tracing is on, else null.
        /// telemetry::TraceSpan takes this pointer: with tracing off (the
        /// latched flag) a span collapses to two null tests.
        telemetry::TraceRing* span_ring() noexcept {
            if constexpr (telemetry::kTelemetryEnabled) {
                return tracing_ ? &t_->trace : nullptr;
            } else {
                return nullptr;
            }
        }

      private:
        friend class OrcMetrics;
        /// `t` is null only in telemetry-off builds, where every member that
        /// would touch it is compiled out.
        Hot(OrcMetrics& m, ThreadBlock* t) noexcept
            : m_(m),
              t_(t),
              tracing_(telemetry::kTelemetryEnabled &&
                       m.trace_on_.load(std::memory_order_acquire)) {}
        OrcMetrics& m_;
        ThreadBlock* const t_;
        const bool tracing_;
        std::uint64_t cascade_slots_ = 0;
        std::uint32_t gen_ = 0;
    };

    /// One thread-block lookup for a whole cascade of hooks.
    Hot hot() noexcept {
        if constexpr (telemetry::kTelemetryEnabled) {
            return Hot(*this, &tb());
        } else {
            return Hot(*this, nullptr);
        }
    }

    // One-shot forms for call sites outside a cascade frame. The token hook
    // runs once per retired node (orc_ptr stores take tokens outside any
    // cascade), so it skips the Hot handle and does the single bump it
    // needs directly.
    void on_retire_token(const void* obj) noexcept {
        if constexpr (telemetry::kTelemetryEnabled) {
            ThreadBlock& t = tb();
            const std::uint64_t mine = bump(t.c[kRetired]);
            // Subsampled peak refresh (see header comment).
            if ((mine & 63) == 0) refresh_peak();
            if (trace_on_.load(std::memory_order_acquire)) {
                t.trace.record(telemetry::TraceType::kRetire, obj, 0);
            }
        } else {
            (void)obj;
        }
    }
    void on_free(const void* obj, bool batched,
                 std::uint64_t age = telemetry::kNoAge) noexcept {
        hot().on_free(obj, batched, age);
    }
    void on_resurrect(const void* obj) noexcept { hot().on_resurrect(obj); }
    void on_scan_begin(const void* obj) noexcept { hot().on_scan_begin(obj); }
    void on_scan_end(const void* obj, std::uint64_t slots) noexcept {
        hot().on_scan_end(obj, slots);
    }
    void on_handover(const void* obj) noexcept { hot().on_handover(obj); }
    void on_chain(std::uint32_t length) noexcept { hot().on_chain(length); }
    void on_snapshot(std::uint64_t published, std::uint64_t slots) noexcept {
        hot().on_snapshot(published, slots);
    }
    void on_cascade_begin() noexcept { hot().on_cascade_begin(); }
    void set_generation(std::uint32_t gen) noexcept { hot().set_generation(gen); }
    void on_cascade_end() noexcept { hot().on_cascade_end(); }
    void on_drain(const void* obj) noexcept {
        if constexpr (telemetry::kTelemetryEnabled) {
            // Trace-only, fired per drained handover: skip the Hot handle
            // and the block lookup unless tracing is actually on.
            if (trace_on_.load(std::memory_order_acquire)) {
                tb().trace.record(telemetry::TraceType::kDrain, obj, 0);
            }
        } else {
            (void)obj;
        }
    }

    /// `taken` objects were exchanged out of shard `tid`'s MPSC inbox in one
    /// drain (fires only when the inbox was non-empty — never on the
    /// empty-check fast path).
    void on_shard_drain(int tid, std::uint64_t taken) noexcept {
        if constexpr (telemetry::kTelemetryEnabled) {
            ThreadBlock& t = tb();
            bump(t.c[kShardDrained], taken);
            if (trace_on_.load(std::memory_order_acquire)) {
                t.trace.record(telemetry::TraceType::kShardDrain, nullptr, taken);
            }
            (void)tid;
        } else {
            (void)tid;
            (void)taken;
        }
    }

    /// The background reclaimer woke on backlog (fires on its thread).
    void on_bg_wake() noexcept {
        if constexpr (telemetry::kTelemetryEnabled) bump(tb().c[kBgWakes]);
    }

    /// The background reclaimer finished a drain pass and is about to park.
    void on_bg_park() noexcept {
        if constexpr (telemetry::kTelemetryEnabled) bump(tb().c[kBgParks]);
    }

    /// Wires the domain's live shard-backlog gauge (objects currently parked
    /// across its MPSC inboxes) into this provider's export. The pointee
    /// must outlive the provider (both are OrcDomain members).
    void wire_shard_backlog(const std::atomic<std::int64_t>* backlog) noexcept {
        shard_backlog_ = backlog;
    }

    /// One-shot span ring lookup for call sites outside a cascade frame
    /// (bg-reclaimer cycles, shard drains). Null while tracing is off.
    telemetry::TraceRing* span_ring() noexcept {
        if constexpr (telemetry::kTelemetryEnabled) {
            if (!trace_on_.load(std::memory_order_acquire)) return nullptr;
            return &tb().trace;
        } else {
            return nullptr;
        }
    }

    /// Wires the domain's stalled-reader watchdog gauges (suspect slots and
    /// the objects their published HPs are pinning — see
    /// OrcDomain::watchdog_sample) into this provider's export. Pointees
    /// must outlive the provider (all are OrcDomain members).
    void wire_stall_suspects(const std::atomic<std::uint64_t>* suspects,
                             const std::atomic<std::uint64_t>* pinned) noexcept {
        stall_suspects_ = suspects;
        stall_pinned_ = pinned;
    }

    // ---- reading -----------------------------------------------------------

    struct Snapshot {
        std::uint64_t retired = 0;
        std::uint64_t freed_batch = 0;
        std::uint64_t freed_slow = 0;
        std::uint64_t resurrected = 0;
        std::uint64_t scans = 0;
        std::uint64_t snapshots = 0;
        std::uint64_t slots_scanned = 0;
        std::uint64_t handovers = 0;
        std::uint64_t cascades = 0;
        std::uint64_t shard_pushes = 0;
        std::uint64_t shard_drained = 0;
        std::uint64_t scans_shared = 0;
        std::uint64_t chunks_stolen = 0;
        std::uint64_t items_stolen = 0;
        std::uint64_t bg_wakes = 0;
        std::uint64_t bg_parks = 0;
        std::uint64_t peak_unreclaimed = 0;
        /// retired - freed - resurrected, clamped at zero (exact at
        /// quiescence; a mid-cascade read can transiently disagree).
        std::uint64_t unreclaimed = 0;
        telemetry::HistogramSnapshot retire_latency_gens;
        telemetry::HistogramSnapshot handover_chain_len;
        telemetry::HistogramSnapshot snapshot_hps;
        telemetry::HistogramSnapshot cascade_slots_scanned;
        telemetry::HistogramSnapshot retire_free_age;
    };

    Snapshot snapshot() const {
        Snapshot s;
        if constexpr (!telemetry::kTelemetryEnabled) return s;
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            const ThreadBlock* bp = tl_[it].load(std::memory_order_acquire);
            if (bp == nullptr) continue;
            const ThreadBlock& t = *bp;
            s.retired += t.c[kRetired].load(std::memory_order_relaxed);
            s.freed_batch += t.c[kFreedBatch].load(std::memory_order_relaxed);
            s.freed_slow += t.c[kFreedSlow].load(std::memory_order_relaxed);
            s.resurrected += t.c[kResurrected].load(std::memory_order_relaxed);
            s.scans += t.c[kScans].load(std::memory_order_relaxed);
            s.snapshots += t.c[kSnapshots].load(std::memory_order_relaxed);
            s.slots_scanned += t.c[kSlotsScanned].load(std::memory_order_relaxed);
            s.handovers += t.c[kHandovers].load(std::memory_order_relaxed);
            s.cascades += t.c[kCascades].load(std::memory_order_relaxed);
            s.shard_pushes += t.c[kShardPushes].load(std::memory_order_relaxed);
            s.shard_drained += t.c[kShardDrained].load(std::memory_order_relaxed);
            s.scans_shared += t.c[kScansShared].load(std::memory_order_relaxed);
            s.chunks_stolen += t.c[kChunksStolen].load(std::memory_order_relaxed);
            s.items_stolen += t.c[kItemsStolen].load(std::memory_order_relaxed);
            s.bg_wakes += t.c[kBgWakes].load(std::memory_order_relaxed);
            s.bg_parks += t.c[kBgParks].load(std::memory_order_relaxed);
            t.hist[kHistLatencyGens].read_into(s.retire_latency_gens);
            t.hist[kHistChainLen].read_into(s.handover_chain_len);
            t.hist[kHistSnapshotHps].read_into(s.snapshot_hps);
            t.hist[kHistCascadeSlots].read_into(s.cascade_slots_scanned);
            t.hist[kHistAge].read_into(s.retire_free_age);
        }
        const std::uint64_t settled = s.freed_batch + s.freed_slow + s.resurrected;
        s.unreclaimed = s.retired > settled ? s.retired - settled : 0;
        // An external read is also a peak sample point: fold the current
        // backlog in, then report the max ever observed.
        const_cast<OrcMetrics*>(this)->raise_peak(s.unreclaimed);
        s.peak_unreclaimed = peak_.load(std::memory_order_relaxed);
        return s;
    }

    /// Drains every counter and histogram to zero and resets the peak.
    /// Exact only at quiescence: the hooks use owner-exclusive plain
    /// load+store increments (see bump()), so a reset racing a live hook can
    /// double-count the increments it drains. Benches and tests reset at
    /// join points, where this never occurs.
    void reset() noexcept {
        if constexpr (!telemetry::kTelemetryEnabled) return;
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            ThreadBlock* bp = tl_[it].load(std::memory_order_acquire);
            if (bp == nullptr) continue;
            ThreadBlock& t = *bp;
            for (auto& c : t.c) c.exchange(0, std::memory_order_relaxed);
            telemetry::HistogramSnapshot discard;
            for (auto& h : t.hist) h.drain_into(discard);
        }
        peak_.store(0, std::memory_order_relaxed);
    }

    // ---- tracing -----------------------------------------------------------

    bool tracing() const noexcept {
        return trace_on_.load(std::memory_order_acquire);
    }

    /// Enabling allocates each thread's ring on first use (kTraceCapacity
    /// records x kMaxThreads); disabling only lowers the flag — recorded
    /// events stay readable.
    void set_tracing(bool on) {
        if constexpr (!telemetry::kTelemetryEnabled) {
            (void)on;
            return;
        }
        trace_on_.store(on, std::memory_order_release);
        if (on) {
            // Flag first, then walk: a block created after the walk passes
            // its slot sees the raised flag and reserves its own ring in
            // make_block(); one created during the walk may reserve twice,
            // which reserve() tolerates.
            for (auto& slot : tl_) {
                ThreadBlock* b = slot.load(std::memory_order_acquire);
                if (b != nullptr) b->trace.reserve(kTraceCapacity);
            }
        }
    }

    /// All threads' trace rings, decoded. Meaningful at quiescence.
    std::vector<telemetry::TraceRecord> trace_records() const {
        std::vector<telemetry::TraceRecord> out;
        if constexpr (!telemetry::kTelemetryEnabled) return out;
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            const ThreadBlock* b = tl_[it].load(std::memory_order_acquire);
            if (b == nullptr || !b->trace.reserved()) continue;
            auto part = b->trace.snapshot();
            out.insert(out.end(), part.begin(), part.end());
        }
        return out;
    }

    // ---- MetricProvider ----------------------------------------------------

    const char* telemetry_name() const noexcept override { return name_; }

    telemetry::CommonCounters common_counters() const override {
        const Snapshot s = snapshot();
        telemetry::CommonCounters c;
        c.retired = s.retired;
        c.freed = s.freed_batch + s.freed_slow;
        c.peak_unreclaimed = s.peak_unreclaimed;
        c.scans = s.scans;
        return c;
    }

    void visit_extras(telemetry::MetricSink& sink) const override {
        const Snapshot s = snapshot();
        sink.counter("freed_batch", s.freed_batch);
        sink.counter("freed_slow", s.freed_slow);
        sink.counter("resurrected", s.resurrected);
        sink.counter("snapshots", s.snapshots);
        sink.counter("slots_scanned", s.slots_scanned);
        sink.counter("handovers", s.handovers);
        sink.counter("cascades", s.cascades);
        sink.counter("shard_pushes", s.shard_pushes);
        sink.counter("shard_drained", s.shard_drained);
        sink.counter("scans_shared", s.scans_shared);
        sink.counter("chunks_stolen", s.chunks_stolen);
        sink.counter("items_stolen", s.items_stolen);
        sink.counter("bg_wakes", s.bg_wakes);
        sink.counter("bg_parks", s.bg_parks);
        sink.gauge("unreclaimed", s.unreclaimed);
        if (shard_backlog_ != nullptr) {
            const std::int64_t b = shard_backlog_->load(std::memory_order_acquire);
            sink.gauge("shard_backlog", b > 0 ? static_cast<std::uint64_t>(b) : 0);
        }
        if (stall_suspects_ != nullptr) {
            sink.gauge("stall_suspects", stall_suspects_->load(std::memory_order_acquire));
        }
        if (stall_pinned_ != nullptr) {
            sink.gauge("stall_pinned", stall_pinned_->load(std::memory_order_acquire));
        }
        sink.histogram("retire_latency_gens", s.retire_latency_gens);
        sink.histogram("handover_chain_len", s.handover_chain_len);
        sink.histogram("snapshot_hps", s.snapshot_hps);
        sink.histogram("cascade_slots_scanned", s.cascade_slots_scanned);
        sink.histogram("retire_free_age", s.retire_free_age);
    }

    void dump_trace(std::FILE* out) const override {
        if constexpr (!telemetry::kTelemetryEnabled) {
            (void)out;
            return;
        }
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            const ThreadBlock* b = tl_[it].load(std::memory_order_acquire);
            if (b == nullptr || !b->trace.reserved()) continue;
            for (const telemetry::TraceRecord& r : b->trace.snapshot()) {
                std::fprintf(out,
                             "{\"source\": \"%s\", \"tid\": %d, \"tsc\": %llu, "
                             "\"type\": \"%s\", \"obj\": \"0x%llx\", \"arg\": %llu}\n",
                             name_, it, static_cast<unsigned long long>(r.tsc),
                             telemetry::trace_type_name(r.type),
                             static_cast<unsigned long long>(r.obj),
                             static_cast<unsigned long long>(r.arg));
            }
        }
    }

  private:
    struct alignas(kCacheLineSize) ThreadBlock {
        // The counters fill the leading cachelines; a Hot flush touches them
        // once per cascade (cascade scratch lives in the Hot handle itself).
        // orc-lint: allow(R8) this IS the telemetry layer the rule points to
        std::atomic<std::uint64_t> c[kNumCounters] = {};
        telemetry::LogHistogram hist[kNumHists];
        telemetry::TraceRing trace;
    };

    /// The calling thread's block, created on first use. Blocks are heap
    /// side-allocations rather than an inline tl_[kMaxThreads] array so a
    /// telemetry-on OrcDomain keeps the exact footprint and field layout of
    /// a telemetry-off one: inlining ~kMaxThreads x 2.5 KB of blocks into
    /// every domain measurably hurt the retire benches (zero-init on
    /// construction, hot domain arrays spread across far more pages).
    ThreadBlock& tb() noexcept {
        std::atomic<ThreadBlock*>& slot = tl_[thread_id()];
        ThreadBlock* b = slot.load(std::memory_order_acquire);
        if (b == nullptr) b = make_block(slot);
        return *b;
    }

    /// Cold path of tb(). Only the owning thread writes its slot, so a plain
    /// release store publishes the block to cross-thread readers (snapshot,
    /// refresh_peak). noinline/cold: tb() is inlined at every token-CAS
    /// site, and letting this allocation path inline with it bloats those
    /// hot functions enough to show up in the retire benches.
    __attribute__((noinline, cold)) ThreadBlock* make_block(std::atomic<ThreadBlock*>& slot) {
        // orc-lint: allow(R6) once per thread x domain, never on a retire path
        ThreadBlock* b = new ThreadBlock();
        if (trace_on_.load(std::memory_order_acquire)) b->trace.reserve(kTraceCapacity);
        slot.store(b, std::memory_order_release);
        return b;
    }

    /// Owner-exclusive increment. Each ThreadBlock is written only by its
    /// owning thread, so a plain load+store replaces fetch_add: no lock
    /// prefix, no pipeline serialization. On the ~100 ns retire paths the
    /// difference between nine locked RMWs and nine of these IS the telemetry
    /// overhead budget (tools/telemetry_overhead.py gates it at 2%).
    static std::uint64_t bump(std::atomic<std::uint64_t>& c,
                              std::uint64_t n = 1) noexcept {
        const std::uint64_t v = c.load(std::memory_order_relaxed) + n;
        c.store(v, std::memory_order_relaxed);
        return v;
    }

    /// Aggregate walk + CAS-max; amortized on the hot path (see header).
    /// noinline: called (rarely, every 64th token) from hook code that is
    /// itself inlined into the retire hot paths — the walk loop and CAS must
    /// not be.
    __attribute__((noinline)) void refresh_peak() noexcept {
        const int wm = thread_id_watermark();
        std::uint64_t retired = 0;
        std::uint64_t settled = 0;
        for (int it = 0; it < wm; ++it) {
            const ThreadBlock* bp = tl_[it].load(std::memory_order_acquire);
            if (bp == nullptr) continue;
            const ThreadBlock& t = *bp;
            retired += t.c[kRetired].load(std::memory_order_relaxed);
            settled += t.c[kFreedBatch].load(std::memory_order_relaxed) +
                       t.c[kFreedSlow].load(std::memory_order_relaxed) +
                       t.c[kResurrected].load(std::memory_order_relaxed);
        }
        if (retired > settled) raise_peak(retired - settled);
    }

    void raise_peak(std::uint64_t candidate) noexcept {
        std::uint64_t cur = peak_.load(std::memory_order_relaxed);
        while (candidate > cur &&
               !peak_.compare_exchange_weak(cur, candidate, std::memory_order_relaxed)) {
        }
    }

    const char* name_;
    std::atomic<bool> trace_on_{false};
    std::atomic<std::uint64_t> peak_{0};
    /// Live shard-inbox occupancy gauge, owned by the domain (see
    /// wire_shard_backlog); null until wired.
    const std::atomic<std::int64_t>* shard_backlog_ = nullptr;
    /// Stalled-reader watchdog gauges, owned by the domain (see
    /// wire_stall_suspects); null until wired.
    const std::atomic<std::uint64_t>* stall_suspects_ = nullptr;
    const std::atomic<std::uint64_t>* stall_pinned_ = nullptr;
    /// Per-thread block pointers, filled lazily by tb(). See tb() for why
    /// the blocks are side-allocations instead of an inline array.
    std::atomic<ThreadBlock*> tl_[telemetry::kTelemetryEnabled ? kMaxThreads : 1] = {};
};

}  // namespace orcgc
