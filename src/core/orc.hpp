// OrcGC — automatic lock-free memory reclamation (Correia, Ramalhete,
// Felber; PPoPP 2021). Single umbrella header, mirroring the paper's
// "implemented as a single C++ header" packaging.
//
// Methodology to deploy OrcGC on a data structure (§4.1.1):
//   1. Make all dynamic types (nodes) extend orcgc::orc_base.
//   2. Create instances with orcgc::make_orc<T>() instead of new.
//   3. Replace std::atomic<T*> with orcgc::orc_atomic<T*>.
//   4. Hold values returned by orc_atomic::load() / make_orc() in
//      orcgc::orc_ptr<T*> locals (and pass them across functions as such).
//
// Reclamation domains (orc_domain.hpp): every step above also has a
// domain-scoped form — construct an OrcDomain, allocate with
// make_orc_in(domain, ...) (or pass the domain to a data structure's
// constructor), and that domain's retire scans stay independent of every
// other domain's hazardous pointers. Code that never names a domain uses
// OrcDomain::global() implicitly and behaves exactly like the paper's
// process-wide engine.
#pragma once

#include "core/make_orc.hpp"
#include "core/orc_atomic.hpp"
#include "core/orc_base.hpp"
#include "core/orc_domain.hpp"
#include "core/orc_gc.hpp"
#include "core/orc_ptr.hpp"
