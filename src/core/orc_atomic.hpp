// orc_atomic<T*>: an atomic hard link between OrcGC-tracked objects (paper
// §4.1, Algorithm 4).
//
// A drop-in replacement for std::atomic<T*> whose mutating operations
// (store / compare_exchange / exchange) keep the targets' _orc hard-link
// counters up to date, and whose load() returns a protected orc_ptr.
//
// Domain routing: counter updates go to the TARGET object's domain
// (orc_increment / orc_decrement follow the _orc_dom tag), because the
// retire scan a decrement can trigger must walk the hp slots that protect
// that object. Protection for load() goes to the calling thread's AMBIENT
// domain (current_domain(), installed by the data structure's ScopedDomain
// guard) — the structure being traversed and the objects it links are in
// the same domain, and load(OrcDomain&) names one explicitly when needed.
//
// Contract inherited from the paper: the *new* value written by store(),
// cas() or exchange() must be protected by the calling thread at the moment
// of the call — in practice it always is, because data-structure code only
// ever has new values in the form of live orc_ptr instances (or nullptr, or
// a marked alias of a protected pointer). The increment that follows a
// successful CAS runs after the link is visible, which is why the counter
// is biased and may dip transiently negative (see orc_base.hpp).
#pragma once

#include <atomic>
#include <cstddef>

#include "common/marked_ptr.hpp"
#include "common/orcsan.hpp"
#include "core/orc_base.hpp"
#include "core/orc_domain.hpp"
#include "core/orc_ptr.hpp"

namespace orcgc {

template <typename T>
class orc_atomic {
    static_assert(std::is_pointer_v<T>,
                  "orc_atomic<T> requires a pointer type, e.g. orc_atomic<Node*>");

  public:
    orc_atomic() noexcept : link_(nullptr) {}
    orc_atomic(std::nullptr_t) noexcept : link_(nullptr) {}

    /// Initializing construction counts as creating a hard link.
    explicit orc_atomic(const orc_ptr<T>& ptr) : link_(nullptr) { store(ptr); }

    orc_atomic(const orc_atomic&) = delete;
    orc_atomic& operator=(const orc_atomic&) = delete;

    /// Destroying the link removes one hard link from the target; this is
    /// what cascades reclamation when a node is deleted (§4.1: "the
    /// orc_atomic destructor will decrement the orc counter of the object it
    /// was pointing to"). The decrement runs in the target's own domain.
    ~orc_atomic() {
        T old = link_.load(std::memory_order_relaxed);
        orc_decrement(to_base(old));
    }

    // ---- reads -------------------------------------------------------------

    /// Protected load in the calling thread's ambient domain: returns an
    /// orc_ptr owning a fresh hp index with the read value published
    /// (Algorithm 4 lines 76–79, minus the idx-0 temporary — see DESIGN.md).
    orc_ptr<T> load() const { return load(current_domain()); }

    /// Protected load with the protecting domain named explicitly. The link
    /// target must belong to `dom` (retire scans only find protections in
    /// the object's own domain).
    orc_ptr<T> load(OrcDomain& dom) const {
        const int idx = dom.get_new_idx();
        T ptr = dom.template get_protected<T>(link_, idx);
        return orc_ptr<T>(ptr, idx, &dom);
    }

    /// Unprotected raw read; acquire by default — quiescent contexts
    /// (constructors, destructors, tests) never need the SC total order, and
    /// callers that do can pass seq_cst explicitly. Validation comparisons
    /// may also be acquire in *every* asym-fence mode: the publish they
    /// validate always carries a trailing fence (asym::light() — a seq_cst
    /// thread fence in fence mode, restored process-wide by the scan's
    /// asym::heavy() in membarrier mode), so the publish-store cannot
    /// reorder past this load.
    T load_unsafe(std::memory_order order = std::memory_order_acquire) const noexcept {
        return link_.load(order);
    }

    // ---- writes ------------------------------------------------------------

    /// store: +1 on the new target, -1 on the displaced target
    /// (Algorithm 4 lines 63–67). `desired`'s object must be protected by
    /// the caller (or be nullptr).
    void store(T desired) {
#ifdef ORCGC_ORCSAN
        orcsan_check_new_value(desired);
#endif
        orc_increment(to_base(desired));
        T old = link_.exchange(desired, std::memory_order_seq_cst);
        orc_decrement(to_base(old));
    }
    void store(const orc_ptr<T>& desired) { store(desired.get()); }
    void store(std::nullptr_t) { store(T{nullptr}); }

    orc_atomic& operator=(const orc_ptr<T>& desired) {
        store(desired);
        return *this;
    }
    orc_atomic& operator=(std::nullptr_t) {
        store(T{nullptr});
        return *this;
    }

    /// compare-and-swap (Algorithm 4 lines 69–74): counters are adjusted
    /// only after the CAS succeeds. `desired`'s object must be protected by
    /// the caller (or be nullptr / a marked alias of a protected pointer).
    bool compare_exchange_strong(T expected, T desired) {
#ifdef ORCGC_ORCSAN
        orcsan_check_new_value(desired);
#endif
        if (!link_.compare_exchange_strong(expected, desired, std::memory_order_seq_cst)) {
            return false;
        }
        orc_increment(to_base(desired));
        orc_decrement(to_base(expected));
        return true;
    }
    bool cas(T expected, T desired) { return compare_exchange_strong(expected, desired); }

    /// exchange: returns the displaced value as a protected orc_ptr. The
    /// displaced link's counter still includes our removed link until we
    /// decrement, so publishing before decrementing keeps it alive. The
    /// protection is taken in the displaced object's own domain (that is
    /// where retire scans will look for it).
    orc_ptr<T> exchange(T desired) {
#ifdef ORCGC_ORCSAN
        orcsan_check_new_value(desired);
#endif
        orc_increment(to_base(desired));
        T old = link_.exchange(desired, std::memory_order_seq_cst);
        orc_base* old_base = to_base(old);
        OrcDomain& dom = old_base != nullptr ? domain_of(old_base) : current_domain();
        const int idx = dom.get_new_idx();
        dom.protect_ptr(old_base, idx);
        orc_decrement(old_base);
        return orc_ptr<T>(old, idx, &dom);
    }

  private:
    static orc_base* to_base(T ptr) noexcept { return OrcDomain::to_base(ptr); }

#ifdef ORCGC_ORCSAN
    /// The paper's write contract, checked: the new value of a store/cas/
    /// exchange must be protected by the caller at the moment of the call
    /// (live orc_ptr, nullptr, or a marked alias of a protected pointer).
    static void orcsan_check_new_value(T desired) noexcept {
        if (orc_base* b = to_base(desired)) orcsan::check_link(b);
    }
#endif

    std::atomic<T> link_;
};

}  // namespace orcgc
