// OrcDomain: an instance-scoped OrcGC reclamation domain (paper §4.1,
// Algorithms 3, 5 and 6 — engine logic unchanged; the scope changed).
//
// The paper presents PassThePointerOrcGC as a process-wide service. This
// header generalizes it: all reclamation state — per-thread hazardous
// pointers, handover slots, watermarks, retire scratch — lives in an
// OrcDomain instance, and any number of domains can coexist. Objects are
// tagged with their owning domain at allocation (orc_base::_orc_dom), so
// counter updates and retires route to the right domain no matter which
// thread performs them, while protection (load / make_orc) uses the
// *ambient* domain — a thread-local set by ScopedDomain, defaulting to the
// global domain. OrcEngine (orc_gc.hpp) survives as a thin façade over
// OrcDomain::global() so single-domain code keeps compiling unchanged.
//
// Why domains: one tenant parking dozens of hazardous pointers, or retiring
// in storms, inflates every other tenant's retire scans when all state is
// shared (the cross-thread interference cost identified by Stamp-it, and
// avoided by Hyaline's instance-local state). A domain's retire scans walk
// only that domain's hp slots, so noisy neighbors in other domains cost the
// quiet domain nothing (bench_domains measures exactly this).
//
// Per-domain, per-thread state (DomainState, ex-TLInfo):
//   * hp[]        published hazardous pointers (index 0 is a scratch slot
//                 used internally while mutating _orc — Proposition 1),
//   * handovers[] the pass-the-pointer parking slots paired 1:1 with hp,
//   * used_haz[]  thread-local reference counts of how many live orc_ptr
//                 instances share each hp index,
//   * hp_wm /     published scan bounds so retire scans touch only the slots
//     hp_peak     a thread actually uses (see "Retire-path complexity" in
//                 DESIGN.md),
//   * the recursion guard that flattens cascading retires (a deleted node's
//     orc_atomic members decrement — and possibly retire — their targets).
//
// Retire scans come in two flavours:
//   * per-object (retire_one / try_handover): the paper's Algorithm 6 scan,
//     used for small cascade generations and as the slow path;
//   * batched (retire_generation_batched): one sorted snapshot of every
//     published hp per cascade *generation*, then O(log S) membership tests
//     per retired object. The snapshot must be per-generation — objects
//     pushed while a generation is deleted acquire their retire tokens
//     *after* the previous snapshot, and Lemma 1's scan is only valid when
//     it starts after the token is taken.
//
// Destruction protocol (non-global domains; DESIGN.md "Layering and
// domains"): the destructor unpublishes every hp slot, drains every
// handover through the full retire cascade, verifies nothing re-parked, and
// calls fatal() if the domain still owns unreclaimed objects — destroying a
// domain whose objects are still referenced is a protocol violation, not a
// condition to limp past. The global domain keeps the old lenient
// process-teardown sweep because it dies during static destruction, after
// the main thread's registry slot is already gone.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <vector>

#include "common/asym_fence.hpp"
#include "common/cacheline.hpp"
#include "common/fatal.hpp"
#include "common/marked_ptr.hpp"
#include "common/orcsan.hpp"
#include "common/thread_registry.hpp"
#include "common/tsan_annotations.hpp"
#include "core/orc_base.hpp"
#include "core/orc_metrics.hpp"

// Retire-path statistics are ALWAYS compiled in now: they live in the
// per-domain OrcMetrics (orc_metrics.hpp), whose hooks are relaxed RMWs on
// per-thread padded lines. This macro is a thin compatibility alias for one
// release — the old consumers guarded on it because stats() only existed
// under -DORCGC_STATS; new code should just call domain->metrics().
#define ORCGC_HAS_RETIRE_STATS 1

namespace orcgc {

class OrcDomain;

namespace detail {

/// Tracks every live OrcDomain so that ONE registry-level thread-exit hook
/// can drain the departing thread's slots in all of them (hooks are
/// process-lifetime and capped at kMaxHooks, so per-domain hooks would leak
/// slots and cap the domain count). ~OrcDomain removes itself under the
/// same mutex the drain holds, so a domain can never be torn down while an
/// exiting thread is still draining into it.
class DomainRegistry {
  public:
    static DomainRegistry& instance() {
        // Constructed before the first OrcDomain (whose constructor calls
        // add()), hence destroyed after the last one — including the global
        // domain during static teardown.
        static DomainRegistry registry;
        return registry;
    }

    void add(OrcDomain* domain) {
        std::lock_guard<std::mutex> lock(mu_);
        domains_.push_back(domain);
    }

    void remove(OrcDomain* domain) {
        std::lock_guard<std::mutex> lock(mu_);
        domains_.erase(std::remove(domains_.begin(), domains_.end(), domain), domains_.end());
    }

  private:
    DomainRegistry() { add_thread_exit_hook(&DomainRegistry::thread_exit_hook); }

    static void thread_exit_hook(int tid);  // defined after OrcDomain

    std::mutex mu_;
    std::vector<OrcDomain*> domains_;
};

}  // namespace detail

/// The calling thread's ambient domain; nullptr means the global domain.
/// Managed by ScopedDomain — engine code must go through current_domain().
inline thread_local OrcDomain* tl_current_domain = nullptr;

class OrcDomain {
  public:
    /// Per-thread hazardous-pointer capacity. Index 0 is reserved scratch;
    /// indices [1, kMaxHPs) are handed to orc_ptr instances.
    static constexpr int kMaxHPs = 64;

    /// Cascade generations at least this large take the batched snapshot
    /// path; smaller ones run the per-object scan (a snapshot of T threads
    /// costs about as much as one try_handover pass, so it has to amortize
    /// over several objects to win).
    static constexpr std::size_t kSnapshotMin = 4;

    /// The process-wide default domain — what OrcEngine::instance() fronts
    /// and what untagged objects (orc_base::_orc_dom == nullptr) route to.
    static OrcDomain& global() {
        static OrcDomain domain(/*is_global=*/true);
        return domain;
    }

    /// A fresh, independent reclamation domain. Retire scans inside it walk
    /// only its own hp slots; its destruction runs the drain protocol below.
    OrcDomain() : OrcDomain(/*is_global=*/false) {}

    OrcDomain(const OrcDomain&) = delete;
    OrcDomain& operator=(const OrcDomain&) = delete;

    ~OrcDomain();  // defined below (needs DomainRegistry)

    // ---- hp index management (Algorithm 6) -------------------------------

    /// Claims a free hp index for the calling thread (used_haz goes 0 -> 1).
    /// O(1): free indices are recycled through a per-thread stack, seeded so
    /// that the lowest indices pop first (keeps the published watermark
    /// tight).
    int get_new_idx() {
        auto& t = tl_[thread_id()];
        if (t.free_top < 0) {
            if (t.free_initialized) {
                fatal("orcgc: thread exceeded %d live orc_ptr indices in one domain", kMaxHPs);
            }
            for (int idx = kMaxHPs - 1; idx >= 1; --idx) t.free_stack[++t.free_top] = idx;
            t.free_initialized = true;
        }
        const int idx = t.free_stack[t.free_top--];
        t.used_haz[idx] = 1;
        // Raise-before-publish: this release store is sequenced before any
        // asym::publish on the new index, so a scanner whose asym::heavy()
        // precedes the raise can only miss publications ordered after its
        // scan — and those readers must revalidate against a source link
        // that the zero counter proves is already gone (DESIGN.md "Memory
        // ordering and asymmetric fences").
        if (idx >= t.hp_wm.load(std::memory_order_relaxed)) {
            t.hp_wm.store(idx + 1, std::memory_order_release);
            if (idx >= t.hp_peak.load(std::memory_order_relaxed)) {
                t.hp_peak.store(idx + 1, std::memory_order_release);
            }
        }
        return idx;
    }

    /// Adds a sharer to an already-claimed index (orc_ptr copy).
    void using_idx(int idx) noexcept {
        if (idx <= 0) return;
        ++tl_[thread_id()].used_haz[idx];
    }

    /// Drops a sharer from `idx`; when the last sharer leaves, performs the
    /// clear() protocol of Algorithm 5: check whether the object this slot
    /// protected became unreachable (take the retire token while our hp still
    /// protects the _orc read), then unpublish and drain the paired handover.
    void release_idx(int idx, orc_base* obj) {
        if (idx <= 0) return;
        auto& t = tl_[thread_id()];
        if (t.used_haz[idx] == 0) {
            fatal("orcgc: used_haz underflow at idx %d", idx);
        }
        if (--t.used_haz[idx] != 0) return;
        if (obj != nullptr) {
            // The hp entry still protects obj, so this _orc read cannot be a
            // use-after-free: any concurrent retire scan would find our hp
            // and park the object instead of deleting it.
            std::uint64_t lorc = obj->_orc.load(std::memory_order_seq_cst);
            if (orc::is_zero_unretired(lorc) &&
                obj->_orc.compare_exchange_strong(lorc, lorc + orc::kBRetired,
                                                  std::memory_order_seq_cst)) {
                // We own the retire token: nobody else can free obj now, so
                // it is safe to unpublish before scanning.
                metrics_.on_retire_token(obj);
#ifdef ORCGC_ORCSAN
                orcsan::on_retire(obj);
#endif
                unpublish_and_drain(t, idx);
                retire(obj);
                t.free_stack[++t.free_top] = idx;  // recycle only after the clear
                lower_hp_watermark(t);
                return;
            }
        }
        unpublish_and_drain(t, idx);
        t.free_stack[++t.free_top] = idx;
        lower_hp_watermark(t);
    }

    // ---- protection -------------------------------------------------------

    /// Publishes `ptr` (unmarked) at hp index `idx`. The publish is a release
    /// store + asym::light(); the scan-side asym::heavy() (take_snapshot /
    /// try_handover) replaces the seq_cst edge the old full-fence exchange
    /// provided, and the caller's link revalidation catches a publish the
    /// scan raced past.
    void protect_ptr(orc_base* ptr, int idx) noexcept {
        auto& slot = tl_[thread_id()].hp[idx];
        tsan_release_protection(slot);
        asym::publish(slot, ptr);
    }

    /// Classic hazard-pointer acquire loop (Algorithm 2 lines 4–11): publish
    /// the value read from addr, re-read until stable. Returns the raw
    /// (possibly marked) value; the published hazard is the unmarked object.
    template <typename T>
    T get_protected(const std::atomic<T>& addr, int idx) noexcept {
        auto& hp = tl_[thread_id()].hp[idx];
        orc_base* pub = hp.load(std::memory_order_relaxed);
        while (true) {
            T ptr = addr.load(std::memory_order_seq_cst);
            orc_base* base = to_base(ptr);
            if (base == pub) return ptr;
            tsan_release_protection(hp);  // previous publication loses coverage
            // The loop's re-read of addr after the publish is the validation
            // load an asymmetric publish needs: a retire scan whose
            // asym::heavy() missed this publish unlinked the node before the
            // fence, so the re-read observes the unlink and loops.
            asym::publish(hp, base);
            pub = base;
        }
    }

    /// Scratch-slot (index 0) publication used while mutating _orc
    /// (Proposition 1). Must be paired with scratch_release().
    void scratch_protect(orc_base* ptr) noexcept {
        auto& slot = tl_[thread_id()].hp[0];
        tsan_release_protection(slot);
        // Asymmetric publish is sound here too: the caller's subsequent _orc
        // RMW is seq_cst, and a retire scan that misses this publish re-reads
        // _orc after its asym::heavy() (the lorc2 revalidation), observing
        // that RMW and bailing out (Proposition 1's shield).
        asym::publish(slot, ptr);
    }

    /// Clears the scratch slot and drains anything parked on it by a
    /// concurrent retire scan that found our scratch publication.
    void scratch_release() {
        auto& t = tl_[thread_id()];
        unpublish_and_drain(t, 0);
    }

    // ---- counter updates (Algorithm 4's incrementOrc / decrementOrc) ------
    //
    // Route through these on the object's OWN domain (domain_of) — the
    // retire scans they can trigger must walk the hp slots of the domain the
    // object's protections live in.

    /// Adds one hard link to obj. Precondition: the caller has obj protected
    /// (it holds an orc_ptr to it), so the _orc access is safe.
    void increment_orc(orc_base* obj) {
        if (obj == nullptr) return;
        const std::uint64_t lorc =
            obj->_orc.fetch_add(orc::kSeqInc + 1, std::memory_order_seq_cst) + orc::kSeqInc + 1;
        if (!orc::is_zero_unretired(lorc)) return;
        // The increment brought a transiently-negative counter back to zero:
        // the object may be unreachable; try to take the retire token.
        std::uint64_t expected = lorc;
        if (obj->_orc.compare_exchange_strong(expected, lorc + orc::kBRetired,
                                              std::memory_order_seq_cst)) {
            metrics_.on_retire_token(obj);
#ifdef ORCGC_ORCSAN
            orcsan::on_retire(obj);
#endif
            retire(obj);
        }
    }

    /// Removes one hard link from obj. The caller may NOT have obj protected
    /// (e.g. the displaced value of a store), so the scratch slot shields the
    /// _orc access (Proposition 1).
    void decrement_orc(orc_base* obj) {
        if (obj == nullptr) return;
        scratch_protect(obj);
        const std::uint64_t lorc =
            obj->_orc.fetch_add(orc::kSeqInc - 1, std::memory_order_seq_cst) + orc::kSeqInc - 1;
        if (orc::is_zero_unretired(lorc)) {
            std::uint64_t expected = lorc;
            if (obj->_orc.compare_exchange_strong(expected, lorc + orc::kBRetired,
                                                  std::memory_order_seq_cst)) {
                metrics_.on_retire_token(obj);
#ifdef ORCGC_ORCSAN
                orcsan::on_retire(obj);
#endif
                scratch_release();
                retire(obj);
                return;
            }
        }
        scratch_release();
    }

    // ---- retire (Algorithm 5, batched) ------------------------------------

    /// Runs the pass-the-pointer retire protocol for an object whose retire
    /// token (kBRetired) the caller holds. Deletes the object if Lemma 1's
    /// condition (counter at zero AND no hazardous pointer, atomically
    /// validated via the sequence field) holds; otherwise hands it over or
    /// drops the token.
    ///
    /// Cascades are processed in generations: deleting generation g's objects
    /// runs destructors whose decrements push generation g+1 into
    /// recursive_list. Generations of kSnapshotMin+ objects share one hp
    /// snapshot; smaller ones scan per object.
    void retire(orc_base* ptr) {
#ifdef ORCGC_ORCSAN
        {
            // A retire must run in the object's OWN domain (domain_of
            // routing): only there can the scan find its protections.
            OrcDomain* od = ptr->_orc_dom;
            orcsan::check_retire_domain(this, od != nullptr ? od : &OrcDomain::global(), ptr);
        }
#endif
        auto& t = tl_[thread_id()];
        if (t.retire_started) {
            // Cascading retire from inside a node destructor: flatten it.
            t.recursive_list.push_back(ptr);
            return;
        }
        t.retire_started = true;
        // One thread-block lookup covers every hook the cascade fires.
        OrcMetrics::Hot mh = metrics_.hot();
        mh.on_cascade_begin();
        t.recursive_list.push_back(ptr);
        std::size_t begin = 0;
        std::uint32_t gen = 0;
        while (begin < t.recursive_list.size()) {
            mh.set_generation(gen++);
            const std::size_t end = t.recursive_list.size();
            if (end - begin >= kSnapshotMin) {
                retire_generation_batched(mh, t, begin, end);
            } else {
                for (std::size_t i = begin; i < end; ++i) {
                    retire_one(mh, t.recursive_list[i]);
                }
            }
            begin = end;
        }
        t.recursive_list.clear();
        t.retire_started = false;
        mh.on_cascade_end();
    }

    // ---- telemetry ---------------------------------------------------------

    /// This domain's metrics provider (always on; see orc_metrics.hpp).
    OrcMetrics& metrics() noexcept { return metrics_; }
    const OrcMetrics& metrics() const noexcept { return metrics_; }

    /// Convenience forwarder for the event-trace flag (also settable
    /// process-wide for new domains via ORC_TRACE=1).
    void set_tracing(bool on) { metrics_.set_tracing(on); }

    /// Retire-path statistics, kept as the stable names the benches and
    /// tests grew up with; since the telemetry migration this is a view over
    /// OrcMetrics::snapshot(). Counters are per-domain: a noisy neighbor's
    /// scans never show up in another domain's stats (bench_domains gates on
    /// this).
    struct RetireStats {
        std::uint64_t scans = 0;          ///< per-object try_handover passes
        std::uint64_t snapshots = 0;      ///< full-HP-array snapshots taken
        std::uint64_t slots_scanned = 0;  ///< hp slots loaded by scans + snapshots
        std::uint64_t batch_frees = 0;    ///< deletes proven by a snapshot
        std::uint64_t slow_frees = 0;     ///< deletes proven by a per-object scan
        std::uint64_t handovers = 0;      ///< objects parked on another thread's hp
    };

    RetireStats stats() const noexcept {
        const OrcMetrics::Snapshot m = metrics_.snapshot();
        RetireStats s;
        s.scans = m.scans;
        s.snapshots = m.snapshots;
        s.slots_scanned = m.slots_scanned;
        s.batch_frees = m.freed_batch;
        s.slow_frees = m.freed_slow;
        s.handovers = m.handovers;
        return s;
    }

    void reset_stats() noexcept { metrics_.reset(); }

    // ---- introspection (tests / memory-bound benches) ----------------------

    /// Objects allocated into this domain (make_orc_in) and not yet
    /// reclaimed. Exact at quiescence; approximate while threads mutate.
    std::int64_t object_count() const noexcept {
        return tracked_objects_.load(std::memory_order_acquire);
    }

    /// True for the process-wide default domain (OrcDomain::global()).
    bool is_global() const noexcept { return is_global_; }

    /// Pointers currently parked in handover slots across all threads.
    /// Bounded by hp_peak, not hp_wm: a scanner that read a stale hp can park
    /// into a slot after its index was recycled and the watermark lowered.
    std::size_t handover_count() const noexcept {
        std::size_t total = 0;
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            const int peak = tl_[it].hp_peak.load(std::memory_order_acquire);
            for (int idx = 0; idx < peak; ++idx) {
                if (tl_[it].handovers[idx].load(std::memory_order_acquire) != nullptr) ++total;
            }
        }
        return total;
    }

    /// Live orc_ptr sharers on the calling thread (slot-leak checks).
    int used_idx_count() const noexcept {
        const auto& t = tl_[thread_id()];
        const int peak = t.hp_peak.load(std::memory_order_relaxed);
        int used = 0;
        for (int idx = 1; idx < peak; ++idx) {
            if (t.used_haz[idx] != 0) ++used;
        }
        return used;
    }

    /// One past the highest hp index ever claimed by any registered thread
    /// (max of the per-thread peaks; >= 1 because slot 0 is always live).
    int hp_watermark() const noexcept {
        int max_peak = 1;
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            max_peak = std::max(max_peak, tl_[it].hp_peak.load(std::memory_order_acquire));
        }
        return max_peak;
    }

    /// The calling thread's *current* scan bound — one past its highest
    /// claimed hp index. Unlike hp_peak this tightens again when indices are
    /// released (tests assert the tightening).
    int hp_watermark_self() const noexcept {
        return tl_[thread_id()].hp_wm.load(std::memory_order_relaxed);
    }

    /// Debug aid: prints the calling thread's non-free slots.
    void debug_dump_slots() const {
        const auto& t = tl_[thread_id()];
        const int peak = t.hp_peak.load(std::memory_order_relaxed);
        for (int idx = 1; idx < peak; ++idx) {
            if (t.used_haz[idx] != 0) {
                std::fprintf(stderr, "  idx=%d used=%u hp=%p handover=%p\n", idx,
                             t.used_haz[idx],
                             (void*)t.hp[idx].load(std::memory_order_seq_cst),
                             (void*)t.handovers[idx].load(std::memory_order_seq_cst));
            }
        }
    }

    /// Converts a (possibly marked) node pointer to its orc_base address.
    template <typename T>
    static orc_base* to_base(T ptr) noexcept {
        return static_cast<orc_base*>(get_unmarked(ptr));
    }

#ifdef ORCGC_ORCSAN
    /// OrcSan coverage scan: is `obj` currently published in ANY thread's hp
    /// slots of this domain (scratch included)? Checked only after the
    /// shadow state says non-Live, so this cold walk never runs on the
    /// common Live path. All threads are scanned, not just the caller —
    /// protections may legitimately be held by another thread while a
    /// reference is read here.
    bool orcsan_covers(const orc_base* obj) const noexcept {
        const int nthreads = thread_id_watermark();
        for (int it = 0; it < nthreads; ++it) {
            const auto& t = tl_[it];
            const int peak = t.hp_peak.load(std::memory_order_acquire);
            for (int idx = 0; idx < peak; ++idx) {
                if (t.hp[idx].load(std::memory_order_acquire) == obj) return true;
            }
        }
        return false;
    }
#endif

    // ---- internal (make_orc_in / façade plumbing) --------------------------

    /// Records an allocation into this domain. Called by make_orc_in after
    /// tagging the object, before it can escape.
    void note_tracked_allocation() noexcept {
        tracked_objects_.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    /// Per-domain, per-thread slot machinery (the paper's thread-local
    /// arrays, instance-scoped).
    struct alignas(kCacheLineSize) DomainState {
        std::atomic<orc_base*> hp[kMaxHPs] = {};
        // Own cache lines: handovers are written by *other* threads.
        alignas(kCacheLineSize) std::atomic<orc_base*> handovers[kMaxHPs] = {};
        // Published scan bounds, read by every other thread's retire scans
        // (own cache line: must not false-share with the owner-hot used_haz):
        //   hp_wm   one past the highest *currently claimed* hp index; raised
        //           by get_new_idx before any publish on the new index,
        //           lowered by release_idx when the top index frees. Floor 1:
        //           the scratch slot is always scanned.
        //   hp_peak monotonic high-water mark; bound for handover draining
        //           and introspection (late parks can land at recycled
        //           indices above hp_wm).
        alignas(kCacheLineSize) std::atomic<int> hp_wm{1};
        std::atomic<int> hp_peak{1};
        alignas(kCacheLineSize) std::uint32_t used_haz[kMaxHPs] = {};
        // O(1) index recycling (thread-local; seeded lazily on first use).
        int free_stack[kMaxHPs];
        int free_top = -1;
        bool free_initialized = false;
        bool retire_started = false;
        // Grown-once scratch: capacity is retained across calls, so
        // steady-state retires never touch the heap.
        std::vector<orc_base*> recursive_list;  // pending cascade generations
        std::vector<orc_base*> snapshot;        // sorted hp snapshot
        std::vector<std::uint64_t> gen_lorc;    // pre-read _orc per gen object
    };

    explicit OrcDomain(bool is_global);  // defined below (needs DomainRegistry)

    /// Reclaims one object this domain proved unreachable: unwinds the
    /// domain's tracked-object accounting, then deletes (which may push
    /// cascaded retires into recursive_list).
    void destroy(orc_base* ptr);  // defined below (needs domain_of)

    /// Called (via DomainRegistry) while `tid` is still owned by the exiting
    /// thread; runs for EVERY live domain the process has.
    void drain_thread(int tid) {
        auto& t = tl_[tid];
        const int peak = t.hp_peak.load(std::memory_order_acquire);
        // Unpublish everything first (release suffices for clears — a scanner
        // reading a stale hp parks conservatively), then ONE asym::heavy()
        // orders the null stores before the handover drain: after the fence,
        // any scanner still running either published its park already (the
        // exchange below takes it) or will re-read these slots as null and
        // not park at all. A park that races past both lands in a slot the
        // next drain of this tid (or the destructor) covers — the same window
        // the old per-slot seq_cst stores had.
        for (int idx = 0; idx < peak; ++idx) {
            tsan_release_protection(t.hp[idx]);
            t.hp[idx].store(nullptr, std::memory_order_release);
        }
        asym::heavy();
        for (int idx = 0; idx < peak; ++idx) {
            if (orc_base* h = t.handovers[idx].exchange(nullptr, std::memory_order_seq_cst)) {
                metrics_.on_drain(h);
                retire(h);
            }
        }
        // Fresh start for the next thread that reuses this tid. hp_peak stays
        // monotonic on purpose: a scanner that read a stale hp just before
        // this drain can still park into one of these handover slots, and the
        // next drain (or the domain destructor) must keep looking there.
        t.hp_wm.store(1, std::memory_order_release);
    }

    /// Tightens the published scan bound after an index was recycled. Only
    /// the owner thread writes hp_wm, so a plain scan-check-store suffices;
    /// slots below the new bound that are free all hold null hp entries, so
    /// scanners lose nothing by skipping them.
    ///
    /// Hysteresis: the bound only moves when it can tighten by at least two
    /// slots. Without the slack, a workload holding one orc_ptr at a time
    /// would alternate get_new_idx's raise with a lower here — two watermark
    /// stores per protect/release cycle on the hot path. With it, steady
    /// oscillation around the bound settles one slot high and generates no
    /// watermark traffic at all; scanners pay at most one extra null slot
    /// per thread.
    ///
    /// Release (no asym::heavy()): lowering only shrinks the scanned range,
    /// and every slot it hides is free — its hp entry was nulled (release)
    /// by unpublish_and_drain before the index was recycled, in the same
    /// release sequence a scanner's acquire of the new bound picks up. A
    /// scanner still using the old bound merely reads extra null slots.
    void lower_hp_watermark(DomainState& t) noexcept {
        const int wm = t.hp_wm.load(std::memory_order_relaxed);
        int top = wm - 1;
        while (top >= 1 && t.used_haz[top] == 0) --top;
        const int tightened = top < 1 ? 1 : top + 1;
        if (tightened <= wm - 2) t.hp_wm.store(tightened, std::memory_order_release);
    }

    void unpublish_and_drain(DomainState& t, int idx) {
        // Release suffices for the clear (paper Alg. 2 line 14): a scanner
        // reading the stale non-null hp parks conservatively; only *publish*
        // needs the full fence.
        tsan_release_protection(t.hp[idx]);
        t.hp[idx].store(nullptr, std::memory_order_release);
        // One seq_cst op on the slot instead of the previous seq_cst
        // load + seq_cst exchange pair: the guard load is only there to skip
        // the RMW in the (overwhelmingly common) empty case, and a park it
        // misses simply waits for the next drain of this slot — the same
        // window that already exists between the exchange and a late parker.
        if (t.handovers[idx].load(std::memory_order_acquire) != nullptr) {
            if (orc_base* h = t.handovers[idx].exchange(nullptr, std::memory_order_seq_cst)) {
                // The parked object carries its retire token; continue the
                // protocol on its behalf.
                metrics_.on_drain(h);
                retire(h);
            }
        }
    }

    /// The per-object protocol of Algorithm 6 for one retired object (token
    /// held by the caller): resurrection check, hp scan with handover, Lemma 1
    /// sequence revalidation, delete.
    void retire_one(OrcMetrics::Hot& mh, orc_base* ptr) {
        std::uint32_t chain = 0;
        while (ptr != nullptr) {
            std::uint64_t lorc = ptr->_orc.load(std::memory_order_seq_cst);
            if (!orc::is_zero_retired(lorc)) {
                // Resurrected: a thread holding a local reference re-linked
                // the object. Drop the token (and re-take it if the counter
                // fell back to zero under us).
                lorc = clear_bit_retired(ptr);
                if (lorc == 0) {
                    // Token dropped for good; a later decrement re-retires
                    // (and re-counts the token, which is why resurrections
                    // offset the unreclaimed balance).
                    mh.on_resurrect(ptr);
#ifdef ORCGC_ORCSAN
                    orcsan::on_resurrect(ptr);
#endif
                    break;
                }
            }
            if (try_handover(mh, ptr)) {
                ++chain;
                continue;  // ptr is now the swapped-out pointer
            }
            const std::uint64_t lorc2 = ptr->_orc.load(std::memory_order_seq_cst);
            if (lorc2 != lorc) continue;  // _orc moved during the scan: revalidate
            // Lemma 1: counter zero, token held, no hp found, sequence
            // unchanged across the scan — safe to destroy.
            mh.on_free(ptr, /*batched=*/false);
            destroy(ptr);  // may push cascaded retires into recursive_list
            break;
        }
        mh.on_chain(chain);
    }

    /// Batched form of the Lemma 1 check for one cascade generation
    /// recursive_list[begin, end): pre-read every object's _orc, take ONE
    /// sorted snapshot of all published hps, then per object delete iff
    /// (counter zero + token) held at the pre-read, no snapshot entry covers
    /// it, and _orc (sequence included) is unchanged after the snapshot.
    ///
    /// Soundness (DESIGN.md "Retire-path complexity"): every generation
    /// member's retire token was acquired before this snapshot started, so a
    /// protection missed by the snapshot was published SC-after it — such a
    /// reader revalidates against a source link, and the unchanged sequence
    /// plus zero counter prove no link contained the object at any point in
    /// the pre-read..re-read window. Anything else (resurrection, parked
    /// protection, moved sequence) falls back to retire_one.
    void retire_generation_batched(OrcMetrics::Hot& mh, DomainState& t, std::size_t begin,
                                   std::size_t end) {
        t.gen_lorc.clear();
        for (std::size_t i = begin; i < end; ++i) {
            t.gen_lorc.push_back(t.recursive_list[i]->_orc.load(std::memory_order_seq_cst));
        }
        take_snapshot(mh, t);
        for (std::size_t i = begin; i < end; ++i) {
            orc_base* ptr = t.recursive_list[i];
            const std::uint64_t lorc = t.gen_lorc[i - begin];
            if (orc::is_zero_retired(lorc) && !snapshot_contains(t, ptr) &&
                ptr->_orc.load(std::memory_order_seq_cst) == lorc) {
                mh.on_free(ptr, /*batched=*/true);
                destroy(ptr);  // pushes the next generation into recursive_list
                continue;
            }
            retire_one(mh, ptr);
        }
    }

    /// Collects every published hp (all registered threads, each bounded by
    /// its own hp_wm — all within THIS domain) into t.snapshot, sorted for
    /// binary search. Other domains' slots are invisible here: that is the
    /// isolation property bench_domains measures.
    void take_snapshot(OrcMetrics::Hot& mh, DomainState& t) {
        t.snapshot.clear();
        // Scan-side half of the asymmetric pair: every generation member's
        // retire token (a seq_cst RMW on _orc) was taken before this call, so
        // a publish this fence misses was ordered after it — that reader's
        // validation re-read (get_protected loop / Lemma 1 sequence check)
        // then sees the unlink or the moved _orc and cannot rely on the
        // missed publication.
        asym::heavy();
        const int nthreads = thread_id_watermark();
        std::size_t slots = 0;
        for (int it = 0; it < nthreads; ++it) {
            const auto& other = tl_[it];
            const int wm = other.hp_wm.load(std::memory_order_seq_cst);
            for (int idx = 0; idx < wm; ++idx) {
                if (orc_base* p = other.hp[idx].load(std::memory_order_seq_cst)) {
                    t.snapshot.push_back(p);
                }
            }
            slots += static_cast<std::size_t>(wm);
        }
        std::sort(t.snapshot.begin(), t.snapshot.end(), std::less<orc_base*>());
        mh.on_snapshot(t.snapshot.size(), slots);
    }

    static bool snapshot_contains(const DomainState& t, orc_base* ptr) noexcept {
        return std::binary_search(t.snapshot.begin(), t.snapshot.end(), ptr,
                                  std::less<orc_base*>());
    }

    /// Algorithm 6 lines 134–145: scan all published hp entries for `ptr`;
    /// if found, park it in the paired handover slot and take away whatever
    /// was parked there before. Each thread's scan is bounded by its own
    /// published hp_wm instead of a global high-water mark.
    bool try_handover(OrcMetrics::Hot& mh, orc_base*& ptr) {
        const int nthreads = thread_id_watermark();
        std::size_t slots = 0;
        mh.on_scan_begin(ptr);
        // Scan-side half of the asymmetric pair (same argument as
        // take_snapshot): the caller holds ptr's retire token, so a publish
        // of ptr this fence misses was ordered after the token — and that
        // reader's validation load / lorc2 revalidation catches it.
        asym::heavy();
        for (int it = 0; it < nthreads; ++it) {
            auto& other = tl_[it];
            const int wm = other.hp_wm.load(std::memory_order_seq_cst);
            for (int idx = 0; idx < wm; ++idx) {
                ++slots;
                if (other.hp[idx].load(std::memory_order_seq_cst) == ptr) {
                    mh.on_scan_end(ptr, slots);
                    mh.on_handover(ptr);
                    ptr = other.handovers[idx].exchange(ptr, std::memory_order_seq_cst);
                    return true;
                }
            }
        }
        mh.on_scan_end(ptr, slots);
        return false;
    }

    /// Algorithm 6 lines 147–158: drop the retire token because the counter
    /// moved off zero. If the counter is back at zero after the drop, re-take
    /// the token and return the new _orc value (caller continues retiring);
    /// otherwise return 0 (a future decrement will re-trigger retirement).
    std::uint64_t clear_bit_retired(orc_base* ptr) {
        auto& t = tl_[thread_id()];
        // Publish on scratch: we are about to mutate _orc of an object whose
        // token we are in the middle of dropping (Proposition 1). Asymmetric
        // publish, same argument as scratch_protect: the seq_cst _orc RMW
        // right after it is what a racing scanner's revalidation observes.
        tsan_release_protection(t.hp[0]);
        asym::publish(t.hp[0], ptr);
        const std::uint64_t lorc = ptr->sub_retired();
        std::uint64_t result = 0;
        if (orc::is_zero_unretired(lorc)) {
            std::uint64_t expected = lorc;
            if (ptr->_orc.compare_exchange_strong(expected, lorc + orc::kBRetired,
                                                  std::memory_order_seq_cst)) {
                result = lorc + orc::kBRetired;
            }
        }
        unpublish_and_drain(t, 0);
        return result;
    }

    friend class detail::DomainRegistry;

    const bool is_global_;
    std::atomic<std::int64_t> tracked_objects_{0};
    OrcMetrics metrics_;
    DomainState tl_[kMaxThreads];
};

// ---- ambient-domain plumbing ---------------------------------------------

/// The domain protection operations use when none is named explicitly:
/// whatever ScopedDomain set on this thread, else the global domain.
inline OrcDomain& current_domain() noexcept {
    OrcDomain* d = tl_current_domain;
    return d != nullptr ? *d : OrcDomain::global();
}

/// The domain an object belongs to (tagged at allocation by make_orc_in);
/// untagged objects belong to the global domain. Safe to call only while
/// `obj` is guaranteed alive (protected, or hard-linked by the caller):
/// _orc_dom is written once before the object escapes and never changes.
inline OrcDomain& domain_of(const orc_base* obj) noexcept {
    OrcDomain* d = obj->_orc_dom;
    return d != nullptr ? *d : OrcDomain::global();
}

/// RAII guard installing `domain` as the calling thread's ambient domain.
/// Data-structure methods open one of these so every load/make_orc inside
/// protects in the structure's domain; nesting restores the outer domain.
class ScopedDomain {
  public:
    explicit ScopedDomain(OrcDomain& domain) noexcept : saved_(tl_current_domain) {
        tl_current_domain = &domain;
    }
    ~ScopedDomain() { tl_current_domain = saved_; }
    ScopedDomain(const ScopedDomain&) = delete;
    ScopedDomain& operator=(const ScopedDomain&) = delete;

  private:
    OrcDomain* saved_;
};

/// Hard-link counter updates, routed to the object's own domain: the retire
/// scans a counter update can trigger must walk the hp slots of the domain
/// that protects the object. Null-safe.
inline void orc_increment(orc_base* obj) {
    if (obj != nullptr) domain_of(obj).increment_orc(obj);
}
inline void orc_decrement(orc_base* obj) {
    if (obj != nullptr) domain_of(obj).decrement_orc(obj);
}

// ---- out-of-class definitions (need the full set of types above) ----------

inline void OrcDomain::destroy(orc_base* ptr) {
    tsan_acquire_for_delete(ptr);
    if (OrcDomain* d = ptr->_orc_dom) {
        d->tracked_objects_.fetch_sub(1, std::memory_order_acq_rel);
    }
#ifdef ORCGC_ORCSAN
    if (orcsan::divert_eligible(ptr)) {
        // Quarantine diversion: run the destructor NOW (cascades, tracked
        // counts and allocation-tracker timing stay identical to `delete`),
        // then park the raw block poisoned instead of freeing it. The
        // allocation address must be taken before the destructor runs — the
        // vptr dynamic_cast needs is gone afterwards.
        void* mem = dynamic_cast<void*>(ptr);
        ptr->~orc_base();
        orcsan::quarantine_put(this, ptr, mem);
        return;
    }
    // Unknown extent (allocated behind make_orc's back): cannot poison what
    // we cannot measure — free normally, drop any auto-registered entry.
    orcsan::on_untracked_free(ptr);
#endif
    delete ptr;
}

inline OrcDomain::OrcDomain(bool is_global) : is_global_(is_global), metrics_(is_global) {
#ifdef ORCGC_ORCSAN
    // Construct the shadow table before this domain completes construction,
    // so static teardown destroys it AFTER the global domain — whose
    // destructor still flushes its quarantine through it.
    orcsan::touch();
#endif
    // Registration wires this domain into the single registry-level
    // thread-exit drain (and, for non-global domains, guards destruction
    // against concurrently exiting threads).
    detail::DomainRegistry::instance().add(this);
}

inline OrcDomain::~OrcDomain() {
    // Leave the registry FIRST, under its mutex: after this returns, no
    // exiting thread can drain into state we are about to tear down.
    detail::DomainRegistry::instance().remove(this);
    if (is_global_) {
        // Process teardown: anything still parked is unreachable by now, and
        // the main thread's registry slot is already gone (thread_locals die
        // before statics), so retire()/thread_id() are off limits. Lenient
        // full-range sweep, exactly the old singleton behavior.
        for (auto& t : tl_) {
            for (auto& h : t.handovers) {
                if (orc_base* ptr = h.exchange(nullptr, std::memory_order_acq_rel)) {
                    tsan_acquire_for_delete(ptr);
#ifdef ORCGC_ORCSAN
                    orcsan::on_untracked_free(ptr);
#endif
                    delete ptr;
                }
            }
        }
#ifdef ORCGC_ORCSAN
        // Evict (verify poison + canary, then free) everything this domain
        // still holds. Last chance to catch a latent UAF write at exit.
        orcsan::quarantine_flush(this);
#endif
        return;
    }
    // Non-global destruction protocol. Precondition: no thread concurrently
    // operates on this domain, and no live orc_ptr into it remains on any
    // running thread (abandoned protections from exited threads are fine).
    //
    // 1. Unpublish every hp slot. With every slot null, a retire scan run by
    //    step 2 can never find a protection, so nothing can re-park and the
    //    drain terminates (no livelock by construction). The asym::heavy()
    //    after the loop orders the null stores before step 2's handover
    //    reads (the destruction-drain edge the per-slot seq_cst stores used
    //    to provide); the precondition — no thread still operates on this
    //    domain — makes it a formality, but it keeps the protocol's ordering
    //    argument independent of the precondition.
    for (auto& t : tl_) {
        for (auto& hp : t.hp) {
            tsan_release_protection(hp);
            hp.store(nullptr, std::memory_order_release);
        }
    }
    asym::heavy();
    // 2. Drain every handover through the full retire cascade. The parked
    //    objects carry their retire tokens; their destructors may cascade
    //    into further retires, which also find no protections and free
    //    immediately.
    for (auto& t : tl_) {
        for (auto& h : t.handovers) {
            if (orc_base* ptr = h.exchange(nullptr, std::memory_order_seq_cst)) {
                retire(ptr);
            }
        }
    }
    // 3. Quiescence checks: the drain must have converged, and every object
    //    ever allocated into this domain must be gone.
    for (auto& t : tl_) {
        for (auto& h : t.handovers) {
            if (h.load(std::memory_order_seq_cst) != nullptr) {
                fatal("orcgc: handover re-parked during OrcDomain destruction "
                      "(domain destroyed while still in use?)");
            }
        }
    }
    const long long leaked =
        static_cast<long long>(tracked_objects_.load(std::memory_order_seq_cst));
    if (leaked != 0) {
        fatal("orcgc: OrcDomain destroyed with %lld unreclaimed objects — a live "
              "orc_ptr, a still-linked node, or an undrained structure outlives "
              "the domain",
              leaked);
    }
#ifdef ORCGC_ORCSAN
    // Quiescence proven: evict this domain's quarantine, verifying the
    // poison + canary of every parked block on the way out.
    orcsan::quarantine_flush(this);
#endif
}

namespace detail {

inline void DomainRegistry::thread_exit_hook(int tid) {
    auto& reg = instance();
    // Hold the mutex across the whole drain: ~OrcDomain::remove() blocks
    // until we are out of every domain's state.
    std::lock_guard<std::mutex> lock(reg.mu_);
    for (OrcDomain* domain : reg.domains_) domain->drain_thread(tid);
}

}  // namespace detail

}  // namespace orcgc
