// OrcDomain: an instance-scoped OrcGC reclamation domain (paper §4.1,
// Algorithms 3, 5 and 6 — engine logic unchanged; the scope changed).
//
// The paper presents PassThePointerOrcGC as a process-wide service. This
// header generalizes it: all reclamation state — per-thread hazardous
// pointers, handover slots, watermarks, retire scratch — lives in an
// OrcDomain instance, and any number of domains can coexist. Objects are
// tagged with their owning domain at allocation (orc_base::_orc_dom), so
// counter updates and retires route to the right domain no matter which
// thread performs them, while protection (load / make_orc) uses the
// *ambient* domain — a thread-local set by ScopedDomain, defaulting to the
// global domain. OrcEngine (orc_gc.hpp) survives as a thin façade over
// OrcDomain::global() so single-domain code keeps compiling unchanged.
//
// Why domains: one tenant parking dozens of hazardous pointers, or retiring
// in storms, inflates every other tenant's retire scans when all state is
// shared (the cross-thread interference cost identified by Stamp-it, and
// avoided by Hyaline's instance-local state). A domain's retire scans walk
// only that domain's hp slots, so noisy neighbors in other domains cost the
// quiet domain nothing (bench_domains measures exactly this).
//
// Per-domain, per-thread state (DomainState, ex-TLInfo):
//   * hp[]        published hazardous pointers (index 0 is a scratch slot
//                 used internally while mutating _orc — Proposition 1),
//   * handovers[] the pass-the-pointer parking slots paired 1:1 with hp,
//   * used_haz[]  thread-local reference counts of how many live orc_ptr
//                 instances share each hp index,
//   * hp_wm /     published scan bounds so retire scans touch only the slots
//     hp_peak     a thread actually uses (see "Retire-path complexity" in
//                 DESIGN.md),
//   * the recursion guard that flattens cascading retires (a deleted node's
//     orc_atomic members decrement — and possibly retire — their targets).
//
// Retire scans come in two flavours:
//   * per-object (retire_one / try_handover): the paper's Algorithm 6 scan,
//     used for small cascade generations and as the slow path;
//   * batched (retire_generation_batched): one sorted snapshot of every
//     published hp per cascade *generation*, then O(log S) membership tests
//     per retired object. The snapshot must be per-generation — objects
//     pushed while a generation is deleted acquire their retire tokens
//     *after* the previous snapshot, and Lemma 1's scan is only valid when
//     it starts after the token is taken.
//
// Destruction protocol (non-global domains; DESIGN.md "Layering and
// domains"): the destructor unpublishes every hp slot, drains every
// handover through the full retire cascade, verifies nothing re-parked, and
// calls fatal() if the domain still owns unreclaimed objects — destroying a
// domain whose objects are still referenced is a protocol violation, not a
// condition to limp past. The global domain keeps the old lenient
// process-teardown sweep because it dies during static destruction, after
// the main thread's registry slot is already gone.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <vector>

#include "common/asym_fence.hpp"
#include "common/cacheline.hpp"
#include "common/fatal.hpp"
#include "common/marked_ptr.hpp"
#include "common/orcsan.hpp"
#include "common/telemetry.hpp"
#include "common/thread_registry.hpp"
#include "common/tsan_annotations.hpp"
#include "core/orc_base.hpp"
#include "core/orc_bg_reclaimer.hpp"
#include "core/orc_metrics.hpp"

// Retire-path statistics are ALWAYS compiled in now: they live in the
// per-domain OrcMetrics (orc_metrics.hpp), whose hooks are relaxed RMWs on
// per-thread padded lines. This macro is a thin compatibility alias for one
// release — the old consumers guarded on it because stats() only existed
// under -DORCGC_STATS; new code should just call domain->metrics().
#define ORCGC_HAS_RETIRE_STATS 1

namespace orcgc {

class OrcDomain;

namespace detail {

/// Tracks every live OrcDomain so that ONE registry-level thread-exit hook
/// can drain the departing thread's slots in all of them (hooks are
/// process-lifetime and capped at kMaxHooks, so per-domain hooks would leak
/// slots and cap the domain count). ~OrcDomain removes itself under the
/// same mutex the drain holds, so a domain can never be torn down while an
/// exiting thread is still draining into it.
class DomainRegistry {
  public:
    static DomainRegistry& instance() {
        // Constructed before the first OrcDomain (whose constructor calls
        // add()), hence destroyed after the last one — including the global
        // domain during static teardown.
        static DomainRegistry registry;
        return registry;
    }

    void add(OrcDomain* domain) {
        std::lock_guard<std::mutex> lock(mu_);
        domains_.push_back(domain);
    }

    void remove(OrcDomain* domain) {
        std::lock_guard<std::mutex> lock(mu_);
        domains_.erase(std::remove(domains_.begin(), domains_.end(), domain), domains_.end());
    }

  private:
    DomainRegistry() { add_thread_exit_hook(&DomainRegistry::thread_exit_hook); }

    static void thread_exit_hook(int tid);  // defined after OrcDomain

    std::mutex mu_;
    std::vector<OrcDomain*> domains_;
};

}  // namespace detail

/// The calling thread's ambient domain; nullptr means the global domain.
/// Managed by ScopedDomain — engine code must go through current_domain().
inline thread_local OrcDomain* tl_current_domain = nullptr;

class OrcDomain {
  public:
    /// Per-thread hazardous-pointer capacity. Index 0 is reserved scratch;
    /// indices [1, kMaxHPs) are handed to orc_ptr instances.
    static constexpr int kMaxHPs = 64;

    /// Cascade generations at least this large take the batched snapshot
    /// path; smaller ones run the per-object scan (a snapshot of T threads
    /// costs about as much as one try_handover pass, so it has to amortize
    /// over several objects to win).
    static constexpr std::size_t kSnapshotMin = 4;

    /// Soft cap on a shard inbox (objects a scan displaced out of that
    /// thread's handover slots, see shard_push). Keeps the paper's O(H·t)
    /// unreclaimed bound intact: a stalled thread can strand at most
    /// hp_peak parked objects PLUS this many inbox objects, so the cap must
    /// stay well under kMaxHPs. Overflow falls back to the seed behavior —
    /// the displaced object rejoins the displacing thread's own cascade.
    static constexpr int kInboxSoftCap = 16;

    /// Items a cooperative-scan consumer claims per ticket fetch-add. Small
    /// enough that a stalled stealer strands at most one chunk of settled
    /// work; large enough that the claim RMW amortizes.
    static constexpr std::uint32_t kShareChunk = 16;

    /// Stalled-reader watchdog (watchdog_sample): a slot whose heartbeat is
    /// frozen must pin at least this many parked objects before it can be
    /// flagged — a reader parked on one node is idle, not a leak source.
    static constexpr std::uint64_t kStallPinnedMin = 2;

    /// Cascade-end subsampling period of the automatic watchdog clock check:
    /// one wall-clock read per this many cascades PER THREAD (power of two;
    /// the counter lives in DomainState so the hot path touches no shared
    /// cacheline). The clock read alone does not trigger a pass — see
    /// kWatchdogIntervalNs.
    static constexpr std::uint32_t kWatchdogPeriod = 64;

    /// Minimum wall-clock spacing between automatic watchdog passes. A pass
    /// walks every registered thread's hp and handover arrays, so running it
    /// every kWatchdogPeriod cascades — microseconds apart on a churn
    /// workload — taxed the retire path by double digits. A stalled reader
    /// is a second-scale phenomenon: sampling at 100ms flags one within
    /// ~200ms (two-sample streak) while the amortized cost rounds to zero.
    static constexpr std::uint64_t kWatchdogIntervalNs = 100'000'000;

    /// The process-wide default domain — what OrcEngine::instance() fronts
    /// and what untagged objects (orc_base::_orc_dom == nullptr) route to.
    static OrcDomain& global() {
        static OrcDomain domain(/*is_global=*/true);
        return domain;
    }

    /// A fresh, independent reclamation domain. Retire scans inside it walk
    /// only its own hp slots; its destruction runs the drain protocol below.
    OrcDomain() : OrcDomain(/*is_global=*/false) {}

    OrcDomain(const OrcDomain&) = delete;
    OrcDomain& operator=(const OrcDomain&) = delete;

    ~OrcDomain();  // defined below (needs DomainRegistry)

    // ---- hp index management (Algorithm 6) -------------------------------

    /// Claims a free hp index for the calling thread (used_haz goes 0 -> 1).
    /// O(1): free indices are recycled through a per-thread stack, seeded so
    /// that the lowest indices pop first (keeps the published watermark
    /// tight).
    int get_new_idx() {
        auto& t = tl_[thread_id()];
        t.beat_tick();
        if (t.free_top < 0) {
            if (t.free_initialized) {
                fatal("orcgc: thread exceeded %d live orc_ptr indices in one domain", kMaxHPs);
            }
            for (int idx = kMaxHPs - 1; idx >= 1; --idx) t.free_stack[++t.free_top] = idx;
            t.free_initialized = true;
        }
        const int idx = t.free_stack[t.free_top--];
        t.used_haz[idx] = 1;
        // Raise-before-publish: this release store is sequenced before any
        // asym::publish on the new index, so a scanner whose asym::heavy()
        // precedes the raise can only miss publications ordered after its
        // scan — and those readers must revalidate against a source link
        // that the zero counter proves is already gone (DESIGN.md "Memory
        // ordering and asymmetric fences").
        if (idx >= t.hp_wm.load(std::memory_order_relaxed)) {
            t.hp_wm.store(idx + 1, std::memory_order_release);
            if (idx >= t.hp_peak.load(std::memory_order_relaxed)) {
                t.hp_peak.store(idx + 1, std::memory_order_release);
            }
        }
        return idx;
    }

    /// Adds a sharer to an already-claimed index (orc_ptr copy).
    void using_idx(int idx) noexcept {
        if (idx <= 0) return;
        ++tl_[thread_id()].used_haz[idx];
    }

    /// Drops a sharer from `idx`; when the last sharer leaves, performs the
    /// clear() protocol of Algorithm 5: check whether the object this slot
    /// protected became unreachable (take the retire token while our hp still
    /// protects the _orc read), then unpublish and drain the paired handover.
    void release_idx(int idx, orc_base* obj) {
        if (idx <= 0) return;
        auto& t = tl_[thread_id()];
        t.beat_tick();
        if (t.used_haz[idx] == 0) {
            fatal("orcgc: used_haz underflow at idx %d", idx);
        }
        if (--t.used_haz[idx] != 0) return;
        if (obj != nullptr) {
            // The hp entry still protects obj, so this _orc read cannot be a
            // use-after-free: any concurrent retire scan would find our hp
            // and park the object instead of deleting it.
            std::uint64_t lorc = obj->_orc.load(std::memory_order_seq_cst);
            if (orc::is_zero_unretired(lorc) &&
                obj->_orc.compare_exchange_strong(lorc, lorc + orc::kBRetired,
                                                  std::memory_order_seq_cst)) {
                // We own the retire token: nobody else can free obj now, so
                // it is safe to unpublish before scanning.
                metrics_.on_retire_token(obj);
                stamp_retire(obj);
#ifdef ORCGC_ORCSAN
                orcsan::on_retire(obj);
#endif
                unpublish_and_drain(t, idx);
                retire(obj);
                t.free_stack[++t.free_top] = idx;  // recycle only after the clear
                lower_hp_watermark(t);
                return;
            }
        }
        unpublish_and_drain(t, idx);
        t.free_stack[++t.free_top] = idx;
        lower_hp_watermark(t);
    }

    // ---- protection -------------------------------------------------------

    /// Publishes `ptr` (unmarked) at hp index `idx`. The publish is a release
    /// store + asym::light(); the scan-side asym::heavy() (take_snapshot /
    /// try_handover) replaces the seq_cst edge the old full-fence exchange
    /// provided, and the caller's link revalidation catches a publish the
    /// scan raced past.
    void protect_ptr(orc_base* ptr, int idx) noexcept {
        auto& slot = tl_[thread_id()].hp[idx];
        tsan_release_protection(slot);
        asym::publish(slot, ptr);
    }

    /// Classic hazard-pointer acquire loop (Algorithm 2 lines 4–11): publish
    /// the value read from addr, re-read until stable. Returns the raw
    /// (possibly marked) value; the published hazard is the unmarked object.
    template <typename T>
    T get_protected(const std::atomic<T>& addr, int idx) noexcept {
        auto& hp = tl_[thread_id()].hp[idx];
        orc_base* pub = hp.load(std::memory_order_relaxed);
        while (true) {
            T ptr = addr.load(std::memory_order_seq_cst);
            orc_base* base = to_base(ptr);
            if (base == pub) return ptr;
            tsan_release_protection(hp);  // previous publication loses coverage
            // The loop's re-read of addr after the publish is the validation
            // load an asymmetric publish needs: a retire scan whose
            // asym::heavy() missed this publish unlinked the node before the
            // fence, so the re-read observes the unlink and loops.
            asym::publish(hp, base);
            pub = base;
        }
    }

    /// Scratch-slot (index 0) publication used while mutating _orc
    /// (Proposition 1). Must be paired with scratch_release().
    void scratch_protect(orc_base* ptr) noexcept {
        auto& slot = tl_[thread_id()].hp[0];
        tsan_release_protection(slot);
        // Asymmetric publish is sound here too: the caller's subsequent _orc
        // RMW is seq_cst, and a retire scan that misses this publish re-reads
        // _orc after its asym::heavy() (the lorc2 revalidation), observing
        // that RMW and bailing out (Proposition 1's shield).
        asym::publish(slot, ptr);
    }

    /// Clears the scratch slot and drains anything parked on it by a
    /// concurrent retire scan that found our scratch publication.
    void scratch_release() {
        auto& t = tl_[thread_id()];
        unpublish_and_drain(t, 0);
    }

    // ---- counter updates (Algorithm 4's incrementOrc / decrementOrc) ------
    //
    // Route through these on the object's OWN domain (domain_of) — the
    // retire scans they can trigger must walk the hp slots of the domain the
    // object's protections live in.

    /// Adds one hard link to obj. Precondition: the caller has obj protected
    /// (it holds an orc_ptr to it), so the _orc access is safe.
    void increment_orc(orc_base* obj) {
        if (obj == nullptr) return;
        const std::uint64_t lorc =
            obj->_orc.fetch_add(orc::kSeqInc + 1, std::memory_order_seq_cst) + orc::kSeqInc + 1;
        if (!orc::is_zero_unretired(lorc)) return;
        // The increment brought a transiently-negative counter back to zero:
        // the object may be unreachable; try to take the retire token.
        std::uint64_t expected = lorc;
        if (obj->_orc.compare_exchange_strong(expected, lorc + orc::kBRetired,
                                              std::memory_order_seq_cst)) {
            metrics_.on_retire_token(obj);
            stamp_retire(obj);
#ifdef ORCGC_ORCSAN
            orcsan::on_retire(obj);
#endif
            retire(obj);
        }
    }

    /// Removes one hard link from obj. The caller may NOT have obj protected
    /// (e.g. the displaced value of a store), so the scratch slot shields the
    /// _orc access (Proposition 1).
    void decrement_orc(orc_base* obj) {
        if (obj == nullptr) return;
        scratch_protect(obj);
        const std::uint64_t lorc =
            obj->_orc.fetch_add(orc::kSeqInc - 1, std::memory_order_seq_cst) + orc::kSeqInc - 1;
        if (orc::is_zero_unretired(lorc)) {
            std::uint64_t expected = lorc;
            if (obj->_orc.compare_exchange_strong(expected, lorc + orc::kBRetired,
                                                  std::memory_order_seq_cst)) {
                metrics_.on_retire_token(obj);
                stamp_retire(obj);
#ifdef ORCGC_ORCSAN
                orcsan::on_retire(obj);
#endif
                scratch_release();
                retire(obj);
                return;
            }
        }
        scratch_release();
    }

    // ---- retire (Algorithm 5, batched) ------------------------------------

    /// Runs the pass-the-pointer retire protocol for an object whose retire
    /// token (kBRetired) the caller holds. Deletes the object if Lemma 1's
    /// condition (counter at zero AND no hazardous pointer, atomically
    /// validated via the sequence field) holds; otherwise hands it over or
    /// drops the token.
    ///
    /// Cascades are processed in generations: deleting generation g's objects
    /// runs destructors whose decrements push generation g+1 into
    /// recursive_list. Generations of kSnapshotMin+ objects share one hp
    /// snapshot; smaller ones scan per object.
    void retire(orc_base* ptr) {
#ifdef ORCGC_ORCSAN
        {
            // A retire must run in the object's OWN domain (domain_of
            // routing): only there can the scan find its protections.
            OrcDomain* od = ptr->_orc_dom;
            orcsan::check_retire_domain(this, od != nullptr ? od : &OrcDomain::global(), ptr);
        }
#endif
        auto& t = tl_[thread_id()];
        if (t.retire_started) {
            // Cascading retire from inside a node destructor: flatten it.
            t.recursive_list.push_back(ptr);
            return;
        }
        t.retire_started = true;
        // One thread-block lookup covers every hook the cascade fires.
        OrcMetrics::Hot mh = metrics_.hot();
        mh.on_cascade_begin();
        t.recursive_list.push_back(ptr);
        run_cascade(mh, t);
    }

    // ---- telemetry ---------------------------------------------------------

    /// This domain's metrics provider (always on; see orc_metrics.hpp).
    OrcMetrics& metrics() noexcept { return metrics_; }
    const OrcMetrics& metrics() const noexcept { return metrics_; }

    /// Convenience forwarder for the event-trace flag (also settable
    /// process-wide for new domains via ORC_TRACE=1).
    void set_tracing(bool on) { metrics_.set_tracing(on); }

    // ---- stalled-reader watchdog -------------------------------------------

    /// One watchdog pass over every registered slot. A slot is a stall
    /// suspect when, for two consecutive samples, (a) it still publishes at
    /// least one protection, (b) its protection set shows no progress —
    /// neither the slot-transition heartbeat (bumped by get_new_idx /
    /// release_idx) nor the fingerprint of the published hp values has
    /// moved — and (c) the garbage attributed to it — occupied handover
    /// slots plus shard-inbox occupancy — is at least kStallPinnedMin and
    /// non-decreasing.
    ///
    /// The two-signal progress test is what keeps the reader fast paths
    /// untouched: a traversal that advances changes its published hp
    /// VALUES, which the sampler fingerprints for free during the
    /// `published` walk it already does, so protect_ptr/get_protected pay
    /// nothing for the watchdog. Only slot acquire/release — per-traversal
    /// operations, not per-node — tick the heartbeat, which covers the one
    /// progressing pattern the fingerprint cannot see (release and
    /// republish of identical values). A thread spinning protections over
    /// the SAME nodes while its attributed garbage grows is deliberately
    /// still a suspect: frozen protection set + growing pinned garbage is
    /// the condition that starves reclamation, regardless of whether the
    /// thread is descheduled or live-looping in place.
    ///
    /// Results land in the stall_suspects/stall_pinned gauges (exported by
    /// metrics()) and the per-tid stall_suspect() flag. Runs time-gated
    /// from cascade ends (at most one pass per kWatchdogIntervalNs,
    /// domain-wide; see run_cascade); tests drive it directly. Concurrent
    /// calls coalesce: a pass already in flight makes this one a no-op.
    void watchdog_sample() noexcept {
#ifndef ORCGC_TELEMETRY_DISABLED
        if (wd_lock_.exchange(true, std::memory_order_acquire)) return;
        std::uint64_t suspects = 0;
        std::uint64_t pinned_total = 0;
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            auto& t = tl_[it];
            const std::uint64_t b = t.beat.load(std::memory_order_relaxed);
            const int bound = t.hp_wm.load(std::memory_order_acquire);
            bool published = false;
            std::uint64_t fp = 0;
            for (int idx = 0; idx < bound; ++idx) {
                orc_base* const p = t.hp[idx].load(std::memory_order_acquire);
                published = published || p != nullptr;
                // Order-sensitive accumulation: the same values in different
                // slots fingerprint differently.
                fp = fp * 1099511628211ull + reinterpret_cast<std::uint64_t>(p);
            }
            // Garbage attribution: everything parked against this slot's
            // protections — occupied handover slots (hp_peak bound, same as
            // handover_count) plus whatever scans displaced into its inbox.
            const int peak = t.hp_peak.load(std::memory_order_acquire);
            std::uint64_t pinned = 0;
            for (int idx = 0; idx < peak; ++idx) {
                if (t.handovers[idx].load(std::memory_order_acquire) != nullptr) ++pinned;
            }
            const int parked = t.inbox_size.load(std::memory_order_acquire);
            if (parked > 0) pinned += static_cast<std::uint64_t>(parked);
            bool suspect = false;
            if (published && b == t.wd_beat && fp == t.wd_fp &&
                pinned >= kStallPinnedMin && pinned >= t.wd_pinned) {
                if (t.wd_streak < 0xff) ++t.wd_streak;
                suspect = t.wd_streak >= 2;
            } else {
                t.wd_streak = 0;
            }
            t.wd_beat = b;
            t.wd_fp = fp;
            t.wd_pinned = pinned;
            t.wd_flag.store(suspect ? 1 : 0, std::memory_order_release);
            if (suspect) {
                ++suspects;
                pinned_total += pinned;
            }
        }
        wd_suspects_.store(suspects, std::memory_order_release);
        wd_pinned_.store(pinned_total, std::memory_order_release);
        wd_lock_.store(false, std::memory_order_release);
#endif
    }

    /// True when the last watchdog pass flagged `tid` as a stalled reader
    /// pinning garbage.
    bool stall_suspect(int tid) const noexcept {
#ifndef ORCGC_TELEMETRY_DISABLED
        return tl_[tid].wd_flag.load(std::memory_order_acquire) != 0;
#else
        (void)tid;
        return false;
#endif
    }

    /// Gauges computed by the last watchdog pass (the values metrics()
    /// exports as stall_suspects / stall_pinned).
    std::uint64_t stall_suspects() const noexcept {
#ifndef ORCGC_TELEMETRY_DISABLED
        return wd_suspects_.load(std::memory_order_acquire);
#else
        return 0;
#endif
    }
    std::uint64_t stall_pinned() const noexcept {
#ifndef ORCGC_TELEMETRY_DISABLED
        return wd_pinned_.load(std::memory_order_acquire);
#else
        return 0;
#endif
    }

    // ---- background reclaimer (ORC_BG_RECLAIM) -----------------------------

    /// Objects currently parked across this domain's shard inboxes (the
    /// backlog the background reclaimer wakes on). Approximate while threads
    /// mutate; exact at quiescence.
    std::int64_t shard_backlog() const noexcept {
        const std::int64_t b = backlog_.load(std::memory_order_acquire);
        return b > 0 ? b : 0;
    }

    /// Per-domain override of the process-wide ORC_BG_RECLAIM mode (tests /
    /// embedders). Takes effect at the next cascade end; switching to kOff
    /// leaves an already-started worker parked (it joins at destruction).
    void set_bg_reclaim(BgReclaimer::Mode mode) noexcept {
        bg_mode_.store(mode, std::memory_order_relaxed);
    }

    BgReclaimer::Mode bg_reclaim_mode() const noexcept {
        return bg_mode_.load(std::memory_order_relaxed);
    }

    /// True once this domain's background worker has been spawned (it is
    /// spawned lazily, on the first wake-worthy backlog).
    bool bg_running() const noexcept { return bg_.running(); }

    /// Cascade-size EWMA the adaptive wake threshold is derived from
    /// (integer EWMA with alpha=1/8, stored x8; see note_cascade).
    std::uint64_t cascade_ewma() const noexcept {
        return cascade_ewma_.load(std::memory_order_relaxed) / 8;
    }

    /// Retire-path statistics, kept as the stable names the benches and
    /// tests grew up with; since the telemetry migration this is a view over
    /// OrcMetrics::snapshot(). Counters are per-domain: a noisy neighbor's
    /// scans never show up in another domain's stats (bench_domains gates on
    /// this).
    struct RetireStats {
        std::uint64_t scans = 0;          ///< per-object try_handover passes
        std::uint64_t snapshots = 0;      ///< full-HP-array snapshots taken
        std::uint64_t slots_scanned = 0;  ///< hp slots loaded by scans + snapshots
        std::uint64_t batch_frees = 0;    ///< deletes proven by a snapshot
        std::uint64_t slow_frees = 0;     ///< deletes proven by a per-object scan
        std::uint64_t handovers = 0;      ///< objects parked on another thread's hp
    };

    RetireStats stats() const noexcept {
        const OrcMetrics::Snapshot m = metrics_.snapshot();
        RetireStats s;
        s.scans = m.scans;
        s.snapshots = m.snapshots;
        s.slots_scanned = m.slots_scanned;
        s.batch_frees = m.freed_batch;
        s.slow_frees = m.freed_slow;
        s.handovers = m.handovers;
        return s;
    }

    void reset_stats() noexcept { metrics_.reset(); }

    // ---- introspection (tests / memory-bound benches) ----------------------

    /// Objects allocated into this domain (make_orc_in) and not yet
    /// reclaimed. Exact at quiescence; approximate while threads mutate.
    std::int64_t object_count() const noexcept {
        return tracked_objects_.load(std::memory_order_acquire);
    }

    /// True for the process-wide default domain (OrcDomain::global()).
    bool is_global() const noexcept { return is_global_; }

    /// Pointers currently parked in handover slots or shard inboxes across
    /// all threads. Bounded by hp_peak, not hp_wm: a scanner that read a
    /// stale hp can park into a slot after its index was recycled and the
    /// watermark lowered.
    std::size_t handover_count() const noexcept {
        std::size_t total = 0;
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            const int peak = tl_[it].hp_peak.load(std::memory_order_acquire);
            for (int idx = 0; idx < peak; ++idx) {
                if (tl_[it].handovers[idx].load(std::memory_order_acquire) != nullptr) ++total;
            }
            const int parked = tl_[it].inbox_size.load(std::memory_order_acquire);
            if (parked > 0) total += static_cast<std::size_t>(parked);
        }
        return total;
    }

    /// Live orc_ptr sharers on the calling thread (slot-leak checks).
    int used_idx_count() const noexcept {
        const auto& t = tl_[thread_id()];
        const int peak = t.hp_peak.load(std::memory_order_relaxed);
        int used = 0;
        for (int idx = 1; idx < peak; ++idx) {
            if (t.used_haz[idx] != 0) ++used;
        }
        return used;
    }

    /// One past the highest hp index ever claimed by any registered thread
    /// (max of the per-thread peaks; >= 1 because slot 0 is always live).
    int hp_watermark() const noexcept {
        int max_peak = 1;
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            max_peak = std::max(max_peak, tl_[it].hp_peak.load(std::memory_order_acquire));
        }
        return max_peak;
    }

    /// The calling thread's *current* scan bound — one past its highest
    /// claimed hp index. Unlike hp_peak this tightens again when indices are
    /// released (tests assert the tightening).
    int hp_watermark_self() const noexcept {
        return tl_[thread_id()].hp_wm.load(std::memory_order_relaxed);
    }

    /// Debug aid: prints the calling thread's non-free slots.
    void debug_dump_slots() const {
        const auto& t = tl_[thread_id()];
        const int peak = t.hp_peak.load(std::memory_order_relaxed);
        for (int idx = 1; idx < peak; ++idx) {
            if (t.used_haz[idx] != 0) {
                std::fprintf(stderr, "  idx=%d used=%u hp=%p handover=%p\n", idx,
                             t.used_haz[idx],
                             (void*)t.hp[idx].load(std::memory_order_seq_cst),
                             (void*)t.handovers[idx].load(std::memory_order_seq_cst));
            }
        }
    }

    /// Converts a (possibly marked) node pointer to its orc_base address.
    template <typename T>
    static orc_base* to_base(T ptr) noexcept {
        return static_cast<orc_base*>(get_unmarked(ptr));
    }

#ifdef ORCGC_ORCSAN
    /// OrcSan coverage scan: is `obj` currently published in ANY thread's hp
    /// slots of this domain (scratch included)? Checked only after the
    /// shadow state says non-Live, so this cold walk never runs on the
    /// common Live path. All threads are scanned, not just the caller —
    /// protections may legitimately be held by another thread while a
    /// reference is read here.
    bool orcsan_covers(const orc_base* obj) const noexcept {
        const int nthreads = thread_id_watermark();
        for (int it = 0; it < nthreads; ++it) {
            const auto& t = tl_[it];
            const int peak = t.hp_peak.load(std::memory_order_acquire);
            for (int idx = 0; idx < peak; ++idx) {
                if (t.hp[idx].load(std::memory_order_acquire) == obj) return true;
            }
        }
        return false;
    }
#endif

    // ---- internal (make_orc_in / façade plumbing) --------------------------

    /// Records an allocation into this domain. Called by make_orc_in after
    /// tagging the object, before it can escape.
    void note_tracked_allocation() noexcept {
        tracked_objects_.fetch_add(1, std::memory_order_relaxed);
    }

  private:
    /// Per-domain, per-thread slot machinery (the paper's thread-local
    /// arrays, instance-scoped).
    struct alignas(kCacheLineSize) DomainState {
        std::atomic<orc_base*> hp[kMaxHPs] = {};
        // Own cache lines: handovers are written by *other* threads.
        alignas(kCacheLineSize) std::atomic<orc_base*> handovers[kMaxHPs] = {};
        // Published scan bounds, read by every other thread's retire scans
        // (own cache line: must not false-share with the owner-hot used_haz):
        //   hp_wm   one past the highest *currently claimed* hp index; raised
        //           by get_new_idx before any publish on the new index,
        //           lowered by release_idx when the top index frees. Floor 1:
        //           the scratch slot is always scanned.
        //   hp_peak monotonic high-water mark; bound for handover draining
        //           and introspection (late parks can land at recycled
        //           indices above hp_wm).
        alignas(kCacheLineSize) std::atomic<int> hp_wm{1};
        std::atomic<int> hp_peak{1};
        // Shard header: the MPSC handover inbox. Scans that displace an
        // object out of one of THIS thread's handover slots push it here (a
        // Treiber stack threaded through orc_base::_orc_link) instead of
        // re-scanning it inline; the owner drains opportunistically on its
        // next unpublish, at thread exit, or the background reclaimer does.
        // Own cache line: pushed by other threads, polled by the owner.
        alignas(kCacheLineSize) std::atomic<orc_base*> inbox{nullptr};
        std::atomic<int> inbox_size{0};  // soft-capped at kInboxSoftCap
        alignas(kCacheLineSize) std::uint32_t used_haz[kMaxHPs] = {};
        // O(1) index recycling (thread-local; seeded lazily on first use).
        int free_stack[kMaxHPs];
        int free_top = -1;
        bool free_initialized = false;
        bool retire_started = false;
#ifndef ORCGC_TELEMETRY_DISABLED
        /// Stalled-reader watchdog heartbeat: bumped by the owning thread on
        /// protection-slot transitions only — get_new_idx and release_idx
        /// (beat_tick) — NEVER on the publish fast paths
        /// (protect_ptr/get_protected stay watchdog-free; the sampler infers
        /// their progress from the published-value fingerprint instead, see
        /// watchdog_sample). Read — rarely, and subsampled — by
        /// watchdog_sample. Lives with the owner-exclusive fields so the
        /// stores never bounce a scanner-shared line; the sampler's
        /// occasional read pays the one transfer.
        std::atomic<std::uint64_t> beat{0};
        // Watchdog sampler memory for THIS slot: the previous sample's beat,
        // published-hp fingerprint and pinned count plus the
        // consecutive-frozen streak (all written only under wd_lock_ by
        // watchdog_sample), and the published per-tid verdict wd_flag (read
        // by stall_suspect). In the padded DomainState so the sampler's
        // writes stay off every other slot's lines.
        std::uint64_t wd_beat = 0;
        std::uint64_t wd_fp = 0;
        std::uint64_t wd_pinned = 0;
        std::uint8_t wd_streak = 0;
        std::atomic<std::uint8_t> wd_flag{0};
        /// Owner-exclusive cascade counter electing one cascade in
        /// kWatchdogPeriod to read the wall clock (run_cascade) — per-thread
        /// so the cascade epilogue touches no shared cacheline.
        std::uint32_t wd_cascades = 0;
#endif
        /// Heartbeat bump — owner-exclusive plain load+store (the sampler
        /// only needs to see the value move eventually). The name carries no
        /// telemetry vocabulary on purpose: the slot-transition paths that
        /// call it are source-checked for purity (test_telemetry.cpp).
        void beat_tick() noexcept {
#ifndef ORCGC_TELEMETRY_DISABLED
            beat.store(beat.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
#endif
        }
        // Grown-once scratch: capacity is retained across calls, so
        // steady-state retires never touch the heap.
        std::vector<orc_base*> recursive_list;   // pending cascade generations
        std::vector<orc_base*> gen_items;        // private-path generation copy
        std::vector<std::uint64_t> gen_lorc;     // pre-read _orc per gen object
        std::vector<std::uint8_t> gen_state;     // kItemPending/Parked/Fallback
        std::vector<std::uint32_t> gen_order;    // item indices sorted by ptr
    };

    /// Post-walk disposition of a generation item (gen_state / SharedScan
    /// state): kItemParked was handed over in place during the walk and is no
    /// longer ours; kItemPending passes the Lemma 1 free check if its _orc is
    /// still unchanged; kItemFallback (pre-read not zero+retired, i.e. a
    /// resurrection in flight) re-runs the full per-object protocol.
    enum : std::uint8_t { kItemPending = 0, kItemParked = 1, kItemFallback = 2 };

    /// The cooperative-scan descriptor (one per domain). A retiring thread
    /// whose generation takes the batched path claims it, runs the ONE
    /// asym::heavy() + hp walk for the whole generation, then opens the
    /// descriptor so that any thread entering its own batched retire can
    /// steal disjoint chunks of the post-walk settle work (the sorted-
    /// membership frees) via a fetch-add claim ticket. See
    /// retire_generation_batched for the full protocol and its ordering
    /// argument.
    struct SharedScan {
        /// Install exclusivity: exchanged true by the owner, released by the
        /// LAST settler after the epoch is bumped closed.
        std::atomic<bool> claimed{false};
        /// Claim ticket: high 32 bits are the scan epoch (odd = open, even =
        /// closed — installs bump it odd, the last settler bumps it even),
        /// low 32 bits the next unclaimed item index. One word so a claim
        /// atomically learns WHICH scan it claimed from: a fetch-add that
        /// lands on a closed or foreign epoch is harmless junk in the low
        /// bits of an epoch nobody reads ranges from any more.
        alignas(kCacheLineSize) std::atomic<std::uint64_t> ticket{0};
        /// Items settled so far this epoch; the settler that completes the
        /// count closes the scan. acq_rel RMWs chain every consumer's array
        /// reads happens-before the close, hence before the next install's
        /// array overwrites.
        alignas(kCacheLineSize) std::atomic<std::uint32_t> settled{0};
        std::atomic<std::uint32_t> n_items{0};
        std::atomic<int> owner_tid{-1};
        // Owner-filled working arrays; plain reads by consumers are ordered
        // by the ticket release/acquire edge (see retire_generation_batched).
        std::vector<orc_base*> items;
        std::vector<std::uint64_t> lorc;
        std::vector<std::uint8_t> state;
    };

    explicit OrcDomain(bool is_global);  // defined below (needs DomainRegistry)

    /// Reclaims one object this domain proved unreachable: unwinds the
    /// domain's tracked-object accounting, then deletes (which may push
    /// cascaded retires into recursive_list).
    void destroy(orc_base* ptr);  // defined below (needs domain_of)

    /// Stamps the retire time on an object whose retire token the caller
    /// just took — for one retire in every (telemetry::kAgeSampleMask + 1)
    /// on this thread (see kAgeSampleMask for why ages are sampled). The
    /// token CAS makes the caller the unique writer (see
    /// orc_base::_orc_rts); the free paths turn the stamp into the
    /// retire_free_age histogram sample via retire_age().
    static void stamp_retire(orc_base* obj) noexcept {
#ifndef ORCGC_TELEMETRY_DISABLED
        static thread_local std::uint32_t sample_seq = 0;
        if ((sample_seq++ & telemetry::kAgeSampleMask) == 0) {
            obj->_orc_rts = telemetry::coarse_now();
        }
#endif
        (void)obj;
    }

    /// coarse_now() ticks since `obj`'s retire stamp, or telemetry::kNoAge
    /// when the object carries no stamp (not sampled, telemetry disabled, or
    /// allocated behind the engine's back) — unstamped frees record nothing.
    static std::uint64_t retire_age(const orc_base* obj) noexcept {
#ifndef ORCGC_TELEMETRY_DISABLED
        if (obj->_orc_rts != 0) {
            const std::uint64_t now = telemetry::coarse_now();
            return now > obj->_orc_rts ? now - obj->_orc_rts : 0;
        }
#endif
        (void)obj;
        return telemetry::kNoAge;
    }

    /// Called (via DomainRegistry) while `tid` is still owned by the exiting
    /// thread; runs for EVERY live domain the process has.
    void drain_thread(int tid) {
        auto& t = tl_[tid];
        const int peak = t.hp_peak.load(std::memory_order_acquire);
        // Unpublish everything first (release suffices for clears — a scanner
        // reading a stale hp parks conservatively), then ONE asym::heavy()
        // orders the null stores before the handover drain: after the fence,
        // any scanner still running either published its park already (the
        // exchange below takes it) or will re-read these slots as null and
        // not park at all. A park that races past both lands in a slot the
        // next drain of this tid (or the destructor) covers — the same window
        // the old per-slot seq_cst stores had.
        for (int idx = 0; idx < peak; ++idx) {
            tsan_release_protection(t.hp[idx]);
            t.hp[idx].store(nullptr, std::memory_order_release);
        }
        asym::heavy();
        for (int idx = 0; idx < peak; ++idx) {
            if (orc_base* h = t.handovers[idx].exchange(nullptr, std::memory_order_seq_cst)) {
                metrics_.on_drain(h);
                retire(h);
            }
        }
        // Hand back the shard inbox BEFORE the slot is recycled: a scan that
        // displaced an object into this shard mid-cascade must not strand it
        // on a tid the next thread inherits with no idea it owes a drain.
        // The exiting thread still owns `tid` here (exit hooks run before
        // the registry releases the slot), so the retire cascade this drain
        // runs is on fully valid state.
        drain_inbox(tid);
        // Fresh start for the next thread that reuses this tid. hp_peak stays
        // monotonic on purpose: a scanner that read a stale hp just before
        // this drain can still park into one of these handover slots, and the
        // next drain (or the domain destructor) must keep looking there.
        t.hp_wm.store(1, std::memory_order_release);
    }

    /// Tightens the published scan bound after an index was recycled. Only
    /// the owner thread writes hp_wm, so a plain scan-check-store suffices;
    /// slots below the new bound that are free all hold null hp entries, so
    /// scanners lose nothing by skipping them.
    ///
    /// Hysteresis: the bound only moves when it can tighten by at least two
    /// slots. Without the slack, a workload holding one orc_ptr at a time
    /// would alternate get_new_idx's raise with a lower here — two watermark
    /// stores per protect/release cycle on the hot path. With it, steady
    /// oscillation around the bound settles one slot high and generates no
    /// watermark traffic at all; scanners pay at most one extra null slot
    /// per thread.
    ///
    /// Release (no asym::heavy()): lowering only shrinks the scanned range,
    /// and every slot it hides is free — its hp entry was nulled (release)
    /// by unpublish_and_drain before the index was recycled, in the same
    /// release sequence a scanner's acquire of the new bound picks up. A
    /// scanner still using the old bound merely reads extra null slots.
    void lower_hp_watermark(DomainState& t) noexcept {
        const int wm = t.hp_wm.load(std::memory_order_relaxed);
        int top = wm - 1;
        while (top >= 1 && t.used_haz[top] == 0) --top;
        const int tightened = top < 1 ? 1 : top + 1;
        if (tightened <= wm - 2) t.hp_wm.store(tightened, std::memory_order_release);
    }

    void unpublish_and_drain(DomainState& t, int idx) {
        // Release suffices for the clear (paper Alg. 2 line 14): a scanner
        // reading the stale non-null hp parks conservatively; only *publish*
        // needs the full fence.
        tsan_release_protection(t.hp[idx]);
        t.hp[idx].store(nullptr, std::memory_order_release);
        // One seq_cst op on the slot instead of the previous seq_cst
        // load + seq_cst exchange pair: the guard load is only there to skip
        // the RMW in the (overwhelmingly common) empty case, and a park it
        // misses simply waits for the next drain of this slot — the same
        // window that already exists between the exchange and a late parker.
        if (t.handovers[idx].load(std::memory_order_acquire) != nullptr) {
            if (orc_base* h = t.handovers[idx].exchange(nullptr, std::memory_order_seq_cst)) {
                // The parked object carries its retire token; continue the
                // protocol on its behalf.
                metrics_.on_drain(h);
                retire(h);
            }
        }
        // Opportunistic shard-inbox drain: one relaxed load of an owner-local
        // line that stays null (hence cache-shared) unless a scan displaced
        // objects into this shard. Draining here keeps the backlog near zero
        // without the background worker in the default configuration.
        if (t.inbox.load(std::memory_order_relaxed) != nullptr) {
            drain_inbox(static_cast<int>(&t - tl_));
        }
    }

    /// The per-object protocol of Algorithm 6 for one retired object (token
    /// held by the caller): resurrection check, hp scan with handover, Lemma 1
    /// sequence revalidation, delete.
    void retire_one(OrcMetrics::Hot& mh, orc_base* ptr) {
        std::uint32_t chain = 0;
        while (ptr != nullptr) {
            std::uint64_t lorc = ptr->_orc.load(std::memory_order_seq_cst);
            if (!orc::is_zero_retired(lorc)) {
                // Resurrected: a thread holding a local reference re-linked
                // the object. Drop the token (and re-take it if the counter
                // fell back to zero under us).
                lorc = clear_bit_retired(ptr);
                if (lorc == 0) {
                    // Token dropped for good; a later decrement re-retires
                    // (and re-counts the token, which is why resurrections
                    // offset the unreclaimed balance).
                    mh.on_resurrect(ptr);
#ifdef ORCGC_ORCSAN
                    orcsan::on_resurrect(ptr);
#endif
                    break;
                }
            }
            if (try_handover(mh, ptr)) {
                ++chain;
                continue;  // ptr is now the swapped-out pointer
            }
            const std::uint64_t lorc2 = ptr->_orc.load(std::memory_order_seq_cst);
            if (lorc2 != lorc) continue;  // _orc moved during the scan: revalidate
            // Lemma 1: counter zero, token held, no hp found, sequence
            // unchanged across the scan — safe to destroy.
            mh.on_free(ptr, /*batched=*/false, retire_age(ptr));
            destroy(ptr);  // may push cascaded retires into recursive_list
            break;
        }
        mh.on_chain(chain);
    }

    /// Batched form of the Lemma 1 check for one cascade generation
    /// recursive_list[begin, end), direction-swapped relative to the seed:
    /// instead of collecting a sorted snapshot of the hps and binary-searching
    /// each generation member into it, scan_generation sorts the GENERATION
    /// and, during the single asym::heavy() + hp walk, probes each published
    /// hp into it. A hit parks the member in the exact handover slot whose hp
    /// covers it, right there in the walk — the seed paid a fresh full-HP
    /// retire_one scan (with its own heavy()) per covered member. After the
    /// walk every member is settled: parked ones are done, pending ones free
    /// iff _orc (sequence included) is unchanged since the pre-read, the rest
    /// fall back to the per-object protocol.
    ///
    /// Soundness is the seed's argument, unchanged by the direction swap:
    /// every generation member's retire token was acquired before the walk
    /// started, so a protection the walk misses was published SC-after it —
    /// such a reader revalidates against a source link, and the unchanged
    /// sequence plus zero counter prove no link contained the object at any
    /// point in the pre-read..re-read window. Parking during the walk is the
    /// same conservative act try_handover performs: the object keeps its
    /// token and re-enters the protocol when the slot drains, even if the
    /// protecting thread released the hp between our read and the exchange
    /// (the hp_peak bound covers such late parks, exactly as before).
    ///
    /// Cooperative settling: the walk owner publishes the settled work
    /// through the domain's SharedScan descriptor, and every thread entering
    /// its own batched retire first steals chunks from any open scan
    /// (help_shared_scan). One heavy() — the owner's — covers every item
    /// however many threads settle them; stealers never fence.
    void retire_generation_batched(OrcMetrics::Hot& mh, DomainState& t, std::size_t begin,
                                   std::size_t end) {
        help_shared_scan(mh);
        if (!scan_.claimed.load(std::memory_order_relaxed) &&
            !scan_.claimed.exchange(true, std::memory_order_acquire)) {
            // Owner path. The acquire exchange pairs with the closing
            // settler's release of `claimed`, ordering our array overwrites
            // after every reader of the PREVIOUS epoch (all of whom settled
            // before the close, by the `settled` count).
            scan_generation(mh, t, scan_.items, scan_.lorc, scan_.state, begin, end);
            const std::uint32_t n = static_cast<std::uint32_t>(scan_.items.size());
            scan_.owner_tid.store(thread_id(), std::memory_order_relaxed);
            scan_.settled.store(0, std::memory_order_relaxed);
            scan_.n_items.store(n, std::memory_order_relaxed);
            const std::uint64_t epoch = (scan_.ticket.load(std::memory_order_relaxed) >> 32) + 1;
            // The release store (epoch odd, index zero) opens the scan: any
            // consumer whose ticket RMW reads a value in this store's release
            // sequence sees the filled arrays and the right n_items.
            scan_.ticket.store(epoch << 32, std::memory_order_release);
            mh.on_shared_scan();
            consume_shared_scan(mh);
        } else {
            // Descriptor busy (another cascade's scan is open, or its last
            // settler is mid-close): private path — same walk, thread-local
            // buffers, settle everything ourselves. Never blocks.
            scan_generation(mh, t, t.gen_items, t.gen_lorc, t.gen_state, begin, end);
            for (std::size_t i = 0; i < t.gen_items.size(); ++i) {
                settle_item(mh, t.gen_items[i], t.gen_lorc[i], t.gen_state[i]);
            }
        }
    }

    /// Phase A of the batched retire: copy the generation out of
    /// recursive_list (consumers must never touch recursive_list — it grows,
    /// and reallocates, as settling destroys push the next generation), pre-
    /// read each _orc, sort the items by address, then ONE asym::heavy() and
    /// one walk over every published hp in the domain. Each hp that probes
    /// into the generation parks that item in place (handover exchange into
    /// the covering slot); whatever the exchange displaced goes to the
    /// protecting shard's inbox (or back into OUR cascade when the inbox is
    /// full). A duplicate hit on an already-parked item is skipped — one
    /// park per item, matching the seed's retire_one semantics.
    void scan_generation(OrcMetrics::Hot& mh, DomainState& t, std::vector<orc_base*>& items,
                         std::vector<std::uint64_t>& lorc, std::vector<std::uint8_t>& state,
                         std::size_t begin, std::size_t end) {
        telemetry::TraceSpan span(mh.span_ring(), telemetry::SpanKind::kScanGeneration);
        span.note_items(static_cast<std::uint64_t>(end - begin));
        items.clear();
        lorc.clear();
        state.clear();
        t.gen_order.clear();
        for (std::size_t i = begin; i < end; ++i) {
            orc_base* ptr = t.recursive_list[i];
            const std::uint64_t l = ptr->_orc.load(std::memory_order_seq_cst);
            items.push_back(ptr);
            lorc.push_back(l);
            state.push_back(orc::is_zero_retired(l) ? kItemPending : kItemFallback);
            t.gen_order.push_back(static_cast<std::uint32_t>(i - begin));
        }
        std::sort(t.gen_order.begin(), t.gen_order.end(),
                  [&items](std::uint32_t a, std::uint32_t b) {
                      return std::less<orc_base*>()(items[a], items[b]);
                  });
        // Scan-side half of the asymmetric pair: every generation member's
        // retire token (a seq_cst RMW on _orc) was taken before this call, so
        // a publish this fence misses was ordered after it — that reader's
        // validation re-read (get_protected loop / Lemma 1 sequence check)
        // then sees the unlink or the moved _orc and cannot rely on the
        // missed publication.
        {
            telemetry::TraceSpan fence(mh.span_ring(), telemetry::SpanKind::kHeavyFence);
            asym::heavy();
        }
        const int nthreads = thread_id_watermark();
        std::size_t slots = 0;
        std::size_t published = 0;
        for (int it = 0; it < nthreads; ++it) {
            auto& other = tl_[it];
            const int wm = other.hp_wm.load(std::memory_order_seq_cst);
            for (int idx = 0; idx < wm; ++idx) {
                orc_base* p = other.hp[idx].load(std::memory_order_seq_cst);
                if (p == nullptr) continue;
                ++published;
                const auto pos = std::lower_bound(
                    t.gen_order.begin(), t.gen_order.end(), p,
                    [&items](std::uint32_t a, orc_base* key) {
                        return std::less<orc_base*>()(items[a], key);
                    });
                if (pos == t.gen_order.end() || items[*pos] != p) continue;
                const std::uint32_t i = *pos;
                if (state[i] != kItemPending) continue;  // parked already / fallback
                state[i] = kItemParked;
                mh.on_handover(p);
                orc_base* displaced =
                    other.handovers[idx].exchange(p, std::memory_order_seq_cst);
                if (displaced != nullptr) {
                    if (shard_push(it, displaced)) {
                        mh.on_shard_push(displaced, it);
                    } else {
                        // Inbox full: the displaced object (token held)
                        // rejoins our cascade as a next-generation member —
                        // the seed's behavior, cost-wise.
                        t.recursive_list.push_back(displaced);
                    }
                }
            }
            slots += static_cast<std::size_t>(wm);
        }
        mh.on_snapshot(published, slots);
    }

    /// Settles one walked generation item (parked / free / fallback — see
    /// the kItem* enum). Runs on the walk owner or on a stealer; `mh` is the
    /// settling thread's own hot handle, and cascades the destroy triggers
    /// land in the settling thread's recursive_list.
    void settle_item(OrcMetrics::Hot& mh, orc_base* ptr, std::uint64_t lorc, std::uint8_t st) {
        if (st == kItemParked) return;
        if (st == kItemPending && ptr->_orc.load(std::memory_order_seq_cst) == lorc) {
            mh.on_free(ptr, /*batched=*/true, retire_age(ptr));
            destroy(ptr);
            return;
        }
        retire_one(mh, ptr);
    }

    /// Steals settle work from an open shared scan, if any. One acquire load
    /// on the common (no scan open / exhausted) path.
    void help_shared_scan(OrcMetrics::Hot& mh) {
        const std::uint64_t tk = scan_.ticket.load(std::memory_order_acquire);
        if (((tk >> 32) & 1) == 0) return;  // no scan open
        if (static_cast<std::uint32_t>(tk) >= scan_.n_items.load(std::memory_order_relaxed)) {
            return;  // open but fully claimed — nothing to steal
        }
        consume_shared_scan(mh);
    }

    /// Chunk-claim loop of the cooperative scan. Each iteration validates a
    /// loaded ticket (epoch odd, index below n_items) and then claims its
    /// chunk with a CAS — never a blind fetch-add, so a closed or exhausted
    /// epoch accumulates NO junk claims and the low 32 bits can never carry
    /// into the epoch field, however many consumers race the close. The
    /// epoch in the ticket's high bits says which scan the claimed range
    /// belongs to. Ordering: the acq_rel CAS reads a value in the release
    /// sequence headed by the install's ticket store, so a successful claim
    /// synchronizes-with the install — and since any close or re-install
    /// changes the ticket's epoch bits, CAS success also proves no newer
    /// install slipped between our validation loads and the claim: the
    /// arrays and n_items we read are exactly this epoch's. No NEWER
    /// install can overwrite them while we settle: an install requires the
    /// previous epoch closed, the close requires settled == n_items, and
    /// our claimed range is not yet settled.
    void consume_shared_scan(OrcMetrics::Hot& mh) {
        std::uint64_t tk = scan_.ticket.load(std::memory_order_acquire);
        while (true) {
            if (((tk >> 32) & 1) == 0) return;  // closed epoch
            const std::uint32_t i0 = static_cast<std::uint32_t>(tk);
            const std::uint32_t n = scan_.n_items.load(std::memory_order_relaxed);
            if (i0 >= n) return;  // claims exhausted (a slower settler closes)
            if (!scan_.ticket.compare_exchange_weak(tk, tk + kShareChunk,
                                                    std::memory_order_acq_rel,
                                                    std::memory_order_acquire)) {
                continue;  // tk reloaded by the failed CAS: revalidate
            }
            const std::uint32_t i1 = i0 + kShareChunk < n ? i0 + kShareChunk : n;
            {
                telemetry::TraceSpan span(mh.span_ring(), telemetry::SpanKind::kStealChunk);
                span.note_items(i1 - i0);
                for (std::uint32_t i = i0; i < i1; ++i) {
                    settle_item(mh, scan_.items[i], scan_.lorc[i], scan_.state[i]);
                }
            }
            if (thread_id() != scan_.owner_tid.load(std::memory_order_relaxed)) {
                mh.on_steal(i1 - i0);
            }
            const std::uint32_t done =
                scan_.settled.fetch_add(i1 - i0, std::memory_order_acq_rel) + (i1 - i0);
            if (done == n) {
                // Last settler: close the epoch (bump it even), then free the
                // descriptor. The release on `claimed` carries every
                // settler's array reads (chained through the settled RMWs)
                // to the next owner's acquire.
                scan_.ticket.fetch_add(1ULL << 32, std::memory_order_release);
                scan_.claimed.store(false, std::memory_order_release);
                return;
            }
            tk = scan_.ticket.load(std::memory_order_acquire);
        }
    }

    /// Pushes a displaced handover occupant onto shard `tid`'s MPSC inbox
    /// (Treiber stack through _orc_link). Fails — caller keeps the object —
    /// when the inbox is at its soft cap, so a stalled shard bounds the
    /// unreclaimed memory it can strand (see kInboxSoftCap). The size
    /// counter may transiently overshoot under concurrent pushes; the cap is
    /// soft by design.
    bool shard_push(int tid, orc_base* ptr) {
        auto& t = tl_[tid];
        if (t.inbox_size.load(std::memory_order_relaxed) >= kInboxSoftCap) return false;
        t.inbox_size.fetch_add(1, std::memory_order_relaxed);
        backlog_.fetch_add(1, std::memory_order_relaxed);
        orc_base* head = t.inbox.load(std::memory_order_relaxed);
        do {
            ptr->_orc_link = head;
        } while (!t.inbox.compare_exchange_weak(head, ptr, std::memory_order_release,
                                                std::memory_order_relaxed));
        return true;
    }

    /// Takes shard `tid`'s whole inbox in one exchange and re-enters the
    /// retire protocol for the batch (every object still holds its token).
    /// Multi-consumer safe — the owner, an exiting thread's drain, the
    /// destructor and the background worker can race; the exchange hands the
    /// chain to exactly one of them.
    void drain_inbox(int tid) {
        auto& t = tl_[tid];
        orc_base* head = t.inbox.exchange(nullptr, std::memory_order_acquire);
        if (head == nullptr) return;
        telemetry::TraceSpan span(metrics_.span_ring(), telemetry::SpanKind::kHandoverDrain);
        std::int64_t taken = 0;
        for (orc_base* p = head; p != nullptr; p = p->_orc_link) ++taken;
        span.note_items(static_cast<std::uint64_t>(taken));
        t.inbox_size.fetch_sub(static_cast<int>(taken), std::memory_order_relaxed);
        backlog_.fetch_sub(taken, std::memory_order_relaxed);
        metrics_.on_shard_drain(tid, static_cast<std::uint64_t>(taken));
        retire_list(head);
    }

    /// Re-enters the retire protocol for a chain of token-holding objects
    /// (a drained shard inbox). Mid-cascade the chain flattens into the
    /// running cascade; at top level the whole batch forms generation 0 of
    /// ONE cascade — a single walk settles all of it, where the seed's
    /// inline chain rescans paid one full-HP scan per object.
    void retire_list(orc_base* head) {
        auto& t = tl_[thread_id()];
        const bool nested = t.retire_started;
        OrcMetrics::Hot mh = metrics_.hot();
        if (!nested) {
            t.retire_started = true;
            mh.on_cascade_begin();
        }
        while (head != nullptr) {
            orc_base* next = head->_orc_link;
            head->_orc_link = nullptr;
            t.recursive_list.push_back(head);
            head = next;
        }
        if (!nested) run_cascade(mh, t);
    }

    /// The generation loop shared by retire() and retire_list(). Caller set
    /// retire_started and pushed generation 0; this drains the cascade,
    /// clears the flag, and feeds the background reclaimer's EWMA.
    void run_cascade(OrcMetrics::Hot& mh, DomainState& t) {
        std::size_t begin = 0;
        std::uint32_t gen = 0;
        while (begin < t.recursive_list.size()) {
            mh.set_generation(gen++);
            const std::size_t end = t.recursive_list.size();
            if (end - begin >= kSnapshotMin) {
                retire_generation_batched(mh, t, begin, end);
            } else {
                for (std::size_t i = begin; i < end; ++i) {
                    retire_one(mh, t.recursive_list[i]);
                }
            }
            begin = end;
        }
        const std::size_t cascade_len = t.recursive_list.size();
        t.recursive_list.clear();
        t.retire_started = false;
        mh.on_cascade_end();
        note_cascade(cascade_len);
#ifndef ORCGC_TELEMETRY_DISABLED
        // Doubly subsampled watchdog: a per-thread counter (no shared
        // cacheline on the cascade path) elects one cascade in
        // kWatchdogPeriod to read the wall clock, and a full hp/handover
        // pass runs only when kWatchdogIntervalNs has elapsed since the
        // last one, domain-wide. Cascades fire per-retire on churn
        // workloads, so a count-only cadence meant a pass every few
        // microseconds — pure tax for a signal whose whole signature is
        // "not changing for seconds".
        if ((++t.wd_cascades & (kWatchdogPeriod - 1)) == 0) {
            const std::uint64_t now = telemetry::monotonic_ns();
            std::uint64_t last = wd_last_ns_.load(std::memory_order_relaxed);
            if (now - last >= kWatchdogIntervalNs &&
                wd_last_ns_.compare_exchange_strong(last, now,
                                                    std::memory_order_relaxed)) {
                watchdog_sample();
            }
        }
#endif
    }

    /// Cascade-end bookkeeping for the background reclaimer: fold the
    /// cascade size into the EWMA (alpha = 1/8, stored x8 so small cascades
    /// do not round to zero) and wake the worker when the backlog crosses
    /// the mode's threshold. All relaxed — lost updates under races only
    /// smear the average, and a missed wake is re-evaluated at the next
    /// cascade end.
    void note_cascade(std::size_t cascade_len) {
        const BgReclaimer::Mode mode = bg_mode_.load(std::memory_order_relaxed);
        if (mode == BgReclaimer::Mode::kOff) return;
        std::uint64_t e = cascade_ewma_.load(std::memory_order_relaxed);
        e = e - e / 8 + static_cast<std::uint64_t>(cascade_len);
        cascade_ewma_.store(e, std::memory_order_relaxed);
        const std::int64_t b = backlog_.load(std::memory_order_relaxed);
        if (b <= 0) return;
        if (!BgReclaimer::should_wake(mode, static_cast<std::uint64_t>(b), e / 8)) return;
        if (!bg_.running()) {
            bg_.start([this] { bg_drain_pass(); }, [this] { metrics_.on_bg_park(); });
        }
        bg_.notify();
    }

    /// One wake of the background worker: exchange-drain every shard inbox.
    /// Runs on the worker thread, which holds a dense tid of its own, so the
    /// cascades it runs (and the shared scans it may help) are ordinary
    /// retire traffic. New pushes during the pass re-notify at the pushing
    /// cascade's end, so nothing is lost between passes.
    void bg_drain_pass() {
        metrics_.on_bg_wake();
        telemetry::TraceSpan span(metrics_.span_ring(), telemetry::SpanKind::kBgCycle);
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) drain_inbox(it);
    }

    /// Algorithm 6 lines 134–145: scan all published hp entries for `ptr`;
    /// if found, park it in the paired handover slot and take away whatever
    /// was parked there before. Each thread's scan is bounded by its own
    /// published hp_wm instead of a global high-water mark.
    bool try_handover(OrcMetrics::Hot& mh, orc_base*& ptr) {
        const int nthreads = thread_id_watermark();
        std::size_t slots = 0;
        mh.on_scan_begin(ptr);
        // Scan-side half of the asymmetric pair (same argument as
        // take_snapshot): the caller holds ptr's retire token, so a publish
        // of ptr this fence misses was ordered after the token — and that
        // reader's validation load / lorc2 revalidation catches it.
        {
            telemetry::TraceSpan fence(mh.span_ring(), telemetry::SpanKind::kHeavyFence);
            asym::heavy();
        }
        for (int it = 0; it < nthreads; ++it) {
            auto& other = tl_[it];
            const int wm = other.hp_wm.load(std::memory_order_seq_cst);
            for (int idx = 0; idx < wm; ++idx) {
                ++slots;
                if (other.hp[idx].load(std::memory_order_seq_cst) == ptr) {
                    mh.on_scan_end(ptr, slots);
                    mh.on_handover(ptr);
                    orc_base* displaced =
                        other.handovers[idx].exchange(ptr, std::memory_order_seq_cst);
                    if (displaced != nullptr && shard_push(it, displaced)) {
                        // The displaced occupant now belongs to the shard
                        // that protects it — drained there in one batched
                        // cascade instead of re-scanned inline by us (the
                        // seed's chain loop paid a fresh full-HP scan per
                        // displacement).
                        mh.on_shard_push(displaced, it);
                        displaced = nullptr;
                    }
                    ptr = displaced;  // non-null only when the inbox was full
                    return true;
                }
            }
        }
        mh.on_scan_end(ptr, slots);
        return false;
    }

    /// Algorithm 6 lines 147–158: drop the retire token because the counter
    /// moved off zero. If the counter is back at zero after the drop, re-take
    /// the token and return the new _orc value (caller continues retiring);
    /// otherwise return 0 (a future decrement will re-trigger retirement).
    std::uint64_t clear_bit_retired(orc_base* ptr) {
        auto& t = tl_[thread_id()];
        // Publish on scratch: we are about to mutate _orc of an object whose
        // token we are in the middle of dropping (Proposition 1). Asymmetric
        // publish, same argument as scratch_protect: the seq_cst _orc RMW
        // right after it is what a racing scanner's revalidation observes.
        tsan_release_protection(t.hp[0]);
        asym::publish(t.hp[0], ptr);
        const std::uint64_t lorc = ptr->sub_retired();
        std::uint64_t result = 0;
        if (orc::is_zero_unretired(lorc)) {
            std::uint64_t expected = lorc;
            if (ptr->_orc.compare_exchange_strong(expected, lorc + orc::kBRetired,
                                                  std::memory_order_seq_cst)) {
                result = lorc + orc::kBRetired;
                // The object is retired anew: restart its age clock so the
                // histogram measures the final retire→free window, not the
                // resurrection detour.
                stamp_retire(ptr);
            }
        }
        unpublish_and_drain(t, 0);
        return result;
    }

    friend class detail::DomainRegistry;

    const bool is_global_;
    std::atomic<std::int64_t> tracked_objects_{0};
    /// Objects parked across all shard inboxes (producer/consumer relaxed
    /// RMWs; the telemetry gauge and the bg wake check read it).
    std::atomic<std::int64_t> backlog_{0};
    /// Cascade-size EWMA x8 (see note_cascade). Relaxed: advisory only.
    std::atomic<std::uint64_t> cascade_ewma_{0};
    /// Latched from ORC_BG_RECLAIM at construction; per-domain overridable.
    std::atomic<BgReclaimer::Mode> bg_mode_{BgReclaimer::Mode::kOff};
#ifndef ORCGC_TELEMETRY_DISABLED
    // Stalled-reader watchdog state (watchdog_sample; per-tid sampler memory
    // lives in DomainState). wd_lock_ serializes samplers; wd_last_ns_ is
    // the wall-clock of the last automatic pass (run_cascade's cadence gate
    // — the cascade counts themselves live per-thread in
    // DomainState::wd_cascades). The exported gauges wd_suspects_/
    // wd_pinned_ are wired into metrics_ by the constructor and therefore
    // declared BEFORE it: members destroy in reverse order, and the
    // provider's fold-on-death export reads them.
    std::atomic<bool> wd_lock_{false};
    std::atomic<std::uint64_t> wd_last_ns_{0};
    std::atomic<std::uint64_t> wd_suspects_{0};
    std::atomic<std::uint64_t> wd_pinned_{0};
#endif
    OrcMetrics metrics_;
    SharedScan scan_;
    BgReclaimer bg_;
    DomainState tl_[kMaxThreads];
};

// ---- ambient-domain plumbing ---------------------------------------------

/// The domain protection operations use when none is named explicitly:
/// whatever ScopedDomain set on this thread, else the global domain.
inline OrcDomain& current_domain() noexcept {
    OrcDomain* d = tl_current_domain;
    return d != nullptr ? *d : OrcDomain::global();
}

/// The domain an object belongs to (tagged at allocation by make_orc_in);
/// untagged objects belong to the global domain. Safe to call only while
/// `obj` is guaranteed alive (protected, or hard-linked by the caller):
/// _orc_dom is written once before the object escapes and never changes.
inline OrcDomain& domain_of(const orc_base* obj) noexcept {
    OrcDomain* d = obj->_orc_dom;
    return d != nullptr ? *d : OrcDomain::global();
}

/// RAII guard installing `domain` as the calling thread's ambient domain.
/// Data-structure methods open one of these so every load/make_orc inside
/// protects in the structure's domain; nesting restores the outer domain.
class ScopedDomain {
  public:
    explicit ScopedDomain(OrcDomain& domain) noexcept : saved_(tl_current_domain) {
        tl_current_domain = &domain;
    }
    ~ScopedDomain() { tl_current_domain = saved_; }
    ScopedDomain(const ScopedDomain&) = delete;
    ScopedDomain& operator=(const ScopedDomain&) = delete;

  private:
    OrcDomain* saved_;
};

/// Hard-link counter updates, routed to the object's own domain: the retire
/// scans a counter update can trigger must walk the hp slots of the domain
/// that protects the object. Null-safe.
inline void orc_increment(orc_base* obj) {
    if (obj != nullptr) domain_of(obj).increment_orc(obj);
}
inline void orc_decrement(orc_base* obj) {
    if (obj != nullptr) domain_of(obj).decrement_orc(obj);
}

// ---- out-of-class definitions (need the full set of types above) ----------

inline void OrcDomain::destroy(orc_base* ptr) {
    tsan_acquire_for_delete(ptr);
    if (OrcDomain* d = ptr->_orc_dom) {
        d->tracked_objects_.fetch_sub(1, std::memory_order_acq_rel);
    }
#ifdef ORCGC_ORCSAN
    if (orcsan::divert_eligible(ptr)) {
        // Quarantine diversion: run the destructor NOW (cascades, tracked
        // counts and allocation-tracker timing stay identical to `delete`),
        // then park the raw block poisoned instead of freeing it. The
        // allocation address must be taken before the destructor runs — the
        // vptr dynamic_cast needs is gone afterwards.
        void* mem = dynamic_cast<void*>(ptr);
        ptr->~orc_base();
        orcsan::quarantine_put(this, ptr, mem);
        return;
    }
    // Unknown extent (allocated behind make_orc's back): cannot poison what
    // we cannot measure — free normally, drop any auto-registered entry.
    orcsan::on_untracked_free(ptr);
#endif
    delete ptr;
}

inline OrcDomain::OrcDomain(bool is_global) : is_global_(is_global), metrics_(is_global) {
    bg_mode_.store(BgReclaimer::mode_from_env(), std::memory_order_relaxed);
    metrics_.wire_shard_backlog(&backlog_);
#ifndef ORCGC_TELEMETRY_DISABLED
    metrics_.wire_stall_suspects(&wd_suspects_, &wd_pinned_);
#endif
#ifdef ORCGC_ORCSAN
    // Construct the shadow table before this domain completes construction,
    // so static teardown destroys it AFTER the global domain — whose
    // destructor still flushes its quarantine through it.
    orcsan::touch();
#endif
    // Registration wires this domain into the single registry-level
    // thread-exit drain (and, for non-global domains, guards destruction
    // against concurrently exiting threads).
    detail::DomainRegistry::instance().add(this);
}

inline OrcDomain::~OrcDomain() {
    // Force the background mode off first: the handover/inbox drains below
    // run full retire cascades, and note_cascade must not see a live on/
    // adaptive mode with residual backlog and try to respawn the worker we
    // are about to join (BgReclaimer's stop latch backstops this too, but
    // bailing at the mode check keeps the teardown cascades fast).
    bg_mode_.store(BgReclaimer::Mode::kOff, std::memory_order_relaxed);
    // Stop the background worker BEFORE leaving the registry: its thread-
    // exit hook (run inside the join) drains its dense tid across every
    // still-registered domain — this one included — while all their state is
    // fully valid. The registry mutex is NOT held here, so the hook's own
    // lock acquisition cannot deadlock against us.
    bg_.stop_and_join();
    // Leave the registry next, under its mutex: after this returns, no
    // exiting thread can drain into state we are about to tear down.
    detail::DomainRegistry::instance().remove(this);
    if (is_global_) {
        // Process teardown: anything still parked is unreachable by now, and
        // the main thread's registry slot is already gone (thread_locals die
        // before statics), so retire()/thread_id() are off limits. Lenient
        // full-range sweep, exactly the old singleton behavior — shard
        // inboxes included.
        for (auto& t : tl_) {
            for (auto& h : t.handovers) {
                if (orc_base* ptr = h.exchange(nullptr, std::memory_order_acq_rel)) {
                    tsan_acquire_for_delete(ptr);
#ifdef ORCGC_ORCSAN
                    orcsan::on_untracked_free(ptr);
#endif
                    delete ptr;
                }
            }
            orc_base* p = t.inbox.exchange(nullptr, std::memory_order_acq_rel);
            while (p != nullptr) {
                orc_base* next = p->_orc_link;
                tsan_acquire_for_delete(p);
#ifdef ORCGC_ORCSAN
                orcsan::on_untracked_free(p);
#endif
                delete p;
                p = next;
            }
        }
#ifdef ORCGC_ORCSAN
        // Evict (verify poison + canary, then free) everything this domain
        // still holds. Last chance to catch a latent UAF write at exit.
        orcsan::quarantine_flush(this);
#endif
        return;
    }
    // Non-global destruction protocol. Precondition: no thread concurrently
    // operates on this domain, and no live orc_ptr into it remains on any
    // running thread (abandoned protections from exited threads are fine).
    //
    // 1. Unpublish every hp slot. With every slot null, a retire scan run by
    //    step 2 can never find a protection, so nothing can re-park and the
    //    drain terminates (no livelock by construction). The asym::heavy()
    //    after the loop orders the null stores before step 2's handover
    //    reads (the destruction-drain edge the per-slot seq_cst stores used
    //    to provide); the precondition — no thread still operates on this
    //    domain — makes it a formality, but it keeps the protocol's ordering
    //    argument independent of the precondition.
    for (auto& t : tl_) {
        for (auto& hp : t.hp) {
            tsan_release_protection(hp);
            hp.store(nullptr, std::memory_order_release);
        }
    }
    asym::heavy();
    // 2. Drain every handover — and every shard inbox — through the full
    //    retire cascade. The parked objects carry their retire tokens; their
    //    destructors may cascade into further retires, which also find no
    //    protections and free immediately. With every hp null, a cascade's
    //    walk can never displace into an inbox, so the drain converges.
    for (int tid = 0; tid < kMaxThreads; ++tid) {
        auto& t = tl_[tid];
        for (auto& h : t.handovers) {
            if (orc_base* ptr = h.exchange(nullptr, std::memory_order_seq_cst)) {
                retire(ptr);
            }
        }
        drain_inbox(tid);
    }
    // 3. Quiescence checks: the drain must have converged, and every object
    //    ever allocated into this domain must be gone.
    for (auto& t : tl_) {
        for (auto& h : t.handovers) {
            if (h.load(std::memory_order_seq_cst) != nullptr) {
                fatal("orcgc: handover re-parked during OrcDomain destruction "
                      "(domain destroyed while still in use?)");
            }
        }
        if (t.inbox.load(std::memory_order_seq_cst) != nullptr) {
            fatal("orcgc: shard inbox re-filled during OrcDomain destruction "
                  "(domain destroyed while still in use?)");
        }
    }
    const long long leaked =
        static_cast<long long>(tracked_objects_.load(std::memory_order_seq_cst));
    if (leaked != 0) {
        fatal("orcgc: OrcDomain destroyed with %lld unreclaimed objects — a live "
              "orc_ptr, a still-linked node, or an undrained structure outlives "
              "the domain",
              leaked);
    }
#ifdef ORCGC_ORCSAN
    // Quiescence proven: evict this domain's quarantine, verifying the
    // poison + canary of every parked block on the way out.
    orcsan::quarantine_flush(this);
#endif
}

namespace detail {

inline void DomainRegistry::thread_exit_hook(int tid) {
    auto& reg = instance();
    // Hold the mutex across the whole drain: ~OrcDomain::remove() blocks
    // until we are out of every domain's state.
    std::lock_guard<std::mutex> lock(reg.mu_);
    for (OrcDomain* domain : reg.domains_) domain->drain_thread(tid);
}

}  // namespace detail

}  // namespace orcgc
