// BgReclaimer: the background-reclaimer unit (the ONE sanctioned home of a
// raw std::thread in the engine — orc-lint R11 exempts exactly this file).
//
// An OrcDomain owns one of these. It stays dormant (no thread, no memory)
// until the domain first observes shard-inbox backlog with ORC_BG_RECLAIM
// set to `on` or `adaptive`; the default `off` keeps seed parity — no
// thread is ever spawned and the retire paths pay one relaxed enum load.
//
// The unit is deliberately engine-agnostic: it owns a parked worker thread,
// a condition variable and the adaptive wake threshold, and runs a caller
// provided drain pass when woken. What a drain pass *does* (exchange shard
// inboxes, re-enter the retire cascade, help an open shared scan) is the
// domain's business — keeping OrcDomain out of this header also keeps the
// spawn site auditable in isolation.
//
// Wake policy:
//   on        any backlog wakes the worker (threshold 1).
//   adaptive  the worker wakes when the backlog crosses
//             adaptive_threshold(ewma) — a pure, monotone function of the
//             domain's EWMA of recent cascade sizes. Small steady cascades
//             keep the threshold low (drain promptly, keep tail latency
//             flat); retire storms raise it so the worker batches more per
//             wake instead of thrashing. tests/test_shard_scan.cpp asserts
//             the monotonicity and the clamps.
//
// Shutdown protocol: ~OrcDomain calls stop_and_join() BEFORE it leaves the
// DomainRegistry — the worker's thread-exit hook then drains its registry
// slot across all still-registered domains (this one included) while their
// state is fully valid, and no drain can race the destruction-to-quiescence
// steps that follow the join. stop_and_join() latches: start() is a no-op
// forever after, so a late producer (a retire cascade racing destruction)
// can never respawn a worker into a domain that is tearing down.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <mutex>
#include <thread>

namespace orcgc {

class BgReclaimer {
  public:
    enum class Mode : int { kOff = 0, kOn = 1, kAdaptive = 2 };

    /// Backlog (objects parked across a domain's shard inboxes) below which
    /// the adaptive mode never wakes the worker: draining a handful of
    /// objects is cheaper inline than a context switch.
    static constexpr std::uint64_t kMinThreshold = 32;

    /// Upper clamp: however large recent cascades were, backlog beyond this
    /// always wakes the worker (bounds worst-case reclamation lag).
    static constexpr std::uint64_t kMaxThreshold = 65536;

    /// Process-wide mode from ORC_BG_RECLAIM (on|off|adaptive), parsed once.
    /// Unrecognized values mean off: a typo must never spawn threads.
    static Mode mode_from_env() {
        static const Mode mode = [] {
            const char* e = std::getenv("ORC_BG_RECLAIM");
            if (e == nullptr) return Mode::kOff;
            if (std::strcmp(e, "on") == 0) return Mode::kOn;
            if (std::strcmp(e, "adaptive") == 0) return Mode::kAdaptive;
            return Mode::kOff;
        }();
        return mode;
    }

    /// Adaptive wake threshold for a given cascade-size EWMA. Pure and
    /// monotone non-decreasing in the EWMA, clamped to
    /// [kMinThreshold, kMaxThreshold]: double the typical cascade is the
    /// point where inline draining would start to stretch the cascade's own
    /// tail latency, so the worker takes over.
    static constexpr std::uint64_t adaptive_threshold(std::uint64_t cascade_ewma) noexcept {
        const std::uint64_t raw = 2 * cascade_ewma;
        if (raw < kMinThreshold || raw < cascade_ewma /* overflow */) {
            return raw < cascade_ewma ? kMaxThreshold : kMinThreshold;
        }
        return raw > kMaxThreshold ? kMaxThreshold : raw;
    }

    /// Wake decision for the producer side: `mode` latched by the domain,
    /// `backlog` its current shard-inbox occupancy, `cascade_ewma` its
    /// cascade-size EWMA. Pure so tests can table-drive it.
    static constexpr bool should_wake(Mode mode, std::uint64_t backlog,
                                      std::uint64_t cascade_ewma) noexcept {
        switch (mode) {
            case Mode::kOn:
                return backlog > 0;
            case Mode::kAdaptive:
                return backlog >= adaptive_threshold(cascade_ewma);
            case Mode::kOff:
            default:
                return false;
        }
    }

    BgReclaimer() = default;
    BgReclaimer(const BgReclaimer&) = delete;
    BgReclaimer& operator=(const BgReclaimer&) = delete;
    ~BgReclaimer() { stop_and_join(); }

    /// True once start() has spawned the worker (stays true until join).
    bool running() const noexcept { return running_.load(std::memory_order_acquire); }

    /// Spawns the parked worker. `drain_pass` runs once per wake and should
    /// loop until the domain's backlog is drained; `on_park` runs after each
    /// drain pass, just before the worker blocks again (telemetry hook).
    /// Idempotent: a second start is a no-op, and so is any start after
    /// stop_and_join() — the stop latch is what lets ~OrcDomain's own drain
    /// cascades run note_cascade without respawning a worker into a domain
    /// mid-teardown. Both callbacks execute on the worker thread, which
    /// registers a dense thread id like any other — drain passes may run
    /// full retire cascades.
    void start(std::function<void()> drain_pass, std::function<void()> on_park) {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopped_ || worker_.joinable()) return;
        drain_ = std::move(drain_pass);
        park_ = std::move(on_park);
        stop_ = false;
        wake_ = false;
        worker_ = std::thread([this] { loop(); });
        running_.store(true, std::memory_order_release);
    }

    /// Wakes the worker (producer side; called when should_wake() said yes).
    /// Safe to call before start() or after stop — it only raises a flag.
    void notify() {
        {
            std::lock_guard<std::mutex> lock(mu_);
            wake_ = true;
        }
        cv_.notify_one();
    }

    /// Stops and joins the worker, and latches: every later start() is a
    /// no-op. Idempotent and safe under concurrent callers — the worker_
    /// handoff happens under mu_ (swapped into a local, joined outside the
    /// lock), so a racing start() or second stop_and_join() never touches a
    /// thread object mid-join. The caller must NOT hold any lock the
    /// worker's exit path needs (the domain registry mutex in particular).
    void stop_and_join() {
        std::thread worker;
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
            stopped_ = true;
            worker = std::move(worker_);
        }
        cv_.notify_one();
        if (worker.joinable()) worker.join();
        running_.store(false, std::memory_order_release);
    }

  private:
    void loop() {
        std::unique_lock<std::mutex> lock(mu_);
        while (true) {
            cv_.wait(lock, [this] { return stop_ || wake_; });
            if (stop_) return;
            wake_ = false;
            lock.unlock();
            drain_();
            park_();
            lock.lock();
        }
    }

    std::mutex mu_;
    std::condition_variable cv_;
    std::thread worker_;
    std::function<void()> drain_;
    std::function<void()> park_;
    bool stop_ = false;
    bool stopped_ = false;  ///< latched by stop_and_join(); start() refuses after
    bool wake_ = false;
    std::atomic<bool> running_{false};
};

}  // namespace orcgc
