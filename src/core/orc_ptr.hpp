// orc_ptr<T*>: RAII local reference to an OrcGC-tracked object (paper §4.1.1,
// Algorithm 7).
//
// While an orc_ptr is alive, the object it references is published in the
// owning thread's hazardous-pointer array and therefore cannot be deleted.
// Copies *share* the hp index through the engine's used_haz reference count;
// destruction of the last sharer runs the clear() protocol (retire check +
// handover drain).
//
// Deviation from the paper's Algorithm 7 (DESIGN.md §1.3): there are no
// index-0 temporaries — orc_atomic::load() and make_orc() hand out orc_ptrs
// that already own a real index, so the assignment operator never migrates a
// published pointer between hp slots and the paper's traversal-direction
// argument is unnecessary.
//
// The stored pointer may carry Harris-style mark bits; the published hazard
// and all _orc accesses always use the unmarked address.
#pragma once

#include <cstddef>
#include <utility>

#include "common/marked_ptr.hpp"
#include "core/orc_base.hpp"
#include "core/orc_gc.hpp"

namespace orcgc {

template <typename T>
class orc_atomic;  // forward declaration (friendship)

template <typename T>
class orc_ptr {
    static_assert(std::is_pointer_v<T>, "orc_ptr<T> requires a pointer type, e.g. orc_ptr<Node*>");

  public:
    /// Empty reference; owns no hp index.
    orc_ptr() noexcept : ptr_(nullptr), idx_(kNoIndex) {}
    orc_ptr(std::nullptr_t) noexcept : orc_ptr() {}

    /// Adopts an already-protected pointer. Internal: used by
    /// orc_atomic::load(), make_orc() and the engine-facing factories.
    /// `idx` must hold a used_haz reference owned by the caller, with the
    /// unmarked `ptr` published at hp[idx].
    orc_ptr(T ptr, int idx) noexcept : ptr_(ptr), idx_(idx) {}

    orc_ptr(const orc_ptr& other) : ptr_(other.ptr_), idx_(other.idx_) {
        OrcEngine::instance().using_idx(idx_);
    }

    orc_ptr(orc_ptr&& other) noexcept : ptr_(other.ptr_), idx_(other.idx_) {
        other.ptr_ = nullptr;
        other.idx_ = kNoIndex;
    }

    orc_ptr& operator=(const orc_ptr& other) {
        if (this == &other) return *this;
        auto& engine = OrcEngine::instance();
        engine.using_idx(other.idx_);  // before release: safe under self-aliasing
        engine.release_idx(idx_, base());
        ptr_ = other.ptr_;
        idx_ = other.idx_;
        return *this;
    }

    orc_ptr& operator=(orc_ptr&& other) noexcept(false) {
        if (this == &other) return *this;
        OrcEngine::instance().release_idx(idx_, base());
        ptr_ = other.ptr_;
        idx_ = other.idx_;
        other.ptr_ = nullptr;
        other.idx_ = kNoIndex;
        return *this;
    }

    orc_ptr& operator=(std::nullptr_t) {
        OrcEngine::instance().release_idx(idx_, base());
        ptr_ = nullptr;
        idx_ = kNoIndex;
        return *this;
    }

    ~orc_ptr() { OrcEngine::instance().release_idx(idx_, base()); }

    // ---- access -----------------------------------------------------------

    /// Raw value, including any mark bits.
    T get() const noexcept { return ptr_; }
    /// Implicit conversion so orc_ptr can be compared/passed like a T.
    operator T() const noexcept { return ptr_; }

    /// Dereference through the unmarked address (mark bits are metadata).
    T operator->() const noexcept { return get_unmarked(ptr_); }
    auto& operator*() const noexcept { return *get_unmarked(ptr_); }

    explicit operator bool() const noexcept { return get_unmarked(ptr_) != nullptr; }

    // ---- mark-bit helpers (Harris-style lists) ----------------------------

    bool is_marked() const noexcept { return orcgc::is_marked(ptr_); }
    T unmarked() const noexcept { return get_unmarked(ptr_); }

    /// Strips the mark bits in place. The protected object is unchanged, so
    /// the hp publication stays valid.
    void unmark() noexcept { ptr_ = get_unmarked(ptr_); }

    /// Number-of-sharers index, exposed for white-box tests.
    int index() const noexcept { return idx_; }

  private:
    static constexpr int kNoIndex = -1;

    orc_base* base() const noexcept {
        return idx_ == kNoIndex ? nullptr : OrcEngine::to_base(ptr_);
    }

    template <typename U>
    friend class orc_atomic;

    T ptr_;
    int idx_;
};

// Comparisons against raw pointers and between orc_ptrs (by address value,
// mark bits included — matching how the underlying atomics compare).
template <typename T>
bool operator==(const orc_ptr<T>& a, const orc_ptr<T>& b) noexcept {
    return a.get() == b.get();
}
template <typename T>
bool operator==(const orc_ptr<T>& a, T b) noexcept {
    return a.get() == b;
}
template <typename T>
bool operator==(const orc_ptr<T>& a, std::nullptr_t) noexcept {
    return a.get() == nullptr;
}

}  // namespace orcgc
