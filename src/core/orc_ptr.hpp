// orc_ptr<T*>: RAII local reference to an OrcGC-tracked object (paper §4.1.1,
// Algorithm 7).
//
// While an orc_ptr is alive, the object it references is published in the
// owning thread's hazardous-pointer array — in the reclamation DOMAIN the
// orc_ptr was issued from — and therefore cannot be deleted. Copies *share*
// the hp index through the domain's used_haz reference count; destruction
// of the last sharer runs the clear() protocol (retire check + handover
// drain). The orc_ptr remembers its issuing domain, so releases land in the
// right hp table even after the ambient ScopedDomain guard has unwound.
//
// Deviation from the paper's Algorithm 7 (DESIGN.md §1.3): there are no
// index-0 temporaries — orc_atomic::load() and make_orc() hand out orc_ptrs
// that already own a real index, so the assignment operator never migrates a
// published pointer between hp slots and the paper's traversal-direction
// argument is unnecessary.
//
// The stored pointer may carry Harris-style mark bits; the published hazard
// and all _orc accesses always use the unmarked address.
#pragma once

#include <cstddef>
#include <utility>

#include "common/marked_ptr.hpp"
#include "common/orcsan.hpp"
#include "core/orc_base.hpp"
#include "core/orc_domain.hpp"

namespace orcgc {

template <typename T>
class orc_atomic;  // forward declaration (friendship)

template <typename T>
class orc_ptr {
    static_assert(std::is_pointer_v<T>, "orc_ptr<T> requires a pointer type, e.g. orc_ptr<Node*>");

  public:
    /// Empty reference; owns no hp index in any domain.
    orc_ptr() noexcept : ptr_(nullptr), idx_(kNoIndex), dom_(nullptr) {}
    orc_ptr(std::nullptr_t) noexcept : orc_ptr() {}

    /// Adopts an already-protected pointer. Internal: used by
    /// orc_atomic::load(), make_orc_in() and the engine-facing factories.
    /// `idx` must hold a used_haz reference owned by the caller in `dom`,
    /// with the unmarked `ptr` published at dom's hp[idx].
    orc_ptr(T ptr, int idx, OrcDomain* dom) noexcept : ptr_(ptr), idx_(idx), dom_(dom) {}

    /// Two-argument compatibility form: adopts into the global domain (what
    /// every pre-domain call site meant).
    orc_ptr(T ptr, int idx) noexcept : orc_ptr(ptr, idx, &OrcDomain::global()) {}

    orc_ptr(const orc_ptr& other) : ptr_(other.ptr_), idx_(other.idx_), dom_(other.dom_) {
        if (dom_ != nullptr) dom_->using_idx(idx_);
    }

    orc_ptr(orc_ptr&& other) noexcept : ptr_(other.ptr_), idx_(other.idx_), dom_(other.dom_) {
        other.ptr_ = nullptr;
        other.idx_ = kNoIndex;
        other.dom_ = nullptr;
    }

    orc_ptr& operator=(const orc_ptr& other) {
        if (this == &other) return *this;
        // Share before release: safe under self-aliasing, and correct across
        // domains (each used_haz update goes to its own domain's table).
        if (other.dom_ != nullptr) other.dom_->using_idx(other.idx_);
        release();
        ptr_ = other.ptr_;
        idx_ = other.idx_;
        dom_ = other.dom_;
        return *this;
    }

    orc_ptr& operator=(orc_ptr&& other) noexcept(false) {
        if (this == &other) return *this;
        release();
        ptr_ = other.ptr_;
        idx_ = other.idx_;
        dom_ = other.dom_;
        other.ptr_ = nullptr;
        other.idx_ = kNoIndex;
        other.dom_ = nullptr;
        return *this;
    }

    orc_ptr& operator=(std::nullptr_t) {
        release();
        ptr_ = nullptr;
        idx_ = kNoIndex;
        dom_ = nullptr;
        return *this;
    }

    ~orc_ptr() { release(); }

    // ---- access -----------------------------------------------------------

    /// Raw value, including any mark bits.
    T get() const noexcept { return ptr_; }
    /// Implicit conversion so orc_ptr can be compared/passed like a T.
    operator T() const noexcept { return ptr_; }

    /// Dereference through the unmarked address (mark bits are metadata).
    T operator->() const noexcept {
#ifdef ORCGC_ORCSAN
        orcsan_check();
#endif
        return get_unmarked(ptr_);
    }
    auto& operator*() const noexcept {
#ifdef ORCGC_ORCSAN
        orcsan_check();
#endif
        return *get_unmarked(ptr_);
    }

    explicit operator bool() const noexcept { return get_unmarked(ptr_) != nullptr; }

    // ---- mark-bit helpers (Harris-style lists) ----------------------------

    bool is_marked() const noexcept { return orcgc::is_marked(ptr_); }
    T unmarked() const noexcept { return get_unmarked(ptr_); }

    /// Strips the mark bits in place. The protected object is unchanged, so
    /// the hp publication stays valid.
    void unmark() noexcept { ptr_ = get_unmarked(ptr_); }

    /// Number-of-sharers index, exposed for white-box tests.
    int index() const noexcept { return idx_; }

    /// The domain this reference's protection lives in (nullptr when empty).
    OrcDomain* domain() const noexcept { return dom_; }

  private:
    static constexpr int kNoIndex = -1;

    orc_base* base() const noexcept {
        return idx_ == kNoIndex ? nullptr : OrcDomain::to_base(ptr_);
    }

#ifdef ORCGC_ORCSAN
    /// Deref-path sanitizer check: the target must be Live in the shadow
    /// machine, or covered by a published protection slot of the issuing
    /// domain (orcsan.hpp). Uses the raw unmarked address, not base() —
    /// white-box orc_ptrs without an index still deref.
    void orcsan_check() const noexcept {
        if (orc_base* b = OrcDomain::to_base(ptr_)) orcsan::check_deref(b, dom_);
    }
#endif

    void release() {
        if (dom_ != nullptr) dom_->release_idx(idx_, base());
    }

    template <typename U>
    friend class orc_atomic;

    T ptr_;
    int idx_;
    OrcDomain* dom_;
};

// Comparisons against raw pointers and between orc_ptrs (by address value,
// mark bits included — matching how the underlying atomics compare).
template <typename T>
bool operator==(const orc_ptr<T>& a, const orc_ptr<T>& b) noexcept {
    return a.get() == b.get();
}
template <typename T>
bool operator==(const orc_ptr<T>& a, T b) noexcept {
    return a.get() == b;
}
template <typename T>
bool operator==(const orc_ptr<T>& a, std::nullptr_t) noexcept {
    return a.get() == nullptr;
}

}  // namespace orcgc
