// make_orc<T>() / make_orc_in<T>(domain): protected allocation of
// OrcGC-tracked objects (paper Algorithm 3, lines 30–36).
//
// The object is tagged with its owning reclamation domain and published in
// the creating thread's hazardous-pointer array (of that domain) *before*
// being returned, so it cannot be reclaimed between construction and first
// use. A freshly made object has zero hard links; if the returned orc_ptr
// is dropped without ever linking the object into a structure, the release
// path retires and deletes it — no leak on early-return/exception paths.
//
// make_orc() allocates into the calling thread's ambient domain (the global
// domain unless a ScopedDomain guard is active — data-structure methods
// install one, so nodes land in their structure's domain automatically).
// make_orc_in() names the domain explicitly.
#pragma once

#include <type_traits>
#include <utility>

#include "common/orcsan.hpp"
#include "core/orc_base.hpp"
#include "core/orc_domain.hpp"
#include "core/orc_ptr.hpp"

namespace orcgc {

template <typename T, typename... Args>
orc_ptr<T*> make_orc_in(OrcDomain& domain, Args&&... args) {
    static_assert(std::is_base_of_v<orc_base, T>, "make_orc<T>: T must extend orc_base");
    T* ptr = new T(std::forward<Args>(args)...);
    orc_base* base = static_cast<orc_base*>(ptr);
    // Tag before the hp publish below: once published (a seq_cst store), the
    // object can be found by other threads, and _orc_dom must already be set.
    base->_orc_dom = &domain;
    domain.note_tracked_allocation();
#ifdef ORCGC_ORCSAN
    // Shadow registration: state Live, extent sizeof(T), canary stamped for
    // the eventual quarantine verification (orcsan.hpp).
    orcsan::on_alloc(base, sizeof(T), alignof(T), &domain);
#endif
    const int idx = domain.get_new_idx();
    domain.protect_ptr(base, idx);
    return orc_ptr<T*>(ptr, idx, &domain);
}

template <typename T, typename... Args>
orc_ptr<T*> make_orc(Args&&... args) {
    return make_orc_in<T>(current_domain(), std::forward<Args>(args)...);
}

}  // namespace orcgc
