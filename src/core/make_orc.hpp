// make_orc<T>(): protected allocation of OrcGC-tracked objects (paper
// Algorithm 3, lines 30–36).
//
// The object is published in the creating thread's hazardous-pointer array
// *before* being returned, so it cannot be reclaimed between construction
// and first use. A freshly made object has zero hard links; if the returned
// orc_ptr is dropped without ever linking the object into a structure, the
// release path retires and deletes it — no leak on early-return/exception
// paths.
#pragma once

#include <type_traits>
#include <utility>

#include "core/orc_base.hpp"
#include "core/orc_gc.hpp"
#include "core/orc_ptr.hpp"

namespace orcgc {

template <typename T, typename... Args>
orc_ptr<T*> make_orc(Args&&... args) {
    static_assert(std::is_base_of_v<orc_base, T>, "make_orc<T>: T must extend orc_base");
    auto& engine = OrcEngine::instance();
    T* ptr = new T(std::forward<Args>(args)...);
    const int idx = engine.get_new_idx();
    engine.protect_ptr(static_cast<orc_base*>(ptr), idx);
    return orc_ptr<T*>(ptr, idx);
}

}  // namespace orcgc
