// orc_base: the per-object reference-count word (paper §4.1, Algorithm 3).
//
// Every OrcGC-tracked type extends orc_base, which holds the single extra
// word `_orc` (Table 1: "extra words per object = 1"):
//
//   bits  0..21  biased hard-link counter; value kOrcZero (1<<22 would not
//                fit, so the bias *is* bit 22 — see below) means zero links;
//                the bias lets the counter dip temporarily negative, which
//                happens because compare_exchange increments the new target
//                only *after* the CAS succeeds (another thread may unlink and
//                decrement first).
//   bit   22    the bias bit (part of the counter field).
//   bit   23    kBRetired — set by the unique thread that wins the right to
//                run retire() for the object ("the retire token").
//   bits 24..63 a 40-bit sequence incremented on every counter update; lets
//                retire() detect that `_orc` did not change while it scanned
//                the hazardous-pointer arrays (Lemma 1).
#pragma once

#include <atomic>
#include <cstdint>

namespace orcgc {

class OrcDomain;  // the reclamation domain an object is tagged with (orc_domain.hpp)

namespace orc {

inline constexpr int kSeqShift = 24;                   // first bit of the sequence field
inline constexpr std::uint64_t kSeqInc = 1ULL << kSeqShift;  // +1 to the sequence field
inline constexpr std::uint64_t kBRetired = 1ULL << 23; // retire-token bit
inline constexpr std::uint64_t kOrcZero = 1ULL << 22;  // counter bias == "zero links"
inline constexpr std::uint64_t kOrcCntMask = kSeqInc - 1;  // counter+token bits

/// Counter-and-token field of an _orc value (paper's ocnt()).
inline constexpr std::uint64_t ocnt(std::uint64_t x) noexcept { return x & kOrcCntMask; }

/// True iff the counter is at zero and the retire token is not taken.
inline constexpr bool is_zero_unretired(std::uint64_t x) noexcept { return ocnt(x) == kOrcZero; }

/// True iff the counter is at zero and the retire token is taken.
inline constexpr bool is_zero_retired(std::uint64_t x) noexcept {
    return ocnt(x) == (kBRetired | kOrcZero);
}

/// Signed number of hard links encoded in an _orc value (for tests/debug).
inline constexpr std::int64_t link_count(std::uint64_t x) noexcept {
    return static_cast<std::int64_t>(x & (kBRetired - 1)) - static_cast<std::int64_t>(kOrcZero);
}

/// Sequence field (for tests/debug).
inline constexpr std::uint64_t seq(std::uint64_t x) noexcept { return x >> kSeqShift; }

}  // namespace orc

/// Base type which all OrcGC-tracked objects must extend (Algorithm 3).
/// The destructor is virtual because the reclamation engine deletes objects
/// through orc_base* (the vtable pointer is the usual C++ cost of that; the
/// scheme itself needs only the one _orc word).
struct orc_base {
    std::atomic<std::uint64_t> _orc{orc::kOrcZero};

    /// Owning reclamation domain, written once by make_orc_in before the
    /// object can escape its creating thread and immutable afterwards (hence
    /// a plain pointer: every cross-thread read is ordered after the seq_cst
    /// publication that made the object reachable). nullptr — the state of
    /// objects allocated behind make_orc's back — routes to the global
    /// domain.
    OrcDomain* _orc_dom = nullptr;

    /// Engine-owned intrusive link for the per-shard MPSC handover inbox
    /// (orc_domain.hpp). Valid ONLY while the object sits in an inbox — i.e.
    /// after its retire token was taken and a scan displaced it out of a
    /// handover slot — a window in which the object has no other owner, so
    /// the link never races with user code. Plain (non-atomic): it is
    /// written by the pushing thread before the release that enqueues the
    /// node and read by the draining thread after the acquire that dequeues
    /// it.
    orc_base* _orc_link = nullptr;

#ifndef ORCGC_TELEMETRY_DISABLED
    /// Retire timestamp (telemetry::coarse_now() ticks), written — for the
    /// 1-in-64 of retires the age sampler picks (telemetry::kAgeSampleMask)
    /// — by the unique thread whose CAS takes the retire token, before the
    /// object is visible to any free path, and read once when the object is
    /// deleted, to feed the domain's retire→free age histogram. Plain
    /// (non-atomic): the token CAS/free protocol already orders the write
    /// before every read. 0 means "never stamped" (not sampled, or
    /// telemetry races at process teardown); such objects record no age.
    /// Compiled out with the rest of the telemetry layer under
    /// -DORCGC_TELEMETRY=OFF.
    std::uint64_t _orc_rts = 0;
#endif

    /// Drops the retire token; returns the post-drop _orc value. Used only by
    /// the engine's resurrection path (Algorithm 6). Token release is not a
    /// counter update, so the sequence field is deliberately left unchanged —
    /// retire()'s Lemma 1 revalidation must still observe increments that
    /// raced with the drop.
    std::uint64_t sub_retired() noexcept {
        return _orc.fetch_sub(orc::kBRetired, std::memory_order_seq_cst) - orc::kBRetired;
    }

    orc_base() noexcept = default;
    orc_base(const orc_base&) = delete;
    orc_base& operator=(const orc_base&) = delete;
    virtual ~orc_base() = default;
};

}  // namespace orcgc
