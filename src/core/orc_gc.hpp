// The OrcGC reclamation engine: PassThePointerOrcGC (paper §4.1,
// Algorithms 3, 5 and 6).
//
// A process-wide singleton holding, per thread:
//   * hp[]        published hazardous pointers (index 0 is a scratch slot
//                 used internally while mutating _orc — Proposition 1),
//   * handovers[] the pass-the-pointer parking slots paired 1:1 with hp,
//   * used_haz[]  thread-local reference counts of how many live orc_ptr
//                 instances share each hp index,
//   * the recursion guard that flattens cascading retires (a deleted node's
//     orc_atomic members decrement — and possibly retire — their targets).
//
// Deviations from the paper's pseudocode are listed in DESIGN.md §1.3; the
// load-bearing ones are (a) orc_ptr instances always own a real hp index
// (no idx-0 temporaries), so protection never migrates between slots, and
// (b) a thread nulls its own hp entry *before* entering the retire scan so
// it cannot park the object on itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/cacheline.hpp"
#include "common/marked_ptr.hpp"
#include "common/thread_registry.hpp"
#include "common/tsan_annotations.hpp"
#include "core/orc_base.hpp"

namespace orcgc {

class OrcEngine {
  public:
    /// Per-thread hazardous-pointer capacity. Index 0 is reserved scratch;
    /// indices [1, kMaxHPs) are handed to orc_ptr instances.
    static constexpr int kMaxHPs = 64;

    static OrcEngine& instance() {
        static OrcEngine engine;
        return engine;
    }

    OrcEngine(const OrcEngine&) = delete;
    OrcEngine& operator=(const OrcEngine&) = delete;

    // ---- hp index management (Algorithm 6) -------------------------------

    /// Claims a free hp index for the calling thread (used_haz goes 0 -> 1).
    /// O(1): free indices are recycled through a per-thread stack, seeded so
    /// that the lowest indices pop first (keeps the global scan watermark
    /// tight).
    int get_new_idx() {
        auto& t = tl_[thread_id()];
        if (t.free_top < 0) {
            if (t.free_initialized) {
                std::fprintf(stderr, "orcgc: thread exceeded %d live orc_ptr indices\n",
                             kMaxHPs);
                std::abort();
            }
            for (int idx = kMaxHPs - 1; idx >= 1; --idx) t.free_stack[++t.free_top] = idx;
            t.free_initialized = true;
        }
        const int idx = t.free_stack[t.free_top--];
        t.used_haz[idx] = 1;
        // Raise the global scan watermark so retire() covers this index.
        int cur_max = max_hps_.load(std::memory_order_acquire);
        while (cur_max <= idx &&
               !max_hps_.compare_exchange_weak(cur_max, idx + 1, std::memory_order_acq_rel)) {
        }
        return idx;
    }

    /// Adds a sharer to an already-claimed index (orc_ptr copy).
    void using_idx(int idx) noexcept {
        if (idx <= 0) return;
        ++tl_[thread_id()].used_haz[idx];
    }

    /// Drops a sharer from `idx`; when the last sharer leaves, performs the
    /// clear() protocol of Algorithm 5: check whether the object this slot
    /// protected became unreachable (take the retire token while our hp still
    /// protects the _orc read), then unpublish and drain the paired handover.
    void release_idx(int idx, orc_base* obj) {
        if (idx <= 0) return;
        auto& t = tl_[thread_id()];
        if (t.used_haz[idx] == 0) {
            std::fprintf(stderr, "orcgc: used_haz underflow at idx %d\n", idx);
            std::abort();
        }
        if (--t.used_haz[idx] != 0) return;
        if (obj != nullptr) {
            // The hp entry still protects obj, so this _orc read cannot be a
            // use-after-free: any concurrent retire scan would find our hp
            // and park the object instead of deleting it.
            std::uint64_t lorc = obj->_orc.load(std::memory_order_seq_cst);
            if (orc::is_zero_unretired(lorc) &&
                obj->_orc.compare_exchange_strong(lorc, lorc + orc::kBRetired,
                                                  std::memory_order_seq_cst)) {
                // We own the retire token: nobody else can free obj now, so
                // it is safe to unpublish before scanning.
                unpublish_and_drain(t, idx);
                retire(obj);
                t.free_stack[++t.free_top] = idx;  // recycle only after the clear
                return;
            }
        }
        unpublish_and_drain(t, idx);
        t.free_stack[++t.free_top] = idx;
    }

    // ---- protection -------------------------------------------------------

    /// Publishes `ptr` (unmarked) at hp index `idx` with a full fence.
    void protect_ptr(orc_base* ptr, int idx) noexcept {
        auto& slot = tl_[thread_id()].hp[idx];
        tsan_release_protection(slot);
        slot.exchange(ptr, std::memory_order_seq_cst);
    }

    /// Classic hazard-pointer acquire loop (Algorithm 2 lines 4–11): publish
    /// the value read from addr, re-read until stable. Returns the raw
    /// (possibly marked) value; the published hazard is the unmarked object.
    template <typename T>
    T get_protected(const std::atomic<T>& addr, int idx) noexcept {
        auto& hp = tl_[thread_id()].hp[idx];
        orc_base* pub = hp.load(std::memory_order_relaxed);
        while (true) {
            T ptr = addr.load(std::memory_order_seq_cst);
            orc_base* base = to_base(ptr);
            if (base == pub) return ptr;
            tsan_release_protection(hp);  // previous publication loses coverage
            hp.exchange(base, std::memory_order_seq_cst);
            pub = base;
        }
    }

    /// Scratch-slot (index 0) publication used while mutating _orc
    /// (Proposition 1). Must be paired with scratch_release().
    void scratch_protect(orc_base* ptr) noexcept {
        auto& slot = tl_[thread_id()].hp[0];
        tsan_release_protection(slot);
        slot.exchange(ptr, std::memory_order_seq_cst);
    }

    /// Clears the scratch slot and drains anything parked on it by a
    /// concurrent retire scan that found our scratch publication.
    void scratch_release() {
        auto& t = tl_[thread_id()];
        unpublish_and_drain(t, 0);
    }

    // ---- counter updates (Algorithm 4's incrementOrc / decrementOrc) ------

    /// Adds one hard link to obj. Precondition: the caller has obj protected
    /// (it holds an orc_ptr to it), so the _orc access is safe.
    void increment_orc(orc_base* obj) {
        if (obj == nullptr) return;
        const std::uint64_t lorc =
            obj->_orc.fetch_add(orc::kSeqInc + 1, std::memory_order_seq_cst) + orc::kSeqInc + 1;
        if (!orc::is_zero_unretired(lorc)) return;
        // The increment brought a transiently-negative counter back to zero:
        // the object may be unreachable; try to take the retire token.
        std::uint64_t expected = lorc;
        if (obj->_orc.compare_exchange_strong(expected, lorc + orc::kBRetired,
                                              std::memory_order_seq_cst)) {
            retire(obj);
        }
    }

    /// Removes one hard link from obj. The caller may NOT have obj protected
    /// (e.g. the displaced value of a store), so the scratch slot shields the
    /// _orc access (Proposition 1).
    void decrement_orc(orc_base* obj) {
        if (obj == nullptr) return;
        scratch_protect(obj);
        const std::uint64_t lorc =
            obj->_orc.fetch_add(orc::kSeqInc - 1, std::memory_order_seq_cst) + orc::kSeqInc - 1;
        if (orc::is_zero_unretired(lorc)) {
            std::uint64_t expected = lorc;
            if (obj->_orc.compare_exchange_strong(expected, lorc + orc::kBRetired,
                                                  std::memory_order_seq_cst)) {
                scratch_release();
                retire(obj);
                return;
            }
        }
        scratch_release();
    }

    // ---- retire (Algorithm 5) ---------------------------------------------

    /// Runs the pass-the-pointer retire protocol for an object whose retire
    /// token (kBRetired) the caller holds. Deletes the object if Lemma 1's
    /// condition (counter at zero AND no hazardous pointer, atomically
    /// validated via the sequence field) holds; otherwise hands it over or
    /// drops the token.
    void retire(orc_base* ptr) {
        auto& t = tl_[thread_id()];
        if (t.retire_started) {
            // Cascading retire from inside a node destructor: flatten it.
            t.recursive_list.push_back(ptr);
            return;
        }
        t.retire_started = true;
        std::size_t i = 0;
        while (true) {
            while (ptr != nullptr) {
                std::uint64_t lorc = ptr->_orc.load(std::memory_order_seq_cst);
                if (!orc::is_zero_retired(lorc)) {
                    // Resurrected: a thread holding a local reference re-linked
                    // the object. Drop the token (and re-take it if the counter
                    // fell back to zero under us).
                    lorc = clear_bit_retired(ptr);
                    if (lorc == 0) break;  // token dropped; a later decrement re-retires
                }
                if (try_handover(ptr)) continue;  // ptr is now the swapped-out pointer
                const std::uint64_t lorc2 = ptr->_orc.load(std::memory_order_seq_cst);
                if (lorc2 != lorc) continue;  // _orc moved during the scan: revalidate
                // Lemma 1: counter zero, token held, no hp found, sequence
                // unchanged across the scan — safe to destroy.
                ORC_ANNOTATE_HAPPENS_AFTER(ptr);
                delete ptr;  // may push cascaded retires into recursive_list
                break;
            }
            if (t.recursive_list.size() == i) break;
            ptr = t.recursive_list[i++];
        }
        t.recursive_list.clear();
        t.retire_started = false;
    }

    // ---- introspection (tests / memory-bound benches) ----------------------

    /// Pointers currently parked in handover slots across all threads.
    std::size_t handover_count() const noexcept {
        std::size_t total = 0;
        const int wm = thread_id_watermark();
        const int lmax = max_hps_.load(std::memory_order_acquire);
        for (int it = 0; it < wm; ++it) {
            for (int idx = 0; idx < lmax; ++idx) {
                if (tl_[it].handovers[idx].load(std::memory_order_acquire) != nullptr) ++total;
            }
        }
        return total;
    }

    /// Live orc_ptr sharers on the calling thread (slot-leak checks).
    int used_idx_count() const noexcept {
        const auto& t = tl_[thread_id()];
        int used = 0;
        for (int idx = 1; idx < kMaxHPs; ++idx) {
            if (t.used_haz[idx] != 0) ++used;
        }
        return used;
    }

    int hp_watermark() const noexcept { return max_hps_.load(std::memory_order_acquire); }

    /// Debug aid: prints the calling thread's non-free slots.
    void debug_dump_slots() const {
        const auto& t = tl_[thread_id()];
        for (int idx = 1; idx < kMaxHPs; ++idx) {
            if (t.used_haz[idx] != 0) {
                std::fprintf(stderr, "  idx=%d used=%u hp=%p handover=%p\n", idx,
                             t.used_haz[idx],
                             (void*)t.hp[idx].load(std::memory_order_seq_cst),
                             (void*)t.handovers[idx].load(std::memory_order_seq_cst));
            }
        }
    }

    /// Converts a (possibly marked) node pointer to its orc_base address.
    template <typename T>
    static orc_base* to_base(T ptr) noexcept {
        return static_cast<orc_base*>(get_unmarked(ptr));
    }

  private:
    struct alignas(kCacheLineSize) TLInfo {
        std::atomic<orc_base*> hp[kMaxHPs] = {};
        // Own cache lines: handovers are written by *other* threads.
        alignas(kCacheLineSize) std::atomic<orc_base*> handovers[kMaxHPs] = {};
        alignas(kCacheLineSize) std::uint32_t used_haz[kMaxHPs] = {};
        // O(1) index recycling (thread-local; seeded lazily on first use).
        int free_stack[kMaxHPs];
        int free_top = -1;
        bool free_initialized = false;
        bool retire_started = false;
        std::vector<orc_base*> recursive_list;
    };

    OrcEngine() {
        // Drain the handover slots of exiting threads so parked objects do
        // not wait for tid reuse (DESIGN.md deviation 3).
        add_thread_exit_hook(&OrcEngine::thread_exit_hook);
    }

    ~OrcEngine() {
        // Process teardown: anything still parked is unreachable by now.
        for (auto& t : tl_) {
            for (auto& h : t.handovers) {
                if (orc_base* ptr = h.exchange(nullptr, std::memory_order_acq_rel)) {
                    ORC_ANNOTATE_HAPPENS_AFTER(ptr);
                    delete ptr;
                }
            }
        }
    }

    static void thread_exit_hook(int tid) { instance().drain_thread(tid); }

    /// Called while `tid` is still owned by the exiting thread.
    void drain_thread(int tid) {
        auto& t = tl_[tid];
        for (int idx = 0; idx < kMaxHPs; ++idx) {
            tsan_release_protection(t.hp[idx]);
            t.hp[idx].store(nullptr, std::memory_order_seq_cst);
            if (orc_base* h = t.handovers[idx].exchange(nullptr, std::memory_order_seq_cst)) {
                retire(h);
            }
        }
    }

    void unpublish_and_drain(TLInfo& t, int idx) {
        // Release suffices for the clear (paper Alg. 2 line 14): a scanner
        // reading the stale non-null hp parks conservatively; only *publish*
        // needs the full fence.
        tsan_release_protection(t.hp[idx]);
        t.hp[idx].store(nullptr, std::memory_order_release);
        if (t.handovers[idx].load(std::memory_order_seq_cst) != nullptr) {
            if (orc_base* h = t.handovers[idx].exchange(nullptr, std::memory_order_seq_cst)) {
                // The parked object carries its retire token; continue the
                // protocol on its behalf.
                retire(h);
            }
        }
    }

    /// Algorithm 6 lines 134–145: scan all published hp entries for `ptr`;
    /// if found, park it in the paired handover slot and take away whatever
    /// was parked there before.
    bool try_handover(orc_base*& ptr) {
        const int lmax = max_hps_.load(std::memory_order_seq_cst);
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            for (int idx = 0; idx < lmax; ++idx) {
                if (tl_[it].hp[idx].load(std::memory_order_seq_cst) == ptr) {
                    ptr = tl_[it].handovers[idx].exchange(ptr, std::memory_order_seq_cst);
                    return true;
                }
            }
        }
        return false;
    }

    /// Algorithm 6 lines 147–158: drop the retire token because the counter
    /// moved off zero. If the counter is back at zero after the drop, re-take
    /// the token and return the new _orc value (caller continues retiring);
    /// otherwise return 0 (a future decrement will re-trigger retirement).
    std::uint64_t clear_bit_retired(orc_base* ptr) {
        auto& t = tl_[thread_id()];
        // Publish on scratch: we are about to mutate _orc of an object whose
        // token we are in the middle of dropping (Proposition 1).
        tsan_release_protection(t.hp[0]);
        t.hp[0].exchange(ptr, std::memory_order_seq_cst);
        const std::uint64_t lorc =
            obj_sub_retired(ptr);
        std::uint64_t result = 0;
        if (orc::is_zero_unretired(lorc)) {
            std::uint64_t expected = lorc;
            if (ptr->_orc.compare_exchange_strong(expected, lorc + orc::kBRetired,
                                                  std::memory_order_seq_cst)) {
                result = lorc + orc::kBRetired;
            }
        }
        unpublish_and_drain(t, 0);
        return result;
    }

    static std::uint64_t obj_sub_retired(orc_base* ptr) noexcept {
        return ptr->_orc.fetch_sub(orc::kBRetired, std::memory_order_seq_cst) - orc::kBRetired;
    }

    TLInfo tl_[kMaxThreads];
    std::atomic<int> max_hps_{1};
};

}  // namespace orcgc
