// OrcEngine: the singleton-compatibility façade over the global OrcDomain.
//
// Historically this class WAS the reclamation engine (the paper presents
// PassThePointerOrcGC as a process-wide service, and the seed mirrored
// that). The engine logic now lives in OrcDomain (orc_domain.hpp), which is
// instance-scoped; OrcEngine survives as a thin forwarding layer over
// OrcDomain::global() so that every pre-domain call site — and the paper's
// original singleton mental model — keeps compiling and behaving unchanged.
//
// Compatibility guarantee: OrcEngine::instance() forwards 1:1 to the global
// domain. Code that never names a domain gets exactly the old semantics —
// one process-wide HP table, handover array and retire pipeline. New code
// should reach for the domain API directly (OrcDomain, make_orc_in,
// ScopedDomain); orc-lint rule R7 enforces that nothing outside src/core/
// calls OrcEngine::instance() anymore.
#pragma once

#include <atomic>
#include <cstdint>

#include "core/orc_base.hpp"
#include "core/orc_domain.hpp"

namespace orcgc {

class OrcEngine {
  public:
    /// Per-thread hazardous-pointer capacity (see OrcDomain::kMaxHPs).
    static constexpr int kMaxHPs = OrcDomain::kMaxHPs;

    /// Batched-retire threshold (see OrcDomain::kSnapshotMin).
    static constexpr std::size_t kSnapshotMin = OrcDomain::kSnapshotMin;

    static OrcEngine& instance() {
        static OrcEngine engine;
        return engine;
    }

    OrcEngine(const OrcEngine&) = delete;
    OrcEngine& operator=(const OrcEngine&) = delete;

    // ---- hp index management ----------------------------------------------

    int get_new_idx() { return dom_.get_new_idx(); }
    void using_idx(int idx) noexcept { dom_.using_idx(idx); }
    void release_idx(int idx, orc_base* obj) { dom_.release_idx(idx, obj); }

    // ---- protection -------------------------------------------------------

    void protect_ptr(orc_base* ptr, int idx) noexcept { dom_.protect_ptr(ptr, idx); }

    template <typename T>
    T get_protected(const std::atomic<T>& addr, int idx) noexcept {
        return dom_.template get_protected<T>(addr, idx);
    }

    void scratch_protect(orc_base* ptr) noexcept { dom_.scratch_protect(ptr); }
    void scratch_release() { dom_.scratch_release(); }

    // ---- counter updates / retire -----------------------------------------
    //
    // These route by the OBJECT's domain tag, not blindly to the global
    // domain: a façade caller handed a domain-allocated object must still
    // scan the right hp table.

    void increment_orc(orc_base* obj) { orc_increment(obj); }
    void decrement_orc(orc_base* obj) { orc_decrement(obj); }
    void retire(orc_base* ptr) {
        if (ptr != nullptr) domain_of(ptr).retire(ptr);
    }

    // ---- telemetry (global domain) ----------------------------------------

    using RetireStats = OrcDomain::RetireStats;
    RetireStats stats() const noexcept { return dom_.stats(); }
    void reset_stats() noexcept { dom_.reset_stats(); }
    OrcMetrics& metrics() noexcept { return dom_.metrics(); }
    const OrcMetrics& metrics() const noexcept { return dom_.metrics(); }

    // ---- introspection (global domain) ------------------------------------

    std::size_t handover_count() const noexcept { return dom_.handover_count(); }
    int used_idx_count() const noexcept { return dom_.used_idx_count(); }
    int hp_watermark() const noexcept { return dom_.hp_watermark(); }
    int hp_watermark_self() const noexcept { return dom_.hp_watermark_self(); }
    void debug_dump_slots() const { dom_.debug_dump_slots(); }

    /// Converts a (possibly marked) node pointer to its orc_base address.
    template <typename T>
    static orc_base* to_base(T ptr) noexcept {
        return OrcDomain::to_base(ptr);
    }

  private:
    OrcEngine() : dom_(OrcDomain::global()) {}

    OrcDomain& dom_;
};

}  // namespace orcgc
