// Natarajan–Mittal lock-free external binary search tree (PPoPP 2014),
// templated over a manual reclamation scheme.
//
// External tree: all keys live in leaves; internal nodes are routers with
// exactly two children. Deletion is edge-based: the deleter *flags* the edge
// into the doomed leaf (bit 0), *tags* the edge into its sibling (bit 1) to
// freeze the parent, and then swings the grandparent/ancestor edge straight
// to the sibling, unlinking leaf and parent together.
//
// Reclamation-soundness note (why the benchmark only pairs this tree with
// EBR and OrcGC): seek() descends hand-over-hand without re-validating
// links from the root, so a scheme whose protection only covers *validated*
// reads can free a node the traversal still reaches — the classic
// unvalidated-traversal hazard the paper's §2 discusses.
//   * HP/PTB/PTP (pointer-based) are unsound here: the published hazard
//     protects one object, and a stale-but-protected parent lets the
//     traversal step onto an already-freed child.
//   * HE is unsound for the same reason: it reserves the era *current at
//     each read*, not an interval covering the whole operation ("HE can be
//     used wherever HP can" — same applicability, SPAA '17). Our ASan suite
//     demonstrates the use-after-free if HE is forced onto this tree.
//   * Our 2GEIBR is *also* not demonstrably sound here: TSan catches a
//     seek() read of a node freed by an IBR scan under heavy contested
//     churn. The interval [op-start, last-read] covers nodes that were
//     reachable at operation start, but the tree's frozen tag/flag chains
//     admit hops whose coverage we could not establish — so the pairing is
//     excluded rather than shipped on a conjecture.
//   * EBR (quiescent) is sound: the global epoch cannot advance past an
//     active reader, so anything reachable — directly or via frozen chains
//     entered through nodes alive at operation start — stays allocated.
//   * OrcGC (nm_tree_orc.hpp) is sound because a protected parent's hard
//     link pins the child's counter above zero.
// This mirrors the paper's Figs. 7–8, which run the tree with "manual or
// automatic reclamation whenever the data structure algorithm allows it".
//
// Under heavy contention a cleanup may unlink a chain of more than two nodes
// (successor != parent); the manual variant retires leaf, parent and
// successor but any interior chain nodes leak — a known limitation of manual
// schemes on this tree that the OrcGC variant does not have.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>

#include "common/alloc_tracker.hpp"
#include "common/marked_ptr.hpp"
#include "reclamation/reclaimable.hpp"
#include "reclamation/reclaimer_concepts.hpp"

namespace orcgc {

template <typename K, template <class, int> class ReclaimerTmpl>
class NMTree {
    static_assert(std::is_unsigned_v<K>, "NMTree reserves the top key values as sentinels");

  public:
    struct Node : ReclaimableBase, TrackedObject {
        const K key;
        std::atomic<Node*> left{nullptr};
        std::atomic<Node*> right{nullptr};
        explicit Node(K k) : key(k) {}
        Node(K k, Node* l, Node* r) : key(k) {
            left.store(l, std::memory_order_relaxed);
            right.store(r, std::memory_order_relaxed);
        }
    };

    static constexpr int kNumHPs = 1;  // era schemes ignore indices
    using Reclaimer = ReclaimerTmpl<Node, kNumHPs>;
    static_assert(ManualReclaimer<Reclaimer, Node>);
    static_assert(!Reclaimer::kUsesEras || EraStampedReclaimer<Reclaimer, Node>);

    static constexpr K kInf0 = std::numeric_limits<K>::max() - 2;
    static constexpr K kInf1 = std::numeric_limits<K>::max() - 1;
    static constexpr K kInf2 = std::numeric_limits<K>::max();
    /// Largest key a user may store.
    static constexpr K max_user_key() noexcept { return kInf0 - 1; }

    NMTree() {
        // R(inf2){ S, leaf(inf2) }, S(inf1){ leaf(inf0), leaf(inf1) }.
        Node* s = new Node(kInf1, new Node(kInf0), new Node(kInf1));
        root_ = new Node(kInf2, s, new Node(kInf2));
    }

    NMTree(const NMTree&) = delete;
    NMTree& operator=(const NMTree&) = delete;

    ~NMTree() { destroy(root_); }

    bool insert(K key) {
        gc_.begin_op();
        while (true) {
            SeekRecord sr = seek(key);
            if (sr.leaf->key == key) {
                gc_.end_op();
                return false;
            }
            Node* parent = sr.parent;
            std::atomic<Node*>* child_addr =
                (key < parent->key) ? &parent->left : &parent->right;
            Node* leaf = sr.leaf;
            Node* new_leaf = new Node(key);
            Node* internal = (key < leaf->key)
                                 ? new Node(leaf->key, new_leaf, leaf)
                                 : new Node(key, leaf, new_leaf);
            Node* expected = leaf;
            if (child_addr->compare_exchange_strong(expected, internal,
                                                    std::memory_order_seq_cst)) {
                gc_.end_op();
                return true;
            }
            delete new_leaf;  // never published
            delete internal;
            // Help a delete that flagged/tagged this edge before retrying.
            Node* val = child_addr->load(std::memory_order_seq_cst);
            if (get_unmarked(val) == leaf && (is_marked(val) || is_flagged(val))) {
                cleanup(key, sr);
            }
        }
    }

    bool remove(K key) {
        gc_.begin_op();
        bool injecting = true;
        Node* leaf = nullptr;
        while (true) {
            SeekRecord sr = seek(key);
            if (injecting) {
                if (sr.leaf->key != key) {
                    gc_.end_op();
                    return false;
                }
                leaf = sr.leaf;
                Node* parent = sr.parent;
                std::atomic<Node*>* child_addr =
                    (key < parent->key) ? &parent->left : &parent->right;
                Node* expected = leaf;
                if (child_addr->compare_exchange_strong(expected, get_marked(leaf),
                                                        std::memory_order_seq_cst)) {
                    injecting = false;  // flag planted: the delete will happen
                    if (cleanup(key, sr)) {
                        gc_.end_op();
                        return true;
                    }
                } else {
                    Node* val = child_addr->load(std::memory_order_seq_cst);
                    if (get_unmarked(val) == leaf && (is_marked(val) || is_flagged(val))) {
                        cleanup(key, sr);  // help, then retry injection
                    }
                }
            } else {
                if (sr.leaf != leaf) {
                    gc_.end_op();  // someone completed our cleanup
                    return true;
                }
                if (cleanup(key, sr)) {
                    gc_.end_op();
                    return true;
                }
            }
        }
    }

    bool contains(K key) {
        gc_.begin_op();
        const bool found = seek(key).leaf->key == key;
        gc_.end_op();
        return found;
    }

    Reclaimer& reclaimer() noexcept { return gc_; }
    static constexpr const char* scheme_name() noexcept { return Reclaimer::kName; }

  private:
    struct SeekRecord {
        Node* ancestor;
        Node* successor;
        Node* parent;
        Node* leaf;
    };

    /// Descends to the leaf on key's search path, recording the deepest
    /// untagged edge (ancestor -> successor) for cleanup's swing.
    SeekRecord seek(K key) {
        SeekRecord sr;
        sr.ancestor = root_;
        sr.successor = get_unmarked(gc_.get_protected(root_->left, 0));
        sr.parent = sr.successor;  // S
        Node* parent_field = gc_.get_protected(sr.parent->left, 0);
        sr.leaf = get_unmarked(parent_field);
        Node* current_field = gc_.get_protected(
            (key < sr.leaf->key) ? sr.leaf->left : sr.leaf->right, 0);
        Node* current = get_unmarked(current_field);
        while (current != nullptr) {
            if (!is_flagged(parent_field)) {  // edge into parent was untagged
                sr.ancestor = sr.parent;
                sr.successor = sr.leaf;
            }
            sr.parent = sr.leaf;
            sr.leaf = current;
            parent_field = current_field;
            current_field = gc_.get_protected(
                (key < current->key) ? current->left : current->right, 0);
            current = get_unmarked(current_field);
        }
        return sr;
    }

    /// Completes (or helps complete) the delete whose flag sits under
    /// sr.parent: tags the sibling edge and swings the ancestor edge to the
    /// sibling. Returns true iff this call performed the swing.
    bool cleanup(K key, const SeekRecord& sr) {
        Node* ancestor = sr.ancestor;
        Node* parent = sr.parent;
        std::atomic<Node*>* ancestor_field =
            (key < ancestor->key) ? &ancestor->left : &ancestor->right;
        std::atomic<Node*>* key_side = (key < parent->key) ? &parent->left : &parent->right;
        std::atomic<Node*>* other_side = (key < parent->key) ? &parent->right : &parent->left;
        // The delete's flag sits on the edge into the doomed leaf; if the key
        // side is not flagged we are helping a delete that targets the other
        // side, and the edge we must tag is the key side.
        const bool key_side_flagged = is_marked(key_side->load(std::memory_order_seq_cst));
        std::atomic<Node*>* doomed_addr = key_side_flagged ? key_side : other_side;
        std::atomic<Node*>* sibling_addr = key_side_flagged ? other_side : key_side;
        // Tag the sibling edge (freeze the parent against insertions there).
        Node* sib;
        while (true) {
            Node* v = sibling_addr->load(std::memory_order_seq_cst);
            if (is_flagged(v)) {
                sib = v;
                break;
            }
            if (sibling_addr->compare_exchange_strong(v, get_flagged(v),
                                                      std::memory_order_seq_cst)) {
                sib = get_flagged(v);
                break;
            }
        }
        // Swing: ancestor edge jumps from successor to the sibling, keeping
        // the sibling's own deletion flag (bit 0) if it had one.
        Node* doomed = get_unmarked(doomed_addr->load(std::memory_order_seq_cst));
        Node* desired = is_marked(sib) ? get_marked(get_unmarked(sib)) : get_unmarked(sib);
        Node* expected = sr.successor;
        if (!ancestor_field->compare_exchange_strong(expected, desired,
                                                     std::memory_order_seq_cst)) {
            return false;
        }
        // The swing bypassed the chain successor -> ... -> parent plus the
        // doomed leaf. Every edge inside the chain is tagged (that is why the
        // chain exists) or flagged, and tagged/flagged edges are frozen
        // forever, so the winner of the swing — and only the winner; a tree
        // node has a single incoming edge — can walk the chain and retire
        // every interior node together with the flagged leaf hanging off it
        // (the pending delete that tagged the edge can never win its own
        // swing: its deepest untagged ancestor edge was the one we just
        // changed).
        Node* node = sr.successor;
        while (node != parent) {
            Node* path_child = (key < node->key)
                                   ? node->left.load(std::memory_order_seq_cst)
                                   : node->right.load(std::memory_order_seq_cst);
            Node* off_path = (key < node->key)
                                 ? node->right.load(std::memory_order_seq_cst)
                                 : node->left.load(std::memory_order_seq_cst);
            gc_.retire(get_unmarked(off_path));  // doomed leaf of the delete pending here
            gc_.retire(node);
            node = get_unmarked(path_child);
        }
        gc_.retire(doomed);
        gc_.retire(parent);
        return true;
    }

    void destroy(Node* node) {
        if (node == nullptr) return;
        destroy(get_unmarked(node->left.load(std::memory_order_relaxed)));
        destroy(get_unmarked(node->right.load(std::memory_order_relaxed)));
        delete node;
    }

    Node* root_;
    Reclaimer gc_;
};

}  // namespace orcgc
