// Michael–Scott lock-free queue (PODC 1996) templated over any manual
// reclamation scheme — the baseline side of the paper's Figs. 1 and 2.
//
// Standard hazard-pointer integration (Michael 2004 §4): the candidate
// head/tail node is protected at index 0, the successor at index 1, and the
// dequeued sentinel is retired after the head swings past it. H = 2.
#pragma once

#include <atomic>
#include <optional>
#include <utility>

#include "common/alloc_tracker.hpp"
#include "reclamation/reclaimable.hpp"
#include "reclamation/reclaimer_concepts.hpp"

namespace orcgc {

template <typename T, template <class, int> class ReclaimerTmpl>
class MSQueue {
  public:
    struct Node : ReclaimableBase, TrackedObject {
        T item;
        std::atomic<Node*> next{nullptr};
        Node() : item{} {}
        explicit Node(T it) : item(std::move(it)) {}
    };

    static constexpr int kNumHPs = 2;
    using Reclaimer = ReclaimerTmpl<Node, kNumHPs>;
    static_assert(ManualReclaimer<Reclaimer, Node>);
    static_assert(!Reclaimer::kUsesEras || EraStampedReclaimer<Reclaimer, Node>);

    MSQueue() {
        Node* sentinel = new Node();
        head_.store(sentinel, std::memory_order_relaxed);
        tail_.store(sentinel, std::memory_order_relaxed);
    }

    MSQueue(const MSQueue&) = delete;
    MSQueue& operator=(const MSQueue&) = delete;

    ~MSQueue() {
        Node* curr = head_.load(std::memory_order_relaxed);
        while (curr != nullptr) {
            Node* next = curr->next.load(std::memory_order_relaxed);
            delete curr;
            curr = next;
        }
    }

    void enqueue(T item) {
        gc_.begin_op();
        Node* node = new Node(std::move(item));
        while (true) {
            Node* ltail = gc_.get_protected(tail_, 0);
            if (ltail != tail_.load(std::memory_order_seq_cst)) continue;
            Node* lnext = ltail->next.load(std::memory_order_seq_cst);
            if (lnext == nullptr) {
                Node* expected = nullptr;
                if (ltail->next.compare_exchange_strong(expected, node,
                                                        std::memory_order_seq_cst)) {
                    Node* texp = ltail;
                    tail_.compare_exchange_strong(texp, node, std::memory_order_seq_cst);
                    break;
                }
            } else {
                Node* texp = ltail;
                tail_.compare_exchange_strong(texp, lnext, std::memory_order_seq_cst);
            }
        }
        gc_.end_op();
    }

    std::optional<T> dequeue() {
        gc_.begin_op();
        while (true) {
            Node* lhead = gc_.get_protected(head_, 0);
            Node* ltail = tail_.load(std::memory_order_seq_cst);
            Node* lnext = gc_.get_protected(lhead->next, 1);
            if (lhead != head_.load(std::memory_order_seq_cst)) continue;
            if (lnext == nullptr) {
                gc_.end_op();
                return std::nullopt;  // empty
            }
            if (lhead == ltail) {
                Node* texp = ltail;
                tail_.compare_exchange_strong(texp, lnext, std::memory_order_seq_cst);
                continue;
            }
            // Read the item while lnext is protected; after the CAS lnext is
            // the new sentinel and a faster dequeuer may retire it.
            T item = lnext->item;
            Node* hexp = lhead;
            if (head_.compare_exchange_strong(hexp, lnext, std::memory_order_seq_cst)) {
                gc_.retire(lhead);
                gc_.end_op();
                return item;
            }
        }
    }

    bool empty() {
        gc_.begin_op();
        Node* lhead = gc_.get_protected(head_, 0);
        const bool result = lhead->next.load(std::memory_order_seq_cst) == nullptr;
        gc_.end_op();
        return result;
    }

    Reclaimer& reclaimer() noexcept { return gc_; }
    static constexpr const char* scheme_name() noexcept { return Reclaimer::kName; }

  private:
    std::atomic<Node*> head_;
    std::atomic<Node*> tail_;
    Reclaimer gc_;
};

}  // namespace orcgc
