// Michael's lock-free ordered list / set (SPAA 2002) — "High Performance
// Dynamic Lock-Free Hash Tables and List-Based Sets" — templated over any
// manual reclamation scheme in src/reclamation/.
//
// This is the "Michael-Harris lock-free linked list" of the paper's Figs. 3
// and 4: Harris's algorithm modified so that traversals physically unlink
// marked nodes as they go and *restart* when the window changes, which is
// exactly what makes it compatible with hazard-pointer-style reclamation
// (the original Harris list is not — see harris_list_orc.hpp).
//
// A node's logical-deletion mark is the low bit of its own next field.
// find() maintains three protections rotating over the scan window:
// prev-node, curr and next (H = 3 in the paper's bound notation).
#pragma once

#include <atomic>
#include <cstdint>

#include "common/alloc_tracker.hpp"
#include "common/marked_ptr.hpp"
#include "reclamation/reclaimable.hpp"
#include "reclamation/reclaimer_concepts.hpp"

namespace orcgc {

template <typename K, template <class, int> class ReclaimerTmpl>
class MichaelList {
  public:
    struct Node : ReclaimableBase, TrackedObject {
        const K key;
        std::atomic<Node*> next{nullptr};
        explicit Node(K k) : key(k) {}
    };

    /// Hazard indices used per operation (the paper's H).
    static constexpr int kNumHPs = 3;
    using Reclaimer = ReclaimerTmpl<Node, kNumHPs>;
    static_assert(ManualReclaimer<Reclaimer, Node>);
    // Era-stamped schemes (HE/IBR/Hyaline) declare kUsesEras; the node type
    // must then actually carry the [birth_era, del_era] interval.
    static_assert(!Reclaimer::kUsesEras || EraStampedReclaimer<Reclaimer, Node>);

    MichaelList() = default;
    MichaelList(const MichaelList&) = delete;
    MichaelList& operator=(const MichaelList&) = delete;

    ~MichaelList() {
        // Single-threaded teardown: free the reachable chain; retired nodes
        // are freed by the reclaimer's destructor.
        Node* curr = get_unmarked(head_.load(std::memory_order_relaxed));
        while (curr != nullptr) {
            Node* next = get_unmarked(curr->next.load(std::memory_order_relaxed));
            delete curr;
            curr = next;
        }
    }

    /// Inserts key; returns false if already present.
    bool insert(K key) {
        gc_.begin_op();
        Node* node = new Node(key);
        while (true) {
            Window w = find(key);
            if (w.found) {
                delete node;  // never published: direct delete is safe
                gc_.end_op();
                return false;
            }
            node->next.store(w.curr, std::memory_order_relaxed);
            Node* expected = w.curr;
            if (w.prev->compare_exchange_strong(expected, node, std::memory_order_seq_cst)) {
                gc_.end_op();
                return true;
            }
        }
    }

    /// Removes key; returns false if not present.
    bool remove(K key) {
        gc_.begin_op();
        while (true) {
            Window w = find(key);
            if (!w.found) {
                gc_.end_op();
                return false;
            }
            // Logically delete: mark curr's next.
            Node* expected = w.next;
            if (!w.curr->next.compare_exchange_strong(expected, get_marked(w.next),
                                                      std::memory_order_seq_cst)) {
                continue;  // lost a race on this node; retry from find
            }
            // Physically unlink; on failure another traversal will.
            expected = w.curr;
            if (w.prev->compare_exchange_strong(expected, w.next, std::memory_order_seq_cst)) {
                gc_.retire(w.curr);
            } else {
                find(key);  // help unlink before returning
            }
            gc_.end_op();
            return true;
        }
    }

    bool contains(K key) {
        gc_.begin_op();
        const bool found = find(key).found;
        gc_.end_op();
        return found;
    }

    Reclaimer& reclaimer() noexcept { return gc_; }
    static constexpr const char* scheme_name() noexcept { return Reclaimer::kName; }

  private:
    struct Window {
        std::atomic<Node*>* prev;  // link whose target is curr
        Node* curr;                // first unmarked node with key >= target (or null)
        Node* next;                // curr's successor at observation time
        bool found;
    };

    /// Michael's Find: returns a clean window (prev unmarked, curr unmarked),
    /// unlinking marked nodes encountered on the way. Protection indices
    /// rotate so each advance publishes exactly one new hazard.
    Window find(K key) {
    retry:
        std::atomic<Node*>* prev = &head_;
        int ip = 0, ic = 1, in = 2;  // hazard roles: prev-node, curr, next
        Node* curr = gc_.get_protected(*prev, ic);
        if (is_marked(curr)) goto retry;  // prev node got deleted under us
        while (true) {
            if (curr == nullptr) return {prev, nullptr, nullptr, false};
            Node* next_raw = gc_.get_protected(curr->next, in);
            // Validate the window: prev must still link to (unmarked) curr.
            if (prev->load(std::memory_order_seq_cst) != curr) goto retry;
            if (!is_marked(next_raw)) {
                if (!(curr->key < key)) {
                    return {prev, curr, next_raw, curr->key == key};
                }
                prev = &curr->next;
                // Advance: curr becomes prev-node, next becomes curr.
                const int tmp = ip;
                ip = ic;
                ic = in;
                in = tmp;
                curr = next_raw;
            } else {
                // curr is logically deleted: unlink it.
                Node* next = get_unmarked(next_raw);
                Node* expected = curr;
                if (!prev->compare_exchange_strong(expected, next, std::memory_order_seq_cst)) {
                    goto retry;
                }
                gc_.retire(curr);
                const int tmp = ic;
                ic = in;  // next takes over the curr role
                in = tmp;
                curr = next;
            }
        }
    }

    std::atomic<Node*> head_{nullptr};
    Reclaimer gc_;
};

}  // namespace orcgc
