// LCRQ — Morrison & Afek's linked concurrent ring queue (PPoPP 2013) with
// OrcGC reclaiming the ring segments.
//
// A CRQ is a fixed-size ring of (value, index) cells operated with
// fetch-and-add on head/tail and double-width CAS on the cells; when a ring
// closes (full or starved), a fresh ring is linked behind it, Michael–Scott
// style. Reclamation applies at segment granularity: a drained segment is
// unlinked by the head CAS and OrcGC frees it once the last in-flight
// FAA-holder drops its reference — the case that usually needs hazard
// pointers around the segment list is covered by plain type annotation.
//
// The 16-byte cell CAS compiles to cmpxchg16b (libatomic dispatches at
// runtime); the paper's Table 1 lists LCRQ-style DWCAS among the atomic
// primitives a scheme may rely on.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>

#include "common/alloc_tracker.hpp"
#include "common/cacheline.hpp"
#include "core/orc.hpp"

namespace orcgc {

template <typename T, std::size_t kRingOrder = 10>
class LCRQOrc {
    static_assert(std::is_integral_v<T> && sizeof(T) <= 8,
                  "LCRQOrc stores values in ring cells; use integral payloads "
                  "(or pointers cast to uintptr_t)");
    static constexpr std::size_t kRingSize = std::size_t{1} << kRingOrder;
    static constexpr std::uint64_t kClosedBit = 1ULL << 63;
    static constexpr std::uint64_t kUnsafeBit = 1ULL << 63;  // on cell idx
    static constexpr std::uint64_t kEmptyVal = 0;
    static constexpr int kStarvationLimit = 16;

    struct alignas(16) Cell {
        std::uint64_t val;       // kEmptyVal or encoded value (v + 1)
        std::uint64_t idx_safe;  // ring index; MSB set = "unsafe"
        bool operator==(const Cell&) const = default;
    };

    struct Ring : orc_base, TrackedObject {
        alignas(kCacheLineSize) std::atomic<std::uint64_t> head{0};
        alignas(kCacheLineSize) std::atomic<std::uint64_t> tail{0};  // MSB = closed
        orc_atomic<Ring*> next{nullptr};
        alignas(kCacheLineSize) std::atomic<Cell> cells[kRingSize];

        Ring() {
            for (std::size_t i = 0; i < kRingSize; ++i) {
                cells[i].store(Cell{kEmptyVal, i}, std::memory_order_relaxed);
            }
        }
        /// Ring created with one value already enqueued (new tail segment).
        explicit Ring(std::uint64_t first) : Ring() {
            cells[0].store(Cell{first, 0}, std::memory_order_relaxed);
            tail.store(1, std::memory_order_relaxed);
        }

        static std::uint64_t node_index(std::uint64_t i) { return i & ~kUnsafeBit; }
        static bool node_unsafe(std::uint64_t i) { return (i & kUnsafeBit) != 0; }

        bool closed() const { return (tail.load(std::memory_order_seq_cst) & kClosedBit) != 0; }
        void close() { tail.fetch_or(kClosedBit, std::memory_order_seq_cst); }

        /// CRQ enqueue; returns false iff the ring is (now) closed.
        bool enqueue(std::uint64_t encoded) {
            int starvation = 0;
            while (true) {
                const std::uint64_t t_raw = tail.fetch_add(1, std::memory_order_seq_cst);
                if (t_raw & kClosedBit) return false;
                const std::uint64_t t = t_raw;
                auto& cell = cells[t & (kRingSize - 1)];
                Cell c = cell.load(std::memory_order_seq_cst);
                const std::uint64_t idx = node_index(c.idx_safe);
                if (c.val == kEmptyVal && idx <= t &&
                    (!node_unsafe(c.idx_safe) || head.load(std::memory_order_seq_cst) <= t)) {
                    if (cell.compare_exchange_strong(c, Cell{encoded, t},
                                                     std::memory_order_seq_cst)) {
                        return true;
                    }
                }
                // Full or starving: close the ring and fall over to a new one.
                const std::uint64_t h = head.load(std::memory_order_seq_cst);
                if (t - h >= kRingSize || ++starvation >= kStarvationLimit) {
                    close();
                    return false;
                }
            }
        }

        /// CRQ dequeue; nullopt = ring observed empty.
        std::optional<std::uint64_t> dequeue() {
            while (true) {
                const std::uint64_t h = head.fetch_add(1, std::memory_order_seq_cst);
                auto& cell = cells[h & (kRingSize - 1)];
                while (true) {
                    Cell c = cell.load(std::memory_order_seq_cst);
                    const std::uint64_t idx = node_index(c.idx_safe);
                    const bool unsafe = node_unsafe(c.idx_safe);
                    if (idx > h) break;  // cell already recycled past us
                    if (c.val != kEmptyVal) {
                        if (idx == h) {  // our value: take it, recycle the cell
                            if (cell.compare_exchange_strong(
                                    c, Cell{kEmptyVal, (h + kRingSize) | (unsafe ? kUnsafeBit : 0)},
                                    std::memory_order_seq_cst)) {
                                return c.val;
                            }
                        } else {  // an older enqueue is stuck here: mark unsafe
                            if (cell.compare_exchange_strong(
                                    c, Cell{c.val, idx | kUnsafeBit},
                                    std::memory_order_seq_cst)) {
                                break;
                            }
                        }
                    } else {  // empty cell: advance its index so a slow
                              // enqueuer for index <= h cannot use it
                        if (cell.compare_exchange_strong(
                                c, Cell{kEmptyVal,
                                        (h + kRingSize) | (unsafe ? kUnsafeBit : 0)},
                                std::memory_order_seq_cst)) {
                            break;
                        }
                    }
                }
                // Empty check (tail <= h+1 means nothing left to take).
                const std::uint64_t t = tail.load(std::memory_order_seq_cst) & ~kClosedBit;
                if (t <= h + 1) {
                    fix_state();
                    return std::nullopt;
                }
            }
        }

        /// After overshooting dequeues, pull tail up to head so indices
        /// remain coherent (CRQ's fixState).
        void fix_state() {
            while (true) {
                const std::uint64_t t_raw = tail.load(std::memory_order_seq_cst);
                const std::uint64_t h = head.load(std::memory_order_seq_cst);
                if ((t_raw & ~kClosedBit) >= h) return;
                std::uint64_t expected = t_raw;
                if (tail.compare_exchange_strong(expected, h | (t_raw & kClosedBit),
                                                 std::memory_order_seq_cst)) {
                    return;
                }
            }
        }
    };

  public:
    /// Optionally binds the queue to a reclamation domain (default: global).
    explicit LCRQOrc(OrcDomain* domain = nullptr)
        : dom_(domain != nullptr ? domain : &OrcDomain::global()) {
        ScopedDomain guard(*dom_);
        orc_ptr<Ring*> ring = make_orc<Ring>();
        head_.store(ring);
        tail_.store(ring);
    }

    LCRQOrc(const LCRQOrc&) = delete;
    LCRQOrc& operator=(const LCRQOrc&) = delete;
    ~LCRQOrc() = default;  // segments cascade from head_/tail_

    /// The reclamation domain this structure lives in.
    OrcDomain& domain() const noexcept { return *dom_; }

    void enqueue(T value) {
        ScopedDomain guard(*dom_);
        const std::uint64_t encoded = static_cast<std::uint64_t>(value) + 1;
        while (true) {
            orc_ptr<Ring*> ring = tail_.load();
            orc_ptr<Ring*> next = ring->next.load();
            if (next != nullptr) {  // help swing the segment tail
                tail_.cas(ring, next);
                continue;
            }
            if (ring->enqueue(encoded)) return;
            // Ring closed: link a fresh ring carrying the value.
            orc_ptr<Ring*> fresh = make_orc<Ring>(encoded);
            if (ring->next.cas(nullptr, fresh)) {
                tail_.cas(ring, fresh);
                return;
            }
        }
    }

    std::optional<T> dequeue() {
        ScopedDomain guard(*dom_);
        while (true) {
            orc_ptr<Ring*> ring = head_.load();
            if (auto v = ring->dequeue()) return decode(*v);
            // Ring empty: if no successor, the queue is empty...
            orc_ptr<Ring*> next = ring->next.load();
            if (next == nullptr) return std::nullopt;
            // ...otherwise re-check once (values may have landed between the
            // empty observation and reading next), then advance the head.
            if (auto v = ring->dequeue()) return decode(*v);
            head_.cas(ring, next);
        }
    }

    bool empty() {
        ScopedDomain guard(*dom_);
        orc_ptr<Ring*> ring = head_.load();
        const std::uint64_t h = ring->head.load(std::memory_order_seq_cst);
        const std::uint64_t t = ring->tail.load(std::memory_order_seq_cst) & ~kClosedBit;
        return t <= h && ring->next.load() == nullptr;
    }

  private:
    static T decode(std::uint64_t encoded) { return static_cast<T>(encoded - 1); }

    OrcDomain* const dom_;
    orc_atomic<Ring*> head_;
    orc_atomic<Ring*> tail_;
};

}  // namespace orcgc
