// Herlihy–Shavit lock-free skip list ("The Art of Multiprocessor
// Programming", ch. 14; based on Fraser's skip list) with OrcGC.
//
// The paper ports exactly this algorithm (§5): contains() descends from the
// top level to the bottom without ever restarting, stepping over marked
// nodes — so removed nodes must stay allocated, keep their next pointers
// intact, and may form arbitrarily long chains of removed nodes that still
// reference each other and the live list. Under OrcGC this is safe but
// expensive in memory: a removed node is only reclaimed after every marked
// link to it is lazily snipped by some later traversal. This is the
// structure behind the paper's 19 GB-footprint observation, which CRF-skip
// (crf_skiplist_orc.hpp) was designed to fix.
//
// A half-inserted node can be unlinked by a remover and then re-linked by
// its inserter finishing the upper levels — the paper's obstacle 3
// (re-insertion), which only OrcGC/FreeAccess tolerate.
#pragma once

#include <cstdint>
#include <utility>

#include "common/alloc_tracker.hpp"
#include "common/marked_ptr.hpp"
#include "common/rng.hpp"
#include "core/orc.hpp"

namespace orcgc {

inline constexpr int kSkipListMaxLevel = 16;

/// Geometric level draw (p = 1/2), capped at kSkipListMaxLevel - 1.
inline int random_skiplist_level(Xoshiro256& rng) {
    const std::uint64_t bits = rng.next();
    int level = 0;
    while (level < kSkipListMaxLevel - 1 && ((bits >> level) & 1u)) ++level;
    return level;
}

template <typename K>
class HSSkipListOrc {
  public:
    struct Node : orc_base, TrackedObject {
        enum class Rank : std::uint8_t { kHead, kNormal, kTail };
        const K key;
        const Rank rank;
        const int top_level;
        orc_atomic<Node*> next[kSkipListMaxLevel];

        Node(K k, Rank r, int top) : key(k), rank(r), top_level(top) {}

        /// Strict ordering with sentinels below/above every user key.
        bool precedes(K other) const noexcept {
            if (rank == Rank::kHead) return true;
            if (rank == Rank::kTail) return false;
            return key < other;
        }
        bool equals(K other) const noexcept { return rank == Rank::kNormal && key == other; }
    };

    /// Optionally binds the skip list to a reclamation domain (default: global).
    explicit HSSkipListOrc(OrcDomain* domain = nullptr)
        : dom_(domain != nullptr ? domain : &OrcDomain::global()) {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> head = make_orc<Node>(K{}, Node::Rank::kHead, kSkipListMaxLevel - 1);
        orc_ptr<Node*> tail = make_orc<Node>(K{}, Node::Rank::kTail, kSkipListMaxLevel - 1);
        for (int level = 0; level < kSkipListMaxLevel; ++level) head->next[level].store(tail);
        head_.store(head);
    }

    HSSkipListOrc(const HSSkipListOrc&) = delete;
    HSSkipListOrc& operator=(const HSSkipListOrc&) = delete;
    ~HSSkipListOrc() = default;  // cascade from head_

    /// The reclamation domain this structure lives in.
    OrcDomain& domain() const noexcept { return *dom_; }

    bool insert(K key) {
        ScopedDomain guard(*dom_);
        const int top = random_skiplist_level(tl_rng());
        orc_ptr<Node*> node = make_orc<Node>(key, Node::Rank::kNormal, top);
        orc_ptr<Node*> preds[kSkipListMaxLevel];
        orc_ptr<Node*> succs[kSkipListMaxLevel];
        while (true) {
            if (find(key, preds, succs)) return false;  // node auto-reclaimed
            for (int level = 0; level <= top; ++level) node->next[level].store(succs[level]);
            // Link at the bottom level: this is the linearization point.
            if (!preds[0]->next[0].cas(succs[0], node)) continue;
            // Link the upper levels; a concurrent remove may mark the node
            // half-way (obstacle 3) — then we simply stop linking.
            for (int level = 1; level <= top; ++level) {
                while (true) {
                    orc_ptr<Node*> cur = node->next[level].load();
                    if (cur.is_marked()) return true;  // being removed already
                    if (cur.get() != succs[level].get() &&
                        !node->next[level].cas(cur, succs[level])) {
                        continue;  // re-read; maybe it got marked
                    }
                    if (preds[level]->next[level].cas(succs[level], node)) break;
                    find(key, preds, succs);  // refresh the window
                    if (succs[level].get() == node.get()) break;  // already linked by shape
                }
            }
            return true;
        }
    }

    bool remove(K key) {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> preds[kSkipListMaxLevel];
        orc_ptr<Node*> succs[kSkipListMaxLevel];
        if (!find(key, preds, succs)) return false;
        orc_ptr<Node*> victim = succs[0];
        // Mark the upper levels top-down.
        for (int level = victim->top_level; level >= 1; --level) {
            orc_ptr<Node*> succ = victim->next[level].load();
            while (!succ.is_marked()) {
                victim->next[level].cas(succ, get_marked(succ.get()));
                succ = victim->next[level].load();
            }
        }
        // The bottom-level mark decides who "owns" the removal.
        while (true) {
            orc_ptr<Node*> succ = victim->next[0].load();
            if (succ.is_marked()) return false;  // someone else won
            if (victim->next[0].cas(succ, get_marked(succ.get()))) {
                find(key, preds, succs);  // snip lazily on the way
                return true;
            }
        }
    }

    /// Top-to-bottom descent without restarts: steps over marked nodes and
    /// never writes. Removed nodes stay followable (obstacle 2).
    bool contains(K key) {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> pred = head_.load();
        orc_ptr<Node*> curr;
        for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
            curr = pred->next[level].load();
            curr.unmark();
            while (true) {
                orc_ptr<Node*> succ = curr->next[level].load();
                while (succ.is_marked()) {  // skip over removed nodes
                    curr = std::move(succ);
                    curr.unmark();
                    succ = curr->next[level].load();
                }
                if (curr->precedes(key)) {
                    pred = std::move(curr);
                    curr = std::move(succ);
                    curr.unmark();
                } else {
                    break;
                }
            }
        }
        return curr->equals(key);
    }

  private:
    static Xoshiro256& tl_rng() {
        static thread_local Xoshiro256 rng(0xC0FFEE ^ (std::uint64_t)thread_id());
        return rng;
    }

    /// Book-style find: locates the window at every level, physically
    /// unlinking (snipping) marked nodes it encounters; restarts when a snip
    /// races. Fills preds/succs for [0, kSkipListMaxLevel). Retry via
    /// helper-return, never a backward goto over orc_ptr declarations (gcc
    /// NRVO+goto destructor bug — see michael_list_orc.hpp).
    bool find(K key, orc_ptr<Node*>* preds, orc_ptr<Node*>* succs) {
        while (true) {
            const int result = find_attempt(key, preds, succs);
            if (result >= 0) return result != 0;
        }
    }

    /// -1 = retry, 0 = not found, 1 = found.
    int find_attempt(K key, orc_ptr<Node*>* preds, orc_ptr<Node*>* succs) {
        orc_ptr<Node*> pred = head_.load();
        orc_ptr<Node*> curr;
        for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
            curr = pred->next[level].load();
            curr.unmark();
            while (true) {
                orc_ptr<Node*> succ = curr->next[level].load();
                while (succ.is_marked()) {
                    // curr is logically deleted at this level: snip it.
                    succ.unmark();
                    if (!pred->next[level].cas(curr, succ)) return -1;
                    curr = pred->next[level].load();
                    if (curr.is_marked()) return -1;  // pred got marked too
                    succ = curr->next[level].load();
                }
                if (curr->precedes(key)) {
                    pred = curr;
                    curr = std::move(succ);
                    curr.unmark();
                } else {
                    break;
                }
            }
            preds[level] = pred;
            succs[level] = curr;
        }
        return curr->equals(key) ? 1 : 0;
    }

    OrcDomain* const dom_;
    orc_atomic<Node*> head_;
};

}  // namespace orcgc
