// Natarajan–Mittal lock-free external BST with OrcGC automatic reclamation.
//
// Same edge-flag/tag algorithm as ds/nm_tree.hpp, integrated via the §4.1.1
// type-annotation methodology. Two things the automatic scheme buys here:
//
//   * seek() descends hand-over-hand with no revalidation; that is sound
//     under OrcGC because holding an orc_ptr on a parent pins the hard link
//     to its children (a child's _orc cannot reach zero while the protected
//     parent still links it) — the property that rules out HP-style manual
//     schemes on this tree.
//   * a cleanup swing that bypasses a long tagged chain needs no retire
//     bookkeeping at all: the ancestor CAS drops the chain head's last hard
//     link and the whole chain cascades, doomed leaves included.
#pragma once

#include <limits>
#include <utility>

#include "common/alloc_tracker.hpp"
#include "common/marked_ptr.hpp"
#include "core/orc.hpp"

namespace orcgc {

template <typename K>
class NMTreeOrc {
    static_assert(std::is_unsigned_v<K>, "NMTreeOrc reserves the top key values as sentinels");

  public:
    struct Node : orc_base, TrackedObject {
        const K key;
        orc_atomic<Node*> left{nullptr};
        orc_atomic<Node*> right{nullptr};
        explicit Node(K k) : key(k) {}
    };

    static constexpr K kInf0 = std::numeric_limits<K>::max() - 2;
    static constexpr K kInf1 = std::numeric_limits<K>::max() - 1;
    static constexpr K kInf2 = std::numeric_limits<K>::max();
    static constexpr K max_user_key() noexcept { return kInf0 - 1; }

    /// Optionally binds the tree to a reclamation domain (default: global).
    explicit NMTreeOrc(OrcDomain* domain = nullptr)
        : dom_(domain != nullptr ? domain : &OrcDomain::global()) {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> r = make_orc<Node>(kInf2);
        orc_ptr<Node*> s = make_orc<Node>(kInf1);
        orc_ptr<Node*> s_left = make_orc<Node>(kInf0);
        orc_ptr<Node*> s_right = make_orc<Node>(kInf1);
        orc_ptr<Node*> r_right = make_orc<Node>(kInf2);
        s->left.store(s_left);
        s->right.store(s_right);
        r->left.store(s);
        r->right.store(r_right);
        root_.store(r);
    }

    NMTreeOrc(const NMTreeOrc&) = delete;
    NMTreeOrc& operator=(const NMTreeOrc&) = delete;
    ~NMTreeOrc() = default;  // cascade from root_

    /// The reclamation domain this structure lives in.
    OrcDomain& domain() const noexcept { return *dom_; }

    bool insert(K key) {
        ScopedDomain guard(*dom_);
        while (true) {
            SeekRecord sr = seek(key);
            if (sr.leaf->key == key) return false;
            orc_atomic<Node*>* child_addr =
                (key < sr.parent->key) ? &sr.parent->left : &sr.parent->right;
            orc_ptr<Node*> new_leaf = make_orc<Node>(key);
            orc_ptr<Node*> internal =
                make_orc<Node>(key < sr.leaf->key ? sr.leaf->key : key);
            if (key < sr.leaf->key) {
                internal->left.store(new_leaf);
                internal->right.store(sr.leaf);
            } else {
                internal->left.store(sr.leaf);
                internal->right.store(new_leaf);
            }
            if (child_addr->cas(sr.leaf, internal)) return true;
            // internal/new_leaf are reclaimed automatically when the orc_ptrs
            // drop. Help a delete that froze this edge before retrying.
            orc_ptr<Node*> val = child_addr->load();
            if (val.unmarked() == sr.leaf.get() &&
                (is_marked(val.get()) || is_flagged(val.get()))) {
                cleanup(key, sr);
            }
        }
    }

    bool remove(K key) {
        ScopedDomain guard(*dom_);
        bool injecting = true;
        Node* leaf_raw = nullptr;
        while (true) {
            SeekRecord sr = seek(key);
            if (injecting) {
                if (sr.leaf->key != key) return false;
                leaf_raw = sr.leaf.get();
                orc_atomic<Node*>* child_addr =
                    (key < sr.parent->key) ? &sr.parent->left : &sr.parent->right;
                if (child_addr->cas(sr.leaf, get_marked(sr.leaf.get()))) {
                    injecting = false;
                    if (cleanup(key, sr)) return true;
                } else {
                    orc_ptr<Node*> val = child_addr->load();
                    if (val.unmarked() == sr.leaf.get() &&
                        (is_marked(val.get()) || is_flagged(val.get()))) {
                        cleanup(key, sr);
                    }
                }
            } else {
                if (sr.leaf.get() != leaf_raw) return true;  // helped to completion
                if (cleanup(key, sr)) return true;
            }
        }
    }

    bool contains(K key) {
        ScopedDomain guard(*dom_);
        return seek(key).leaf->key == key;
    }

  private:
    struct SeekRecord {
        orc_ptr<Node*> ancestor;
        orc_ptr<Node*> successor;
        orc_ptr<Node*> parent;
        orc_ptr<Node*> leaf;
    };

    SeekRecord seek(K key) {
        SeekRecord sr;
        sr.ancestor = root_.load();
        orc_ptr<Node*> s = sr.ancestor->left.load();
        s.unmark();
        sr.successor = s;
        sr.parent = s;
        orc_ptr<Node*> parent_field = sr.parent->left.load();  // edge into leaf, with bits
        sr.leaf = parent_field;
        sr.leaf.unmark();
        orc_ptr<Node*> current_field =
            ((key < sr.leaf->key) ? sr.leaf->left : sr.leaf->right).load();
        while (current_field.unmarked() != nullptr) {
            if (!is_flagged(parent_field.get())) {  // edge into parent untagged
                sr.ancestor = sr.parent;
                sr.successor = sr.leaf;
            }
            sr.parent = sr.leaf;
            sr.leaf = current_field;
            sr.leaf.unmark();
            parent_field = std::move(current_field);
            current_field = ((key < sr.leaf->key) ? sr.leaf->left : sr.leaf->right).load();
        }
        return sr;
    }

    bool cleanup(K key, const SeekRecord& sr) {
        orc_atomic<Node*>* ancestor_field =
            (key < sr.ancestor->key) ? &sr.ancestor->left : &sr.ancestor->right;
        orc_atomic<Node*>* key_side =
            (key < sr.parent->key) ? &sr.parent->left : &sr.parent->right;
        orc_atomic<Node*>* other_side =
            (key < sr.parent->key) ? &sr.parent->right : &sr.parent->left;
        const bool key_side_flagged = is_marked(key_side->load_unsafe());
        orc_atomic<Node*>* sibling_addr = key_side_flagged ? other_side : key_side;
        // Tag the sibling edge (freeze the parent).
        orc_ptr<Node*> sib;
        while (true) {
            orc_ptr<Node*> v = sibling_addr->load();
            if (is_flagged(v.get())) {
                sib = std::move(v);
                break;
            }
            if (sibling_addr->cas(v, get_flagged(v.get()))) {
                sib = std::move(v);
                break;
            }
        }
        // Swing ancestor -> sibling, preserving the sibling's own flag. No
        // retire calls: the CAS drops the chain's last hard link and OrcGC
        // cascades through parent, doomed leaf and any tagged interior chain.
        Node* desired = is_marked(sib.get()) ? get_marked(sib.unmarked()) : sib.unmarked();
        return ancestor_field->cas(sr.successor.unmarked(), desired);
    }

    OrcDomain* const dom_;
    orc_atomic<Node*> root_;
};

}  // namespace orcgc
