// Harris's original lock-free linked list (DISC 2001) with OrcGC.
//
// This is the paper's "obstacle 2" example (§2): Harris traversals walk
// *through* logically-deleted (marked) nodes and unlink whole marked chains
// with one CAS, so removed nodes' next pointers must stay intact and
// followable after removal — which rules out HP/PTB/HE-style manual schemes
// (a traversal may hold a pointer to a node that was already retired by
// another thread). Under OrcGC the chain nodes stay alive exactly as long
// as some hard link or local reference can still reach them, so the original
// algorithm runs unmodified, with type annotation only.
#pragma once

#include <utility>

#include "common/alloc_tracker.hpp"
#include "common/marked_ptr.hpp"
#include "core/orc.hpp"

namespace orcgc {

template <typename K>
class HarrisListOrc {
  public:
    struct Node : orc_base, TrackedObject {
        const K key;
        orc_atomic<Node*> next{nullptr};
        explicit Node(K k) : key(k) {}
    };

    /// Optionally binds the list to a reclamation domain (default: global).
    explicit HarrisListOrc(OrcDomain* domain = nullptr)
        : dom_(domain != nullptr ? domain : &OrcDomain::global()) {
        ScopedDomain guard(*dom_);
        // Head sentinel (conceptually key = -inf); never marked, never removed.
        orc_ptr<Node*> sentinel = make_orc<Node>(K{});
        head_.store(sentinel);
    }

    HarrisListOrc(const HarrisListOrc&) = delete;
    HarrisListOrc& operator=(const HarrisListOrc&) = delete;
    ~HarrisListOrc() = default;  // cascade from head_

    /// The reclamation domain this structure lives in.
    OrcDomain& domain() const noexcept { return *dom_; }

    bool insert(K key) {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> node = make_orc<Node>(key);
        while (true) {
            Window w = search(key);
            if (w.right && w.right->key == key) return false;
            node->next.store(w.right);
            if (w.left->next.cas(w.right, node)) return true;
        }
    }

    bool remove(K key) {
        ScopedDomain guard(*dom_);
        while (true) {
            Window w = search(key);
            if (!w.right || w.right->key != key) return false;
            orc_ptr<Node*> right_next = w.right->next.load();
            if (right_next.is_marked()) continue;  // someone else is deleting it
            // Logical delete.
            if (!w.right->next.cas(right_next, get_marked(right_next.get()))) continue;
            // Physical unlink (best effort — a later search cleans up).
            if (!w.left->next.cas(w.right, right_next)) {
                search(key);
            }
            return true;
        }
    }

    bool contains(K key) {
        ScopedDomain guard(*dom_);
        Window w = search(key);
        return w.right && w.right->key == key;
    }

  private:
    struct Window {
        orc_ptr<Node*> left;   // last unmarked node with key < target
        orc_ptr<Node*> right;  // first unmarked node with key >= target (may be null)
    };

    /// Harris's search: find (left, right) and unlink any marked chain
    /// between them with a single CAS on left->next. Retry via helper-return,
    /// never a backward goto over orc_ptr declarations (gcc NRVO+goto
    /// destructor bug — see michael_list_orc.hpp).
    Window search(K key) {
        while (true) {
            Window w;
            if (search_attempt(key, w)) return w;
        }
    }

    bool search_attempt(K key, Window& w) {
        w.left = head_.load();          // sentinel: always unmarked
        orc_ptr<Node*> left_next = w.left->next.load();
        orc_ptr<Node*> t = left_next;   // traversal cursor (may hit marked nodes)
        while (true) {
            if (!t) {
                w.right = nullptr;
                break;
            }
            t.unmark();
            orc_ptr<Node*> t_next = t->next.load();  // t's mark lives in t_next
            if (!t_next.is_marked()) {
                if (!(t->key < key)) {
                    w.right = t;
                    break;
                }
                w.left = t;
                left_next = t_next;
            }
            // Walk through marked nodes without updating left: their next
            // pointers are frozen in place and remain followable (obstacle 2).
            t = std::move(t_next);
        }
        // Is there a marked chain between left and right?
        if (left_next.get() == w.right.get()) {
            // Clean window — but re-check right was not marked meanwhile.
            return !(w.right && w.right->next.load().is_marked());
        }
        // Unlink the whole chain [left_next, right) in one CAS; the displaced
        // chain is reclaimed automatically as its nodes lose referents.
        if (!w.left->next.cas(left_next, w.right)) return false;
        return !(w.right && w.right->next.load().is_marked());
    }

    OrcDomain* const dom_;
    orc_atomic<Node*> head_;
};

}  // namespace orcgc
