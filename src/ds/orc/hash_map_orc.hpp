// Michael-style lock-free hash set over OrcGC list buckets (SPAA 2002 —
// the paper the Michael list comes from is literally about these hash
// tables; the list is its building block).
//
// Each bucket is a MichaelListOrc; reclamation state lives in the shared
// OrcDomain (not per bucket), so a bucket costs one orc_atomic head plus
// the domain pointer and the table scales to many buckets. This is
// the "many short chains" complement to the paper's single 10^3-key list
// benchmark, and an integration test bed combining the annotation-based
// list with dense fan-out.
#pragma once

#include <cstdint>
#include <deque>

#include "ds/orc/michael_list_orc.hpp"

namespace orcgc {

/// Fibonacci (golden-ratio) multiplicative hash: cheap and well-distributed
/// for the dense integer keys the benchmarks use.
inline std::uint64_t mix_hash(std::uint64_t key) noexcept {
    const std::uint64_t h = key * 0x9E3779B97F4A7C15ULL;
    return h ^ (h >> 32);
}

template <typename K>
class HashMapOrc {
  public:
    /// Optionally binds the whole table (every bucket list) to a reclamation
    /// domain (default: global). A deque holds the buckets because the list
    /// type is neither copyable nor movable once it carries its domain
    /// binding — deque emplaces in place and never relocates.
    explicit HashMapOrc(std::size_t buckets = 1024, OrcDomain* domain = nullptr)
        : dom_(domain != nullptr ? domain : &OrcDomain::global()),
          mask_(round_up_pow2(buckets) - 1) {
        for (std::size_t i = 0; i <= mask_; ++i) buckets_.emplace_back(dom_);
    }

    HashMapOrc(const HashMapOrc&) = delete;
    HashMapOrc& operator=(const HashMapOrc&) = delete;

    /// The reclamation domain this structure lives in.
    OrcDomain& domain() const noexcept { return *dom_; }

    bool insert(K key) { return bucket(key).insert(key); }
    bool remove(K key) { return bucket(key).remove(key); }
    bool contains(K key) { return bucket(key).contains(key); }

    std::size_t bucket_count() const noexcept { return buckets_.size(); }

  private:
    static std::size_t round_up_pow2(std::size_t n) {
        std::size_t p = 1;
        while (p < n) p <<= 1;
        return p;
    }

    MichaelListOrc<K>& bucket(K key) {
        return buckets_[mix_hash(static_cast<std::uint64_t>(key)) & mask_];
    }

    OrcDomain* const dom_;
    const std::size_t mask_;
    std::deque<MichaelListOrc<K>> buckets_;
};

}  // namespace orcgc
