// Michael-style lock-free hash set over OrcGC list buckets (SPAA 2002 —
// the paper the Michael list comes from is literally about these hash
// tables; the list is its building block).
//
// Each bucket is a MichaelListOrc, which carries no per-instance reclaimer
// state (the OrcGC engine is process-wide), so a bucket costs one
// orc_atomic head — 8 bytes — and the table scales to many buckets. This is
// the "many short chains" complement to the paper's single 10^3-key list
// benchmark, and an integration test bed combining the annotation-based
// list with dense fan-out.
#pragma once

#include <cstdint>
#include <vector>

#include "ds/orc/michael_list_orc.hpp"

namespace orcgc {

/// Fibonacci (golden-ratio) multiplicative hash: cheap and well-distributed
/// for the dense integer keys the benchmarks use.
inline std::uint64_t mix_hash(std::uint64_t key) noexcept {
    const std::uint64_t h = key * 0x9E3779B97F4A7C15ULL;
    return h ^ (h >> 32);
}

template <typename K>
class HashMapOrc {
  public:
    explicit HashMapOrc(std::size_t buckets = 1024)
        : mask_(round_up_pow2(buckets) - 1), buckets_(mask_ + 1) {}

    HashMapOrc(const HashMapOrc&) = delete;
    HashMapOrc& operator=(const HashMapOrc&) = delete;

    bool insert(K key) { return bucket(key).insert(key); }
    bool remove(K key) { return bucket(key).remove(key); }
    bool contains(K key) { return bucket(key).contains(key); }

    std::size_t bucket_count() const noexcept { return buckets_.size(); }

  private:
    static std::size_t round_up_pow2(std::size_t n) {
        std::size_t p = 1;
        while (p < n) p <<= 1;
        return p;
    }

    MichaelListOrc<K>& bucket(K key) {
        return buckets_[mix_hash(static_cast<std::uint64_t>(key)) & mask_];
    }

    const std::size_t mask_;
    std::vector<MichaelListOrc<K>> buckets_;
};

}  // namespace orcgc
