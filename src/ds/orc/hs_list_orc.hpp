// Herlihy–Shavit lock-free list with wait-free lookups ("The Art of
// Multiprocessor Programming", ch. 9) under OrcGC.
//
// Insert/remove are Michael-style (restarting find that physically unlinks
// marked nodes); contains() is a single forward pass that never restarts and
// never writes — it walks straight through logically-deleted nodes. That
// wait-free guarantee requires removed nodes to stay allocated and their
// next pointers frozen while any traversal can still reach them, which is
// the paper's obstacle 2: no manual lock-free scheme in Table 1 supports it,
// OrcGC does.
#pragma once

#include <utility>

#include "common/alloc_tracker.hpp"
#include "common/marked_ptr.hpp"
#include "core/orc.hpp"

namespace orcgc {

template <typename K>
class HSListOrc {
  public:
    struct Node : orc_base, TrackedObject {
        const K key;
        orc_atomic<Node*> next{nullptr};
        explicit Node(K k) : key(k) {}
    };

    /// Optionally binds the list to a reclamation domain (default: global).
    explicit HSListOrc(OrcDomain* domain = nullptr)
        : dom_(domain != nullptr ? domain : &OrcDomain::global()) {}
    HSListOrc(const HSListOrc&) = delete;
    HSListOrc& operator=(const HSListOrc&) = delete;
    ~HSListOrc() = default;

    /// The reclamation domain this structure lives in.
    OrcDomain& domain() const noexcept { return *dom_; }

    bool insert(K key) {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> node = make_orc<Node>(key);
        while (true) {
            Window w = find(key);
            if (w.found) return false;
            node->next.store(w.curr);
            if (w.prev_link->cas(w.curr, node)) return true;
        }
    }

    bool remove(K key) {
        ScopedDomain guard(*dom_);
        while (true) {
            Window w = find(key);
            if (!w.found) return false;
            if (!w.curr->next.cas(w.next, get_marked(w.next.get()))) continue;
            if (!w.prev_link->cas(w.curr, w.next)) find(key);
            return true;
        }
    }

    /// Wait-free lookup: one pass, no restarts, no helping. Keys are strictly
    /// increasing along the walk (marked nodes keep their frozen successor),
    /// so the loop terminates after at most |list| steps.
    bool contains(K key) {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> curr = head_.load();
        curr.unmark();
        while (curr && curr->key < key) {
            orc_ptr<Node*> next = curr->next.load();
            curr = std::move(next);
            curr.unmark();
        }
        if (!curr || curr->key != key) return false;
        // Present iff not logically deleted.
        return !curr->next.load().is_marked();
    }

  private:
    struct Window {
        orc_atomic<Node*>* prev_link;
        orc_ptr<Node*> prev;
        orc_ptr<Node*> curr;
        orc_ptr<Node*> next;
        bool found = false;
    };

    // Retry via loops/helper-returns, never a backward goto over orc_ptr
    // declarations (gcc NRVO+goto destructor bug — see michael_list_orc.hpp).
    Window find(K key) {
        while (true) {
            Window w;
            if (find_attempt(key, w)) return w;
        }
    }

    bool find_attempt(K key, Window& w) {
        w.prev = nullptr;
        w.prev_link = &head_;
        w.curr = w.prev_link->load();
        if (w.curr.is_marked()) return false;
        while (true) {
            if (!w.curr) {
                w.found = false;
                return true;
            }
            w.next = w.curr->next.load();
            if (w.prev_link->load_unsafe() != w.curr.get()) return false;
            if (!w.next.is_marked()) {
                if (!(w.curr->key < key)) {
                    w.found = (w.curr->key == key);
                    return true;
                }
                w.prev = std::move(w.curr);
                w.prev_link = &w.prev->next;
                w.curr = std::move(w.next);
            } else {
                w.next.unmark();
                if (!w.prev_link->cas(w.curr, w.next)) return false;
                w.curr = std::move(w.next);
            }
        }
    }

    OrcDomain* const dom_;
    orc_atomic<Node*> head_;
};

}  // namespace orcgc
