// Michael–Scott lock-free queue (PODC 1996) with OrcGC automatic
// reclamation — the paper's running example (Algorithm 1).
//
// Note what is *absent* compared to a hazard-pointer port: no protect
// indices, no retire calls, no free-list. The only changes versus the
// textbook algorithm are the four methodology steps of §4.1.1 (orc_base,
// make_orc, orc_atomic links, orc_ptr locals).
#pragma once

#include <optional>
#include <utility>

#include "core/orc.hpp"

namespace orcgc {

template <typename T>
class MSQueueOrc {
    struct Node : orc_base {
        T item;
        orc_atomic<Node*> next{nullptr};

        Node() : item{} {}
        explicit Node(T it) : item(std::move(it)) {}
    };

  public:
    /// Optionally binds the queue to a reclamation domain (default: global).
    explicit MSQueueOrc(OrcDomain* domain = nullptr)
        : dom_(domain != nullptr ? domain : &OrcDomain::global()) {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> sentinel = make_orc<Node>();
        head_.store(sentinel);
        tail_.store(sentinel);
    }

    MSQueueOrc(const MSQueueOrc&) = delete;
    MSQueueOrc& operator=(const MSQueueOrc&) = delete;

    // Destruction: the head_/tail_ orc_atomic destructors drop their hard
    // links and the node chain cascades through the engine's recursion-safe
    // retire (§4.1 "deletion of the first node on a large list ... may
    // trigger the deletion of the entire list").
    ~MSQueueOrc() = default;

    /// The reclamation domain this structure lives in.
    OrcDomain& domain() const noexcept { return *dom_; }

    void enqueue(T item) {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> new_node = make_orc<Node>(std::move(item));
        while (true) {
            orc_ptr<Node*> ltail = tail_.load();
            orc_ptr<Node*> lnext = ltail->next.load();
            if (lnext == nullptr) {
                if (ltail->next.cas(nullptr, new_node)) {
                    tail_.cas(ltail, new_node);
                    return;
                }
            } else {
                tail_.cas(ltail, lnext);  // help a lagging tail
            }
        }
    }

    std::optional<T> dequeue() {
        ScopedDomain guard(*dom_);
        while (true) {
            orc_ptr<Node*> node = head_.load();
            orc_ptr<Node*> lnext = node->next.load();
            if (lnext == nullptr) return std::nullopt;  // empty
            if (head_.cas(node, lnext)) {
                // lnext is the new sentinel; its item is ours. Protected by
                // our orc_ptr, so reading after the CAS is safe.
                return std::move(lnext->item);
            }
        }
    }

    bool empty() const {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> node = head_.load();
        return node->next.load() == nullptr;
    }

  private:
    OrcDomain* const dom_;
    orc_atomic<Node*> head_;
    orc_atomic<Node*> tail_;
};

}  // namespace orcgc
