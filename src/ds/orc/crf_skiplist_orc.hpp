// CRF-skip: the paper's new lock-free skip list (§5), designed so that
// removed nodes are *completely isolated* from the structure.
//
// Rationale: in the Herlihy–Shavit skip list, removed nodes keep pointing at
// the live list and at each other, forming chains whose length is bounded
// only by the key range — so even with OrcGC the unreclaimed-object bound
// degrades (the paper measured ~19 GB of footprint for HS-skip vs <1 GB for
// CRF-skip). CRF-skip restores the linear bound: after the winning remover
// physically detaches its victim from every level, it *poisons* the victim's
// next pointers, which (a) drops the victim's hard links, breaking any chain
// through it, and (b) signals concurrent traversals standing on the victim
// to restart. contains() is therefore lock-free rather than wait-free — the
// trade the paper calls out. The level-0 poison is a reserved non-address
// flag (restart-only); upper-level poison is a marked pointer to the tail
// sentinel, so that a victim re-linked by its slow inserter (obstacle 3)
// stays snippable instead of trapping every traversal — see remove().
#pragma once

#include <cstdint>
#include <utility>

#include "common/alloc_tracker.hpp"
#include "common/marked_ptr.hpp"
#include "common/rng.hpp"
#include "core/orc.hpp"
#include "ds/orc/hs_skiplist_orc.hpp"  // kSkipListMaxLevel, random_skiplist_level

namespace orcgc {

template <typename K>
class CRFSkipListOrc {
  public:
    struct Node : orc_base, TrackedObject {
        enum class Rank : std::uint8_t { kHead, kNormal, kTail };
        const K key;
        const Rank rank;
        const int top_level;
        orc_atomic<Node*> next[kSkipListMaxLevel];

        Node(K k, Rank r, int top) : key(k), rank(r), top_level(top) {}

        bool precedes(K other) const noexcept {
            if (rank == Rank::kHead) return true;
            if (rank == Rank::kTail) return false;
            return key < other;
        }
        bool equals(K other) const noexcept { return rank == Rank::kNormal && key == other; }
    };

    /// Reserved non-address "poisoned" link value. Carries only a stolen bit,
    /// so the orc machinery treats it as null (no counter updates, no deref).
    static Node* poison() noexcept { return reinterpret_cast<Node*>(kFlagBit); }
    static bool is_poison(Node* p) noexcept {
        return reinterpret_cast<std::uintptr_t>(p) == kFlagBit;
    }

    /// Optionally binds the skip list to a reclamation domain (default: global).
    explicit CRFSkipListOrc(OrcDomain* domain = nullptr)
        : dom_(domain != nullptr ? domain : &OrcDomain::global()) {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> head = make_orc<Node>(K{}, Node::Rank::kHead, kSkipListMaxLevel - 1);
        orc_ptr<Node*> tail = make_orc<Node>(K{}, Node::Rank::kTail, kSkipListMaxLevel - 1);
        for (int level = 0; level < kSkipListMaxLevel; ++level) head->next[level].store(tail);
        head_.store(head);
        tail_.store(tail);
    }

    CRFSkipListOrc(const CRFSkipListOrc&) = delete;
    CRFSkipListOrc& operator=(const CRFSkipListOrc&) = delete;
    ~CRFSkipListOrc() = default;

    /// The reclamation domain this structure lives in.
    OrcDomain& domain() const noexcept { return *dom_; }

    bool insert(K key) {
        ScopedDomain guard(*dom_);
        const int top = random_skiplist_level(tl_rng());
        orc_ptr<Node*> node = make_orc<Node>(key, Node::Rank::kNormal, top);
        orc_ptr<Node*> preds[kSkipListMaxLevel];
        orc_ptr<Node*> succs[kSkipListMaxLevel];
        while (true) {
            if (find(key, preds, succs)) return false;
            for (int level = 0; level <= top; ++level) node->next[level].store(succs[level]);
            if (!preds[0]->next[0].cas(succs[0], node)) continue;
            for (int level = 1; level <= top; ++level) {
                while (true) {
                    orc_ptr<Node*> cur = node->next[level].load();
                    // Removed (marked) or already detached+poisoned: stop.
                    if (cur.is_marked() || is_poison(cur.get())) return true;
                    if (cur.get() != succs[level].get() &&
                        !node->next[level].cas(cur, succs[level])) {
                        continue;
                    }
                    if (preds[level]->next[level].cas(succs[level], node)) {
                        // Validate after publishing: a remover may have
                        // marked (or already poisoned) the node between our
                        // read of `cur` and the link above, in which case its
                        // detach pass cannot have seen this link — undo it
                        // ourselves so the node is not left reachable. If
                        // the undo CAS fails, some walk snipped it already.
                        orc_ptr<Node*> after = node->next[level].load();
                        if (after.is_marked() || is_poison(after.get())) {
                            preds[level]->next[level].cas(node, succs[level]);
                            return true;
                        }
                        break;
                    }
                    find(key, preds, succs);
                }
            }
            return true;
        }
    }

    bool remove(K key) {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> preds[kSkipListMaxLevel];
        orc_ptr<Node*> succs[kSkipListMaxLevel];
        if (!find(key, preds, succs)) return false;
        orc_ptr<Node*> victim = succs[0];
        // Mark top-down (skip levels another remover already poisoned).
        for (int level = victim->top_level; level >= 1; --level) {
            orc_ptr<Node*> succ = victim->next[level].load();
            while (!succ.is_marked() && !is_poison(succ.get())) {
                victim->next[level].cas(succ, get_marked(succ.get()));
                succ = victim->next[level].load();
            }
        }
        while (true) {
            orc_ptr<Node*> succ = victim->next[0].load();
            if (succ.is_marked() || is_poison(succ.get())) return false;  // lost the race
            if (!victim->next[0].cas(succ, get_marked(succ.get()))) continue;
            // We own the removal: detach from every level, then poison.
            // find() alone cannot be trusted to do the detaching — its walk
            // stops at the first key-equal node, so a marked victim sitting
            // behind a freshly inserted node of the same key is never
            // visited, never snipped, and a passive "is it still linked?"
            // check spins forever once other threads go quiescent. The purge
            // walk continues through the whole equal-key run and snips every
            // marked node it passes, so each pass makes progress; the loop
            // only repeats if the victim's own inserter re-linked it
            // (obstacle 3), which it does at most once per level.
            for (int level = victim->top_level; level >= 0; --level) {
                while (purge_level(victim.get(), key, level)) {
                }
            }
            // Poison: drop the victim's hard links so chains through it
            // break. The two forms differ because the two failure modes
            // differ. Level 0 cannot be re-linked (the bottom link happens
            // before the node is public), so an unreachable restart-flag is
            // safe there and forces any reader still standing on the victim
            // to retry rather than silently walk past live keys. Upper
            // levels CAN be re-linked by a slow inserter after our purge
            // confirmed them detached — so their poison must stay
            // *snippable*: a marked pointer to the (immortal, already
            // retained) tail sentinel, which any later walk removes like an
            // ordinary marked node. An unreachable flag there would wedge
            // every traversal forever the first time a relink landed.
            orc_ptr<Node*> t = tail_.load();
            for (int level = 1; level <= victim->top_level; ++level) {
                victim->next[level].store(get_marked(t.get()));
            }
            victim->next[0].store(poison());
            return true;
        }
    }

    /// Lock-free lookup: single descent, but restarts if it steps onto a
    /// poisoned (fully detached) node — the progress trade of §5. Retry via
    /// helper-return, never a backward goto over orc_ptr declarations (gcc
    /// NRVO+goto destructor bug — see michael_list_orc.hpp).
    bool contains(K key) {
        ScopedDomain guard(*dom_);
        while (true) {
            const int result = contains_attempt(key);
            if (result >= 0) return result != 0;
        }
    }

  private:
    static Xoshiro256& tl_rng() {
        static thread_local Xoshiro256 rng(0xBADC0DE ^ (std::uint64_t)thread_id());
        return rng;
    }

    bool find(K key, orc_ptr<Node*>* preds, orc_ptr<Node*>* succs) {
        while (true) {
            const int result = find_attempt(key, preds, succs);
            if (result >= 0) return result != 0;
        }
    }

    /// -1 = retry, 0 = not found, 1 = found.
    int find_attempt(K key, orc_ptr<Node*>* preds, orc_ptr<Node*>* succs) {
        orc_ptr<Node*> pred = head_.load();
        orc_ptr<Node*> curr;
        for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
            curr = pred->next[level].load();
            if (is_poison(curr.get())) return -1;
            curr.unmark();
            while (true) {
                orc_ptr<Node*> succ = curr->next[level].load();
                if (is_poison(succ.get())) return -1;
                while (succ.is_marked()) {
                    succ.unmark();
                    if (!pred->next[level].cas(curr, succ)) return -1;
                    curr = pred->next[level].load();
                    if (curr.is_marked() || is_poison(curr.get())) return -1;
                    succ = curr->next[level].load();
                    if (is_poison(succ.get())) return -1;
                }
                if (curr->precedes(key)) {
                    pred = curr;
                    curr = std::move(succ);
                    curr.unmark();
                } else {
                    break;
                }
            }
            preds[level] = pred;
            succs[level] = curr;
        }
        return curr->equals(key) ? 1 : 0;
    }

    /// -1 = retry, 0 = absent (walked past), 1 = still linked.
    int contains_attempt(K key) {
        orc_ptr<Node*> pred = head_.load();
        orc_ptr<Node*> curr;
        for (int level = kSkipListMaxLevel - 1; level >= 0; --level) {
            curr = pred->next[level].load();
            if (is_poison(curr.get())) return -1;
            curr.unmark();
            while (true) {
                orc_ptr<Node*> succ = curr->next[level].load();
                if (is_poison(succ.get())) return -1;
                while (succ.is_marked()) {  // marked-but-not-detached: step over
                    curr = std::move(succ);
                    curr.unmark();
                    succ = curr->next[level].load();
                    if (is_poison(succ.get())) return -1;
                }
                if (curr->precedes(key)) {
                    pred = std::move(curr);
                    curr = std::move(succ);
                    curr.unmark();
                } else {
                    break;
                }
            }
        }
        return curr->equals(key) ? 1 : 0;
    }

    /// One detach pass over `level`: walks from the head through every node
    /// whose key precedes *or equals* `key` — unlike find(), which breaks at
    /// the first non-preceding node — snipping each marked node it steps
    /// over, the victim included. Returns whether the victim was seen still
    /// linked during the pass (a re-link by its inserter may follow, hence
    /// the caller's loop). Lock-free: a pass either snips, walks forward, or
    /// restarts because a competing CAS already changed the chain.
    bool purge_level(Node* victim, K key, int level) {
        while (true) {
            const int result = purge_level_attempt(victim, key, level);
            if (result >= 0) return result != 0;
        }
    }

    /// -1 = retry, 0 = victim not encountered, 1 = victim seen linked.
    int purge_level_attempt(Node* victim, K key, int level) {
        bool saw_victim = false;
        orc_ptr<Node*> pred = head_.load();
        orc_ptr<Node*> curr = pred->next[level].load();
        if (is_poison(curr.get())) return -1;
        curr.unmark();
        while (true) {
            orc_ptr<Node*> succ = curr->next[level].load();
            if (is_poison(succ.get())) return -1;
            while (succ.is_marked()) {
                if (curr.unmarked() == victim) saw_victim = true;
                succ.unmark();
                if (!pred->next[level].cas(curr, succ)) return -1;
                curr = pred->next[level].load();
                if (curr.is_marked() || is_poison(curr.get())) return -1;
                succ = curr->next[level].load();
                if (is_poison(succ.get())) return -1;
            }
            if (curr->precedes(key) || curr->equals(key)) {
                pred = curr;
                curr = std::move(succ);
                curr.unmark();
            } else {
                return saw_victim ? 1 : 0;
            }
        }
    }

    OrcDomain* const dom_;
    orc_atomic<Node*> head_;
    orc_atomic<Node*> tail_;  // hard link keeps the upper-level poison target immortal
};

}  // namespace orcgc
