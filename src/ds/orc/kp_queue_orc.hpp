// Kogan–Petrank wait-free MPMC queue (PPoPP 2011) with OrcGC.
//
// The paper's "obstacle 1" example (§2): every operation is published as an
// immutable OpDesc in a per-thread state array and completed cooperatively
// by helpers in phase order, so a node (and each OpDesc) can be unlinked by
// *any* thread at *no* fixed program point — there is no place to put a
// retire() call, which rules out every manual scheme in Table 1. With OrcGC
// the descriptors and nodes are hard-linked from the state array / queue and
// vanish automatically when the last link and local reference drop.
//
// Faithful to the published algorithm, with one simplification: maxPhase is
// a fetch-add counter instead of a scan over the state array (same ordering
// guarantees, fewer loads).
#pragma once

#include <atomic>
#include <optional>
#include <utility>

#include "common/alloc_tracker.hpp"
#include "common/cacheline.hpp"
#include "common/thread_registry.hpp"
#include "core/orc.hpp"

namespace orcgc {

template <typename T>
class KPQueueOrc {
    struct Node : orc_base, TrackedObject {
        T value;
        orc_atomic<Node*> next{nullptr};
        const int enq_tid;
        std::atomic<int> deq_tid{-1};
        Node() : value{}, enq_tid(-1) {}
        Node(T v, int etid) : value(std::move(v)), enq_tid(etid) {}
    };

    /// Immutable operation descriptor; replaced (never mutated) via CAS.
    struct OpDesc : orc_base, TrackedObject {
        const long phase;
        const bool pending;
        const bool enqueue;
        orc_atomic<Node*> node;  // hard link to the op's node (or null)
        OpDesc(long ph, bool pend, bool enq, Node* n) : phase(ph), pending(pend), enqueue(enq) {
            if (n != nullptr) node.store(n);
        }
    };

  public:
    /// Optionally binds the queue to a reclamation domain (default: global).
    explicit KPQueueOrc(OrcDomain* domain = nullptr)
        : dom_(domain != nullptr ? domain : &OrcDomain::global()) {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> sentinel = make_orc<Node>();
        head_.store(sentinel);
        tail_.store(sentinel);
    }

    KPQueueOrc(const KPQueueOrc&) = delete;
    KPQueueOrc& operator=(const KPQueueOrc&) = delete;
    ~KPQueueOrc() = default;  // state_/head_/tail_ destructors cascade

    /// The reclamation domain this structure lives in.
    OrcDomain& domain() const noexcept { return *dom_; }

    void enqueue(T value) {
        ScopedDomain guard(*dom_);
        const int tid = thread_id();
        const long phase = max_phase_.fetch_add(1, std::memory_order_acq_rel) + 1;
        orc_ptr<Node*> node = make_orc<Node>(std::move(value), tid);
        orc_ptr<OpDesc*> desc = make_orc<OpDesc>(phase, true, true, node.get());
        state_[tid]->store(desc);
        help(phase);
        help_finish_enqueue();
    }

    std::optional<T> dequeue() {
        ScopedDomain guard(*dom_);
        const int tid = thread_id();
        const long phase = max_phase_.fetch_add(1, std::memory_order_acq_rel) + 1;
        orc_ptr<OpDesc*> desc = make_orc<OpDesc>(phase, true, false, nullptr);
        state_[tid]->store(desc);
        help(phase);
        // Make sure the head has swung past the sentinel this op claimed
        // before returning — otherwise our own next dequeue could re-claim it.
        help_finish_dequeue();
        orc_ptr<OpDesc*> final_desc = state_[tid]->load();
        orc_ptr<Node*> node = final_desc->node.load();
        if (node == nullptr) return std::nullopt;  // linearized on empty
        // `node` is the pre-dequeue sentinel; the taken value sits in its
        // successor (immutable once linked).
        orc_ptr<Node*> succ = node->next.load();
        return succ->value;
    }

    bool empty() {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> first = head_.load();
        return first->next.load() == nullptr;
    }

  private:
    bool is_still_pending(int tid, long phase) {
        orc_ptr<OpDesc*> desc = state_[tid]->load();
        return desc != nullptr && desc->pending && desc->phase <= phase;
    }

    /// Completes every pending operation with phase <= `phase` (wait-free
    /// helping: later ops help earlier ones).
    void help(long phase) {
        const int wm = thread_id_watermark();
        for (int i = 0; i < wm; ++i) {
            orc_ptr<OpDesc*> desc = state_[i]->load();
            if (desc == nullptr || !desc->pending || desc->phase > phase) continue;
            if (desc->enqueue) {
                help_enqueue(i, desc->phase);
            } else {
                help_dequeue(i, desc->phase);
            }
        }
    }

    void help_enqueue(int tid, long phase) {
        while (is_still_pending(tid, phase)) {
            orc_ptr<Node*> last = tail_.load();
            orc_ptr<Node*> next = last->next.load();
            if (last.get() != tail_.load_unsafe()) continue;
            if (next == nullptr) {  // queue tail is settled: try to link
                if (!is_still_pending(tid, phase)) return;
                orc_ptr<OpDesc*> desc = state_[tid]->load();
                if (desc == nullptr || !desc->pending || desc->phase > phase) continue;
                orc_ptr<Node*> node = desc->node.load();
                if (last->next.cas(nullptr, node)) {
                    help_finish_enqueue();
                    return;
                }
            } else {
                help_finish_enqueue();  // tail lagging: finish the other op
            }
        }
    }

    void help_finish_enqueue() {
        orc_ptr<Node*> last = tail_.load();
        orc_ptr<Node*> next = last->next.load();
        if (next == nullptr) return;
        const int tid = next->enq_tid;
        if (tid < 0) return;
        orc_ptr<OpDesc*> cur_desc = state_[tid]->load();
        if (last.get() != tail_.load_unsafe() || cur_desc == nullptr) return;
        if (cur_desc->node.load_unsafe() != next.get()) return;
        orc_ptr<OpDesc*> new_desc =
            make_orc<OpDesc>(cur_desc->phase, false, true, next.get());
        state_[tid]->cas(cur_desc, new_desc);
        tail_.cas(last, next);
    }

    void help_dequeue(int tid, long phase) {
        while (is_still_pending(tid, phase)) {
            orc_ptr<Node*> first = head_.load();
            orc_ptr<Node*> last = tail_.load();
            orc_ptr<Node*> next = first->next.load();
            if (first.get() != head_.load_unsafe()) continue;
            if (first.get() == last.get()) {
                if (next == nullptr) {  // queue empty: linearize the failure
                    orc_ptr<OpDesc*> cur_desc = state_[tid]->load();
                    if (cur_desc == nullptr || !cur_desc->pending || cur_desc->phase > phase) {
                        return;
                    }
                    if (last.get() != tail_.load_unsafe()) continue;
                    orc_ptr<OpDesc*> new_desc =
                        make_orc<OpDesc>(cur_desc->phase, false, false, nullptr);
                    state_[tid]->cas(cur_desc, new_desc);
                } else {
                    help_finish_enqueue();  // tail lagging
                }
            } else {
                orc_ptr<OpDesc*> cur_desc = state_[tid]->load();
                if (cur_desc == nullptr || !cur_desc->pending || cur_desc->phase > phase) return;
                orc_ptr<Node*> node = cur_desc->node.load();
                if (first.get() != head_.load_unsafe()) continue;
                if (node.get() != first.get()) {
                    // Announce which sentinel this dequeue will consume.
                    orc_ptr<OpDesc*> new_desc =
                        make_orc<OpDesc>(cur_desc->phase, true, false, first.get());
                    if (!state_[tid]->cas(cur_desc, new_desc)) continue;
                }
                int expected = -1;
                first->deq_tid.compare_exchange_strong(expected, tid,
                                                       std::memory_order_seq_cst);
                help_finish_dequeue();
            }
        }
    }

    void help_finish_dequeue() {
        orc_ptr<Node*> first = head_.load();
        orc_ptr<Node*> next = first->next.load();
        const int tid = first->deq_tid.load(std::memory_order_seq_cst);
        if (tid == -1) return;
        orc_ptr<OpDesc*> cur_desc = state_[tid]->load();
        if (first.get() != head_.load_unsafe() || next == nullptr) return;
        if (cur_desc == nullptr) return;
        orc_ptr<OpDesc*> new_desc = make_orc<OpDesc>(
            cur_desc->phase, false, false, cur_desc->node.load_unsafe());
        state_[tid]->cas(cur_desc, new_desc);
        head_.cas(first, next);
    }

    OrcDomain* const dom_;
    orc_atomic<Node*> head_;
    orc_atomic<Node*> tail_;
    // Announce slots are written by their owner and scanned by every helper;
    // without padding, 16 adjacent descriptors share a line and each publish
    // invalidates 15 other threads' reads.
    CachelinePadded<orc_atomic<OpDesc*>> state_[kMaxThreads] = {};
    std::atomic<long> max_phase_{0};
};

}  // namespace orcgc
