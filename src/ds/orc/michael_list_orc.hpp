// Michael's lock-free ordered list with OrcGC automatic reclamation.
//
// Same algorithm as ds/michael_list.hpp, but integrated purely via the
// paper's type-annotation methodology (§4.1.1): no retire() calls, no
// hazard-index bookkeeping — orc_ptr locals carry the protection and the
// unlink CAS itself drops the removed node's last hard link.
#pragma once

#include <utility>

#include "common/alloc_tracker.hpp"
#include "common/marked_ptr.hpp"
#include "core/orc.hpp"

namespace orcgc {

template <typename K>
class MichaelListOrc {
  public:
    struct Node : orc_base, TrackedObject {
        const K key;
        orc_atomic<Node*> next{nullptr};
        explicit Node(K k) : key(k) {}
    };

    /// Optionally binds the list to a reclamation domain; nodes are
    /// allocated into it and every operation protects in it. Defaults to
    /// the global domain (single-domain code is unchanged).
    explicit MichaelListOrc(OrcDomain* domain = nullptr)
        : dom_(domain != nullptr ? domain : &OrcDomain::global()) {}
    MichaelListOrc(const MichaelListOrc&) = delete;
    MichaelListOrc& operator=(const MichaelListOrc&) = delete;
    // head_'s destructor drops the first node; the chain cascades.
    ~MichaelListOrc() = default;

    /// The reclamation domain this structure lives in.
    OrcDomain& domain() const noexcept { return *dom_; }

    bool insert(K key) {
        ScopedDomain guard(*dom_);
        orc_ptr<Node*> node = make_orc<Node>(key);
        while (true) {
            Window w = find(key);
            if (w.found) return false;  // `node` auto-reclaimed by orc_ptr
            node->next.store(w.curr);
            if (w.prev_link->cas(w.curr, node)) return true;
        }
    }

    bool remove(K key) {
        ScopedDomain guard(*dom_);
        while (true) {
            Window w = find(key);
            if (!w.found) return false;
            // Logical delete: mark curr's next (same object, so the counters
            // cancel; the CAS is what publishes the mark).
            if (!w.curr->next.cas(w.next, get_marked(w.next.get()))) continue;
            // Physical unlink: this CAS removes the last hard link to curr;
            // OrcGC retires it automatically once local refs vanish.
            if (!w.prev_link->cas(w.curr, w.next)) {
                find(key);  // help unlink
            }
            return true;
        }
    }

    bool contains(K key) {
        ScopedDomain guard(*dom_);
        return find(key).found;
    }

  private:
    struct Window {
        orc_atomic<Node*>* prev_link;
        orc_ptr<Node*> prev;  // keeps the node owning prev_link alive
        orc_ptr<Node*> curr;
        orc_ptr<Node*> next;
        bool found = false;
    };

    // NOTE on structure: retry is expressed with loops/helper-returns, never
    // with a backward `goto` jumping over the declarations of orc_ptr-holding
    // locals — gcc (observed on 12.2) fails to run the skipped locals'
    // destructors when the jumped-over variable is an NRVO return object,
    // which silently leaks hp indices (regression-tested by
    // tests/test_orc_backlog.cpp; background in DESIGN.md §1.5b).
    Window find(K key) {
        while (true) {
            Window w;
            if (find_attempt(key, w)) return w;
        }
    }

    /// One traversal attempt; false = window invalidated, retry.
    bool find_attempt(K key, Window& w) {
        w.prev = nullptr;  // head_ is a root, not a node
        w.prev_link = &head_;
        w.curr = w.prev_link->load();
        if (w.curr.is_marked()) return false;
        while (true) {
            if (!w.curr) {
                w.found = false;
                return true;
            }
            w.next = w.curr->next.load();
            // Validate: prev must still link to the unmarked curr.
            if (w.prev_link->load_unsafe() != w.curr.get()) return false;
            if (!w.next.is_marked()) {
                if (!(w.curr->key < key)) {
                    w.found = (w.curr->key == key);
                    return true;
                }
                w.prev = std::move(w.curr);
                w.prev_link = &w.prev->next;
                w.curr = std::move(w.next);
            } else {
                w.next.unmark();
                if (!w.prev_link->cas(w.curr, w.next)) return false;
                // No retire(): the CAS above dropped curr's last hard link.
                w.curr = std::move(w.next);
            }
        }
    }

    OrcDomain* const dom_;
    orc_atomic<Node*> head_;
};

}  // namespace orcgc
