// Asymmetric fences: fence-free protection publishing (paper §5; Brown's
// "there has to be a better way" and Singh's SMR-techniques survey both
// prescribe this cure for the hazard-pointer publish cost).
//
// Every protection publish in this repo — OrcDomain's hp publish and the
// reader-side publishes of all five manual schemes — used to pay a full
// seq_cst store/exchange per traversal step so that a reclaimer's scan could
// not miss it. That is a symmetric solution to an asymmetric problem:
// publishes happen per *load*, scans happen per *retire batch*. This header
// moves the ordering cost to the rare side:
//
//   asym::publish(slot, v)  reader fast path — release store + asym::light()
//                           (a compiler barrier in membarrier mode).
//   asym::light()           the fast-path fence alone, for call sites whose
//                           release store is separate.
//   asym::heavy()           scan-side process-wide barrier: every running
//                           thread of the process experiences a full memory
//                           barrier (Linux membarrier(PRIVATE_EXPEDITED)),
//                           so any publish not yet visible to the scan was
//                           ordered after it — and that reader's subsequent
//                           validation load sees the pre-scan unlink/token.
//
// Modes (ORCGC_ASYM_FENCE CMake option = compiled default, ORC_ASYM_FENCE
// env var = runtime kill-switch; resolved once at first use):
//
//   membarrier  light() is a compiler barrier; heavy() is the membarrier
//               syscall. The intended production mode.
//   fence       two-sided fallback: publish is a release store + seq_cst
//               thread fence (light()/heavy() are both seq_cst thread
//               fences), i.e. the classic store-buffering idiom with fences
//               on both sides. Used when the syscall is unavailable and
//               under TSan, where the membarrier edge is invisible to the
//               race detector (auto-selected there).
//   off         release publish with no fence at all. UNSAFE on weakly
//               ordered hardware — exists only so benches can measure the
//               upper bound of the possible gain. Never a default.
//   seqcst      seed-compat mode: publish is the pre-conversion seq_cst
//               exchange and heavy() is a no-op. Env/bench-only ("seed" rows
//               of bench_publish_ablation's A/B gate); not a CMake option.
//
// Resolution order: ORC_ASYM_FENCE env (off|fence|membarrier|seqcst) beats
// the compiled default; TSan degrades membarrier to fence; a failed
// membarrier registration degrades to fence. heavy() calls are counted and
// exported (with the mode) through the telemetry registry as "asym_fence",
// so the scans-not-loads scaling is checkable from any bench JSON.
#pragma once

#include <atomic>
#include <cstdint>

// Compiled default, set by the ORCGC_ASYM_FENCE CMake option
// (0 = off, 1 = fence, 2 = membarrier).
#ifndef ORCGC_ASYM_FENCE_MODE
#define ORCGC_ASYM_FENCE_MODE 2
#endif

namespace orcgc {
namespace asym {

enum class Mode : int {
    kOff = 0,
    kFence = 1,
    kMembarrier = 2,
    kSeqCst = 3,  // seed-compat A/B baseline; env/testing-only
};

/// The build's compiled default (before env override and degradation).
constexpr Mode compiled_default() noexcept { return static_cast<Mode>(ORCGC_ASYM_FENCE_MODE); }

const char* mode_name(Mode m) noexcept;

namespace detail {
// -1 = unresolved. Relaxed fast-path load: resolution is idempotent (two
// racing first-users both resolve to the same mode and both may register
// membarrier — registration is per-process and re-registration is a no-op).
inline std::atomic<int> g_mode{-1};
Mode resolve_mode() noexcept;  // asym_fence.cpp
}  // namespace detail

/// The resolved process-wide mode (resolves on first call).
inline Mode mode() noexcept {
    const int m = detail::g_mode.load(std::memory_order_relaxed);
    if (m >= 0) [[likely]] {
        return static_cast<Mode>(m);
    }
    return detail::resolve_mode();
}

/// Fast-path fence, placed after a release publish and before the validation
/// load. In membarrier (and off) mode this is a compiler barrier only — the
/// hardware store-load ordering it elides is restored by the scan-side
/// heavy() fence.
inline void light() noexcept {
    const Mode m = mode();
    if (m == Mode::kFence || m == Mode::kSeqCst) {
        std::atomic_thread_fence(std::memory_order_seq_cst);
    } else {
        std::atomic_signal_fence(std::memory_order_seq_cst);
    }
}

/// The one protection-publish idiom: a release store into `slot` followed by
/// asym::light() — uniformly, in every mode except the seed-compat exchange.
/// The trailing light() is load-bearing in fence mode: a seq_cst *store*
/// followed by an acquire validation load of another location does not forbid
/// store-load reordering in the C++ model (and is architecturally reorderable
/// on ARMv8.3+ stlr/ldapr), so the two-sided fallback needs the thread fence
/// to make publish-then-validate the SB idiom with fences on both sides —
/// matching heavy()'s fence on the scan side. Only then may validation loads
/// legitimately be acquire in every mode.
template <typename T, typename V>
inline void publish(std::atomic<T>& slot, V value) noexcept {
    if (mode() == Mode::kSeqCst) {
        slot.exchange(static_cast<T>(value), std::memory_order_seq_cst);
        return;
    }
    slot.store(static_cast<T>(value), std::memory_order_release);
    light();
}

/// Scan-side barrier: call ONCE per protection scan (hp snapshot, per-object
/// scan, era/guard sweep), after the retire token / unlink that justifies the
/// scan and before the first protection-slot read. Counted; the count must
/// scale with scans, never with protected loads (bench_publish_ablation
/// gates on this).
void heavy() noexcept;

/// Total heavy() calls that issued a barrier (membarrier or fence mode).
std::uint64_t heavy_fences() noexcept;

/// True when the membarrier(PRIVATE_EXPEDITED) syscall is usable here.
bool membarrier_supported() noexcept;

namespace testing {

/// Pure resolver (no process state): exactly the decision resolve_mode()
/// makes, parameterized for tests. Invalid/unknown env strings are ignored.
Mode resolve(const char* env_value, Mode compiled, bool tsan_active,
             bool membarrier_available) noexcept;

/// Overrides the resolved mode. Safe at any quiescent point for the sound
/// modes (membarrier/fence/seqcst are mutually compatible: every reader
/// publish stays at least release, every scan at least as strong as its
/// readers assume); switching to off requires full quiescence. Applies the
/// same TSan and no-membarrier degradations as first-use resolution.
void set_mode(Mode m) noexcept;

/// Back to unresolved: the next mode() call re-reads env + compiled default.
void reset_mode() noexcept;

/// RAII mode override for tests/benches; restores the prior mode.
class ScopedMode {
  public:
    explicit ScopedMode(Mode m) noexcept : saved_(mode()) { set_mode(m); }
    ~ScopedMode() { set_mode(saved_); }
    ScopedMode(const ScopedMode&) = delete;
    ScopedMode& operator=(const ScopedMode&) = delete;

  private:
    Mode saved_;
};

}  // namespace testing
}  // namespace asym
}  // namespace orcgc
