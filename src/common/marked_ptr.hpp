// Bit-stealing ("marked pointer") helpers.
//
// Harris-style lists, the Herlihy–Shavit skip list and the Natarajan–Mittal
// tree steal the low bit(s) of aligned node pointers to encode logical
// deletion / flagging. These helpers centralize the casts so data-structure
// code never open-codes reinterpret_cast arithmetic.
//
// Objects allocated with new are at least 8-byte aligned, so bits 0..1 are
// always available.
#pragma once

#include <cstdint>

namespace orcgc {

inline constexpr std::uintptr_t kMarkBit = 0x1;
inline constexpr std::uintptr_t kFlagBit = 0x2;  // second stolen bit (NM tree)
inline constexpr std::uintptr_t kPtrMask = ~std::uintptr_t{0x3};

template <typename T>
inline T* get_unmarked(T* p) noexcept {
    return reinterpret_cast<T*>(reinterpret_cast<std::uintptr_t>(p) & kPtrMask);
}

template <typename T>
inline T* get_marked(T* p) noexcept {
    return reinterpret_cast<T*>(reinterpret_cast<std::uintptr_t>(p) | kMarkBit);
}

template <typename T>
inline bool is_marked(T* p) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & kMarkBit) != 0;
}

template <typename T>
inline T* get_flagged(T* p) noexcept {
    return reinterpret_cast<T*>(reinterpret_cast<std::uintptr_t>(p) | kFlagBit);
}

template <typename T>
inline bool is_flagged(T* p) noexcept {
    return (reinterpret_cast<std::uintptr_t>(p) & kFlagBit) != 0;
}

/// Reapplies the mark/flag bits of `bits` onto pointer `p`.
template <typename T>
inline T* with_bits_of(T* p, T* bits) noexcept {
    return reinterpret_cast<T*>((reinterpret_cast<std::uintptr_t>(p) & kPtrMask) |
                                (reinterpret_cast<std::uintptr_t>(bits) & ~kPtrMask));
}

}  // namespace orcgc
