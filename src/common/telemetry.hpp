// Always-on reclamation telemetry: the primitives and the process registry.
//
// The paper's whole evaluation (§5) is about internals — peak unreclaimed
// objects, scan cost, handover chains — yet until this layer existed those
// quantities were only visible under a compile-time macro, and only for the
// OrcGC engine. This header provides the building blocks every reclamation
// scheme reports through:
//
//   PerThreadCounters<N>  cacheline-padded per-thread relaxed counters;
//                         writes are a single uncontended fetch_add on the
//                         owner's line, reads aggregate across the thread-id
//                         watermark. Cheap enough to leave on in release
//                         builds (the bench-smoke CI job gates the overhead).
//   LogHistogram          lock-free log2-bucketed histogram: record() is ONE
//                         relaxed fetch_add (bucket index = std::bit_width).
//                         Count is derived from the buckets, so there is no
//                         second shared counter on the record path.
//   TraceRing             per-thread fixed-capacity event ring. Off by
//                         default; when enabled every record is three relaxed
//                         atomic stores, so concurrent readers may see a
//                         record mid-overwrite as a MIX of old and new events
//                         but never a torn field (each field is a single
//                         atomic). Readers are expected to snapshot at
//                         quiescence (exit dump, test join points).
//   MetricProvider        the interface OrcMetrics and SchemeMetrics
//                         implement; a process-wide registry collects every
//                         live provider and folds the counters of destroyed
//                         ones, so short-lived domains and scheme instances
//                         still show up in the exit dump.
//
// Exporters (telemetry.cpp): export_json() emits the "orcgc-telemetry-v1"
// object the bench harness merges into its --json output; export_prometheus()
// emits Prometheus text exposition. Environment:
//
//   ORC_TRACE=1              enable event tracing on every new OrcDomain
//   ORC_TRACE_DUMP=<path>    write the trace rings as JSONL at process exit
//   ORC_TELEMETRY_JSON=<path> write the telemetry JSON at process exit
//   ORC_TELEMETRY_PROM=<path> write Prometheus text at process exit
//   ORC_TELEMETRY_DUMP_MS=<n> additionally rewrite the exit-dump files every
//                            n ms from a background thread (orc_top --watch)
//
// Compile-time off switch: -DORCGC_TELEMETRY_DISABLED (CMake
// -DORCGC_TELEMETRY=OFF) turns every primitive into a no-op and shrinks the
// storage to one block. That build exists ONLY to measure the cost of the
// always-on counters (tools/telemetry_overhead.py); scheme unreclaimed
// counts read as zero there and the test suite does not support it.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/cacheline.hpp"
#include "common/thread_registry.hpp"

namespace orcgc {
namespace telemetry {

#ifdef ORCGC_TELEMETRY_DISABLED
inline constexpr bool kTelemetryEnabled = false;
#else
inline constexpr bool kTelemetryEnabled = true;
#endif

/// Timestamp source for trace records: raw TSC where available (one
/// instruction, no serialization — events on one thread are ordered, across
/// threads only approximately), steady_clock ticks elsewhere.
inline std::uint64_t now_tsc() noexcept {
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
    return __builtin_ia32_rdtsc();
#else
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

/// Sanctioned timestamp source for retire→free age stamps in the engine and
/// the manual schemes. orc-lint rule R13 confines raw timing calls (rdtsc,
/// clock_gettime, steady_clock::now) to this header and orc_metrics.hpp, so
/// every age measured anywhere in the tree shares one clock — the same
/// coarse tsc the trace rings timestamp with.
inline std::uint64_t coarse_now() noexcept {
    if constexpr (kTelemetryEnabled) {
        return now_tsc();
    } else {
        return 0;
    }
}

/// Wall-clock monotonic nanoseconds, for coarse pacing decisions (e.g. the
/// stalled-reader watchdog's sampling interval). Unlike now_tsc()/coarse_now()
/// this is comparable across threads and convertible to human time, at the
/// cost of a vDSO call — callers must already be off the per-op fast path.
/// Lives here because R13 confines raw clock reads to the telemetry layer.
inline std::uint64_t monotonic_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/// Retire→free ages are SAMPLED, not exhaustive: stampers take one
/// coarse_now() reading per (kAgeSampleMask + 1) retires per thread, and
/// only stamped objects record an age at free. Two rdtsc reads per object
/// lifecycle is real money on a sub-microsecond retire/free op (it blew the
/// 2% telemetry budget on the churn benches); a uniform 1-in-64 per-thread
/// sample keeps the percentiles sound — every sampled age is still measured
/// at full clock resolution at both ends — while the unsampled fast path
/// pays a counter increment at retire and a load + predicted branch at free.
inline constexpr std::uint32_t kAgeSampleMask = 63;

/// Sentinel carried instead of an age when the freed object was never
/// stamped (not sampled, telemetry off, or allocated behind the engine's
/// back). Sinks must drop it, NOT record it — folding unsampled frees into
/// bucket 0 would crush the percentiles toward zero.
inline constexpr std::uint64_t kNoAge = ~0ull;

// ---- counters -------------------------------------------------------------

/// N per-thread relaxed counters on a private cache line per thread.
/// add() is owner-thread only; sum()/drain() may run on any thread.
template <int N>
class PerThreadCounters {
  public:
    /// Owner-thread increment. Returns the new per-thread value (callers use
    /// it to subsample expensive derived updates, e.g. peak refresh).
    std::uint64_t add(int c, std::uint64_t n = 1) noexcept {
        if constexpr (kTelemetryEnabled) {
            return tl_[thread_id()].c[c].fetch_add(n, std::memory_order_relaxed) + n;
        } else {
            (void)c;
            return n;
        }
    }

    /// Aggregate across every thread that ever registered. A sum that races
    /// with add() sees each increment either fully or not at all (each is one
    /// relaxed RMW), so reads are monotonic per thread and never torn.
    std::uint64_t sum(int c) const noexcept {
        if constexpr (!kTelemetryEnabled) {
            (void)c;
            return 0;
        }
        std::uint64_t total = 0;
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            total += tl_[it].c[c].load(std::memory_order_relaxed);
        }
        return total;
    }

    /// Atomically takes every thread's count, leaving zero behind. Lossless
    /// against concurrent add(): each increment lands either in this drain's
    /// return value or in a later read, never both, never neither.
    std::uint64_t drain(int c) noexcept {
        if constexpr (!kTelemetryEnabled) {
            (void)c;
            return 0;
        }
        std::uint64_t total = 0;
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            total += tl_[it].c[c].exchange(0, std::memory_order_relaxed);
        }
        return total;
    }

  private:
    struct alignas(kCacheLineSize) Block {
        std::atomic<std::uint64_t> c[N] = {};
    };
    Block tl_[kTelemetryEnabled ? kMaxThreads : 1];
};

// ---- histograms -----------------------------------------------------------

/// Point-in-time histogram contents, mergeable. Bucket b holds the count of
/// recorded values v with std::bit_width(v) == b: bucket 0 is exactly {0},
/// bucket b >= 1 covers [2^(b-1), 2^b - 1].
struct HistogramSnapshot {
    static constexpr int kBuckets = 65;

    std::uint64_t buckets[kBuckets] = {};

    /// Smallest value a bucket accepts (0 for bucket 0).
    static constexpr std::uint64_t bucket_lower(int b) noexcept {
        return b <= 0 ? 0 : std::uint64_t{1} << (b - 1);
    }

    /// Largest value a bucket accepts.
    static constexpr std::uint64_t bucket_upper(int b) noexcept {
        if (b <= 0) return 0;
        if (b >= 64) return ~std::uint64_t{0};
        return (std::uint64_t{1} << b) - 1;
    }

    std::uint64_t count() const noexcept {
        std::uint64_t total = 0;
        for (std::uint64_t b : buckets) total += b;
        return total;
    }

    void merge(const HistogramSnapshot& other) noexcept {
        for (int b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
    }

    /// Bucket-wise clamped subtraction: turns two cumulative reads into an
    /// interval delta (bench series isolate their own retire→free ages this
    /// way).
    void subtract(const HistogramSnapshot& other) noexcept {
        for (int b = 0; b < kBuckets; ++b) {
            buckets[b] -= other.buckets[b] < buckets[b] ? other.buckets[b] : buckets[b];
        }
    }

    /// Estimated value at quantile q in [0, 1] (0.5 = p50, 0.999 = p999),
    /// linearly interpolated inside the log2 bucket the rank falls in —
    /// within a bucket, recorded values are assumed uniform over
    /// [lower, upper]. q = 0 reads as the smallest recorded bucket's lower
    /// bound, q = 1 as the largest bucket's upper bound; an empty histogram
    /// returns 0.
    double percentile(double q) const noexcept {
        const std::uint64_t total = count();
        if (total == 0) return 0.0;
        if (q < 0.0) q = 0.0;
        if (q > 1.0) q = 1.0;
        const double rank = q * static_cast<double>(total);
        std::uint64_t cum = 0;
        for (int b = 0; b < kBuckets; ++b) {
            if (buckets[b] == 0) continue;
            const std::uint64_t before = cum;
            cum += buckets[b];
            if (static_cast<double>(cum) < rank) continue;
            const double lower = static_cast<double>(bucket_lower(b));
            const double upper = static_cast<double>(bucket_upper(b));
            const double f =
                (rank - static_cast<double>(before)) / static_cast<double>(buckets[b]);
            return lower + f * (upper - lower);
        }
        return static_cast<double>(bucket_upper(kBuckets - 1));
    }
};

/// Lock-free log2-bucketed histogram. record() is one relaxed fetch_add on
/// the bucket — no shared count/sum cell, so the record path stays a single
/// RMW even under contention. Means reported by the exporters are estimated
/// from bucket midpoints.
class LogHistogram {
  public:
    static constexpr int kBuckets = HistogramSnapshot::kBuckets;

    static constexpr int bucket_of(std::uint64_t v) noexcept { return std::bit_width(v); }

    /// Smallest value a bucket accepts (0 for bucket 0).
    static constexpr std::uint64_t bucket_lower(int b) noexcept {
        return HistogramSnapshot::bucket_lower(b);
    }

    /// Largest value a bucket accepts.
    static constexpr std::uint64_t bucket_upper(int b) noexcept {
        return HistogramSnapshot::bucket_upper(b);
    }

    void record(std::uint64_t v) noexcept {
        if constexpr (kTelemetryEnabled) {
            buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
        } else {
            (void)v;
        }
    }

    /// record() for single-writer histograms (e.g. one per ThreadBlock): a
    /// plain load+store instead of a locked RMW. Concurrent record_owner()
    /// calls would lose increments — callers guarantee exclusivity.
    void record_owner(std::uint64_t v) noexcept {
        if constexpr (kTelemetryEnabled) {
            auto& b = buckets_[bucket_of(v)];
            b.store(b.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
        } else {
            (void)v;
        }
    }

    /// Adds the current contents into `out` (relaxed reads; exact once the
    /// writers are quiescent).
    void read_into(HistogramSnapshot& out) const noexcept {
        if constexpr (!kTelemetryEnabled) {
            (void)out;
            return;
        }
        for (int b = 0; b < kBuckets; ++b) {
            out.buckets[b] += buckets_[b].load(std::memory_order_relaxed);
        }
    }

    /// Takes the current contents into `out`, leaving zeros. Lossless against
    /// concurrent record() (per-bucket exchange).
    void drain_into(HistogramSnapshot& out) noexcept {
        if constexpr (!kTelemetryEnabled) {
            (void)out;
            return;
        }
        for (int b = 0; b < kBuckets; ++b) {
            out.buckets[b] += buckets_[b].exchange(0, std::memory_order_relaxed);
        }
    }

  private:
    std::atomic<std::uint64_t> buckets_[kTelemetryEnabled ? kBuckets : 1] = {};
};

// ---- event tracing --------------------------------------------------------

enum class TraceType : std::uint8_t {
    kRetire = 1,    ///< retire token taken for an object
    kScanBegin = 2, ///< per-object hp scan started
    kScanEnd = 3,   ///< per-object hp scan finished (arg = slots visited)
    kHandover = 4,  ///< object parked on another thread's handover slot
    kFree = 5,      ///< object deleted (arg = 1 if proven by a batch snapshot)
    kDrain = 6,     ///< parked object taken out of a handover slot
    kShardPush = 7, ///< displaced object pushed onto a shard's MPSC inbox (arg = shard tid)
    kShardDrain = 8,///< one shard inbox exchanged empty (arg = objects taken)
    kSpanBegin = 9, ///< a TraceSpan opened (arg = SpanKind)
    kSpanEnd = 10,  ///< a TraceSpan closed (arg = SpanKind, obj = items payload)
};

inline const char* trace_type_name(TraceType t) noexcept {
    switch (t) {
        case TraceType::kRetire: return "retire";
        case TraceType::kScanBegin: return "scan_begin";
        case TraceType::kScanEnd: return "scan_end";
        case TraceType::kHandover: return "handover";
        case TraceType::kFree: return "free";
        case TraceType::kDrain: return "drain";
        case TraceType::kShardPush: return "shard_push";
        case TraceType::kShardDrain: return "shard_drain";
        case TraceType::kSpanBegin: return "span_begin";
        case TraceType::kSpanEnd: return "span_end";
    }
    return "?";
}

/// What a kSpanBegin/kSpanEnd pair timed (the records' arg field). Kept in
/// sync with tools/orc_trace.py, which names the Chrome-trace slices.
enum class SpanKind : std::uint8_t {
    kScanGeneration = 1, ///< one direction-swapped walk-park generation
    kStealChunk = 2,     ///< one claim-ticket chunk settled for a shared scan
    kHandoverDrain = 3,  ///< one handover-slot / shard-inbox drain pass
    kBgCycle = 4,        ///< background reclaimer wake → park cycle
    kHeavyFence = 5,     ///< one scan-entry asym::heavy() (membarrier) call
};

inline const char* span_kind_name(SpanKind k) noexcept {
    switch (k) {
        case SpanKind::kScanGeneration: return "scan_generation";
        case SpanKind::kStealChunk: return "steal_chunk";
        case SpanKind::kHandoverDrain: return "handover_drain";
        case SpanKind::kBgCycle: return "bg_cycle";
        case SpanKind::kHeavyFence: return "heavy_fence";
    }
    return "?";
}

/// One decoded trace event (reader-side representation).
struct TraceRecord {
    std::uint64_t tsc = 0;
    TraceType type = TraceType::kRetire;
    std::uint64_t obj = 0;
    std::uint64_t arg = 0;
};

/// Fixed-capacity single-writer event ring. The owner thread records; any
/// thread may snapshot. Every stored field is an individual relaxed atomic,
/// so records are never torn at the field level; a snapshot that races with
/// a wrap may pair fields from adjacent events (best-effort by design — the
/// supported read points are quiescent). Storage is allocated by reserve()
/// before the tracing flag is raised; record() on an unreserved ring is a
/// no-op.
class TraceRing {
  public:
    /// Allocates capacity once. Callers publish the ring to the owner thread
    /// with a release store of the tracing flag AFTER this returns.
    void reserve(std::size_t capacity) {
        if (capacity == 0 || buf_ != nullptr) return;
        buf_ = std::make_unique<Slot[]>(capacity);
        cap_ = capacity;
    }

    bool reserved() const noexcept { return buf_ != nullptr; }

    /// Owner-thread append. tsc and type share one word (tsc << 8 | type):
    /// one fewer store, and a reader can never pair a type with a timestamp
    /// from a different record.
    void record(TraceType type, const void* obj, std::uint64_t arg) noexcept {
        if (cap_ == 0) return;
        const std::uint64_t h = head_.load(std::memory_order_relaxed);
        Slot& s = buf_[h % cap_];
        s.tsc_type.store((now_tsc() << 8) | static_cast<std::uint64_t>(type),
                         std::memory_order_relaxed);
        s.obj.store(reinterpret_cast<std::uint64_t>(obj), std::memory_order_relaxed);
        s.arg.store(arg, std::memory_order_relaxed);
        head_.store(h + 1, std::memory_order_release);
    }

    /// Total records ever written (monotonic).
    std::uint64_t written() const noexcept { return head_.load(std::memory_order_acquire); }

    /// Decodes the last min(written, capacity) records, oldest first.
    std::vector<TraceRecord> snapshot() const {
        std::vector<TraceRecord> out;
        if (cap_ == 0) return out;
        const std::uint64_t h = head_.load(std::memory_order_acquire);
        const std::uint64_t n = h < cap_ ? h : cap_;
        out.reserve(static_cast<std::size_t>(n));
        for (std::uint64_t i = h - n; i < h; ++i) {
            const Slot& s = buf_[i % cap_];
            const std::uint64_t tt = s.tsc_type.load(std::memory_order_relaxed);
            TraceRecord r;
            r.tsc = tt >> 8;
            r.type = static_cast<TraceType>(tt & 0xff);
            r.obj = s.obj.load(std::memory_order_relaxed);
            r.arg = s.arg.load(std::memory_order_relaxed);
            out.push_back(r);
        }
        return out;
    }

  private:
    struct Slot {
        std::atomic<std::uint64_t> tsc_type{0};
        std::atomic<std::uint64_t> obj{0};
        std::atomic<std::uint64_t> arg{0};
    };

    std::unique_ptr<Slot[]> buf_;
    std::size_t cap_ = 0;
    std::atomic<std::uint64_t> head_{0};
};

/// Scoped begin/end pair in a TraceRing: construction records kSpanBegin,
/// destruction kSpanEnd, both carrying the SpanKind as arg so the exporter
/// can pair them per thread (tools/orc_trace.py turns the pairs into Chrome
/// trace-event B/E slices, one track per tid). A null ring makes the whole
/// object a no-op — callers resolve the ring once through their metrics
/// handle (null while tracing is off), so an idle span costs one pointer
/// test per end.
class TraceSpan {
  public:
    TraceSpan(TraceRing* ring, SpanKind kind) noexcept : ring_(ring), kind_(kind) {
        if (ring_ != nullptr) {
            ring_->record(TraceType::kSpanBegin, nullptr,
                          static_cast<std::uint64_t>(kind_));
        }
    }
    ~TraceSpan() {
        if (ring_ != nullptr) {
            ring_->record(TraceType::kSpanEnd,
                          reinterpret_cast<const void*>(static_cast<std::uintptr_t>(items_)),
                          static_cast<std::uint64_t>(kind_));
        }
    }
    TraceSpan(const TraceSpan&) = delete;
    TraceSpan& operator=(const TraceSpan&) = delete;

    /// Payload for the end record's obj field (objects drained, items
    /// stolen, ... — whatever the span's work unit counts).
    void note_items(std::uint64_t n) noexcept { items_ = n; }

  private:
    TraceRing* const ring_;
    const SpanKind kind_;
    std::uint64_t items_ = 0;
};

// ---- provider interface and registry --------------------------------------

/// The counter subset every reclamation scheme reports, making schemes
/// directly comparable (the quantities Table 1 bounds):
///   retired           objects handed to the scheme for reclamation
///   freed             objects actually deleted
///   peak_unreclaimed  high-water mark of retired-but-not-freed (sampled)
///   scans             reclamation passes over the protection state
struct CommonCounters {
    std::uint64_t retired = 0;
    std::uint64_t freed = 0;
    std::uint64_t peak_unreclaimed = 0;
    std::uint64_t scans = 0;

    void merge(const CommonCounters& other) noexcept {
        retired += other.retired;
        freed += other.freed;
        scans += other.scans;
        if (other.peak_unreclaimed > peak_unreclaimed) {
            peak_unreclaimed = other.peak_unreclaimed;
        }
    }
};

/// Visitor the exporters hand to MetricProvider::visit_extras(). On merge
/// (same-name sources, live + accumulated), counters add, gauges take the
/// max, histograms merge bucket-wise — pick the verb accordingly.
class MetricSink {
  public:
    virtual void counter(const char* name, std::uint64_t value) = 0;
    virtual void gauge(const char* name, std::uint64_t value) = 0;
    virtual void histogram(const char* name, const HistogramSnapshot& h) = 0;

  protected:
    ~MetricSink() = default;
};

/// A telemetry source. Implementations register with the process registry on
/// construction and unregister on destruction; unregistering folds a final
/// dump into per-name accumulated totals so the exit export still covers
/// sources that died mid-run.
class MetricProvider {
  public:
    virtual const char* telemetry_name() const noexcept = 0;
    virtual CommonCounters common_counters() const = 0;
    virtual void visit_extras(MetricSink& sink) const { (void)sink; }
    /// Writes any trace rings as JSONL rows (OrcMetrics overrides this).
    virtual void dump_trace(std::FILE* out) const { (void)out; }

  protected:
    ~MetricProvider() = default;
};

// Registry operations (definitions in telemetry.cpp). The registry is a
// function-local static constructed on first registration, hence destroyed
// after the last provider that registered through it — including the global
// domain's OrcMetrics during static teardown.
void register_provider(MetricProvider* provider);
void unregister_provider(MetricProvider* provider);

/// Forces registry construction NOW. Any object whose destructor exports
/// (export_json/export_prometheus at static-teardown time) must call this in
/// its constructor: the registry is destroyed in reverse construction order,
/// so an exporter constructed before it would outlive it and read a
/// destroyed map (a real bench_publish_ablation teardown use-after-free —
/// see BenchJsonRecorder).
void touch();

/// True when the ORC_TRACE environment variable requests event tracing
/// (consulted by OrcMetrics at domain construction).
bool trace_requested();

/// The full registry state (live + accumulated) as an
/// "orcgc-telemetry-v1" JSON object / Prometheus text exposition.
std::string export_json();
std::string export_prometheus();

// ---- scheme-side provider -------------------------------------------------

/// The MetricProvider for the manual baseline schemes (HP, PTB, EBR, HE,
/// IBR, PTP, None): the common counter subset and nothing else. Embed one
/// per scheme instance and call the note_* hooks from retire/scan/delete
/// sites; unreclaimed() replaces the per-slot ad-hoc atomic counters the
/// schemes used to keep (orc-lint rule R8 now rejects those).
class SchemeMetrics final : public MetricProvider {
  public:
    explicit SchemeMetrics(const char* name) : name_(name) {
        if constexpr (kTelemetryEnabled) register_provider(this);
    }
    ~SchemeMetrics() {
        if constexpr (kTelemetryEnabled) unregister_provider(this);
    }
    SchemeMetrics(const SchemeMetrics&) = delete;
    SchemeMetrics& operator=(const SchemeMetrics&) = delete;

    void note_retired(std::uint64_t n = 1) noexcept {
        const std::uint64_t mine = counters_.add(kRetired, n);
        // Subsampled peak refresh: the aggregate walk costs 2 loads per
        // registered thread, so amortize it over 64 per-thread retires (scan
        // entry points also refresh — see note_scan — which catches the
        // buffer-full maxima the subsample might straddle).
        if constexpr (kTelemetryEnabled) {
            if ((mine & 63) < n) refresh_peak();
        }
    }
    void note_freed(std::uint64_t n = 1) noexcept { counters_.add(kFreed, n); }

    /// Retire→free age of one freed object, in coarse_now() ticks (stamped
    /// at retire by the substrate, read back on its free path). Multi-writer:
    /// teardown frees run on whichever thread destroys the structure, so
    /// this takes the locked-RMW record(), not record_owner().
    void note_age(std::uint64_t age) noexcept { age_.record(age); }

    /// One reclamation pass (scan/collect/liberate). Refreshes the peak: scan
    /// entry is exactly when the retired backlog is at its local maximum.
    void note_scan() noexcept {
        counters_.add(kScans, 1);
        if constexpr (kTelemetryEnabled) refresh_peak();
    }

    std::uint64_t retired() const noexcept { return counters_.sum(kRetired); }
    std::uint64_t freed() const noexcept { return counters_.sum(kFreed); }

    /// Retired minus freed, clamped: a mid-update read can transiently see
    /// more frees than retires.
    std::uint64_t unreclaimed() const noexcept {
        const std::uint64_t r = retired();
        const std::uint64_t f = freed();
        return r > f ? r - f : 0;
    }

    const char* telemetry_name() const noexcept override { return name_; }

    CommonCounters common_counters() const override {
        CommonCounters c;
        c.retired = retired();
        c.freed = freed();
        c.scans = counters_.sum(kScans);
        if constexpr (kTelemetryEnabled) {
            const_cast<SchemeMetrics*>(this)->refresh_peak();
        }
        c.peak_unreclaimed = peak_.load(std::memory_order_relaxed);
        return c;
    }

    void visit_extras(MetricSink& sink) const override {
        sink.gauge("unreclaimed", unreclaimed());
        HistogramSnapshot age;
        age_.read_into(age);
        sink.histogram("retire_free_age", age);
    }

  private:
    enum : int { kRetired, kFreed, kScans, kNumCounters };

    void refresh_peak() noexcept {
        const std::uint64_t candidate = unreclaimed();
        std::uint64_t cur = peak_.load(std::memory_order_relaxed);
        while (candidate > cur &&
               !peak_.compare_exchange_weak(cur, candidate, std::memory_order_relaxed)) {
        }
    }

    const char* name_;
    PerThreadCounters<kNumCounters> counters_;
    std::atomic<std::uint64_t> peak_{0};
    /// Retire→free ages (coarse_now() ticks), fed by SchemeBase::free_object.
    LogHistogram age_;
};

}  // namespace telemetry
}  // namespace orcgc
