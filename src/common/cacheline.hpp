// Cache-line utilities.
//
// The reclamation schemes in this library keep per-thread arrays of
// hazardous pointers and handover slots. The paper (§3.1) places hazardous
// pointers and handovers on *separate* arrays "so as to reduce contention
// and avoid false-sharing"; we additionally pad every per-thread block to a
// cache-line multiple so that thread i's publications never invalidate the
// line thread j spins on.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace orcgc {

// std::hardware_destructive_interference_size is 64 on the x86-64 targets we
// support, but prefetchers pull adjacent line pairs, so 128 is the safe
// padding granularity (what folly/abseil use as well).
inline constexpr std::size_t kCacheLineSize = 128;

/// Wraps a T so that it occupies (and is aligned to) a full cache line.
/// Used for per-thread metadata blocks indexed by thread id.
template <typename T>
struct alignas(kCacheLineSize) CachelinePadded {
    T value;

    template <typename... Args>
    explicit CachelinePadded(Args&&... args) : value(std::forward<Args>(args)...) {}
    CachelinePadded() = default;

    T* operator->() noexcept { return &value; }
    const T* operator->() const noexcept { return &value; }
    T& operator*() noexcept { return value; }
    const T& operator*() const noexcept { return value; }
};

}  // namespace orcgc
