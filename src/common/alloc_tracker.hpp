// Allocation tracking substrate for reclamation-soundness tests.
//
// The paper's claims are about *memory*: every scheme must eventually free
// every retired node, never free a node twice, and never let a thread touch
// a freed node. The test suite proves these properties empirically by
// deriving tracked node types from TrackedObject:
//
//   * live_count()  — constructions minus destructions; must return to its
//                     baseline when a structure is destroyed (no leaks).
//   * a double-destroy check via a canary word that the destructor flips;
//     destroying twice (double free) or reading after destruction
//     (use-after-free) trips the canary.
//
// Counters are global and relaxed-atomic: they are never used to synchronize,
// only tallied after threads join.
#pragma once

#include <atomic>
#include <cstdint>

namespace orcgc {

class AllocCounters {
  public:
    static AllocCounters& instance();

    void on_construct() noexcept {
        constructed_.fetch_add(1, std::memory_order_relaxed);
    }
    void on_destroy() noexcept { destroyed_.fetch_add(1, std::memory_order_relaxed); }
    void on_double_destroy() noexcept {
        double_destroys_.fetch_add(1, std::memory_order_relaxed);
    }
    void on_dead_access() noexcept { dead_accesses_.fetch_add(1, std::memory_order_relaxed); }

    std::int64_t live_count() const noexcept {
        return constructed_.load(std::memory_order_relaxed) -
               destroyed_.load(std::memory_order_relaxed);
    }
    std::int64_t constructed() const noexcept {
        return constructed_.load(std::memory_order_relaxed);
    }
    std::int64_t destroyed() const noexcept { return destroyed_.load(std::memory_order_relaxed); }
    std::int64_t double_destroys() const noexcept {
        return double_destroys_.load(std::memory_order_relaxed);
    }
    std::int64_t dead_accesses() const noexcept {
        return dead_accesses_.load(std::memory_order_relaxed);
    }

    void reset() noexcept {
        constructed_.store(0, std::memory_order_relaxed);
        destroyed_.store(0, std::memory_order_relaxed);
        double_destroys_.store(0, std::memory_order_relaxed);
        dead_accesses_.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::int64_t> constructed_{0};
    std::atomic<std::int64_t> destroyed_{0};
    std::atomic<std::int64_t> double_destroys_{0};
    std::atomic<std::int64_t> dead_accesses_{0};
};

/// Mixin base for node types in soundness tests.
class TrackedObject {
  public:
    TrackedObject() noexcept : canary_(kAlive) { AllocCounters::instance().on_construct(); }

    TrackedObject(const TrackedObject&) = delete;
    TrackedObject& operator=(const TrackedObject&) = delete;

    ~TrackedObject() noexcept {
        if (canary_.exchange(kDead, std::memory_order_acq_rel) != kAlive) {
            AllocCounters::instance().on_double_destroy();
        } else {
            AllocCounters::instance().on_destroy();
        }
    }

    /// Tests call this when dereferencing a node obtained through a
    /// reclamation-protected read: a dead canary means the scheme let a
    /// freed node escape.
    bool check_alive() const noexcept {
        if (canary_.load(std::memory_order_acquire) == kAlive) return true;
        AllocCounters::instance().on_dead_access();
        return false;
    }

  private:
    static constexpr std::uint64_t kAlive = 0xA11CEA11CEA11CEAULL;
    static constexpr std::uint64_t kDead = 0xDEADDEADDEADDEADULL;
    std::atomic<std::uint64_t> canary_;
};

}  // namespace orcgc
