// Sense-reversing spin barrier.
//
// Benchmark drivers need all worker threads to cross the start line at the
// same instant; std::barrier's futex round-trips distort sub-second
// measurements, so we spin (with a yield to stay fair on oversubscribed
// machines — the test container has fewer cores than benchmark threads).
#pragma once

#include <atomic>
#include <thread>

namespace orcgc {

class SpinBarrier {
  public:
    explicit SpinBarrier(int parties) noexcept : parties_(parties) {}

    SpinBarrier(const SpinBarrier&) = delete;
    SpinBarrier& operator=(const SpinBarrier&) = delete;

    void arrive_and_wait() noexcept {
        const bool my_sense = !sense_.load(std::memory_order_relaxed);
        if (count_.fetch_add(1, std::memory_order_acq_rel) + 1 == parties_) {
            count_.store(0, std::memory_order_relaxed);
            sense_.store(my_sense, std::memory_order_release);
        } else {
            while (sense_.load(std::memory_order_acquire) != my_sense) {
                std::this_thread::yield();
            }
        }
    }

  private:
    const int parties_;
    std::atomic<int> count_{0};
    std::atomic<bool> sense_{false};
};

}  // namespace orcgc
