// Workload definitions mirroring the paper's evaluation (§5).
//
// All set benchmarks (Figs. 3–8) use three operation mixes over a uniform
// key range:
//   * write-heavy : 50% insert / 50% remove
//   * read-mostly : 5% insert / 5% remove / 90% contains
//   * read-only   : 100% contains
// Queue benchmarks (Figs. 1–2) run enqueue/dequeue pairs.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string_view>

#include "common/rng.hpp"

namespace orcgc {

struct OpMix {
    // Percentages; contains share is the remainder.
    int insert_pct;
    int remove_pct;
    std::string_view name;

    constexpr int update_pct() const noexcept { return insert_pct + remove_pct; }
};

inline constexpr OpMix kWriteHeavy{50, 50, "50i-50r"};
inline constexpr OpMix kReadMostly{5, 5, "5i-5r-90l"};
inline constexpr OpMix kReadOnly{0, 0, "100l"};
inline constexpr OpMix kAllMixes[] = {kWriteHeavy, kReadMostly, kReadOnly};

enum class SetOp { kInsert, kRemove, kContains };

/// Draws the next operation for a mix.
inline SetOp next_op(Xoshiro256& rng, const OpMix& mix) {
    const auto roll = static_cast<int>(rng.next_bounded(100));
    if (roll < mix.insert_pct) return SetOp::kInsert;
    if (roll < mix.insert_pct + mix.remove_pct) return SetOp::kRemove;
    return SetOp::kContains;
}

/// Uniform key in [0, key_range).
inline std::uint64_t next_key(Xoshiro256& rng, std::uint64_t key_range) {
    return rng.next_bounded(key_range);
}

/// Iteration budget for stress loops. ORCGC_STRESS_ITERS, when set to a
/// positive integer, overrides the compiled-in default so slow configurations
/// (TSan runs 5–20x slower than native) can drive the same binaries with a
/// smaller budget instead of maintaining a second set of constants.
inline int stress_iters(int default_iters) {
    if (const char* env = std::getenv("ORCGC_STRESS_ITERS")) {
        const long parsed = std::strtol(env, nullptr, 10);
        if (parsed > 0 && parsed <= 1000000) return static_cast<int>(parsed);
    }
    return default_iters;
}

}  // namespace orcgc
