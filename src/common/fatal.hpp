// Fatal-error reporting for unrecoverable invariant violations.
//
// The reclamation engine has a handful of hard capacity/protocol errors that
// are programming mistakes, not runtime conditions: exceeding kMaxThreads,
// exhausting a thread's hp indices, destroying a domain that still owns
// objects. These must fail loudly and immediately — limping on would turn a
// diagnosable bug into silent memory corruption. fatal() prints one line to
// stderr and aborts, which the death tests assert on (the message, not just
// the abort, is part of the contract).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace orcgc {

/// Prints a printf-style diagnostic (newline appended) to stderr and aborts.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
[[noreturn]] inline void
fatal(const char* fmt, ...) {
    std::va_list args;
    va_start(args, fmt);
    std::vfprintf(stderr, fmt, args);
    va_end(args);
    std::fputc('\n', stderr);
    std::fflush(stderr);
    std::abort();
}

}  // namespace orcgc
