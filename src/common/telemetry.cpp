// Telemetry registry and exporters (see telemetry.hpp for the model).
//
// The registry keeps two collections keyed by source name:
//   * live providers — polled on every export;
//   * accumulated dumps — the final state of providers that unregistered
//     (a destroyed OrcDomain, a scheme instance that died with its data
//     structure). Counters and histograms add, gauges and peaks take the
//     max, so the exit export reflects the whole process, not just the
//     sources that happen to still be alive.
//
// Everything here is cold-path: registration happens at domain/structure
// construction, export at process exit or on explicit request. One mutex
// suffices.

#include "common/telemetry.hpp"

#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>

namespace orcgc {
namespace telemetry {
namespace {

/// Everything one provider exposes, captured through the MetricSink
/// interface so live polls and final folds share one code path.
struct SourceDump {
    CommonCounters common;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, std::uint64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    void merge(const SourceDump& other) {
        common.merge(other.common);
        for (const auto& [k, v] : other.counters) counters[k] += v;
        for (const auto& [k, v] : other.gauges) {
            auto [it, inserted] = gauges.emplace(k, v);
            if (!inserted && v > it->second) it->second = v;
        }
        for (const auto& [k, v] : other.histograms) histograms[k].merge(v);
    }
};

class CaptureSink final : public MetricSink {
  public:
    explicit CaptureSink(SourceDump& dump) : dump_(dump) {}
    void counter(const char* name, std::uint64_t value) override {
        dump_.counters[name] += value;
    }
    void gauge(const char* name, std::uint64_t value) override {
        auto [it, inserted] = dump_.gauges.emplace(name, value);
        if (!inserted && value > it->second) it->second = value;
    }
    void histogram(const char* name, const HistogramSnapshot& h) override {
        dump_.histograms[name].merge(h);
    }

  private:
    SourceDump& dump_;
};

SourceDump capture(const MetricProvider& provider) {
    SourceDump dump;
    dump.common = provider.common_counters();
    CaptureSink sink(dump);
    provider.visit_extras(sink);
    return dump;
}

void append_json_escaped(std::string& out, const std::string& s) {
    for (char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
}

void append_u64(std::string& out, std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
    out += buf;
}

/// Prometheus label/metric names allow [a-zA-Z0-9_:]; everything else
/// becomes '_'.
std::string prom_sanitize(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok) c = '_';
    }
    return out;
}

class Registry {
  public:
    static Registry& instance() {
        // Function-local static: constructed before the first provider
        // registers, destroyed after the last one unregisters (the same
        // ordering argument DomainRegistry relies on).
        static Registry registry;
        return registry;
    }

    void add(MetricProvider* provider) {
        std::lock_guard<std::mutex> lock(mu_);
        live_.push_back(provider);
        maybe_start_dumper_locked();
    }

    void remove(MetricProvider* provider) {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto it = live_.begin(); it != live_.end(); ++it) {
            if (*it == provider) {
                accumulated_[provider->telemetry_name()].merge(capture(**it));
                // The registry outlives every provider (function-local
                // static, constructed before the first add()), so by
                // ~Registry the live_ list is empty — trace rings must be
                // folded here or the exit dump loses them.
                if (!trace_path_.empty()) fold_trace_locked(*provider);
                live_.erase(it);
                break;
            }
        }
    }

    bool trace_requested() const noexcept { return trace_requested_; }

    std::string json() {
        std::lock_guard<std::mutex> lock(mu_);
        return render_json(snapshot_locked());
    }

    std::string prometheus() {
        std::lock_guard<std::mutex> lock(mu_);
        return render_prometheus(snapshot_locked());
    }

    ~Registry() {
        stop_dumper();
        std::lock_guard<std::mutex> lock(mu_);
        const auto merged = snapshot_locked();
        if (!json_path_.empty()) write_text(json_path_, render_json(merged));
        if (!prom_path_.empty()) write_text(prom_path_, render_prometheus(merged));
        if (!trace_path_.empty()) {
            for (MetricProvider* p : live_) fold_trace_locked(*p);
            std::FILE* out = std::fopen(trace_path_.c_str(), "w");
            if (out != nullptr) {
                std::fwrite(trace_text_.data(), 1, trace_text_.size(), out);
                std::fclose(out);
            } else {
                std::fprintf(stderr, "orcgc: cannot write trace dump to %s\n",
                             trace_path_.c_str());
            }
        }
    }

  private:
    Registry() {
        if (const char* v = std::getenv("ORC_TRACE")) {
            trace_requested_ = v[0] != '\0' && std::strcmp(v, "0") != 0;
        }
        if (const char* v = std::getenv("ORC_TRACE_DUMP")) trace_path_ = v;
        if (const char* v = std::getenv("ORC_TELEMETRY_JSON")) json_path_ = v;
        if (const char* v = std::getenv("ORC_TELEMETRY_PROM")) prom_path_ = v;
        if (const char* v = std::getenv("ORC_TELEMETRY_DUMP_MS")) {
            dump_ms_ = std::atoi(v);
        }
    }

    /// Append one provider's trace rings (JSONL) to the accumulated trace
    /// text. dump_trace writes to a FILE*, so buffer it through a memstream.
    void fold_trace_locked(const MetricProvider& provider) {
        char* buf = nullptr;
        std::size_t len = 0;
        std::FILE* mem = open_memstream(&buf, &len);
        if (mem == nullptr) return;
        provider.dump_trace(mem);
        std::fclose(mem);
        trace_text_.append(buf, len);
        std::free(buf);
    }

    /// Live providers folded over the accumulated totals, by name.
    std::map<std::string, SourceDump> snapshot_locked() {
        std::map<std::string, SourceDump> merged = accumulated_;
        for (MetricProvider* p : live_) merged[p->telemetry_name()].merge(capture(*p));
        return merged;
    }

    static std::string render_json(const std::map<std::string, SourceDump>& sources) {
        std::string out = "{\"schema\": \"orcgc-telemetry-v1\", \"sources\": [";
        bool first_source = true;
        for (const auto& [name, dump] : sources) {
            if (!first_source) out += ", ";
            first_source = false;
            out += "{\"name\": \"";
            append_json_escaped(out, name);
            out += "\", \"common\": {\"retired\": ";
            append_u64(out, dump.common.retired);
            out += ", \"freed\": ";
            append_u64(out, dump.common.freed);
            out += ", \"peak_unreclaimed\": ";
            append_u64(out, dump.common.peak_unreclaimed);
            out += ", \"scans\": ";
            append_u64(out, dump.common.scans);
            out += "}";
            if (!dump.counters.empty()) {
                out += ", \"counters\": {";
                bool first = true;
                for (const auto& [k, v] : dump.counters) {
                    if (!first) out += ", ";
                    first = false;
                    out += "\"";
                    append_json_escaped(out, k);
                    out += "\": ";
                    append_u64(out, v);
                }
                out += "}";
            }
            if (!dump.gauges.empty()) {
                out += ", \"gauges\": {";
                bool first = true;
                for (const auto& [k, v] : dump.gauges) {
                    if (!first) out += ", ";
                    first = false;
                    out += "\"";
                    append_json_escaped(out, k);
                    out += "\": ";
                    append_u64(out, v);
                }
                out += "}";
            }
            if (!dump.histograms.empty()) {
                out += ", \"histograms\": {";
                bool first_hist = true;
                for (const auto& [k, h] : dump.histograms) {
                    if (!first_hist) out += ", ";
                    first_hist = false;
                    out += "\"";
                    append_json_escaped(out, k);
                    out += "\": {\"count\": ";
                    append_u64(out, h.count());
                    // Percentiles from the log2 buckets (intra-bucket linear
                    // interpolation — see HistogramSnapshot::percentile),
                    // rounded to integers: the recorded quantities are tick
                    // counts, where sub-tick precision is noise.
                    out += ", \"p50\": ";
                    append_u64(out, static_cast<std::uint64_t>(h.percentile(0.5) + 0.5));
                    out += ", \"p99\": ";
                    append_u64(out, static_cast<std::uint64_t>(h.percentile(0.99) + 0.5));
                    out += ", \"p999\": ";
                    append_u64(out, static_cast<std::uint64_t>(h.percentile(0.999) + 0.5));
                    out += ", \"buckets\": [";
                    bool first_bucket = true;
                    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
                        if (h.buckets[b] == 0) continue;
                        if (!first_bucket) out += ", ";
                        first_bucket = false;
                        out += "{\"lower\": ";
                        append_u64(out, LogHistogram::bucket_lower(b));
                        out += ", \"upper\": ";
                        append_u64(out, LogHistogram::bucket_upper(b));
                        out += ", \"count\": ";
                        append_u64(out, h.buckets[b]);
                        out += "}";
                    }
                    out += "]}";
                }
                out += "}";
            }
            out += "}";
        }
        out += "]}";
        return out;
    }

    static std::string render_prometheus(const std::map<std::string, SourceDump>& sources) {
        std::string out;
        auto emit = [&out](const char* type, const std::string& metric,
                           const std::string& source, const char* suffix,
                           const std::string& extra_label, std::uint64_t value) {
            if (type != nullptr) {
                out += "# TYPE " + metric + " " + type + "\n";
            }
            out += metric + suffix + "{source=\"" + source + "\"" + extra_label + "} ";
            append_u64(out, value);
            out += "\n";
        };
        for (const auto& [name, dump] : sources) {
            const std::string src = prom_sanitize(name);
            emit("counter", "orcgc_retired_total", src, "", "", dump.common.retired);
            emit("counter", "orcgc_freed_total", src, "", "", dump.common.freed);
            emit("gauge", "orcgc_peak_unreclaimed", src, "", "",
                 dump.common.peak_unreclaimed);
            emit("counter", "orcgc_scans_total", src, "", "", dump.common.scans);
            for (const auto& [k, v] : dump.counters) {
                emit("counter", "orcgc_" + prom_sanitize(k) + "_total", src, "", "", v);
            }
            for (const auto& [k, v] : dump.gauges) {
                emit("gauge", "orcgc_" + prom_sanitize(k), src, "", "", v);
            }
            for (const auto& [k, h] : dump.histograms) {
                const std::string metric = "orcgc_" + prom_sanitize(k);
                out += "# TYPE " + metric + " histogram\n";
                std::uint64_t cumulative = 0;
                for (int b = 0; b < HistogramSnapshot::kBuckets; ++b) {
                    if (h.buckets[b] == 0) continue;
                    cumulative += h.buckets[b];
                    char le[32];
                    std::snprintf(le, sizeof(le), ",le=\"%llu\"",
                                  static_cast<unsigned long long>(
                                      LogHistogram::bucket_upper(b)));
                    emit(nullptr, metric, src, "_bucket", le, cumulative);
                }
                emit(nullptr, metric, src, "_bucket", ",le=\"+Inf\"", cumulative);
                emit(nullptr, metric, src, "_count", "", cumulative);
                // The Prometheus histogram type cannot carry quantiles, so
                // the interpolated percentiles ride as companion gauges.
                emit("gauge", metric + "_p50", src, "", "",
                     static_cast<std::uint64_t>(h.percentile(0.5) + 0.5));
                emit("gauge", metric + "_p99", src, "", "",
                     static_cast<std::uint64_t>(h.percentile(0.99) + 0.5));
                emit("gauge", metric + "_p999", src, "", "",
                     static_cast<std::uint64_t>(h.percentile(0.999) + 0.5));
            }
        }
        return out;
    }

    static void write_text(const std::string& path, const std::string& text) {
        std::FILE* out = std::fopen(path.c_str(), "w");
        if (out == nullptr) {
            std::fprintf(stderr, "orcgc: cannot write telemetry to %s\n", path.c_str());
            return;
        }
        std::fwrite(text.data(), 1, text.size(), out);
        std::fclose(out);
    }

    /// ORC_TELEMETRY_DUMP_MS: rewrite the requested dump files periodically
    /// so viewers (orc_top --watch) can follow a running process. The thread
    /// never registers a dense thread id (it only takes the mutex and reads
    /// relaxed atomics), so it does not consume a kMaxThreads slot.
    void maybe_start_dumper_locked() {
        if (dump_ms_ <= 0 || dumper_.joinable()) return;
        if (json_path_.empty() && prom_path_.empty()) return;
        dumper_ = std::thread([this] {
            while (!dumper_stop_.load(std::memory_order_acquire)) {
                std::this_thread::sleep_for(std::chrono::milliseconds(dump_ms_));
                std::lock_guard<std::mutex> lock(mu_);
                const auto merged = snapshot_locked();
                if (!json_path_.empty()) write_text(json_path_, render_json(merged));
                if (!prom_path_.empty()) write_text(prom_path_, render_prometheus(merged));
            }
        });
    }

    void stop_dumper() {
        dumper_stop_.store(true, std::memory_order_release);
        if (dumper_.joinable()) dumper_.join();
    }

    std::mutex mu_;
    std::vector<MetricProvider*> live_;
    std::map<std::string, SourceDump> accumulated_;
    bool trace_requested_ = false;
    std::string trace_path_;
    /// Trace JSONL from unregistered providers, written at exit.
    std::string trace_text_;
    std::string json_path_;
    std::string prom_path_;
    int dump_ms_ = 0;
    std::thread dumper_;
    std::atomic<bool> dumper_stop_{false};
};

}  // namespace

void register_provider(MetricProvider* provider) { Registry::instance().add(provider); }

void unregister_provider(MetricProvider* provider) { Registry::instance().remove(provider); }

bool trace_requested() { return Registry::instance().trace_requested(); }

void touch() { (void)Registry::instance(); }

std::string export_json() { return Registry::instance().json(); }

std::string export_prometheus() { return Registry::instance().prometheus(); }

}  // namespace telemetry
}  // namespace orcgc
