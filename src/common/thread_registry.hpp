// Dense thread-id registry.
//
// Every reclamation scheme in this library (HP, PTB, HE, IBR, PTP, OrcGC)
// keeps per-thread state in flat arrays indexed by a *dense* thread id in
// [0, kMaxThreads). std::this_thread::get_id() is neither dense nor reusable,
// so we maintain our own lock-free registry: a thread claims the lowest free
// slot on first use (CAS over a bool array — lock-free, no allocation) and
// releases it from a thread_local destructor when the thread exits, allowing
// id reuse by later threads.
//
// Schemes that must clean per-thread state on exit (e.g. PTP handover slots)
// register an exit hook which runs while the departing thread still owns its
// id.
#pragma once

#include <atomic>
#include <cstdint>

namespace orcgc {

/// Compile-time upper bound on concurrently *registered* threads.
/// All per-thread arrays in the reclamation schemes are sized with this.
inline constexpr int kMaxThreads = 128;

namespace detail {

class ThreadRegistry {
  public:
    static ThreadRegistry& instance();

    /// Claims the lowest free slot. Aborts if more than kMaxThreads threads
    /// are simultaneously registered (a hard capacity error, not a race).
    int acquire();

    /// Returns a slot to the free pool. Runs all registered exit hooks first.
    void release(int tid);

    /// Registers a hook invoked (with the tid) whenever a thread exits.
    /// Hooks must be registered before the first worker threads exit and are
    /// never removed; intended for process-lifetime reclamation singletons.
    using ExitHook = void (*)(int tid);
    void add_exit_hook(ExitHook hook);

    /// One past the highest tid ever handed out; scanners iterate [0, this).
    int watermark() const noexcept { return watermark_.load(std::memory_order_acquire); }

  private:
    ThreadRegistry() = default;

    // orc-lint: allow(R4) written only at thread start/exit (no hot-path contention); padding would spend 16KB on a cold array
    std::atomic<bool> used_[kMaxThreads] = {};
    std::atomic<int> watermark_{0};
    static constexpr int kMaxHooks = 16;
    std::atomic<ExitHook> hooks_[kMaxHooks] = {};
    std::atomic<int> num_hooks_{0};
};

}  // namespace detail

/// Dense id of the calling thread; registered lazily on first call.
int thread_id();

/// One past the highest thread id ever used; bound for per-thread scans.
int thread_id_watermark();

/// See detail::ThreadRegistry::add_exit_hook.
void add_thread_exit_hook(detail::ThreadRegistry::ExitHook hook);

}  // namespace orcgc
