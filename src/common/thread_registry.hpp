// Dense thread-id registry.
//
// Every reclamation scheme in this library (HP, PTB, HE, IBR, PTP, OrcGC)
// keeps per-thread state in flat arrays indexed by a *dense* thread id in
// [0, kMaxThreads). std::this_thread::get_id() is neither dense nor reusable,
// so we maintain our own lock-free registry: a thread claims the lowest free
// slot on first use (CAS over a bool array — lock-free, no allocation) and
// releases it from a thread_local destructor when the thread exits, allowing
// id reuse by later threads.
//
// Schemes that must clean per-thread state on exit (e.g. PTP handover slots)
// register an exit hook which runs while the departing thread still owns its
// id.
#pragma once

#include <atomic>
#include <cstdint>

namespace orcgc {

/// Compile-time upper bound on concurrently *registered* threads.
/// All per-thread arrays in the reclamation schemes are sized with this.
inline constexpr int kMaxThreads = 128;

namespace detail {

class ThreadRegistry {
  public:
    static ThreadRegistry& instance();

    /// Claims the lowest free slot. Calls fatal() — a diagnostic plus abort,
    /// asserted by a death test — if more than kMaxThreads threads are
    /// simultaneously registered (a hard capacity error, not a race).
    int acquire();

    /// Returns a slot to the free pool. Runs all registered exit hooks first.
    void release(int tid);

    /// Registers a hook invoked (with the tid) whenever a thread exits.
    /// Hooks must be registered before the first worker threads exit and are
    /// never removed; intended for process-lifetime reclamation singletons.
    using ExitHook = void (*)(int tid);
    void add_exit_hook(ExitHook hook);

    /// One past the highest tid ever handed out; scanners iterate [0, this).
    int watermark() const noexcept { return watermark_.load(std::memory_order_acquire); }

  private:
    ThreadRegistry() = default;

    // orc-lint: allow(R4) written only at thread start/exit (no hot-path contention); padding would spend 16KB on a cold array
    std::atomic<bool> used_[kMaxThreads] = {};
    std::atomic<int> watermark_{0};
    static constexpr int kMaxHooks = 16;
    std::atomic<ExitHook> hooks_[kMaxHooks] = {};
    std::atomic<int> num_hooks_{0};
};

/// Slow path of thread_id(): claims a slot, caches it in tl_thread_id, and
/// arranges release at thread exit. Out of line — it runs once per thread.
int register_this_thread();

}  // namespace detail

/// Cached dense id of the calling thread; -1 until first registration and
/// again after the thread's slot is released at exit. Engine code must not
/// read this directly — it exists only to make thread_id() a single TLS load.
inline thread_local int tl_thread_id = -1;

/// Dense id of the calling thread; registered lazily on first call. Every
/// engine entry point (protect, release, retire) starts with this lookup, so
/// the hot path is one TLS read and a predictable branch instead of the
/// guard-variable check + out-of-line call a function-local static costs.
inline int thread_id() {
    const int tid = tl_thread_id;
    return tid >= 0 ? tid : detail::register_this_thread();
}

/// One past the highest thread id ever used; bound for per-thread scans.
int thread_id_watermark();

/// See detail::ThreadRegistry::add_exit_hook.
void add_thread_exit_hook(detail::ThreadRegistry::ExitHook hook);

}  // namespace orcgc
