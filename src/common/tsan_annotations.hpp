// ThreadSanitizer happens-before annotations for reclamation handover edges.
//
// Every scheme in this library proves "no thread can still touch p" by
// *scanning* published protections (hazard pointers, guards, eras) rather
// than by a release/acquire pair on a single location. TSan cannot see those
// protocol-level edges: a reader's plain access to a node followed by a
// scanner's delete looks like a data race even though the scan proved the
// reader had unpublished first (or was parked past). These annotations spell
// out the two halves of the invisible edge:
//
//   ORC_ANNOTATE_HAPPENS_BEFORE(p)  reader side — "all my accesses to p are
//                                   done" — placed where a protection slot is
//                                   cleared or overwritten.
//   ORC_ANNOTATE_HAPPENS_AFTER(p)   reclaimer side — placed immediately
//                                   before delete, after the scan proved no
//                                   protection covers p.
//
// Era-/epoch-based schemes (EBR, HE, IBR) cannot name the individual objects
// a reservation covered, so they annotate coarsely on the shared era clock:
// release on reservation change, acquire before each delete batch.
//
// The macros compile to nothing unless TSan is active (auto-detected, or
// forced by the ORCGC_TSAN_BUILD definition that -DORCGC_TSAN=ON sets), so
// regular and ASan builds are byte-identical to an unannotated tree.
#pragma once

#include <atomic>

#if defined(ORCGC_TSAN_BUILD) || defined(__SANITIZE_THREAD__)
#define ORCGC_TSAN_ACTIVE 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define ORCGC_TSAN_ACTIVE 1
#endif
#endif
#ifndef ORCGC_TSAN_ACTIVE
#define ORCGC_TSAN_ACTIVE 0
#endif

#if ORCGC_TSAN_ACTIVE
extern "C" {
void __tsan_acquire(void* addr);
void __tsan_release(void* addr);
}
#define ORC_ANNOTATE_HAPPENS_BEFORE(addr) __tsan_release((void*)(addr))
#define ORC_ANNOTATE_HAPPENS_AFTER(addr) __tsan_acquire((void*)(addr))
#else
#define ORC_ANNOTATE_HAPPENS_BEFORE(addr) ((void)0)
#define ORC_ANNOTATE_HAPPENS_AFTER(addr) ((void)0)
#endif

namespace orcgc {

/// Reader-side release for a protection slot that is about to be cleared or
/// overwritten: announces that all accesses to the currently protected object
/// are complete. No-op (not even a load) outside TSan builds.
template <typename T>
inline void tsan_release_protection(const std::atomic<T>& slot) noexcept {
#if ORCGC_TSAN_ACTIVE
    if (T ptr = slot.load(std::memory_order_relaxed)) ORC_ANNOTATE_HAPPENS_BEFORE(ptr);
#else
    (void)slot;
#endif
}

/// Reclaimer-side acquire immediately before deleting `obj`: pairs with the
/// tsan_release_protection() of whichever reader most recently announced it
/// was done with obj. Shared by every OrcGC delete site — the protocol
/// evidence differs (per-object scan vs. generation snapshot, both with
/// sequence revalidation) but the invisible edge TSan needs is identical.
inline void tsan_acquire_for_delete(const void* obj) noexcept {
    ORC_ANNOTATE_HAPPENS_AFTER(obj);
    (void)obj;  // the macro compiles to nothing outside TSan builds
}

}  // namespace orcgc
