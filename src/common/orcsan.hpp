// OrcSan: the reclamation sanitizer (DESIGN.md §1.9).
//
// ASan reports a heap-use-after-free long after the reclamation-discipline
// violation that caused it; orc-lint (R1–R10) sees tokens, not runtime
// state. OrcSan closes the gap with a per-object *shadow state machine*
// keyed off the orc_base header:
//
//        on_alloc          on_retire            divert (destroy)
//   ───────────▶  Live  ─────────────▶ Retired ─────────────▶ Quarantined
//                  ▲                      │                        │
//                  └──────────────────────┘                        ▼ evict
//                       on_resurrect                             Freed
//
// Every transition is recorded in a small per-object history ring (thread
// id, rdtsc, from → to), so a violation report names the invariant AND
// shows who retired the object, who freed it, and who touched it after.
//
// Violation classes (each a counter on the "orcsan" telemetry provider):
//   double_retire        a retire transition on an already-Retired object
//   unprotected_deref    a deref (orc_ptr), link store (orc_atomic) or
//                        validated protection (manual schemes) whose target
//                        is not Live and not covered by any published
//                        protection slot
//   poison_torn          the 0xDD fill / canary of a quarantined block was
//                        overwritten before eviction — a latent UAF *write*,
//                        caught even when the racing access itself ran
//                        uninstrumented (the memory is still allocated, so
//                        ASan is blind to it)
//   cross_domain_retire  a retire routed to a domain that does not own the
//                        object (bypassed domain_of routing)
//
// The domain free path diverts objects into a bounded per-domain quarantine
// ring instead of deleting: the destructor runs immediately (cascades and
// tracked-object accounting are unchanged), then the block is canary-stamped
// and poisoned, and only on eviction — ring overflow or domain destruction —
// is the memory verified and returned to the allocator.
//
// Environment:
//   ORC_ORCSAN_QUARANTINE=<n>  per-domain quarantine capacity (default 64)
//   ORC_ORCSAN_ABORT=0         report violations to stderr and keep going
//                              (default: fatal() — abort on first violation)
//
// Everything here compiles to nothing unless -DORCGC_ORCSAN=ON (CMake);
// the default-OFF hot path is bit-identical to a build without this header.
// OrcSan composes with ASan/UBSan but not TSan (CMake hard-errors): the
// quarantine diversion changes the happens-before shape TSan models.
#pragma once

#include <cstddef>
#include <cstdint>

namespace orcgc {

struct orc_base;
class OrcDomain;

namespace orcsan {

#ifdef ORCGC_ORCSAN
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// Shadow lifecycle states. kUnknown is the decoded form of "no entry":
/// objects allocated behind make_orc's back (stack fixtures, manual-scheme
/// nodes) enter the machine at their first retire.
enum class State : std::uint8_t {
    kUnknown = 0,
    kLive = 1,
    kRetired = 2,
    kQuarantined = 3,
    kFreed = 4,
};

inline const char* state_name(State s) noexcept {
    switch (s) {
        case State::kUnknown: return "Unknown";
        case State::kLive: return "Live";
        case State::kRetired: return "Retired";
        case State::kQuarantined: return "Quarantined";
        case State::kFreed: return "Freed";
    }
    return "?";
}

/// Point-in-time totals, exposed for tests (the telemetry provider reports
/// the same quantities process-wide). All monotonic except the occupancy.
struct Stats {
    std::uint64_t allocated = 0;       ///< shadow registrations (make_orc)
    std::uint64_t retired = 0;         ///< Live/Unknown -> Retired transitions
    std::uint64_t quarantined = 0;     ///< Retired -> Quarantined diversions
    std::uint64_t freed = 0;           ///< blocks returned to the allocator
    std::uint64_t double_retire = 0;
    std::uint64_t unprotected_deref = 0;
    std::uint64_t poison_torn = 0;
    std::uint64_t cross_domain_retire = 0;
    std::uint64_t quarantine_occupancy = 0;  ///< current, across all domains
    std::uint64_t quarantine_peak = 0;
};

#ifdef ORCGC_ORCSAN

// ---- lifecycle hooks (definitions in orcsan.cpp) --------------------------

/// Forces shadow-table construction NOW. OrcDomain's constructor calls this
/// so the table outlives the global domain (same static-teardown ordering
/// argument as telemetry::touch()).
void touch();

/// make_orc_in: registers the object Live and stamps its canary (the value
/// is fixed at allocation; the quarantine writes it into the block at
/// diversion and verifies it at eviction). `align` is alignof(T): eviction
/// must call the same operator delete overload the new-expression paired
/// with, so over-aligned blocks (cache-line-padded rings) are returned via
/// the aligned form — ASan's new-delete-type-mismatch check enforces this.
void on_alloc(const orc_base* obj, std::size_t size, std::size_t align,
              const OrcDomain* domain);

/// A retire token was taken (any of the engine's four token sites, or a
/// manual scheme's retire()). Live/Unknown -> Retired; an already-Retired
/// (or later) state is a double_retire violation.
void on_retire(const void* obj);

/// The engine dropped the retire token for good (Algorithm 6 resurrection):
/// Retired -> Live.
void on_resurrect(const void* obj);

/// True iff the object is registered with a known size — i.e. the domain
/// free path should divert it into the quarantine. Objects allocated behind
/// make_orc's back (unknown extent) must fall back to plain delete; their
/// shadow entry, if any, is dropped via on_untracked_free.
bool divert_eligible(const orc_base* obj);

/// Parks a destroyed object's memory in `domain`'s quarantine ring:
/// Retired -> Quarantined, canary stamp + 0xDD payload fill, and eviction
/// of the oldest entry once the ring exceeds ORC_ORCSAN_QUARANTINE.
/// `mem` is the allocation address (dynamic_cast<void*> BEFORE the
/// destructor ran); the destructor must already have run.
void quarantine_put(const OrcDomain* domain, const void* obj, void* mem);

/// Evicts (verifies + frees) everything `domain` still holds. Called by
/// ~OrcDomain after the drain protocol proved quiescence.
void quarantine_flush(const OrcDomain* domain);

/// Erases the shadow entry of an object freed outside the quarantine (the
/// global domain's lenient teardown sweep, untracked objects).
void on_untracked_free(const void* obj);

// ---- checks ---------------------------------------------------------------

/// orc_ptr deref: the target must be Live, or covered by a published hp
/// slot of `dom` (any thread — protections may legitimately outlive their
/// creating scope under copy/move). Violation: unprotected_deref.
void check_deref(const orc_base* obj, const OrcDomain* dom);

/// orc_atomic store/cas/exchange: the *new* value must be protected by the
/// caller at the moment of the call (the paper's contract). Same predicate
/// as check_deref against the object's own domain.
void check_link(const orc_base* obj);

/// A retire is being run by `retiring` on an object owned by `owner`.
/// Violation: cross_domain_retire (the scan would walk the wrong domain's
/// hp slots — a protection there could never be found).
void check_retire_domain(const OrcDomain* retiring, const OrcDomain* owner, const void* obj);

/// Manual schemes, after a successful protect/validate: a target the shadow
/// machine knows to be Quarantined or Freed can only mean the protection
/// came too late. Live/Retired/Unknown pass (the benign validate race).
void check_protect(const void* obj);

/// A manual scheme's retire(). Same transition as on_retire.
void on_manual_retire(const void* obj);

/// A manual scheme is about to `delete obj`: Retired -> Freed, and the
/// entry is erased (the allocator may reuse the address immediately).
void on_manual_free(const void* obj);

// ---- introspection (tests) ------------------------------------------------

Stats stats();

/// Shadow entries currently in the table (conservation: a domain that
/// allocated N objects and was destroyed leaves the count unchanged).
std::size_t live_entries();

/// Decoded state of one object (kUnknown when unregistered).
State state_of(const void* obj);

namespace testing {
/// Downgrades violations from fatal() to stderr reports so a test can
/// assert on counters in-process. Death tests use the default abort mode.
void set_abort(bool abort_on_violation);
}  // namespace testing

#else  // !ORCGC_ORCSAN — every hook is an empty inline, erased at -O0 even.

inline void touch() noexcept {}
inline void on_alloc(const orc_base*, std::size_t, std::size_t, const OrcDomain*) noexcept {}
inline void on_retire(const void*) noexcept {}
inline void on_resurrect(const void*) noexcept {}
inline bool divert_eligible(const orc_base*) noexcept { return false; }
inline void quarantine_put(const OrcDomain*, const void*, void*) noexcept {}
inline void quarantine_flush(const OrcDomain*) noexcept {}
inline void on_untracked_free(const void*) noexcept {}
inline void check_deref(const orc_base*, const OrcDomain*) noexcept {}
inline void check_link(const orc_base*) noexcept {}
inline void check_retire_domain(const OrcDomain*, const OrcDomain*, const void*) noexcept {}
inline void check_protect(const void*) noexcept {}
inline void on_manual_retire(const void*) noexcept {}
inline void on_manual_free(const void*) noexcept {}
inline Stats stats() noexcept { return {}; }
inline std::size_t live_entries() noexcept { return 0; }
inline State state_of(const void*) noexcept { return State::kUnknown; }
namespace testing {
inline void set_abort(bool) noexcept {}
}  // namespace testing

#endif  // ORCGC_ORCSAN

}  // namespace orcsan
}  // namespace orcgc
