#include "common/alloc_tracker.hpp"

namespace orcgc {

AllocCounters& AllocCounters::instance() {
    static AllocCounters counters;
    return counters;
}

}  // namespace orcgc
