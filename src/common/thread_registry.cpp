#include "common/thread_registry.hpp"

#include "common/fatal.hpp"

namespace orcgc {
namespace detail {

ThreadRegistry& ThreadRegistry::instance() {
    // Function-local static: constructed before any thread registers, and
    // therefore destroyed after every thread_local ThreadSlot (thread storage
    // duration objects are destroyed before static storage duration ones).
    static ThreadRegistry registry;
    return registry;
}

int ThreadRegistry::acquire() {
    for (int tid = 0; tid < kMaxThreads; ++tid) {
        bool expected = false;
        if (!used_[tid].load(std::memory_order_relaxed) &&
            used_[tid].compare_exchange_strong(expected, true, std::memory_order_acq_rel)) {
            // Raise the watermark so scanners cover this slot.
            int wm = watermark_.load(std::memory_order_relaxed);
            while (wm < tid + 1 &&
                   !watermark_.compare_exchange_weak(wm, tid + 1, std::memory_order_acq_rel)) {
            }
            return tid;
        }
    }
    fatal(
        "orcgc: thread registry exhausted: more than %d threads are registered "
        "concurrently. Every thread that touches an OrcGC structure claims a dense id "
        "for its hazardous-pointer slots; raise orcgc::kMaxThreads "
        "(src/common/thread_registry.hpp) or cap the worker pool.",
        kMaxThreads);
}

void ThreadRegistry::release(int tid) {
    const int n = num_hooks_.load(std::memory_order_acquire);
    for (int i = 0; i < n; ++i) {
        if (ExitHook hook = hooks_[i].load(std::memory_order_acquire)) hook(tid);
    }
    used_[tid].store(false, std::memory_order_release);
}

void ThreadRegistry::add_exit_hook(ExitHook hook) {
    const int n = num_hooks_.load(std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
        if (hooks_[i].load(std::memory_order_relaxed) == hook) return;  // idempotent
    }
    const int slot = num_hooks_.fetch_add(1, std::memory_order_acq_rel);
    if (slot >= kMaxHooks) {
        fatal("orcgc: too many thread-exit hooks (max %d)", kMaxHooks);
    }
    hooks_[slot].store(hook, std::memory_order_release);
}

namespace {

// RAII holder whose construction claims a tid and whose destruction (at
// thread exit) releases it. The cached tl_thread_id stays valid through the
// exit hooks (they run inside release(), and e.g. the domain registry's
// drain re-enters thread_id()) and is invalidated only after the slot is
// free.
struct ThreadSlot {
    int tid;
    ThreadSlot() : tid(ThreadRegistry::instance().acquire()) {}
    ~ThreadSlot() {
        ThreadRegistry::instance().release(tid);
        tl_thread_id = -1;
    }
};

}  // namespace

int register_this_thread() {
    static thread_local ThreadSlot slot;
    tl_thread_id = slot.tid;
    return slot.tid;
}

}  // namespace detail

int thread_id_watermark() { return detail::ThreadRegistry::instance().watermark(); }

void add_thread_exit_hook(detail::ThreadRegistry::ExitHook hook) {
    detail::ThreadRegistry::instance().add_exit_hook(hook);
}

}  // namespace orcgc
