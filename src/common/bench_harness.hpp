// Timed-run benchmark driver used by all figure-reproduction binaries.
//
// Mirrors the paper's harness: for each (structure, mix, thread-count) point,
// spawn t threads behind a barrier, run for a fixed wall-clock window, count
// completed operations per thread, and report the mean and stddev of ops/s
// over `runs` repetitions. The paper used 20 s x 5 runs; defaults here are
// container-sized and overridable via environment variables:
//   ORC_BENCH_MS      per-run window in milliseconds   (default 150)
//   ORC_BENCH_RUNS    repetitions per point            (default 3)
//   ORC_BENCH_THREADS comma list of thread counts      (default "1,2,4")
//   ORC_BENCH_KEYS    key-range override for set benches
//   ORC_BENCH_JSON    path to mirror every printed row as machine-readable
//                     JSON (same effect as the --json <path> flag parsed by
//                     bench_json_init) — this is how BENCH_baseline.json and
//                     the CI bench-smoke artifacts are produced.
#pragma once

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/barrier.hpp"
#include "common/telemetry.hpp"

namespace orcgc {

struct BenchConfig {
    int run_ms = 150;
    int runs = 3;
    std::vector<int> thread_counts{1, 2, 4};
    std::uint64_t keys = 0;  // 0 = bench-specific default

    static BenchConfig from_env() {
        BenchConfig cfg;
        if (const char* ms = std::getenv("ORC_BENCH_MS")) cfg.run_ms = std::atoi(ms);
        if (const char* rs = std::getenv("ORC_BENCH_RUNS")) cfg.runs = std::atoi(rs);
        if (const char* ks = std::getenv("ORC_BENCH_KEYS")) cfg.keys = std::strtoull(ks, nullptr, 10);
        if (const char* ts = std::getenv("ORC_BENCH_THREADS")) {
            cfg.thread_counts.clear();
            std::string spec(ts);
            std::size_t pos = 0;
            while (pos < spec.size()) {
                std::size_t comma = spec.find(',', pos);
                if (comma == std::string::npos) comma = spec.size();
                cfg.thread_counts.push_back(std::atoi(spec.substr(pos, comma - pos).c_str()));
                pos = comma + 1;
            }
        }
        return cfg;
    }
};

struct RunStats {
    double mean_ops_per_sec = 0;
    double stddev = 0;
    // Retire→free age percentiles (telemetry::coarse_now ticks) for the
    // series that produced this row; negative = not measured. Benches fill
    // them by deltaing the domain's retire_free_age histogram around the
    // run (fill_age_percentiles).
    double age_p50 = -1;
    double age_p99 = -1;
    double age_p999 = -1;
};

/// Fills the age-percentile fields of `stats` from the delta between two
/// retire_free_age histogram snapshots captured before and after one series
/// run. No-op (fields stay negative) when the delta recorded nothing —
/// telemetry-OFF builds, or a series that freed no stamped objects.
inline void fill_age_percentiles(RunStats& stats, telemetry::HistogramSnapshot after,
                                 const telemetry::HistogramSnapshot& before) {
    after.subtract(before);
    if (after.count() == 0) return;
    stats.age_p50 = after.percentile(0.5);
    stats.age_p99 = after.percentile(0.99);
    stats.age_p999 = after.percentile(0.999);
}

/// Runs `body(tid_index, stop_flag)` on `threads` threads for `run_ms`,
/// `runs` times. `body` returns the number of operations it completed.
/// `setup` (optional) runs single-threaded before each repetition.
inline RunStats timed_run(int threads, int run_ms, int runs,
                          const std::function<std::uint64_t(int, const std::atomic<bool>&)>& body,
                          const std::function<void()>& setup = {}) {
    std::vector<double> samples;
    samples.reserve(runs);
    for (int r = 0; r < runs; ++r) {
        if (setup) setup();
        std::atomic<bool> stop{false};
        std::atomic<std::uint64_t> total_ops{0};
        SpinBarrier barrier(threads + 1);
        std::vector<std::thread> workers;
        workers.reserve(threads);
        for (int i = 0; i < threads; ++i) {
            workers.emplace_back([&, i] {
                barrier.arrive_and_wait();
                total_ops.fetch_add(body(i, stop), std::memory_order_relaxed);
            });
        }
        barrier.arrive_and_wait();
        const auto t0 = std::chrono::steady_clock::now();
        std::this_thread::sleep_for(std::chrono::milliseconds(run_ms));
        stop.store(true, std::memory_order_release);
        for (auto& w : workers) w.join();
        const auto t1 = std::chrono::steady_clock::now();
        const double secs = std::chrono::duration<double>(t1 - t0).count();
        samples.push_back(static_cast<double>(total_ops.load()) / secs);
    }
    RunStats stats;
    for (double s : samples) stats.mean_ops_per_sec += s;
    stats.mean_ops_per_sec /= samples.size();
    for (double s : samples) {
        const double d = s - stats.mean_ops_per_sec;
        stats.stddev += d * d;
    }
    stats.stddev = std::sqrt(stats.stddev / samples.size());
    return stats;
}

// ---- machine-readable result mirror -------------------------------------
//
// Every print_row() call is additionally recorded here when JSON output is
// enabled (via ORC_BENCH_JSON=<path> or the --json <path> flag). The file is
// written once, at process exit, as a single object:
//
//   { "schema": "orcgc-bench-v1",
//     "rows": [ { "bench": ..., "series": ..., "mix": ..., "threads": N,
//                 "mean_ops_per_sec": X, "stddev": Y, "normalized": Z|null },
//               ... ],
//     "telemetry": { "schema": "orcgc-telemetry-v1", "sources": [...] } }
//
// The "telemetry" key is the full reclamation-telemetry export (counters,
// gauges, histograms for every live domain and manual scheme) captured at
// flush time — see src/common/telemetry.hpp.
//
// Rows are recorded from the main thread only (the harness prints between
// timed runs, never inside worker bodies), so no locking is needed.

class BenchJsonRecorder {
  public:
    static BenchJsonRecorder& instance() {
        static BenchJsonRecorder recorder;
        return recorder;
    }

    void enable(std::string path) { path_ = std::move(path); }
    bool enabled() const { return !path_.empty(); }

    /// Mirror the telemetry registry as Prometheus text exposition at flush
    /// time (independent of the JSON mirror).
    void enable_prometheus(std::string path) { prom_path_ = std::move(path); }

    void record(const char* bench, const char* series, const char* mix, int threads,
                const RunStats& stats, double normalized) {
        if (!enabled()) return;
        rows_.push_back(Row{bench, series, mix, threads, stats.mean_ops_per_sec, stats.stddev,
                            normalized, stats.age_p50, stats.age_p99, stats.age_p999});
    }

    /// Writes the collected rows plus the telemetry snapshot. Called from the
    /// destructor, but exposed so benches that abort early (perf-gate
    /// failures) can flush first.
    void flush() {
        if (flushed_) return;
        flushed_ = true;
        if (!prom_path_.empty()) {
            std::FILE* prom = std::fopen(prom_path_.c_str(), "w");
            if (prom != nullptr) {
                const std::string text = telemetry::export_prometheus();
                std::fwrite(text.data(), 1, text.size(), prom);
                std::fclose(prom);
            } else {
                std::fprintf(stderr, "bench: cannot write Prometheus text to %s\n",
                             prom_path_.c_str());
            }
        }
        if (!enabled()) return;
        std::FILE* out = std::fopen(path_.c_str(), "w");
        if (out == nullptr) {
            std::fprintf(stderr, "bench: cannot write JSON to %s\n", path_.c_str());
            return;
        }
        std::fprintf(out, "{\n  \"schema\": \"orcgc-bench-v1\",\n  \"rows\": [\n");
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            const Row& r = rows_[i];
            std::fprintf(out,
                         "    {\"bench\": \"%s\", \"series\": \"%s\", \"mix\": \"%s\", "
                         "\"threads\": %d, \"mean_ops_per_sec\": %.1f, \"stddev\": %.1f, ",
                         r.bench.c_str(), r.series.c_str(), r.mix.c_str(), r.threads, r.mean,
                         r.stddev);
            if (r.normalized >= 0) {
                std::fprintf(out, "\"normalized\": %.4f, ", r.normalized);
            } else {
                std::fprintf(out, "\"normalized\": null, ");
            }
            if (r.age_p50 >= 0) {
                std::fprintf(out,
                             "\"age_p50\": %.0f, \"age_p99\": %.0f, \"age_p999\": %.0f}",
                             r.age_p50, r.age_p99, r.age_p999);
            } else {
                std::fprintf(out, "\"age_p50\": null, \"age_p99\": null, \"age_p999\": null}");
            }
            std::fprintf(out, i + 1 < rows_.size() ? ",\n" : "\n");
        }
        std::fprintf(out, "  ],\n  \"telemetry\": %s\n}\n", telemetry::export_json().c_str());
        std::fclose(out);
    }

    ~BenchJsonRecorder() { flush(); }

  private:
    struct Row {
        std::string bench, series, mix;
        int threads;
        double mean, stddev, normalized;
        double age_p50, age_p99, age_p999;
    };

    BenchJsonRecorder() {
        // The destructor exports the telemetry registry; constructing the
        // registry first makes it outlive this recorder (statics die in
        // reverse construction order). Without this, a recorder constructed
        // before the first provider registration flushes into a destroyed
        // registry at exit — unbounded garbage-map traversal, then abort.
        telemetry::touch();
        if (const char* path = std::getenv("ORC_BENCH_JSON")) path_ = path;
    }

    std::string path_;
    std::string prom_path_;
    std::vector<Row> rows_;
    bool flushed_ = false;
};

/// Parses harness-level CLI flags: `--json <path>` (row + telemetry JSON
/// mirror) and `--prom <path>` (Prometheus text exposition of the telemetry
/// registry). Benches that take argv call this at the top of main; env-only
/// use needs no call at all because the recorder reads ORC_BENCH_JSON on
/// first touch.
inline void bench_json_init(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string_view(argv[i]) == "--json") {
            BenchJsonRecorder::instance().enable(argv[i + 1]);
        } else if (std::string_view(argv[i]) == "--prom") {
            BenchJsonRecorder::instance().enable_prometheus(argv[i + 1]);
        }
    }
}

/// Prints one paper-style result row: series name, thread count, ops/s.
inline void print_row(const char* bench, const char* series, const char* mix, int threads,
                      const RunStats& stats, double normalized = -1.0) {
    if (normalized >= 0) {
        std::printf("%-22s %-16s %-10s t=%-3d %12.0f ops/s  (sd %8.0f)  norm=%.2f", bench,
                    series, mix, threads, stats.mean_ops_per_sec, stats.stddev, normalized);
    } else {
        std::printf("%-22s %-16s %-10s t=%-3d %12.0f ops/s  (sd %8.0f)", bench, series, mix,
                    threads, stats.mean_ops_per_sec, stats.stddev);
    }
    if (stats.age_p50 >= 0) {
        std::printf("  age[p50=%.0f p99=%.0f p999=%.0f]", stats.age_p50, stats.age_p99,
                    stats.age_p999);
    }
    std::printf("\n");
    BenchJsonRecorder::instance().record(bench, series, mix, threads, stats, normalized);
    std::fflush(stdout);
}

}  // namespace orcgc
