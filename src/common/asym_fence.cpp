// Asymmetric-fence facility: mode resolution, the heavy (scan-side) barrier,
// and its telemetry provider. The raw membarrier syscall lives here and ONLY
// here — orc-lint rule R9 rejects it anywhere else in the tree.
#include "common/asym_fence.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/telemetry.hpp"
#include "common/tsan_annotations.hpp"

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace orcgc {
namespace asym {
namespace {

// Command values from <linux/membarrier.h>, spelled locally so the build does
// not depend on kernel headers new enough to define the expedited commands.
constexpr int kCmdQuery = 0;
constexpr int kCmdPrivateExpedited = 1 << 3;
constexpr int kCmdRegisterPrivateExpedited = 1 << 4;

int membarrier_call(int cmd) noexcept {
#if defined(__linux__) && defined(SYS_membarrier)
    return static_cast<int>(::syscall(SYS_membarrier, cmd, 0, 0));
#else
    (void)cmd;
    errno = ENOSYS;
    return -1;
#endif
}

// Registration is per-process and idempotent; racing first-users may both
// register, which the kernel treats as a no-op.
bool register_membarrier() noexcept {
    const int supported = membarrier_call(kCmdQuery);
    if (supported < 0 || (supported & kCmdPrivateExpedited) == 0) return false;
    return membarrier_call(kCmdRegisterPrivateExpedited) == 0;
}

// heavy() barriers actually issued, split by which barrier ran so the
// telemetry mode label is cross-checkable from the counters alone. A single
// process-global relaxed counter (not PerThreadCounters): heavy() runs on
// scan paths where one extra uncontended RMW is noise next to the
// syscall/fence, and it must stay safe from exit hooks after thread-local
// teardown.
std::atomic<std::uint64_t> g_heavy_membarrier{0};
std::atomic<std::uint64_t> g_heavy_fence{0};
// Membarrier calls that failed at runtime (post-registration, e.g. EPERM in
// an mm the registration did not carry into) and fell back to a local
// seq_cst thread fence. Counted separately so telemetry never reports a
// process-wide barrier that was not actually issued.
std::atomic<std::uint64_t> g_heavy_membarrier_fallback{0};

class AsymFenceTelemetry final : public telemetry::MetricProvider {
  public:
    AsymFenceTelemetry() {
        if constexpr (telemetry::kTelemetryEnabled) telemetry::register_provider(this);
    }
    ~AsymFenceTelemetry() {
        if constexpr (telemetry::kTelemetryEnabled) telemetry::unregister_provider(this);
    }

    const char* telemetry_name() const noexcept override { return "asym_fence"; }

    telemetry::CommonCounters common_counters() const override { return {}; }

    void visit_extras(telemetry::MetricSink& sink) const override {
        sink.counter("heavy_fences", heavy_fences());
        sink.counter("heavy_fences_membarrier",
                     g_heavy_membarrier.load(std::memory_order_relaxed));
        sink.counter("heavy_fences_fence", g_heavy_fence.load(std::memory_order_relaxed));
        sink.counter("heavy_fences_membarrier_fallback",
                     g_heavy_membarrier_fallback.load(std::memory_order_relaxed));
        sink.gauge("mode", static_cast<std::uint64_t>(mode()));
    }
};

// Constructed on first mode resolution — i.e. once any protection publish or
// scan has happened — so it outlives every user and folds into the registry's
// accumulated totals if the registry outlives it.
void ensure_provider() {
    if constexpr (telemetry::kTelemetryEnabled) {
        static AsymFenceTelemetry provider;
        (void)provider;
    }
}

bool parse_mode(const char* s, Mode* out) noexcept {
    if (s == nullptr) return false;
    if (std::strcmp(s, "membarrier") == 0) {
        *out = Mode::kMembarrier;
    } else if (std::strcmp(s, "fence") == 0) {
        *out = Mode::kFence;
    } else if (std::strcmp(s, "off") == 0) {
        *out = Mode::kOff;
    } else if (std::strcmp(s, "seqcst") == 0) {
        *out = Mode::kSeqCst;
    } else {
        return false;
    }
    return true;
}

}  // namespace

const char* mode_name(Mode m) noexcept {
    switch (m) {
        case Mode::kOff: return "off";
        case Mode::kFence: return "fence";
        case Mode::kMembarrier: return "membarrier";
        case Mode::kSeqCst: return "seqcst";
    }
    return "?";
}

bool membarrier_supported() noexcept { return register_membarrier(); }

namespace testing {

Mode resolve(const char* env_value, Mode compiled, bool tsan_active,
             bool membarrier_available) noexcept {
    Mode m = compiled;
    Mode from_env;
    if (parse_mode(env_value, &from_env)) m = from_env;
    // TSan cannot see the membarrier edge (the kernel barrier is invisible to
    // the race detector), so the asymmetric mode would drown TSan runs in
    // false positives: degrade to the two-sided fence.
    if (tsan_active && m == Mode::kMembarrier) m = Mode::kFence;
    if (m == Mode::kMembarrier && !membarrier_available) m = Mode::kFence;
    return m;
}

void set_mode(Mode m) noexcept {
    if (m == Mode::kMembarrier) {
        m = resolve(nullptr, m, ORCGC_TSAN_ACTIVE != 0, register_membarrier());
    }
    ensure_provider();
    detail::g_mode.store(static_cast<int>(m), std::memory_order_seq_cst);
}

void reset_mode() noexcept { detail::g_mode.store(-1, std::memory_order_seq_cst); }

}  // namespace testing

namespace detail {

Mode resolve_mode() noexcept {
    const Mode compiled = compiled_default();
    const char* env = std::getenv("ORC_ASYM_FENCE");
    // Probe (and register) membarrier only when the pre-degradation choice
    // would actually use it.
    const Mode pre = testing::resolve(env, compiled, ORCGC_TSAN_ACTIVE != 0, true);
    const bool available = pre == Mode::kMembarrier ? register_membarrier() : true;
    const Mode m = testing::resolve(env, compiled, ORCGC_TSAN_ACTIVE != 0, available);
    ensure_provider();
    g_mode.store(static_cast<int>(m), std::memory_order_seq_cst);
    return m;
}

}  // namespace detail

void heavy() noexcept {
    switch (mode()) {
        case Mode::kMembarrier:
            if (membarrier_call(kCmdPrivateExpedited) == 0) [[likely]] {
                g_heavy_membarrier.fetch_add(1, std::memory_order_relaxed);
            } else {
                // Runtime failure after successful registration. A local
                // seq_cst fence is the strongest fallback available here; it
                // is weaker than the process-wide barrier, but combined with
                // the readers' release publishes it restores the seed-level
                // edge for any reader that itself fences (and the separate
                // counter keeps the safety loss visible instead of silent).
                std::atomic_thread_fence(std::memory_order_seq_cst);
                g_heavy_membarrier_fallback.fetch_add(1, std::memory_order_relaxed);
            }
            break;
        case Mode::kFence:
            std::atomic_thread_fence(std::memory_order_seq_cst);
            g_heavy_fence.fetch_add(1, std::memory_order_relaxed);
            break;
        case Mode::kOff:
        case Mode::kSeqCst:
            // off: deliberately nothing. seqcst: readers already paid the full
            // fence on every publish — the seed behaviour this mode reproduces.
            break;
    }
}

std::uint64_t heavy_fences() noexcept {
    return g_heavy_membarrier.load(std::memory_order_relaxed) +
           g_heavy_fence.load(std::memory_order_relaxed) +
           g_heavy_membarrier_fallback.load(std::memory_order_relaxed);
}

}  // namespace asym
}  // namespace orcgc
