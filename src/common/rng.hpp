// Deterministic per-thread PRNG for workload generation.
//
// Benchmarks and stress tests need a fast, statistically decent generator
// that (a) never shares state between threads and (b) is reproducible given
// a seed. xoshiro256** (Blackman & Vigna) fits: 4x64-bit state, ~1ns/word.
#pragma once

#include <cstdint>

namespace orcgc {

class Xoshiro256 {
  public:
    /// SplitMix64-seeded so that consecutive seeds give uncorrelated streams.
    explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) {
        for (auto& word : state_) {
            seed += 0x9E3779B97F4A7C15ULL;
            std::uint64_t z = seed;
            z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
            z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
            word = z ^ (z >> 31);
        }
    }

    std::uint64_t next() noexcept {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform integer in [0, bound). bound must be > 0.
    std::uint64_t next_bounded(std::uint64_t bound) noexcept {
        // 128-bit multiply trick (Lemire); bias is negligible for bench use.
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /// Uniform double in [0, 1).
    double next_double() noexcept { return (next() >> 11) * 0x1.0p-53; }

  private:
    static std::uint64_t rotl(std::uint64_t x, int k) noexcept {
        return (x << k) | (x >> (64 - k));
    }
    std::uint64_t state_[4];
};

}  // namespace orcgc
