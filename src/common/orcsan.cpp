// OrcSan implementation: the shadow table, the per-domain quarantine, and
// the violation reporter (model in orcsan.hpp; design in DESIGN.md §1.9).
//
// Layering: this file may see the whole engine (it includes orc_domain.hpp
// for the protection-slot coverage scan), but the engine sees only the hook
// declarations in orcsan.hpp — no cycle.
//
// Locking: the shadow table is sharded by object address (64 shards, one
// mutex each); the quarantine has its own mutex. Eviction runs shadow
// transitions while holding the quarantine mutex — the order is always
// quarantine -> shard, never the reverse, so there is no cycle. No orcsan
// lock is ever held across user code (destructors run between
// divert_eligible and quarantine_put, outside both).
//
// This is diagnostic machinery, deliberately simple: std::unordered_map
// under a mutex, not a lock-free table. OrcSan is a debug build
// (EXPERIMENTS.md records the overhead); correctness of the *reports* is
// what matters here.

#include "common/orcsan.hpp"

#ifdef ORCGC_ORCSAN

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <mutex>
#include <new>
#include <unordered_map>

#include "common/fatal.hpp"
#include "common/telemetry.hpp"
#include "common/thread_registry.hpp"
#include "core/orc_domain.hpp"

namespace orcgc {
namespace orcsan {
namespace {

constexpr std::size_t kShards = 64;
constexpr int kHistory = 8;
constexpr unsigned char kPoison = 0xDD;
constexpr std::uint64_t kCanarySalt = 0xA11C0A7EDC0DEC0DULL;

/// The canary is a function of the allocation address, so a block copied
/// over another block's quarantined memory still tears it.
std::uint64_t canary_for(const void* mem) noexcept {
    return kCanarySalt ^ reinterpret_cast<std::uintptr_t>(mem);
}

struct Transition {
    std::uint64_t tsc = 0;
    std::int32_t tid = -1;
    State from = State::kUnknown;
    State to = State::kUnknown;
};

struct Entry {
    State state = State::kUnknown;
    std::uint32_t size = 0;   ///< 0 = unknown extent (auto-registered at retire)
    std::uint32_t align = 0;  ///< alignof(T) at make_orc; picks the delete overload
    const OrcDomain* domain = nullptr;
    std::uint64_t canary = 0;
    Transition history[kHistory];
    std::uint8_t hist_len = 0;   ///< filled slots (caps at kHistory)
    std::uint8_t hist_next = 0;  ///< ring write cursor

    void record(State to) noexcept {
        Transition& t = history[hist_next];
        t.tsc = telemetry::now_tsc();
        // Read-only TLS peek, not thread_id(): transitions also run during
        // static teardown (the global domain flushing its quarantine), after
        // the main thread's slot was released — lazy re-registration there
        // would re-run the exit hooks. -1 decodes as "unregistered thread".
        t.tid = tl_thread_id;
        t.from = state;
        t.to = to;
        hist_next = static_cast<std::uint8_t>((hist_next + 1) % kHistory);
        if (hist_len < kHistory) ++hist_len;
        state = to;
    }
};

struct Shard {
    std::mutex mu;
    std::unordered_map<const void*, Entry> map;
};

struct QuarantineItem {
    const void* key = nullptr;  ///< shadow-table key (the orc_base address)
    void* mem = nullptr;        ///< allocation address (what operator delete gets)
    std::uint32_t size = 0;
    std::uint32_t align = 0;
};

class Sanitizer;

/// The telemetry face of the sanitizer: violation counters plus the
/// quarantine gauges, reported under the "orcsan" source name.
class OrcsanMetrics final : public telemetry::MetricProvider {
  public:
    explicit OrcsanMetrics(const Sanitizer& owner) : owner_(owner) {
        if constexpr (telemetry::kTelemetryEnabled) telemetry::register_provider(this);
    }
    ~OrcsanMetrics() {
        if constexpr (telemetry::kTelemetryEnabled) telemetry::unregister_provider(this);
    }
    OrcsanMetrics(const OrcsanMetrics&) = delete;
    OrcsanMetrics& operator=(const OrcsanMetrics&) = delete;

    const char* telemetry_name() const noexcept override { return "orcsan"; }
    telemetry::CommonCounters common_counters() const override;
    void visit_extras(telemetry::MetricSink& sink) const override;

  private:
    const Sanitizer& owner_;
};

class Sanitizer {
  public:
    Sanitizer() {
        if (const char* v = std::getenv("ORC_ORCSAN_QUARANTINE")) {
            const long n = std::atol(v);
            if (n >= 0) quarantine_cap_ = static_cast<std::size_t>(n);
        }
        if (const char* v = std::getenv("ORC_ORCSAN_ABORT")) {
            abort_ = !(v[0] == '0' && v[1] == '\0');
        }
    }

    ~Sanitizer() {
        // Whatever is still quarantined belongs to domains that never died
        // (leaked allocations at process exit). Return the memory so ASan's
        // leak checker stays quiet about *our* diversion.
        std::lock_guard<std::mutex> lock(qmu_);
        for (auto& [dom, ring] : quarantines_) {
            (void)dom;
            for (QuarantineItem& item : ring) release_item(item);
        }
        quarantines_.clear();
    }

    // ---- lifecycle -------------------------------------------------------

    void on_alloc(const orc_base* obj, std::size_t size, std::size_t align,
                  const OrcDomain* domain) {
        Shard& s = shard_of(obj);
        std::lock_guard<std::mutex> lock(s.mu);
        // A recycled address whose previous tenant was freed was erased on
        // free; a *live* collision is impossible, so a leftover entry can
        // only be a stale auto-registration — start fresh either way.
        Entry& e = s.map[obj];
        e = Entry{};
        e.size = static_cast<std::uint32_t>(size);
        e.align = static_cast<std::uint32_t>(align);
        e.domain = domain;
        e.canary = canary_for(obj);
        e.record(State::kLive);
        allocated_.fetch_add(1, std::memory_order_relaxed);
    }

    void on_retire(const void* obj) {
        Shard& s = shard_of(obj);
        std::unique_lock<std::mutex> lock(s.mu);
        Entry& e = s.map[obj];  // auto-registers unknown objects as kUnknown
        if (e.state == State::kRetired || e.state == State::kQuarantined ||
            e.state == State::kFreed) {
            report(lock, "double_retire", double_retire_, obj, &e,
                   "a second retire token was taken for an object that is already "
                   "retired — the object would be freed twice");
            return;
        }
        e.record(State::kRetired);
        retired_.fetch_add(1, std::memory_order_relaxed);
    }

    void on_resurrect(const void* obj) {
        Shard& s = shard_of(obj);
        std::lock_guard<std::mutex> lock(s.mu);
        auto it = s.map.find(obj);
        if (it == s.map.end()) return;
        it->second.record(State::kLive);
    }

    bool divert_eligible(const orc_base* obj) {
        Shard& s = shard_of(obj);
        std::lock_guard<std::mutex> lock(s.mu);
        auto it = s.map.find(obj);
        return it != s.map.end() && it->second.size != 0;
    }

    void quarantine_put(const OrcDomain* domain, const void* obj, void* mem) {
        std::uint32_t size = 0;
        std::uint32_t align = 0;
        {
            Shard& s = shard_of(obj);
            std::lock_guard<std::mutex> lock(s.mu);
            auto it = s.map.find(obj);
            if (it == s.map.end()) return;  // raced with nothing — defensive
            it->second.record(State::kQuarantined);
            size = it->second.size;
            align = it->second.align;
            // Stamp + poison while the entry lock pins the metadata: canary
            // word first, 0xDD over the rest of the block. The destructor
            // already ran, so nothing legitimate reads this memory again.
            unsigned char* bytes = static_cast<unsigned char*>(mem);
            std::size_t poison_from = 0;
            if (size >= sizeof(std::uint64_t)) {
                const std::uint64_t canary = it->second.canary;
                std::memcpy(bytes, &canary, sizeof(canary));
                poison_from = sizeof(canary);
            }
            std::memset(bytes + poison_from, kPoison, size - poison_from);
        }
        quarantined_.fetch_add(1, std::memory_order_relaxed);

        QuarantineItem evicted[4];
        std::size_t evicted_n = 0;
        {
            std::lock_guard<std::mutex> lock(qmu_);
            auto& ring = quarantines_[domain];
            ring.push_back(QuarantineItem{obj, mem, size, align});
            const std::uint64_t occ =
                occupancy_.fetch_add(1, std::memory_order_relaxed) + 1;
            std::uint64_t peak = peak_occupancy_.load(std::memory_order_relaxed);
            while (occ > peak && !peak_occupancy_.compare_exchange_weak(
                                     peak, occ, std::memory_order_relaxed)) {
            }
            while (ring.size() > quarantine_cap_ && evicted_n < 4) {
                evicted[evicted_n++] = ring.front();
                ring.pop_front();
                occupancy_.fetch_sub(1, std::memory_order_relaxed);
            }
        }
        // Verify + free outside the quarantine mutex: eviction takes shard
        // locks and may fatal with a decoded history.
        for (std::size_t i = 0; i < evicted_n; ++i) release_item(evicted[i]);
    }

    void quarantine_flush(const OrcDomain* domain) {
        std::deque<QuarantineItem> ring;
        {
            std::lock_guard<std::mutex> lock(qmu_);
            auto it = quarantines_.find(domain);
            if (it == quarantines_.end()) return;
            ring.swap(it->second);
            quarantines_.erase(it);
            occupancy_.fetch_sub(ring.size(), std::memory_order_relaxed);
        }
        for (QuarantineItem& item : ring) release_item(item);
    }

    void on_untracked_free(const void* obj) {
        Shard& s = shard_of(obj);
        std::lock_guard<std::mutex> lock(s.mu);
        s.map.erase(obj);
    }

    // ---- checks ----------------------------------------------------------

    void check_deref(const orc_base* obj, const OrcDomain* dom) {
        Shard& s = shard_of(obj);
        std::unique_lock<std::mutex> lock(s.mu);
        auto it = s.map.find(obj);
        if (it == s.map.end() || it->second.state == State::kLive) return;
        // Not Live: legal only while a published protection slot covers the
        // object (a retired-but-protected node mid-traversal is the normal
        // hazard-pointer race). The scan takes no orcsan locks.
        Entry snapshot = it->second;
        lock.unlock();
        const OrcDomain* owner = dom != nullptr ? dom : snapshot.domain;
        if (owner != nullptr && owner->orcsan_covers(obj)) return;
        std::unique_lock<std::mutex> relock(s.mu);
        report(relock, "unprotected_deref", unprotected_deref_, obj, &snapshot,
               "dereference of a non-Live object with no published protection "
               "slot covering it");
    }

    void check_link(const orc_base* obj) {
        // Coverage is judged in the object's OWN domain (domain_of routing):
        // that is where its protections live and where retire scans look.
        const OrcDomain* od = obj->_orc_dom;
        check_deref(obj, od != nullptr ? od : &OrcDomain::global());
    }

    void check_retire_domain(const OrcDomain* retiring, const OrcDomain* owner,
                             const void* obj) {
        if (retiring == owner) return;
        Shard& s = shard_of(obj);
        std::unique_lock<std::mutex> lock(s.mu);
        auto it = s.map.find(obj);
        Entry snapshot = it != s.map.end() ? it->second : Entry{};
        report(lock, "cross_domain_retire", cross_domain_retire_, obj, &snapshot,
               "retire routed to a domain that does not own the object — its "
               "protections live in another domain's hp slots and the scan "
               "here can never find them");
    }

    void check_protect(const void* obj) {
        Shard& s = shard_of(obj);
        std::unique_lock<std::mutex> lock(s.mu);
        auto it = s.map.find(obj);
        if (it == s.map.end()) return;
        const State st = it->second.state;
        if (st != State::kQuarantined && st != State::kFreed) return;
        report(lock, "unprotected_deref", unprotected_deref_, obj, &it->second,
               "protection validated against an object that was already freed "
               "— the publish came after reclamation");
    }

    void on_manual_retire(const void* obj) { on_retire(obj); }

    void on_manual_free(const void* obj) {
        Shard& s = shard_of(obj);
        std::lock_guard<std::mutex> lock(s.mu);
        auto it = s.map.find(obj);
        if (it != s.map.end()) s.map.erase(it);
        freed_.fetch_add(1, std::memory_order_relaxed);
    }

    // ---- introspection ---------------------------------------------------

    Stats stats_snapshot() const {
        Stats st;
        st.allocated = allocated_.load(std::memory_order_relaxed);
        st.retired = retired_.load(std::memory_order_relaxed);
        st.quarantined = quarantined_.load(std::memory_order_relaxed);
        st.freed = freed_.load(std::memory_order_relaxed);
        st.double_retire = double_retire_.load(std::memory_order_relaxed);
        st.unprotected_deref = unprotected_deref_.load(std::memory_order_relaxed);
        st.poison_torn = poison_torn_.load(std::memory_order_relaxed);
        st.cross_domain_retire = cross_domain_retire_.load(std::memory_order_relaxed);
        st.quarantine_occupancy = occupancy_.load(std::memory_order_relaxed);
        st.quarantine_peak = peak_occupancy_.load(std::memory_order_relaxed);
        return st;
    }

    std::size_t live_entries() {
        std::size_t total = 0;
        for (Shard& s : shards_) {
            std::lock_guard<std::mutex> lock(s.mu);
            total += s.map.size();
        }
        return total;
    }

    State state_of(const void* obj) {
        Shard& s = shard_of(obj);
        std::lock_guard<std::mutex> lock(s.mu);
        auto it = s.map.find(obj);
        return it == s.map.end() ? State::kUnknown : it->second.state;
    }

    void set_abort(bool abort_on_violation) { abort_ = abort_on_violation; }

  private:
    Shard& shard_of(const void* obj) noexcept {
        const std::uintptr_t a = reinterpret_cast<std::uintptr_t>(obj);
        // Objects are at least 16-byte granular; fold the high bits in so
        // arena-adjacent addresses spread.
        return shards_[((a >> 4) ^ (a >> 16)) % kShards];
    }

    /// Verifies a quarantined block's canary + poison and returns its memory
    /// to the allocator. The shadow entry moves Quarantined -> Freed and is
    /// erased (the address may be reused the instant operator delete runs).
    void release_item(QuarantineItem& item) {
        const unsigned char* bytes = static_cast<const unsigned char*>(item.mem);
        std::size_t torn_at = SIZE_MAX;
        std::size_t check_from = 0;
        if (item.size >= sizeof(std::uint64_t)) {
            std::uint64_t stored = 0;
            std::memcpy(&stored, bytes, sizeof(stored));
            if (stored != canary_for(item.key)) torn_at = 0;
            check_from = sizeof(stored);
        }
        for (std::size_t i = check_from; torn_at == SIZE_MAX && i < item.size; ++i) {
            if (bytes[i] != kPoison) torn_at = i;
        }
        {
            Shard& s = shard_of(item.key);
            std::unique_lock<std::mutex> lock(s.mu);
            auto it = s.map.find(item.key);
            if (torn_at != SIZE_MAX) {
                char detail[160];
                std::snprintf(detail, sizeof(detail),
                              "quarantined block written after free (offset %zu of "
                              "%u) — a use-after-free WRITE by uninstrumented code",
                              torn_at, item.size);
                Entry snapshot = it != s.map.end() ? it->second : Entry{};
                report(lock, "poison_torn", poison_torn_, item.key, &snapshot, detail);
                if (!lock.owns_lock()) lock.lock();  // report returned in non-abort mode
            }
            if (it != s.map.end()) {
                it->second.record(State::kFreed);
                s.map.erase(it);
            }
        }
        freed_.fetch_add(1, std::memory_order_relaxed);
        // Pair with the overload the new-expression in make_orc selected: an
        // over-aligned T was allocated via operator new(size, align_val_t),
        // and ASan's new-delete-type-mismatch check requires the free side
        // to match.
        if (item.align > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
            ::operator delete(item.mem, std::align_val_t(item.align));
        } else {
            ::operator delete(item.mem);
        }
        item.mem = nullptr;
    }

    /// Builds the decoded report, bumps the violation counter, and either
    /// aborts (default) or logs. Drops `lock` before fatal() so the abort
    /// handler can never self-deadlock on a shard mutex.
    void report(std::unique_lock<std::mutex>& lock, const char* kind,
                std::atomic<std::uint64_t>& counter, const void* obj, const Entry* e,
                const char* detail) {
        counter.fetch_add(1, std::memory_order_relaxed);
        char msg[1024];
        int n = std::snprintf(msg, sizeof(msg),
                              "orcsan: %s: object %p (state=%s, size=%u, domain=%p)\n"
                              "  %s\n"
                              "  shadow history (oldest first, tsc ticks):",
                              kind, obj, e != nullptr ? state_name(e->state) : "Unknown",
                              e != nullptr ? e->size : 0,
                              e != nullptr ? static_cast<const void*>(e->domain) : nullptr,
                              detail);
        if (e != nullptr && n > 0) {
            const int len = e->hist_len;
            const int first = (e->hist_next + kHistory - len) % kHistory;
            for (int i = 0; i < len && n < static_cast<int>(sizeof(msg)); ++i) {
                const Transition& t = e->history[(first + i) % kHistory];
                n += std::snprintf(msg + n, sizeof(msg) - static_cast<std::size_t>(n),
                                   "\n    [tid %d @ %llu] %s -> %s", t.tid,
                                   static_cast<unsigned long long>(t.tsc),
                                   state_name(t.from), state_name(t.to));
            }
        }
        if (lock.owns_lock()) lock.unlock();
        if (abort_) fatal("%s", msg);
        std::fprintf(stderr, "%s\n", msg);
    }

    friend class OrcsanMetrics;

    Shard shards_[kShards];

    std::mutex qmu_;
    std::unordered_map<const OrcDomain*, std::deque<QuarantineItem>> quarantines_;
    std::size_t quarantine_cap_ = 64;
    bool abort_ = true;

    std::atomic<std::uint64_t> allocated_{0};
    std::atomic<std::uint64_t> retired_{0};
    std::atomic<std::uint64_t> quarantined_{0};
    std::atomic<std::uint64_t> freed_{0};
    std::atomic<std::uint64_t> double_retire_{0};
    std::atomic<std::uint64_t> unprotected_deref_{0};
    std::atomic<std::uint64_t> poison_torn_{0};
    std::atomic<std::uint64_t> cross_domain_retire_{0};
    std::atomic<std::uint64_t> occupancy_{0};
    std::atomic<std::uint64_t> peak_occupancy_{0};

    OrcsanMetrics metrics_{*this};
};

telemetry::CommonCounters OrcsanMetrics::common_counters() const {
    const Stats st = owner_.stats_snapshot();
    telemetry::CommonCounters c;
    c.retired = st.retired;
    c.freed = st.freed;
    c.peak_unreclaimed = st.quarantine_peak;
    return c;
}

void OrcsanMetrics::visit_extras(telemetry::MetricSink& sink) const {
    const Stats st = owner_.stats_snapshot();
    sink.counter("double_retire", st.double_retire);
    sink.counter("unprotected_deref", st.unprotected_deref);
    sink.counter("poison_torn", st.poison_torn);
    sink.counter("cross_domain_retire", st.cross_domain_retire);
    sink.gauge("quarantine_occupancy", st.quarantine_occupancy);
    sink.gauge("quarantine_peak", st.quarantine_peak);
}

Sanitizer& san() {
    // Function-local static: completes construction inside the first caller
    // (OrcDomain's constructor via touch()), hence is destroyed after the
    // global domain — whose destructor still flushes its quarantine here.
    static Sanitizer s;
    return s;
}

}  // namespace

void touch() { (void)san(); }

void on_alloc(const orc_base* obj, std::size_t size, std::size_t align,
              const OrcDomain* domain) {
    san().on_alloc(obj, size, align, domain);
}

void on_retire(const void* obj) { san().on_retire(obj); }

void on_resurrect(const void* obj) { san().on_resurrect(obj); }

bool divert_eligible(const orc_base* obj) { return san().divert_eligible(obj); }

void quarantine_put(const OrcDomain* domain, const void* obj, void* mem) {
    san().quarantine_put(domain, obj, mem);
}

void quarantine_flush(const OrcDomain* domain) { san().quarantine_flush(domain); }

void on_untracked_free(const void* obj) { san().on_untracked_free(obj); }

void check_deref(const orc_base* obj, const OrcDomain* dom) { san().check_deref(obj, dom); }

void check_link(const orc_base* obj) { san().check_link(obj); }

void check_retire_domain(const OrcDomain* retiring, const OrcDomain* owner, const void* obj) {
    san().check_retire_domain(retiring, owner, obj);
}

void check_protect(const void* obj) { san().check_protect(obj); }

void on_manual_retire(const void* obj) { san().on_manual_retire(obj); }

void on_manual_free(const void* obj) { san().on_manual_free(obj); }

Stats stats() { return san().stats_snapshot(); }

std::size_t live_entries() { return san().live_entries(); }

State state_of(const void* obj) { return san().state_of(obj); }

namespace testing {
void set_abort(bool abort_on_violation) { san().set_abort(abort_on_violation); }
}  // namespace testing

}  // namespace orcsan
}  // namespace orcgc

#else  // !ORCGC_ORCSAN

// The library compiles this TU in every configuration; keep it non-empty.
namespace orcgc {
namespace orcsan {
namespace detail {
const int kOrcsanDisabled = 0;
}  // namespace detail
}  // namespace orcsan
}  // namespace orcgc

#endif  // ORCGC_ORCSAN
