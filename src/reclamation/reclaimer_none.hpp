// "None" pseudo-reclaimer: the leak baseline used throughout §5.
//
// retire() parks the node forever (freed only when the reclaimer itself is
// destroyed, so the process stays sanitizer-clean). It measures the cost of
// a data structure with no reclamation at all — the upper performance bound
// every real scheme is normalized against in Figs. 3–8.
#pragma once

#include <atomic>

#include "reclamation/scheme_base.hpp"

namespace orcgc {

namespace detail {
struct NoneSlotState {};
}  // namespace detail

template <typename T, int kMaxHPs = 4>
class ReclaimerNone
    : public SchemeBase<ReclaimerNone<T, kMaxHPs>, T, kMaxHPs, detail::NoneSlotState> {
  public:
    static constexpr const char* kName = "None";
    static constexpr bool kUsesEras = false;

    void begin_op() noexcept {}
    void end_op() noexcept {}

    T* get_protected(const std::atomic<T*>& addr, int /*idx*/) noexcept {
        return addr.load(std::memory_order_acquire);
    }
    void protect_ptr(T* /*ptr*/, int /*idx*/) noexcept {}
    void clear_one(int /*idx*/) noexcept {}

    /// Parks forever; the base destructor frees the bags at teardown.
    void retire(T* ptr) {
        auto& slot = this->my_slot();
        this->note_retire(ptr);
        this->buffer_retired(slot, ptr);
    }
};

}  // namespace orcgc
