// "None" pseudo-reclaimer: the leak baseline used throughout §5.
//
// retire() parks the node forever (freed only when the reclaimer itself is
// destroyed, so the process stays sanitizer-clean). It measures the cost of
// a data structure with no reclamation at all — the upper performance bound
// every real scheme is normalized against in Figs. 3–8.
#pragma once

#include <atomic>
#include <mutex>
#include <vector>

#include "common/cacheline.hpp"
#include "common/orcsan.hpp"
#include "common/telemetry.hpp"
#include "common/thread_registry.hpp"

namespace orcgc {

template <typename T, int kMaxHPs = 4>
class ReclaimerNone {
  public:
    static constexpr const char* kName = "None";

    ReclaimerNone() = default;
    ReclaimerNone(const ReclaimerNone&) = delete;
    ReclaimerNone& operator=(const ReclaimerNone&) = delete;

    ~ReclaimerNone() {
        std::uint64_t freed = 0;
        for (auto& slot : retired_) {
            for (T* ptr : slot.list) {
#ifdef ORCGC_ORCSAN
                orcsan::on_manual_free(ptr);
#endif
                delete ptr;
                ++freed;
            }
        }
        if (freed != 0) metrics_.note_freed(freed);
    }

    void begin_op() noexcept {}
    void end_op() noexcept {}

    T* get_protected(const std::atomic<T*>& addr, int /*idx*/) noexcept {
        return addr.load(std::memory_order_acquire);
    }
    void protect_ptr(T* /*ptr*/, int /*idx*/) noexcept {}
    void clear_one(int /*idx*/) noexcept {}

    void retire(T* ptr) {
#ifdef ORCGC_ORCSAN
        orcsan::on_manual_retire(ptr);
#endif
        retired_[thread_id()].list.push_back(ptr);
        metrics_.note_retired();
    }

    std::size_t unreclaimed_count() const noexcept { return metrics_.unreclaimed(); }

  private:
    struct alignas(kCacheLineSize) Slot {
        std::vector<T*> list;
    };
    Slot retired_[kMaxThreads];
    telemetry::SchemeMetrics metrics_{kName};
};

}  // namespace orcgc
