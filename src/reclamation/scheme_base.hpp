// Shared substrate for the manual reclamation schemes (CRTP).
//
// Every scheme in this directory used to hand-roll the same ~170 lines: a
// cacheline-padded per-thread slot array keyed by thread_id(), retire-list
// vectors with a scan threshold, telemetry wiring, OrcSan hooks, and ad-hoc
// asym::publish call sites. This base owns all of it exactly once, so a
// scheme file shrinks to its scheme-specific scan/era logic and the memory
// orders of the shared paths are audited in one place (orc-lint R12 keeps it
// that way: no slot arrays, retire vectors, or SchemeMetrics outside this
// file).
//
// What lives here vs. in a scheme:
//   base   per-thread Slot array (padded, `State` mixin per scheme), the
//          kMaxThreads-exhaustion fatal() diagnostic, retire bags with the
//          shared *adaptive* scan threshold, protection publication
//          (asym::publish + TSan edges) for both pointer slots and era
//          reservations, the validated protect loops, the scan-entry
//          asym::heavy() placement, era stamping/ticking, OrcSan
//          on_manual_* hooks, and the telemetry::SchemeMetrics provider.
//   scheme which protection words its State carries, when to scan, and how
//          a scan decides an object is unreachable (hazard match, era
//          interval, epoch grace, handoff/handover protocols, batch
//          refcounts).
//
// Memory-ordering contract of the shared publish path (DESIGN.md §1.3d):
// publish_pointer()/publish_era() are a release store + asym::light()
// (compiler barrier) — NO fence on the reader side. The pairing heavy fence
// is issued once per scan entry by enter_scan(); readers revalidate after
// publishing (the protect loops re-read the source), so a publish the fence
// misses was ordered after the unlink and its owner's validation rejects the
// node. clear_* are plain release stores: a stale non-null value only makes
// a scan conservative.
#pragma once

#include <atomic>
#include <cstdint>
#include <type_traits>
#include <vector>

#include "common/asym_fence.hpp"
#include "common/cacheline.hpp"
#include "common/fatal.hpp"
#include "common/marked_ptr.hpp"
#include "common/orcsan.hpp"
#include "common/telemetry.hpp"
#include "common/thread_registry.hpp"
#include "common/tsan_annotations.hpp"
#include "reclamation/reclaimable.hpp"

namespace orcgc {

namespace detail {

/// True when the node type carries ReclaimableBase::retire_ts. The manual
/// schemes usually manage ReclaimableBase descendants, but the substrate
/// also serves plain structs in tests/benches — those simply record no
/// retire→free ages.
template <typename U, typename = void>
struct has_retire_ts : std::false_type {};
template <typename U>
struct has_retire_ts<U, std::void_t<decltype(std::declval<U&>().retire_ts)>>
    : std::true_type {};

}  // namespace detail

/// CRTP base for manual schemes.
///   Derived      the scheme (provides kName, kUsesEras, the scan logic)
///   T            node type
///   kMaxHPs      protection indices per thread (the paper's H)
///   State        per-thread protection words, mixed into the padded Slot
///   RetiredItem  element type of the retire bags (T*, or a struct carrying
///                extra per-retire data — see ptr_of())
///   kBags        retire bags per slot (DEBRA's epoch rotation uses 3)
template <typename Derived, typename T, int kMaxHPs, typename State,
          typename RetiredItem = T*, int kBags = 1>
class SchemeBase {
  public:
    SchemeBase() : metrics_(Derived::kName) {}
    SchemeBase(const SchemeBase&) = delete;
    SchemeBase& operator=(const SchemeBase&) = delete;

    /// Frees everything still buffered in the retire bags. Runs after the
    /// derived destructor, so schemes free their scheme-specific parking
    /// spots (handoffs, handovers, batch lists) first.
    ~SchemeBase() {
        std::uint64_t freed = 0;
        for (auto& slot : tl_) {
            for (auto& bag : slot.retired) {
                for (auto& item : bag) {
                    free_object(Derived::ptr_of(item));
                    ++freed;
                }
            }
        }
        if (freed != 0) metrics_.note_freed(freed);
    }

    /// Retired minus freed, from the telemetry counters (compiled out in the
    /// overhead-baseline build, where this reads 0).
    std::size_t unreclaimed_count() const noexcept { return metrics_.unreclaimed(); }

  protected:
    /// Padded per-thread slot: the scheme's protection words plus the shared
    /// retire bags and adaptive-threshold state.
    struct alignas(kCacheLineSize) Slot : State {
        std::vector<RetiredItem> retired[kBags];
        std::uint8_t threshold_shift = 0;
    };

    /// The calling thread's slot. This is the one place schemes key into the
    /// array; registry exhaustion fatal()s inside thread_id(), and the
    /// re-check below keeps the substrate self-contained if that contract
    /// ever loosens (one always-predicted branch).
    Slot& my_slot() noexcept {
        const int tid = thread_id();
        if (tid < 0 || tid >= kMaxThreads) {
            fatal("orcgc: scheme %s: thread id %d outside [0, kMaxThreads=%d) — "
                  "more concurrent threads than the registry supports",
                  Derived::kName, tid, kMaxThreads);
        }
        return tl_[tid];
    }

    // ---- protection publication (the ONE audited memory-order site) ------

    /// Publishes a pointer-protection slot (HP/PTB/PTP): per-object TSan
    /// release for the value losing coverage, then release + asym::light().
    static void publish_pointer(std::atomic<T*>& word, T* value) noexcept {
        tsan_release_protection(word);
        asym::publish(word, value);
    }

    /// Clears a pointer-protection slot. Release suffices: a scan reading
    /// the stale non-null value only keeps the object conservatively.
    static void clear_pointer(std::atomic<T*>& word) noexcept {
        tsan_release_protection(word);
        word.store(nullptr, std::memory_order_release);
    }

    /// Publishes an era/epoch reservation word. Era schemes cannot name the
    /// objects a reservation covered, so the TSan edge is coarse: a release
    /// on the shared era clock (paired by acquire_era_edge() before frees).
    static void publish_era(std::atomic<std::uint64_t>& word, std::uint64_t value) noexcept {
        release_era_edge();
        asym::publish(word, value);
    }

    /// Clears an era reservation to `cleared` (kEraNone, or EBR's sentinel).
    static void clear_era(std::atomic<std::uint64_t>& word, std::uint64_t cleared) noexcept {
        release_era_edge();
        word.store(cleared, std::memory_order_release);
    }

    /// Coarse reader-side release on the era clock (see publish_era).
    static void release_era_edge() noexcept { ORC_ANNOTATE_HAPPENS_BEFORE(&global_era()); }
    /// Reclaimer-side acquire before an era-justified free batch.
    static void acquire_era_edge() noexcept { ORC_ANNOTATE_HAPPENS_AFTER(&global_era()); }

    // ---- validated protect loops ------------------------------------------

    /// The hazard-publication loop shared by the pointer-based schemes:
    /// publish the unmarked target, then re-read the source until stable.
    /// The re-read is the validation a scan's asym::heavy() pairs with — a
    /// publish the fence misses was ordered after the unlink, and this loop
    /// observes that unlink before returning.
    T* protect_pointer_loop(const std::atomic<T*>& addr, std::atomic<T*>& word) noexcept {
        T* pub = nullptr;
        for (T* ptr = addr.load(std::memory_order_acquire);;
             ptr = addr.load(std::memory_order_acquire)) {
            if (get_unmarked(ptr) == pub) {
                san_check_protect(pub);
                return ptr;
            }
            pub = get_unmarked(ptr);
            publish_pointer(word, pub);
        }
    }

    /// The era-reservation loop shared by HE (per-index), IBR (upper bound)
    /// and Hyaline (per-slot era): re-read the source until the era clock is
    /// stable across the read, republishing the reservation on every tick.
    T* protect_era_loop(const std::atomic<T*>& addr, std::atomic<std::uint64_t>& word) noexcept {
        std::uint64_t prev = word.load(std::memory_order_relaxed);
        while (true) {
            T* ptr = addr.load(std::memory_order_acquire);
            const std::uint64_t era = global_era().load(std::memory_order_acquire);
            if (era == prev) {
                san_check_protect(get_unmarked(ptr));
                return ptr;
            }
            publish_era(word, era);
            prev = era;
        }
    }

    /// protect_ptr() for era schemes: reserving the current era protects
    /// everything alive now — a superset of any single target.
    void refresh_era_reservation(std::atomic<std::uint64_t>& word) noexcept {
        const std::uint64_t era = global_era().load(std::memory_order_acquire);
        if (word.load(std::memory_order_relaxed) != era) publish_era(word, era);
    }

    // ---- era bookkeeping for stamped schemes ------------------------------

    /// Stamps the node's deletion era at retire time (EraStampedNode field).
    static void stamp_del_era(T* ptr) noexcept {
        ptr->del_era.store(global_era().load(std::memory_order_acquire),
                           std::memory_order_release);
    }

    /// Advances the shared era clock every `freq` calls ("epoch advances
    /// with the retire rate"); returns true on the tick.
    static bool tick_era(int& since, int freq) noexcept {
        if (++since < freq) return false;
        since = 0;
        global_era().fetch_add(1, std::memory_order_acq_rel);
        return true;
    }

    // ---- retire bags with the shared adaptive threshold -------------------

    /// OrcSan + telemetry prologue shared by every retire(). Also stamps the
    /// node's retire timestamp — for one retire in every
    /// (telemetry::kAgeSampleMask + 1) on this thread, see kAgeSampleMask —
    /// which free_object() reads back to feed the per-scheme retire→free
    /// age histogram.
    void note_retire(T* ptr) noexcept {
#ifdef ORCGC_ORCSAN
        orcsan::on_manual_retire(ptr);
#endif
#ifndef ORCGC_TELEMETRY_DISABLED
        if constexpr (detail::has_retire_ts<T>::value) {
            static thread_local std::uint32_t sample_seq = 0;
            if ((sample_seq++ & telemetry::kAgeSampleMask) == 0) {
                ptr->retire_ts = telemetry::coarse_now();
            }
        }
#endif
        (void)ptr;
        metrics_.note_retired();
    }

    void buffer_retired(Slot& slot, RetiredItem item, int bag = 0) {
        slot.retired[bag].push_back(item);
    }

    /// Adaptive scan threshold: the classic H·t + H + slack base, widened
    /// (up to 8x) while scans come back nearly empty — a backlog pinned by
    /// long-lived protections makes rescanning sooner pure heavy-fence burn —
    /// and snapped back to the base as soon as scans free half their input.
    /// The cap keeps every scheme's Table-1 bound within a constant factor.
    std::size_t scan_threshold(const Slot& slot) const noexcept {
        const std::size_t base =
            static_cast<std::size_t>(kMaxHPs) * thread_id_watermark() + kMaxHPs + 8;
        return base << slot.threshold_shift;
    }

    bool past_scan_threshold(const Slot& slot, int bag = 0) const noexcept {
        return slot.retired[bag].size() >= scan_threshold(slot);
    }

    /// Scan entry: counts the pass and issues the one heavy fence that pairs
    /// with every reader-side publish since the last scan.
    void enter_scan() noexcept {
        metrics_.note_scan();
        asym::heavy();
    }

    /// Sweeps one retire bag: frees every item `can_free` approves, keeps
    /// the rest, feeds the adaptive threshold, and counts the frees.
    /// kAnnotatePerObject: pointer-based scans name the object they proved
    /// unprotected; era scans use the coarse clock edge instead.
    template <bool kAnnotatePerObject, typename CanFree>
    void sweep_retired(Slot& slot, CanFree&& can_free, int bag = 0) {
        auto& list = slot.retired[bag];
        const std::size_t scanned = list.size();
        std::vector<RetiredItem> keep;
        keep.reserve(scanned);
        std::uint64_t freed = 0;
        for (auto& item : list) {
            if (can_free(item)) {
                T* ptr = Derived::ptr_of(item);
                if constexpr (kAnnotatePerObject) ORC_ANNOTATE_HAPPENS_AFTER(ptr);
                free_object(ptr);
                ++freed;
            } else {
                keep.push_back(item);
            }
        }
        adapt_scan_threshold(slot, scanned, freed);
        list.swap(keep);
        if (freed != 0) metrics_.note_freed(freed);
    }

    void adapt_scan_threshold(Slot& slot, std::size_t scanned, std::size_t freed) noexcept {
        if (scanned == 0) return;
        if (freed * 4 < scanned) {
            if (slot.threshold_shift < kMaxThresholdShift) ++slot.threshold_shift;
        } else if (freed * 2 >= scanned) {
            slot.threshold_shift = 0;
        }
    }

    // ---- the free path ----------------------------------------------------

    /// Age record + OrcSan hook + delete. Every scheme free funnels through
    /// here (sweep_retired, the out-of-bag Hyaline/PTB/PTP paths, the
    /// destructor sweep), so this is the ONE place the retire→free age is
    /// measured — for the nodes note_retire() sampled a stamp onto;
    /// unstamped nodes pay one load and a predicted branch and record
    /// nothing. Callers that free outside sweep_retired() still count
    /// through note_freed_objects().
    void free_object(T* ptr) noexcept {
#ifndef ORCGC_TELEMETRY_DISABLED
        if constexpr (detail::has_retire_ts<T>::value) {
            if (ptr->retire_ts != 0) {
                const std::uint64_t now = telemetry::coarse_now();
                metrics_.note_age(now > ptr->retire_ts ? now - ptr->retire_ts : 0);
            }
        }
#endif
#ifdef ORCGC_ORCSAN
        orcsan::on_manual_free(ptr);
#endif
        delete ptr;
    }

    void note_freed_objects(std::uint64_t n) noexcept {
        if (n != 0) metrics_.note_freed(n);
    }

    /// Extra scan passes beyond enter_scan() (bag rotations, drains).
    void note_scan_pass() noexcept { metrics_.note_scan(); }

    /// Protection-validated deref gate (no-op without -DORCGC_ORCSAN).
    static void san_check_protect(T* obj) noexcept {
#ifdef ORCGC_ORCSAN
        if (obj != nullptr) orcsan::check_protect(obj);
#else
        (void)obj;
#endif
    }

    /// Identity for plain T* bags; schemes with struct items shadow this.
    static T* ptr_of(T* ptr) noexcept { return ptr; }

    static constexpr std::uint8_t kMaxThresholdShift = 3;

    Slot tl_[kMaxThreads];

  private:
    telemetry::SchemeMetrics metrics_;
};

}  // namespace orcgc
