// Node base and shared era clock for the manual reclamation schemes.
//
// Table 1 of the paper compares "extra words per object": HP/PTB/PTP need
// none, HE/IBR need two (an interval [birth_era, del_era] recording when the
// object was visible), and Hyaline needs link words for its intrusive batch
// lists. To let one benchmark node type run under every scheme,
// ReclaimableBase always carries all of them; schemes that do not need them
// simply never read them. (The words therefore measure the *scheme's*
// requirement, not the node layout — the bound experiments count objects,
// not bytes.)
//
// The era/epoch clock is a single process-global monotonic counter shared by
// HE, IBR and EBR. Sharing one clock is semantically harmless (eras are only
// compared for ordering) and lets node constructors stamp their birth era
// without a reference to a particular reclaimer instance.
#pragma once

#include <atomic>
#include <cstdint>

namespace orcgc {

inline constexpr std::uint64_t kEraNone = 0;

/// Process-global era clock (starts at 1 so that 0 can mean "no era").
inline std::atomic<std::uint64_t>& global_era() {
    static std::atomic<std::uint64_t> era{1};
    return era;
}

/// Base class for all nodes managed by the manual schemes.
struct ReclaimableBase {
    /// Era at which the object became visible (HE: newEra, IBR: birth epoch).
    std::uint64_t birth_era;
    /// Era at which the object was retired (HE: delEra, IBR: retire epoch).
    std::atomic<std::uint64_t> del_era;

    // Hyaline's intrusive links (hyaline.hpp). A retired node is threaded
    // onto per-reader slot lists (hy_next), chained to its batch siblings
    // (hy_bnext), and pointed at the batch's REFS node (hy_blink), whose
    // hy_refs word counts the slot lists that still reference the batch.
    // All four are written only between retire() and the batch free, so
    // they never race with the object's useful life.
    std::atomic<ReclaimableBase*> hy_next;
    ReclaimableBase* hy_bnext;
    ReclaimableBase* hy_blink;
    std::atomic<std::int64_t> hy_refs;

#ifndef ORCGC_TELEMETRY_DISABLED
    /// Retire timestamp (telemetry::coarse_now() ticks), stamped by
    /// SchemeBase::note_retire on the 1-in-64 of retires the age sampler
    /// picks (telemetry::kAgeSampleMask) and read by its free path to feed
    /// the per-scheme retire→free age histogram. Plain: written before the node
    /// enters a retire bag, read after the scan that justifies the free —
    /// both ends of every scheme's existing ordering. Compiled out with the
    /// telemetry layer.
    std::uint64_t retire_ts = 0;
#endif

    ReclaimableBase() noexcept
        : birth_era(global_era().load(std::memory_order_acquire)),
          del_era(kEraNone),
          hy_next(nullptr),
          hy_bnext(nullptr),
          hy_blink(nullptr),
          hy_refs(0) {}
};

}  // namespace orcgc
