// Hazard eras (Ramalhete & Correia, SPAA 2017).
//
// Replaces hazard-pointer publication with era reservation: a thread only
// issues the expensive seq_cst store when the global era clock has ticked
// since its last publication, so steady-state protects are a single load —
// the performance trade the paper discusses. The price is the bound: a
// reservation protects *every* object alive during the reserved era, so the
// bound grows with the number of live objects, O(#L·H·t²) (Table 1).
//
// Nodes must expose the interval [birth_era, del_era] (ReclaimableBase).
// The era clock ticks every kEraFrequency retires.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/asym_fence.hpp"
#include "common/cacheline.hpp"
#include "common/marked_ptr.hpp"
#include "common/orcsan.hpp"
#include "common/telemetry.hpp"
#include "common/thread_registry.hpp"
#include "common/tsan_annotations.hpp"
#include "reclamation/reclaimable.hpp"

namespace orcgc {

template <typename T, int kMaxHPs = 4>
class HazardEras {
    static_assert(std::is_base_of_v<ReclaimableBase, T>,
                  "HazardEras requires nodes to derive from ReclaimableBase");

  public:
    static constexpr const char* kName = "HE";

    HazardEras() = default;
    HazardEras(const HazardEras&) = delete;
    HazardEras& operator=(const HazardEras&) = delete;

    ~HazardEras() {
        std::uint64_t freed = 0;
        for (auto& slot : tl_) {
            for (T* ptr : slot.retired) {
#ifdef ORCGC_ORCSAN
                orcsan::on_manual_free(ptr);
#endif
                delete ptr;
                ++freed;
            }
        }
        if (freed != 0) metrics_.note_freed(freed);
    }

    void begin_op() noexcept {}

    void end_op() noexcept {
        // Coarse reader release: all accesses under the dropped reservations
        // are done (era schemes cannot name the individual objects covered).
        ORC_ANNOTATE_HAPPENS_BEFORE(&global_era());
        auto& eras = tl_[thread_id()].he;
        for (auto& e : eras) e.store(kEraNone, std::memory_order_release);
    }

    T* get_protected(const std::atomic<T*>& addr, int idx) noexcept {
        auto& he = tl_[thread_id()].he[idx];
        std::uint64_t prev_era = he.load(std::memory_order_relaxed);
        while (true) {
            T* ptr = addr.load(std::memory_order_acquire);
            const std::uint64_t era = global_era().load(std::memory_order_acquire);
            if (era == prev_era) {
#ifdef ORCGC_ORCSAN
                // Reservation validated: the read target must not already be
                // reclaimed (orcsan.hpp, check_protect).
                if (T* obj = get_unmarked(ptr)) orcsan::check_protect(obj);
#endif
                return ptr;
            }
            // Era moved: publish the new reservation and re-read. Objects
            // covered only by the old reservation lose protection here. The
            // loop's re-read of addr and the era re-check are the validation
            // a scan's asym::heavy() pairs with.
            ORC_ANNOTATE_HAPPENS_BEFORE(&global_era());
            asym::publish(he, era);
            prev_era = era;
        }
    }

    /// Era-based protection cannot protect a raw pointer without a source
    /// address; reserving the current era protects everything alive now,
    /// which is a superset — sufficient for the protect_ptr contract.
    void protect_ptr(T* /*ptr*/, int idx) noexcept {
        auto& he = tl_[thread_id()].he[idx];
        const std::uint64_t era = global_era().load(std::memory_order_acquire);
        if (he.load(std::memory_order_relaxed) != era) {
            ORC_ANNOTATE_HAPPENS_BEFORE(&global_era());
            asym::publish(he, era);
        }
    }

    void clear_one(int idx) noexcept {
        ORC_ANNOTATE_HAPPENS_BEFORE(&global_era());
        tl_[thread_id()].he[idx].store(kEraNone, std::memory_order_release);
    }

    void retire(T* ptr) {
#ifdef ORCGC_ORCSAN
        orcsan::on_manual_retire(ptr);
#endif
        auto& slot = tl_[thread_id()];
        ptr->del_era.store(global_era().load(std::memory_order_acquire),
                           std::memory_order_release);
        slot.retired.push_back(ptr);
        metrics_.note_retired();
        if (++slot.since_tick >= kEraFrequency) {
            slot.since_tick = 0;
            global_era().fetch_add(1, std::memory_order_acq_rel);
        }
        if (slot.retired.size() >= scan_threshold()) scan(slot);
    }

    std::size_t unreclaimed_count() const noexcept { return metrics_.unreclaimed(); }

  private:
    struct alignas(kCacheLineSize) Slot {
        std::atomic<std::uint64_t> he[kMaxHPs] = {};
        std::vector<T*> retired;
        int since_tick = 0;
    };
    static constexpr int kEraFrequency = 64;

    std::size_t scan_threshold() const noexcept {
        return static_cast<std::size_t>(kMaxHPs) * thread_id_watermark() + kMaxHPs + 8;
    }

    bool can_delete(const T* ptr, int watermark) const noexcept {
        const std::uint64_t born = ptr->birth_era;
        const std::uint64_t dead = ptr->del_era.load(std::memory_order_acquire);
        for (int it = 0; it < watermark; ++it) {
            for (const auto& h : tl_[it].he) {
                const std::uint64_t era = h.load(std::memory_order_acquire);
                if (era != kEraNone && born <= era && era <= dead) return false;
            }
        }
        return true;
    }

    void scan(Slot& slot) {
        metrics_.note_scan();
        // Scan-side half of the asymmetric pair: every retired node's del_era
        // was stamped before the scan, so a reservation this fence misses was
        // published after the node's deletion era ticked — its owner's era
        // re-check in get_protected rejects any node the scan may free.
        asym::heavy();
        // Pairs with the readers' coarse releases: anything the era scan
        // below proves unprotected was released before this point.
        ORC_ANNOTATE_HAPPENS_AFTER(&global_era());
        const int wm = thread_id_watermark();
        std::vector<T*> keep;
        keep.reserve(slot.retired.size());
        std::uint64_t freed = 0;
        for (T* ptr : slot.retired) {
            if (can_delete(ptr, wm)) {
#ifdef ORCGC_ORCSAN
                orcsan::on_manual_free(ptr);
#endif
                delete ptr;
                ++freed;
            } else {
                keep.push_back(ptr);
            }
        }
        slot.retired.swap(keep);
        if (freed != 0) metrics_.note_freed(freed);
    }

    Slot tl_[kMaxThreads];
    telemetry::SchemeMetrics metrics_{kName};
};

}  // namespace orcgc
