// Hazard eras (Ramalhete & Correia, SPAA 2017).
//
// Replaces hazard-pointer publication with era reservation: a thread only
// issues the expensive seq_cst store when the global era clock has ticked
// since its last publication, so steady-state protects are a single load —
// the performance trade the paper discusses. The price is the bound: a
// reservation protects *every* object alive during the reserved era, so the
// bound grows with the number of live objects, O(#L·H·t²) (Table 1).
//
// Nodes must expose the interval [birth_era, del_era] (EraStampedNode).
// The era clock ticks every kEraFrequency retires.
#pragma once

#include <atomic>
#include <cstdint>

#include "reclamation/reclaimer_concepts.hpp"
#include "reclamation/scheme_base.hpp"

namespace orcgc {

namespace detail {
template <int kMaxHPs>
struct HeSlotState {
    std::atomic<std::uint64_t> he[kMaxHPs] = {};
    int since_tick = 0;
};
}  // namespace detail

template <typename T, int kMaxHPs = 4>
class HazardEras
    : public SchemeBase<HazardEras<T, kMaxHPs>, T, kMaxHPs, detail::HeSlotState<kMaxHPs>> {
    static_assert(EraStampedNode<T>,
                  "HazardEras requires nodes that carry the [birth_era, del_era] interval");
    using Base = SchemeBase<HazardEras<T, kMaxHPs>, T, kMaxHPs, detail::HeSlotState<kMaxHPs>>;
    using Slot = typename Base::Slot;

  public:
    static constexpr const char* kName = "HE";
    static constexpr bool kUsesEras = true;

    void begin_op() noexcept {}

    void end_op() noexcept {
        // Coarse reader release: all accesses under the dropped reservations
        // are done (era schemes cannot name the individual objects covered).
        for (auto& e : this->my_slot().he) Base::clear_era(e, kEraNone);
    }

    /// Era moves mid-loop: publish the new reservation and re-read. Objects
    /// covered only by the old reservation lose protection there. The loop's
    /// re-read of addr and the era re-check are the validation a scan's
    /// asym::heavy() pairs with (protect_era_loop in scheme_base.hpp).
    T* get_protected(const std::atomic<T*>& addr, int idx) noexcept {
        return this->protect_era_loop(addr, this->my_slot().he[idx]);
    }

    /// Era-based protection cannot protect a raw pointer without a source
    /// address; reserving the current era protects everything alive now,
    /// which is a superset — sufficient for the protect_ptr contract.
    void protect_ptr(T* /*ptr*/, int idx) noexcept {
        this->refresh_era_reservation(this->my_slot().he[idx]);
    }

    void clear_one(int idx) noexcept { Base::clear_era(this->my_slot().he[idx], kEraNone); }

    void retire(T* ptr) {
        Slot& slot = this->my_slot();
        this->note_retire(ptr);
        Base::stamp_del_era(ptr);
        this->buffer_retired(slot, ptr);
        Base::tick_era(slot.since_tick, kEraFrequency);
        if (this->past_scan_threshold(slot)) scan(slot);
    }

  private:
    static constexpr int kEraFrequency = 64;

    bool can_delete(const T* ptr, int watermark) const noexcept {
        const std::uint64_t born = ptr->birth_era;
        const std::uint64_t dead = ptr->del_era.load(std::memory_order_acquire);
        for (int it = 0; it < watermark; ++it) {
            for (const auto& h : this->tl_[it].he) {
                const std::uint64_t era = h.load(std::memory_order_acquire);
                if (era != kEraNone && born <= era && era <= dead) return false;
            }
        }
        return true;
    }

    void scan(Slot& slot) {
        // Scan-side half of the asymmetric pair: every retired node's del_era
        // was stamped before the scan, so a reservation this fence misses was
        // published after the node's deletion era ticked — its owner's era
        // re-check in get_protected rejects any node the scan may free.
        this->enter_scan();
        // Pairs with the readers' coarse releases: anything the era scan
        // below proves unprotected was released before this point.
        Base::acquire_era_edge();
        const int wm = thread_id_watermark();
        this->template sweep_retired<false>(slot,
                                            [&](const T* ptr) { return can_delete(ptr, wm); });
    }
};

}  // namespace orcgc
