// Hazard pointers (Michael, IEEE TPDS 2004).
//
// The classic pointer-based manual scheme and the main baseline of the
// paper. Each thread publishes up to kMaxHPs "hazardous" pointers; retire()
// buffers nodes in a thread-local list and, once the list reaches the scan
// threshold R, frees every buffered node not currently published by any
// thread. Bound on unreclaimed objects: O(H·t²) — each of t threads may
// buffer up to R = H·t + slack nodes.
//
// Publication goes through the substrate's asym::publish path (release store
// + asym::light()); the seq_cst store the scheme classically pays per
// publication — on x86 an xchg or mov+mfence, exactly the fence the paper's
// §5 discusses when comparing Intel and AMD — is replaced by one
// asym::heavy() per scan (scheme_base.hpp and DESIGN.md "Memory ordering and
// asymmetric fences").
#pragma once

#include <atomic>
#include <vector>

#include "reclamation/scheme_base.hpp"

namespace orcgc {

namespace detail {
template <typename T, int kMaxHPs>
struct HpSlotState {
    std::atomic<T*> hp[kMaxHPs] = {};
};
}  // namespace detail

template <typename T, int kMaxHPs = 4>
class HazardPointers
    : public SchemeBase<HazardPointers<T, kMaxHPs>, T, kMaxHPs, detail::HpSlotState<T, kMaxHPs>> {
    using Base =
        SchemeBase<HazardPointers<T, kMaxHPs>, T, kMaxHPs, detail::HpSlotState<T, kMaxHPs>>;
    using Slot = typename Base::Slot;

  public:
    static constexpr const char* kName = "HP";
    static constexpr bool kUsesEras = false;

    void begin_op() noexcept {}

    /// Clears all of the calling thread's hazard pointers.
    void end_op() noexcept {
        for (auto& h : this->my_slot().hp) Base::clear_pointer(h);
    }

    /// Publishes the pointer read from addr at hp slot `idx` and re-validates
    /// until stable. Returns the (possibly marked) value read; the published
    /// hazard is always the unmarked object address.
    T* get_protected(const std::atomic<T*>& addr, int idx) noexcept {
        return this->protect_pointer_loop(addr, this->my_slot().hp[idx]);
    }

    /// Publishes `ptr` without validation; the caller must re-validate the
    /// source link before dereferencing.
    void protect_ptr(T* ptr, int idx) noexcept {
        Base::publish_pointer(this->my_slot().hp[idx], get_unmarked(ptr));
    }

    void clear_one(int idx) noexcept { Base::clear_pointer(this->my_slot().hp[idx]); }

    /// Buffers `ptr` (must be unreachable and unmarked) and scans when the
    /// buffer reaches the threshold.
    void retire(T* ptr) {
        Slot& slot = this->my_slot();
        this->note_retire(ptr);
        this->buffer_retired(slot, ptr);
        if (this->past_scan_threshold(slot)) scan(slot);
    }

  private:
    void scan(Slot& slot) {
        // Scan-side half of the asymmetric pair: every node in slot.retired
        // was unlinked before it was retired, so a publish this fence misses
        // was ordered after the unlink — that reader's validation re-read
        // fails and it never dereferences the node.
        this->enter_scan();
        std::vector<T*> hazards;
        const int wm = thread_id_watermark();
        hazards.reserve(static_cast<std::size_t>(wm) * kMaxHPs);
        for (int it = 0; it < wm; ++it) {
            for (const auto& h : this->tl_[it].hp) {
                if (T* ptr = h.load(std::memory_order_acquire)) hazards.push_back(ptr);
            }
        }
        this->template sweep_retired<true>(slot, [&](T* ptr) {
            for (T* h : hazards) {
                if (h == ptr) return false;
            }
            return true;
        });
    }
};

}  // namespace orcgc
