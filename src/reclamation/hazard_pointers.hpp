// Hazard pointers (Michael, IEEE TPDS 2004).
//
// The classic pointer-based manual scheme and the main baseline of the
// paper. Each thread publishes up to kMaxHPs "hazardous" pointers; retire()
// buffers nodes in a thread-local list and, once the list reaches the scan
// threshold R, frees every buffered node not currently published by any
// thread. Bound on unreclaimed objects: O(H·t²) — each of t threads may
// buffer up to R = H·t + slack nodes.
//
// Publication goes through asym::publish (release store + asym::light());
// the seq_cst store the scheme classically pays per publication — on x86 an
// xchg or mov+mfence, exactly the fence the paper's §5 discusses when
// comparing Intel and AMD — is replaced by one asym::heavy() per scan (see
// src/common/asym_fence.hpp and DESIGN.md "Memory ordering and asymmetric
// fences").
#pragma once

#include <atomic>
#include <vector>

#include "common/asym_fence.hpp"
#include "common/cacheline.hpp"
#include "common/marked_ptr.hpp"
#include "common/orcsan.hpp"
#include "common/telemetry.hpp"
#include "common/thread_registry.hpp"
#include "common/tsan_annotations.hpp"

namespace orcgc {

template <typename T, int kMaxHPs = 4>
class HazardPointers {
  public:
    static constexpr const char* kName = "HP";

    HazardPointers() = default;
    HazardPointers(const HazardPointers&) = delete;
    HazardPointers& operator=(const HazardPointers&) = delete;

    ~HazardPointers() {
        std::uint64_t freed = 0;
        for (auto& slot : tl_) {
            for (T* ptr : slot.retired) {
#ifdef ORCGC_ORCSAN
                orcsan::on_manual_free(ptr);
#endif
                delete ptr;
                ++freed;
            }
        }
        if (freed != 0) metrics_.note_freed(freed);
    }

    void begin_op() noexcept {}

    /// Clears all of the calling thread's hazard pointers.
    void end_op() noexcept {
        auto& hp = tl_[thread_id()].hp;
        for (auto& h : hp) {
            tsan_release_protection(h);
            h.store(nullptr, std::memory_order_release);
        }
    }

    /// Publishes the pointer read from addr at hp slot `idx` and re-validates
    /// until stable. Returns the (possibly marked) value read; the published
    /// hazard is always the unmarked object address.
    T* get_protected(const std::atomic<T*>& addr, int idx) noexcept {
        auto& hp = tl_[thread_id()].hp[idx];
        T* pub = nullptr;
        for (T* ptr = addr.load(std::memory_order_acquire);; ptr = addr.load(std::memory_order_acquire)) {
            if (get_unmarked(ptr) == pub) {
#ifdef ORCGC_ORCSAN
                // Protection just validated: the published target must not
                // already be reclaimed (orcsan.hpp, check_protect).
                if (pub != nullptr) orcsan::check_protect(pub);
#endif
                return ptr;
            }
            pub = get_unmarked(ptr);
            tsan_release_protection(hp);  // previous publication loses coverage
            // The loop's re-read of addr is the post-publish validation: a
            // scan whose asym::heavy() missed this publish saw the node
            // already unlinked, and the re-read observes that unlink.
            asym::publish(hp, pub);
        }
    }

    /// Publishes `ptr` without validation; the caller must re-validate the
    /// source link before dereferencing.
    void protect_ptr(T* ptr, int idx) noexcept {
        auto& slot = tl_[thread_id()].hp[idx];
        tsan_release_protection(slot);
        asym::publish(slot, get_unmarked(ptr));
    }

    void clear_one(int idx) noexcept {
        auto& slot = tl_[thread_id()].hp[idx];
        tsan_release_protection(slot);
        slot.store(nullptr, std::memory_order_release);
    }

    /// Buffers `ptr` (must be unreachable and unmarked) and scans when the
    /// buffer reaches the threshold.
    void retire(T* ptr) {
#ifdef ORCGC_ORCSAN
        orcsan::on_manual_retire(ptr);
#endif
        auto& slot = tl_[thread_id()];
        slot.retired.push_back(ptr);
        metrics_.note_retired();
        if (slot.retired.size() >= scan_threshold()) scan(slot);
    }

    std::size_t unreclaimed_count() const noexcept { return metrics_.unreclaimed(); }

  private:
    struct alignas(kCacheLineSize) Slot {
        std::atomic<T*> hp[kMaxHPs] = {};
        std::vector<T*> retired;
    };

    std::size_t scan_threshold() const noexcept {
        return static_cast<std::size_t>(kMaxHPs) * thread_id_watermark() + kMaxHPs + 8;
    }

    void scan(Slot& slot) {
        metrics_.note_scan();
        // Scan-side half of the asymmetric pair: every node in slot.retired
        // was unlinked before it was retired, so a publish this fence misses
        // was ordered after the unlink — that reader's validation re-read
        // fails and it never dereferences the node.
        asym::heavy();
        std::vector<T*> hazards;
        const int wm = thread_id_watermark();
        hazards.reserve(static_cast<std::size_t>(wm) * kMaxHPs);
        for (int it = 0; it < wm; ++it) {
            for (const auto& h : tl_[it].hp) {
                if (T* ptr = h.load(std::memory_order_acquire)) hazards.push_back(ptr);
            }
        }
        std::vector<T*> keep;
        keep.reserve(slot.retired.size());
        std::uint64_t freed = 0;
        for (T* ptr : slot.retired) {
            bool protected_ = false;
            for (T* h : hazards) {
                if (h == ptr) {
                    protected_ = true;
                    break;
                }
            }
            if (protected_) {
                keep.push_back(ptr);
            } else {
                ORC_ANNOTATE_HAPPENS_AFTER(ptr);  // scan found no protection
#ifdef ORCGC_ORCSAN
                orcsan::on_manual_free(ptr);
#endif
                delete ptr;
                ++freed;
            }
        }
        slot.retired.swap(keep);
        if (freed != 0) metrics_.note_freed(freed);
    }

    Slot tl_[kMaxThreads];
    telemetry::SchemeMetrics metrics_{kName};
};

}  // namespace orcgc
