// Hyaline, robust variant (Hyaline-1S — Nikolaev & Ravindran,
// arXiv 1905.07903 / SPAA 2019).
//
// The strongest published rival on robustness + speed (ROADMAP item 3) and
// the snapshot-free counterpoint to HP/HE scanning: retirement never reads
// other threads' protection words into a snapshot. Instead, retired nodes
// accumulate in a per-thread *batch*; when the batch has one node per
// registered slot, the retirer hands the whole batch to every active reader
// by CAS-pushing one distinct batch node onto each reader's intrusive slot
// list. The batch's first node (the REFS node) carries a reference counter:
// it is incremented once per successful insertion, decremented once per
// reader that drains its list on leave, and the batch is freed by whoever
// moves the counter to zero. Readers therefore free garbage cooperatively
// on their own exit path — there is no scan loop at all.
//
// Robustness comes from per-slot birth eras (the "-R" refinement): each
// reader publishes the era it validated (protect_era_loop), and a retirer
// skips slots whose published era predates the *oldest* node in the batch —
// a reader that entered after every batch node was born cannot hold any of
// them, so a stalled-but-late reader does not pin old garbage. The bound is
// era-interval shaped like IBR's: O(#L·H·t²) (the paper's Table 1 row for
// Hyaline-1S).
//
// Memory orders: the slot-list head is a CAS chain (push: acquire load +
// acq_rel CAS; drain: acq_rel exchange), which carries the retirer's batch
// writes to the draining reader. The push is ABA-immune by construction —
// the new cell's next pointer is the observed head value from the same CAS
// iteration, whatever that address currently means. The refcount is acq_rel
// both ways so the last decrement observes every insertion.
#pragma once

#include <atomic>
#include <cstdint>

#include "reclamation/reclaimer_concepts.hpp"
#include "reclamation/scheme_base.hpp"

namespace orcgc {

namespace detail {

/// Slot-list head sentinel: the owner is not inside an operation, pushes
/// must not land here. 0 is an active empty list; any other value is the
/// ReclaimableBase* at the head.
inline constexpr std::uintptr_t kHyHeadDetached = 1;

struct HySlotState {
    std::atomic<std::uintptr_t> head{kHyHeadDetached};
    /// Era reservation for the robust skip (kEraNone while inactive).
    std::atomic<std::uint64_t> era{kEraNone};
    // Owner-only batch accumulation (REFS node first, chained via hy_bnext).
    ReclaimableBase* batch_first = nullptr;
    ReclaimableBase* batch_tail = nullptr;
    std::size_t batch_size = 0;
    std::uint64_t batch_min_birth = 0;
    int since_tick = 0;
};

}  // namespace detail

template <typename T, int kMaxHPs = 4>
class Hyaline : public SchemeBase<Hyaline<T, kMaxHPs>, T, kMaxHPs, detail::HySlotState> {
    static_assert(EraStampedNode<T>,
                  "Hyaline (robust variant) requires nodes that carry [birth_era, del_era]");
    using Base = SchemeBase<Hyaline<T, kMaxHPs>, T, kMaxHPs, detail::HySlotState>;
    using Slot = typename Base::Slot;

  public:
    static constexpr const char* kName = "Hyaline";
    static constexpr bool kUsesEras = true;

    ~Hyaline() {
        // Single-threaded teardown: drain every slot list (threads that left
        // mid-process already drained theirs), then free half-built batches.
        for (Slot& s : this->tl_) {
            const std::uintptr_t old =
                s.head.exchange(detail::kHyHeadDetached, std::memory_order_acq_rel);
            if (old != detail::kHyHeadDetached && old != 0) {
                drain(reinterpret_cast<ReclaimableBase*>(old));
            }
            std::uint64_t freed = 0;
            for (ReclaimableBase* node = s.batch_first; node != nullptr;) {
                ReclaimableBase* next = node->hy_bnext;
                Base::free_object(static_cast<T*>(node));
                ++freed;
                node = next;
            }
            this->note_freed_objects(freed);
        }
    }

    /// Enter: activate the slot list, then publish the era reservation. A
    /// retirer that sees the era also sees the active head (both released);
    /// one that misses both treats us as entered after its fence.
    void begin_op() noexcept {
        Slot& s = this->my_slot();
        if (s.head.load(std::memory_order_relaxed) == detail::kHyHeadDetached) {
            s.head.store(0, std::memory_order_release);
        }
        this->refresh_era_reservation(s.era);
    }

    /// Leave: drop the reservation, detach the slot list wholesale, and
    /// drain it — this is where a Hyaline reader pays its share of
    /// reclamation (one refcount decrement per batch handed to it).
    void end_op() noexcept {
        Slot& s = this->my_slot();
        Base::clear_era(s.era, kEraNone);
        const std::uintptr_t old =
            s.head.exchange(detail::kHyHeadDetached, std::memory_order_acq_rel);
        if (old != detail::kHyHeadDetached && old != 0) {
            drain(reinterpret_cast<ReclaimableBase*>(old));
        }
    }

    /// One era reservation covers every index, HE-style validation loop.
    T* get_protected(const std::atomic<T*>& addr, int /*idx*/) noexcept {
        return this->protect_era_loop(addr, this->my_slot().era);
    }
    void protect_ptr(T* /*ptr*/, int /*idx*/) noexcept {
        this->refresh_era_reservation(this->my_slot().era);
    }
    /// The single reservation backs all indices; it drops at end_op.
    void clear_one(int /*idx*/) noexcept {}

    /// Accumulate into the thread's batch; once the batch can cover every
    /// registered slot (one node per slot, REFS node excluded), hand it out.
    void retire(T* ptr) {
        Slot& s = this->my_slot();
        this->note_retire(ptr);
        Base::stamp_del_era(ptr);
        ReclaimableBase* node = ptr;
        node->hy_next.store(nullptr, std::memory_order_relaxed);
        node->hy_bnext = nullptr;
        node->hy_blink = nullptr;
        if (s.batch_first == nullptr) {
            s.batch_first = node;  // becomes the REFS node
            s.batch_tail = node;
            s.batch_size = 1;
            s.batch_min_birth = node->birth_era;
        } else {
            s.batch_tail->hy_bnext = node;
            s.batch_tail = node;
            ++s.batch_size;
            if (node->birth_era < s.batch_min_birth) s.batch_min_birth = node->birth_era;
        }
        Base::tick_era(s.since_tick, kEraFrequency);
        if (s.batch_size > static_cast<std::size_t>(thread_id_watermark())) {
            retire_batch(s);
        }
    }

  private:
    static constexpr int kEraFrequency = 64;

    void retire_batch(Slot& s) {
        ReclaimableBase* refs_node = s.batch_first;
        const std::uint64_t min_birth = s.batch_min_birth;
        const int wm = thread_id_watermark();
        // One distinct batch node backs each insertion; re-check the cell
        // budget against the current watermark (it may have grown since the
        // size test) and keep accumulating if it no longer suffices.
        if (s.batch_size <= static_cast<std::size_t>(wm)) return;
        // Scan-side half of the asymmetric pair: every batch node was
        // unlinked before retire() buffered it and its del_era was stamped,
        // so an era publish this fence misses was ordered after the fence —
        // that reader's validation re-read (protect_era_loop) never covers a
        // node this handout could free.
        this->enter_scan();
        Base::acquire_era_edge();
        refs_node->hy_refs.store(0, std::memory_order_relaxed);
        ReclaimableBase* cell = refs_node->hy_bnext;  // REFS node is never a cell
        std::int64_t inserts = 0;
        for (int it = 0; it < wm && cell != nullptr; ++it) {
            Slot& target = this->tl_[it];
            const std::uint64_t era = target.era.load(std::memory_order_acquire);
            // Robust skip: a reader's published era is >= the birth era of
            // any node it validated, so a slot whose era predates the whole
            // batch cannot hold any of its nodes. kEraNone means the reader
            // already left (or never entered) — its next entry revalidates.
            if (era == kEraNone || era < min_birth) continue;
            cell->hy_blink = refs_node;
            std::uintptr_t head = target.head.load(std::memory_order_acquire);
            bool pushed = false;
            while (head != detail::kHyHeadDetached) {
                cell->hy_next.store(reinterpret_cast<ReclaimableBase*>(head),
                                    std::memory_order_relaxed);
                if (target.head.compare_exchange_weak(
                        head, reinterpret_cast<std::uintptr_t>(cell), std::memory_order_acq_rel,
                        std::memory_order_acquire)) {
                    pushed = true;
                    break;
                }
            }
            if (pushed) {
                ++inserts;
                // Safe to read after the push: the batch cannot be freed
                // before the refcount adjustment below settles (a drain that
                // undershoots only drives hy_refs negative).
                cell = cell->hy_bnext;
            }
        }
        const std::int64_t prev = refs_node->hy_refs.fetch_add(inserts, std::memory_order_acq_rel);
        if (prev + inserts == 0) free_batch(refs_node);
        s.batch_first = nullptr;
        s.batch_tail = nullptr;
        s.batch_size = 0;
        s.batch_min_birth = 0;
    }

    /// Pops every handed-off cell and drops its batch's refcount; frees the
    /// batches this drain releases last.
    void drain(ReclaimableBase* head) {
        while (head != nullptr) {
            ReclaimableBase* next = head->hy_next.load(std::memory_order_acquire);
            ReclaimableBase* refs_node = head->hy_blink;
            if (refs_node->hy_refs.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                free_batch(refs_node);
            }
            head = next;
        }
    }

    void free_batch(ReclaimableBase* refs_node) {
        // Pairs with the readers' coarse era releases (clear_era on leave).
        Base::acquire_era_edge();
        std::uint64_t freed = 0;
        for (ReclaimableBase* node = refs_node; node != nullptr;) {
            ReclaimableBase* next = node->hy_bnext;
            Base::free_object(static_cast<T*>(node));
            ++freed;
            node = next;
        }
        this->note_freed_objects(freed);
    }
};

}  // namespace orcgc
