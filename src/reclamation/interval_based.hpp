// Interval-based reclamation, 2-global-epoch variant (2GEIBR — Wen,
// Izraelevitz, Cai, Beadle, Scott, PPoPP 2018).
//
// Like hazard eras, every node carries its visibility interval
// [birth_era, del_era]. Unlike HE's one-era-per-pointer reservations, an
// IBR reader reserves a *range* [lower, upper]: `lower` is the epoch at
// operation start and `upper` is bumped on every protected read. A retired
// node is free once no thread's reserved range intersects the node's
// interval. The range reservation is what inflates the bound relative to HE
// (the paper's §2 notes Hyaline shares this property): O(#L·H·t²).
//
// Epochs advance on allocation: call on_alloc() from node constructors or,
// as our benchmark nodes do, rely on ReclaimableBase + an explicit tick in
// retire (both are faithful to the "epoch advances with allocation rate"
// design; we tick in retire so node types stay scheme-agnostic).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/asym_fence.hpp"
#include "common/cacheline.hpp"
#include "common/marked_ptr.hpp"
#include "common/orcsan.hpp"
#include "common/telemetry.hpp"
#include "common/thread_registry.hpp"
#include "common/tsan_annotations.hpp"
#include "reclamation/reclaimable.hpp"

namespace orcgc {

template <typename T, int kMaxHPs = 4>
class IntervalBasedReclaimer {
    static_assert(std::is_base_of_v<ReclaimableBase, T>,
                  "IntervalBasedReclaimer requires nodes derived from ReclaimableBase");

  public:
    static constexpr const char* kName = "IBR";

    IntervalBasedReclaimer() = default;
    IntervalBasedReclaimer(const IntervalBasedReclaimer&) = delete;
    IntervalBasedReclaimer& operator=(const IntervalBasedReclaimer&) = delete;

    ~IntervalBasedReclaimer() {
        std::uint64_t freed = 0;
        for (auto& slot : tl_) {
            for (T* ptr : slot.retired) {
#ifdef ORCGC_ORCSAN
                orcsan::on_manual_free(ptr);
#endif
                delete ptr;
                ++freed;
            }
        }
        if (freed != 0) metrics_.note_freed(freed);
    }

    /// Starts an operation: reserve [now, now].
    void begin_op() noexcept {
        auto& slot = tl_[thread_id()];
        const std::uint64_t era = global_era().load(std::memory_order_acquire);
        // One asymmetric publish for the pair: the release store of `lower`
        // is ordered before the publish of `upper` (release sequence on the
        // same fence), so a scan's asym::heavy() that sees the new upper
        // also sees the new lower — and one that misses both treats the
        // reservation as ordered after its fence, same as one missed slot.
        slot.lower.store(era, std::memory_order_release);
        asym::publish(slot.upper, era);
    }

    void end_op() noexcept {
        // Coarse reader release on the shared clock (see hazard_eras.hpp).
        ORC_ANNOTATE_HAPPENS_BEFORE(&global_era());
        auto& slot = tl_[thread_id()];
        slot.lower.store(kEraNone, std::memory_order_release);
        slot.upper.store(kEraNone, std::memory_order_release);
    }

    /// Protected read: extend the reservation's upper bound to the current
    /// epoch, then the read value's interval is covered.
    T* get_protected(const std::atomic<T*>& addr, int /*idx*/) noexcept {
        auto& slot = tl_[thread_id()];
        std::uint64_t prev = slot.upper.load(std::memory_order_relaxed);
        while (true) {
            T* ptr = addr.load(std::memory_order_acquire);
            const std::uint64_t era = global_era().load(std::memory_order_acquire);
            if (era == prev) {
#ifdef ORCGC_ORCSAN
                // Range reservation validated: the read target must not
                // already be reclaimed (orcsan.hpp, check_protect).
                if (T* obj = get_unmarked(ptr)) orcsan::check_protect(obj);
#endif
                return ptr;
            }
            ORC_ANNOTATE_HAPPENS_BEFORE(&global_era());
            // The loop's re-read of addr and era re-check are the validation
            // a scan's asym::heavy() pairs with.
            asym::publish(slot.upper, era);
            prev = era;
        }
    }
    void protect_ptr(T* /*ptr*/, int /*idx*/) noexcept {
        auto& slot = tl_[thread_id()];
        const std::uint64_t era = global_era().load(std::memory_order_acquire);
        if (slot.upper.load(std::memory_order_relaxed) != era) {
            ORC_ANNOTATE_HAPPENS_BEFORE(&global_era());
            asym::publish(slot.upper, era);
        }
    }
    void clear_one(int /*idx*/) noexcept {}

    void retire(T* ptr) {
#ifdef ORCGC_ORCSAN
        orcsan::on_manual_retire(ptr);
#endif
        auto& slot = tl_[thread_id()];
        ptr->del_era.store(global_era().load(std::memory_order_acquire),
                           std::memory_order_release);
        slot.retired.push_back(ptr);
        metrics_.note_retired();
        if (++slot.since_tick >= kEpochFrequency) {
            slot.since_tick = 0;
            global_era().fetch_add(1, std::memory_order_acq_rel);
        }
        if (slot.retired.size() >= scan_threshold()) scan(slot);
    }

    std::size_t unreclaimed_count() const noexcept { return metrics_.unreclaimed(); }

  private:
    struct alignas(kCacheLineSize) Slot {
        std::atomic<std::uint64_t> lower{kEraNone};
        std::atomic<std::uint64_t> upper{kEraNone};
        std::vector<T*> retired;
        int since_tick = 0;
    };
    static constexpr int kEpochFrequency = 64;

    std::size_t scan_threshold() const noexcept {
        return 4u * thread_id_watermark() + 12;
    }

    bool can_delete(const T* ptr, int watermark) const noexcept {
        const std::uint64_t born = ptr->birth_era;
        const std::uint64_t dead = ptr->del_era.load(std::memory_order_acquire);
        for (int it = 0; it < watermark; ++it) {
            const std::uint64_t lo = tl_[it].lower.load(std::memory_order_acquire);
            const std::uint64_t hi = tl_[it].upper.load(std::memory_order_acquire);
            if (lo == kEraNone) continue;
            // Intervals intersect unless one ends before the other begins.
            if (!(dead < lo || hi < born)) return false;
        }
        return true;
    }

    void scan(Slot& slot) {
        metrics_.note_scan();
        // Scan-side half of the asymmetric pair: a range reservation this
        // fence misses was published after every retired node's del_era was
        // stamped — that reader's era re-check (get_protected loop) keeps it
        // from covering a node this scan frees.
        asym::heavy();
        ORC_ANNOTATE_HAPPENS_AFTER(&global_era());
        const int wm = thread_id_watermark();
        std::vector<T*> keep;
        keep.reserve(slot.retired.size());
        std::uint64_t freed = 0;
        for (T* ptr : slot.retired) {
            if (can_delete(ptr, wm)) {
#ifdef ORCGC_ORCSAN
                orcsan::on_manual_free(ptr);
#endif
                delete ptr;
                ++freed;
            } else {
                keep.push_back(ptr);
            }
        }
        slot.retired.swap(keep);
        if (freed != 0) metrics_.note_freed(freed);
    }

    Slot tl_[kMaxThreads];
    telemetry::SchemeMetrics metrics_{kName};
};

}  // namespace orcgc
