// Interval-based reclamation, 2-global-epoch variant (2GEIBR — Wen,
// Izraelevitz, Cai, Beadle, Scott, PPoPP 2018).
//
// Like hazard eras, every node carries its visibility interval
// [birth_era, del_era]. Unlike HE's one-era-per-pointer reservations, an
// IBR reader reserves a *range* [lower, upper]: `lower` is the epoch at
// operation start and `upper` is bumped on every protected read. A retired
// node is free once no thread's reserved range intersects the node's
// interval. The range reservation is what inflates the bound relative to HE
// (the paper's §2 notes Hyaline shares this property): O(#L·H·t²).
//
// Epochs advance on allocation: call on_alloc() from node constructors or,
// as our benchmark nodes do, rely on ReclaimableBase + an explicit tick in
// retire (both are faithful to the "epoch advances with allocation rate"
// design; we tick in retire so node types stay scheme-agnostic).
#pragma once

#include <atomic>
#include <cstdint>

#include "reclamation/reclaimer_concepts.hpp"
#include "reclamation/scheme_base.hpp"

namespace orcgc {

namespace detail {
struct IbrSlotState {
    std::atomic<std::uint64_t> lower{kEraNone};
    std::atomic<std::uint64_t> upper{kEraNone};
    int since_tick = 0;
};
}  // namespace detail

template <typename T, int kMaxHPs = 4>
class IntervalBasedReclaimer
    : public SchemeBase<IntervalBasedReclaimer<T, kMaxHPs>, T, kMaxHPs, detail::IbrSlotState> {
    static_assert(EraStampedNode<T>,
                  "IntervalBasedReclaimer requires nodes that carry [birth_era, del_era]");
    using Base = SchemeBase<IntervalBasedReclaimer<T, kMaxHPs>, T, kMaxHPs, detail::IbrSlotState>;
    using Slot = typename Base::Slot;

  public:
    static constexpr const char* kName = "IBR";
    static constexpr bool kUsesEras = true;

    /// Starts an operation: reserve [now, now].
    void begin_op() noexcept {
        Slot& slot = this->my_slot();
        const std::uint64_t era = global_era().load(std::memory_order_acquire);
        // One asymmetric publish for the pair: the release store of `lower`
        // is ordered before the publish of `upper` (release sequence on the
        // same fence), so a scan's asym::heavy() that sees the new upper
        // also sees the new lower — and one that misses both treats the
        // reservation as ordered after its fence, same as one missed slot.
        slot.lower.store(era, std::memory_order_release);
        Base::publish_era(slot.upper, era);
    }

    void end_op() noexcept {
        // Coarse reader release on the shared clock (clear_era).
        Slot& slot = this->my_slot();
        slot.lower.store(kEraNone, std::memory_order_release);
        Base::clear_era(slot.upper, kEraNone);
    }

    /// Protected read: extend the reservation's upper bound to the current
    /// epoch, then the read value's interval is covered. The loop's re-read
    /// of addr and era re-check are the validation a scan's asym::heavy()
    /// pairs with (protect_era_loop in scheme_base.hpp).
    T* get_protected(const std::atomic<T*>& addr, int /*idx*/) noexcept {
        return this->protect_era_loop(addr, this->my_slot().upper);
    }
    void protect_ptr(T* /*ptr*/, int /*idx*/) noexcept {
        this->refresh_era_reservation(this->my_slot().upper);
    }
    void clear_one(int /*idx*/) noexcept {}

    void retire(T* ptr) {
        Slot& slot = this->my_slot();
        this->note_retire(ptr);
        Base::stamp_del_era(ptr);
        this->buffer_retired(slot, ptr);
        Base::tick_era(slot.since_tick, kEpochFrequency);
        if (this->past_scan_threshold(slot)) scan(slot);
    }

  private:
    static constexpr int kEpochFrequency = 64;

    bool can_delete(const T* ptr, int watermark) const noexcept {
        const std::uint64_t born = ptr->birth_era;
        const std::uint64_t dead = ptr->del_era.load(std::memory_order_acquire);
        for (int it = 0; it < watermark; ++it) {
            const std::uint64_t lo = this->tl_[it].lower.load(std::memory_order_acquire);
            const std::uint64_t hi = this->tl_[it].upper.load(std::memory_order_acquire);
            if (lo == kEraNone) continue;
            // Intervals intersect unless one ends before the other begins.
            if (!(dead < lo || hi < born)) return false;
        }
        return true;
    }

    void scan(Slot& slot) {
        // Scan-side half of the asymmetric pair: a range reservation this
        // fence misses was published after every retired node's del_era was
        // stamped — that reader's era re-check (get_protected loop) keeps it
        // from covering a node this scan frees.
        this->enter_scan();
        Base::acquire_era_edge();
        const int wm = thread_id_watermark();
        this->template sweep_retired<false>(slot,
                                            [&](const T* ptr) { return can_delete(ptr, wm); });
    }
};

}  // namespace orcgc
