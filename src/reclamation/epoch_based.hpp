// Epoch-based reclamation (Fraser 2004 / RCU-style quiescence).
//
// The blocking baseline in Table 1: protection is a single wait-free
// announcement per operation (publish the global epoch), but reclamation
// can be starved forever by one thread parked inside an operation — EBR is
// therefore *not* lock-free and its unreclaimed bound is unbounded (∞ in
// Table 1). Included because it is the cheapest protect() of all schemes and
// anchors the upper end of the performance plots.
//
// Classic 3-epoch variant: a node retired in epoch e is free once the global
// epoch has advanced twice past e, which requires every registered thread to
// be quiescent or synced with the current epoch.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/asym_fence.hpp"
#include "common/cacheline.hpp"
#include "common/marked_ptr.hpp"
#include "common/orcsan.hpp"
#include "common/telemetry.hpp"
#include "common/thread_registry.hpp"
#include "common/tsan_annotations.hpp"
#include "reclamation/reclaimable.hpp"

namespace orcgc {

template <typename T, int kMaxHPs = 4>
class EpochBasedReclaimer {
  public:
    static constexpr const char* kName = "EBR";
    static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

    EpochBasedReclaimer() = default;
    EpochBasedReclaimer(const EpochBasedReclaimer&) = delete;
    EpochBasedReclaimer& operator=(const EpochBasedReclaimer&) = delete;

    ~EpochBasedReclaimer() {
        std::uint64_t freed = 0;
        for (auto& slot : tl_) {
            for (auto& r : slot.retired) {
#ifdef ORCGC_ORCSAN
                orcsan::on_manual_free(r.ptr);
#endif
                delete r.ptr;
                ++freed;
            }
        }
        if (freed != 0) metrics_.note_freed(freed);
    }

    /// Enters a read-side critical section: announce the current epoch.
    void begin_op() noexcept {
        auto& res = tl_[thread_id()].reservation;
        const std::uint64_t era = global_era().load(std::memory_order_acquire);
        // Changed-era guard (the one hazard_eras always had and EBR lacked):
        // re-announcing an unchanged reservation would pay the publish fence
        // for nothing. It only triggers on nested/re-entered sections — the
        // common begin/end cycle resets to kQuiescent and always publishes —
        // but with asym::publish the publish itself is now fence-free too.
        if (res.load(std::memory_order_relaxed) != era) {
            asym::publish(res, era);
        }
    }

    /// Leaves the critical section (quiescent state).
    void end_op() noexcept {
        // Coarse reader release on the shared clock (see hazard_eras.hpp).
        ORC_ANNOTATE_HAPPENS_BEFORE(&global_era());
        tl_[thread_id()].reservation.store(kQuiescent, std::memory_order_release);
    }

    /// Under EBR a plain load is safe inside a critical section.
    T* get_protected(const std::atomic<T*>& addr, int /*idx*/) noexcept {
        T* ptr = addr.load(std::memory_order_acquire);
#ifdef ORCGC_ORCSAN
        // The epoch reservation is the protection; the read target must not
        // already be reclaimed (orcsan.hpp, check_protect).
        if (T* obj = get_unmarked(ptr)) orcsan::check_protect(obj);
#endif
        return ptr;
    }
    void protect_ptr(T* /*ptr*/, int /*idx*/) noexcept {}
    void clear_one(int /*idx*/) noexcept {}

    void retire(T* ptr) {
#ifdef ORCGC_ORCSAN
        orcsan::on_manual_retire(ptr);
#endif
        auto& slot = tl_[thread_id()];
        slot.retired.push_back({ptr, global_era().load(std::memory_order_acquire)});
        metrics_.note_retired();
        if (++slot.since_scan >= kScanFrequency) {
            slot.since_scan = 0;
            try_advance();
            collect(slot);
        }
    }

    std::size_t unreclaimed_count() const noexcept { return metrics_.unreclaimed(); }

  private:
    struct Retired {
        T* ptr;
        std::uint64_t epoch;
    };
    struct alignas(kCacheLineSize) Slot {
        std::atomic<std::uint64_t> reservation{kQuiescent};
        std::vector<Retired> retired;
        int since_scan = 0;
    };
    static constexpr int kScanFrequency = 32;

    /// Advances the global epoch iff every registered thread is quiescent or
    /// has announced the current epoch. This is the blocking step: one
    /// stalled reader pins the epoch forever.
    void try_advance() noexcept {
        // Scan-side half of the asymmetric pair: a reservation publish this
        // fence misses was ordered after it, so that reader entered its
        // critical section after the epoch we are about to advance from —
        // it announced the current (or a newer) epoch and the two-epoch
        // grace window still covers everything it can reach. collect() needs
        // no fence of its own: it only trusts epochs try_advance proved.
        asym::heavy();
        std::uint64_t cur = global_era().load(std::memory_order_acquire);
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            const std::uint64_t res = tl_[it].reservation.load(std::memory_order_acquire);
            if (res != kQuiescent && res < cur) return;
        }
        global_era().compare_exchange_strong(cur, cur + 1, std::memory_order_acq_rel);
    }

    void collect(Slot& slot) {
        metrics_.note_scan();
        ORC_ANNOTATE_HAPPENS_AFTER(&global_era());
        const std::uint64_t cur = global_era().load(std::memory_order_acquire);
        std::vector<Retired> keep;
        keep.reserve(slot.retired.size());
        std::uint64_t freed = 0;
        for (auto& r : slot.retired) {
            if (r.epoch + 2 <= cur) {
#ifdef ORCGC_ORCSAN
                orcsan::on_manual_free(r.ptr);
#endif
                delete r.ptr;
                ++freed;
            } else {
                keep.push_back(r);
            }
        }
        slot.retired.swap(keep);
        if (freed != 0) metrics_.note_freed(freed);
    }

    Slot tl_[kMaxThreads];
    telemetry::SchemeMetrics metrics_{kName};
};

}  // namespace orcgc
