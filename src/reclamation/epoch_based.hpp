// Epoch-based reclamation (Fraser 2004 / RCU-style quiescence).
//
// The blocking baseline in Table 1: protection is a single wait-free
// announcement per operation (publish the global epoch), but reclamation
// can be starved forever by one thread parked inside an operation — EBR is
// therefore *not* lock-free and its unreclaimed bound is unbounded (∞ in
// Table 1). Included because it is the cheapest protect() of all schemes and
// anchors the upper end of the performance plots.
//
// Classic 3-epoch variant: a node retired in epoch e is free once the global
// epoch has advanced twice past e, which requires every registered thread to
// be quiescent or synced with the current epoch.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/marked_ptr.hpp"
#include "reclamation/scheme_base.hpp"

namespace orcgc {

namespace detail {
struct EbrSlotState {
    // ~0 is the kQuiescent sentinel (EpochBasedReclaimer::kQuiescent).
    std::atomic<std::uint64_t> reservation{~std::uint64_t{0}};
    int since_scan = 0;
};
template <typename T>
struct EbrRetired {
    T* ptr;
    std::uint64_t epoch;
};
}  // namespace detail

template <typename T, int kMaxHPs = 4>
class EpochBasedReclaimer : public SchemeBase<EpochBasedReclaimer<T, kMaxHPs>, T, kMaxHPs,
                                              detail::EbrSlotState, detail::EbrRetired<T>> {
    using Base = SchemeBase<EpochBasedReclaimer<T, kMaxHPs>, T, kMaxHPs, detail::EbrSlotState,
                            detail::EbrRetired<T>>;
    using Slot = typename Base::Slot;

  public:
    static constexpr const char* kName = "EBR";
    static constexpr bool kUsesEras = false;
    static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

    /// Retire bags hold {ptr, retire epoch}; the base frees through this.
    static T* ptr_of(const detail::EbrRetired<T>& r) noexcept { return r.ptr; }

    /// Enters a read-side critical section: announce the current epoch.
    void begin_op() noexcept {
        auto& res = this->my_slot().reservation;
        const std::uint64_t era = global_era().load(std::memory_order_acquire);
        // Changed-era guard (the one hazard_eras always had and EBR lacked):
        // re-announcing an unchanged reservation would pay the publish fence
        // for nothing. It only triggers on nested/re-entered sections — the
        // common begin/end cycle resets to kQuiescent and always publishes —
        // but with asym::publish the publish itself is now fence-free too.
        if (res.load(std::memory_order_relaxed) != era) {
            asym::publish(res, era);
        }
    }

    /// Leaves the critical section (quiescent state). Coarse reader release
    /// on the shared clock (clear_era in scheme_base.hpp).
    void end_op() noexcept { Base::clear_era(this->my_slot().reservation, kQuiescent); }

    /// Under EBR a plain load is safe inside a critical section.
    T* get_protected(const std::atomic<T*>& addr, int /*idx*/) noexcept {
        T* ptr = addr.load(std::memory_order_acquire);
        // The epoch reservation is the protection; the read target must not
        // already be reclaimed (orcsan.hpp, check_protect).
        Base::san_check_protect(get_unmarked(ptr));
        return ptr;
    }
    void protect_ptr(T* /*ptr*/, int /*idx*/) noexcept {}
    void clear_one(int /*idx*/) noexcept {}

    void retire(T* ptr) {
        Slot& slot = this->my_slot();
        this->note_retire(ptr);
        this->buffer_retired(slot, {ptr, global_era().load(std::memory_order_acquire)});
        if (++slot.since_scan >= kScanFrequency) {
            slot.since_scan = 0;
            try_advance();
            collect(slot);
        }
    }

  private:
    static constexpr int kScanFrequency = 32;

    /// Advances the global epoch iff every registered thread is quiescent or
    /// has announced the current epoch. This is the blocking step: one
    /// stalled reader pins the epoch forever.
    void try_advance() noexcept {
        // Scan-side half of the asymmetric pair (enter_scan): a reservation
        // publish this fence misses was ordered after it, so that reader
        // entered its critical section after the epoch we are about to
        // advance from — it announced the current (or a newer) epoch and the
        // two-epoch grace window still covers everything it can reach.
        // collect() needs no fence of its own: it only trusts epochs
        // try_advance proved.
        this->enter_scan();
        std::uint64_t cur = global_era().load(std::memory_order_acquire);
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            const std::uint64_t res = this->tl_[it].reservation.load(std::memory_order_acquire);
            if (res != kQuiescent && res < cur) return;
        }
        global_era().compare_exchange_strong(cur, cur + 1, std::memory_order_acq_rel);
    }

    void collect(Slot& slot) {
        Base::acquire_era_edge();
        const std::uint64_t cur = global_era().load(std::memory_order_acquire);
        this->template sweep_retired<false>(
            slot, [cur](const detail::EbrRetired<T>& r) { return r.epoch + 2 <= cur; });
    }
};

}  // namespace orcgc
