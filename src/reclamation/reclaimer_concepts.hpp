// C++20 concepts describing the manual-reclamation interface shared by all
// schemes in this directory. Data structures template over a Reclaimer and
// these concepts keep the duck typing honest at the point of instantiation.
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>
#include <cstdint>

#include "reclamation/reclaimable.hpp"

namespace orcgc {

template <typename R, typename T>
concept ManualReclaimer = requires(R r, const R cr, std::atomic<T*> addr, T* ptr, int idx) {
    { r.begin_op() };
    { r.end_op() };
    { r.get_protected(addr, idx) } -> std::same_as<T*>;
    { r.protect_ptr(ptr, idx) };
    { r.clear_one(idx) };
    { r.retire(ptr) };
    { cr.unreclaimed_count() } -> std::same_as<std::size_t>;
    { R::kName } -> std::convertible_to<const char*>;
    // Every scheme states whether its retire path stamps node eras —
    // era-stamped schemes (HE, IBR, Hyaline) declare the requirement here
    // instead of duck-typing past it (see EraStampedReclaimer below).
    { R::kUsesEras } -> std::convertible_to<bool>;
};

/// A node type carrying the visibility interval the era-stamped schemes
/// read and write: `birth_era` recorded at construction, `del_era` stamped
/// by retire(). ReclaimableBase provides both.
template <typename T>
concept EraStampedNode = std::derived_from<T, ReclaimableBase> && requires(T* p, const T* cp) {
    { cp->birth_era } -> std::convertible_to<std::uint64_t>;
    { p->del_era.store(std::uint64_t{}, std::memory_order_release) };
};

/// A manual scheme that declared kUsesEras, instantiated with a node type
/// that actually carries the interval. Structures that support era schemes
/// assert this instead of waiting for a member-access error deep inside the
/// scheme (michael_list.hpp shows the pattern).
template <typename R, typename T>
concept EraStampedReclaimer = ManualReclaimer<R, T> && R::kUsesEras && EraStampedNode<T>;

}  // namespace orcgc
