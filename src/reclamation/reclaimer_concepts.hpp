// C++20 concept describing the manual-reclamation interface shared by all
// schemes in this directory. Data structures template over a Reclaimer and
// this concept keeps the duck typing honest at the point of instantiation.
#pragma once

#include <atomic>
#include <concepts>
#include <cstddef>

namespace orcgc {

template <typename R, typename T>
concept ManualReclaimer = requires(R r, const R cr, std::atomic<T*> addr, T* ptr, int idx) {
    { r.begin_op() };
    { r.end_op() };
    { r.get_protected(addr, idx) } -> std::same_as<T*>;
    { r.protect_ptr(ptr, idx) };
    { r.clear_one(idx) };
    { r.retire(ptr) };
    { cr.unreclaimed_count() } -> std::same_as<std::size_t>;
    { R::kName } -> std::convertible_to<const char*>;
};

}  // namespace orcgc
