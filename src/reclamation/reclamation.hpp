// Umbrella header for all manual reclamation schemes.
#pragma once

#include "reclamation/debra.hpp"
#include "reclamation/epoch_based.hpp"
#include "reclamation/hazard_eras.hpp"
#include "reclamation/hazard_pointers.hpp"
#include "reclamation/hyaline.hpp"
#include "reclamation/interval_based.hpp"
#include "reclamation/pass_the_buck.hpp"
#include "reclamation/pass_the_pointer.hpp"
#include "reclamation/reclaimable.hpp"
#include "reclamation/reclaimer_concepts.hpp"
#include "reclamation/reclaimer_none.hpp"
#include "reclamation/scheme_base.hpp"
