// Pass-the-buck (Herlihy, Luchangco, Moir — DISC 2002, "The Repeat Offender
// Problem").
//
// Guard posting works like hazard pointers; Liberate() differs: instead of
// keeping a value buffered until no guard posts it, the liberator *hands it
// off* to the guard that traps it using a double-word CAS (pointer + version
// tag), taking in exchange whatever value was previously handed off to that
// guard. A guard owner collects its handoff when it clears or re-posts.
// Bound: O(H·t²) — each Liberate pass may hand off one value per guard and
// carry away one, and every thread may hold a full retired buffer.
//
// This is the scheme the paper credits as the origin of PTP's shared-
// responsibility idea; PTP (pass_the_pointer.hpp) tightens the bound to
// O(H·t) by pushing single pointers instead of scanning whole lists.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "common/asym_fence.hpp"
#include "common/cacheline.hpp"
#include "common/marked_ptr.hpp"
#include "common/orcsan.hpp"
#include "common/telemetry.hpp"
#include "common/thread_registry.hpp"
#include "common/tsan_annotations.hpp"

namespace orcgc {

template <typename T, int kMaxHPs = 4>
class PassTheBuck {
  public:
    static constexpr const char* kName = "PTB";

    PassTheBuck() = default;
    PassTheBuck(const PassTheBuck&) = delete;
    PassTheBuck& operator=(const PassTheBuck&) = delete;

    ~PassTheBuck() {
        // Single-threaded teardown: free buffered values and trapped handoffs.
        std::uint64_t freed = 0;
        for (auto& slot : tl_) {
            for (T* ptr : slot.retired) {
#ifdef ORCGC_ORCSAN
                orcsan::on_manual_free(ptr);
#endif
                delete ptr;
                ++freed;
            }
            for (auto& h : slot.handoff) {
                Handoff cur = h.load(std::memory_order_acquire);
                if (cur.ptr != nullptr) {
#ifdef ORCGC_ORCSAN
                    orcsan::on_manual_free(cur.ptr);
#endif
                    delete cur.ptr;
                    ++freed;
                }
            }
        }
        if (freed != 0) metrics_.note_freed(freed);
    }

    void begin_op() noexcept {}

    void end_op() noexcept {
        const int tid = thread_id();
        for (int idx = 0; idx < kMaxHPs; ++idx) clear_one_for(tid, idx);
    }

    T* get_protected(const std::atomic<T*>& addr, int idx) noexcept {
        auto& guard = tl_[thread_id()].guard[idx];
        T* pub = nullptr;
        for (T* ptr = addr.load(std::memory_order_acquire);; ptr = addr.load(std::memory_order_acquire)) {
            if (get_unmarked(ptr) == pub) {
#ifdef ORCGC_ORCSAN
                // Guard post validated: the trapped target must not already
                // be reclaimed (orcsan.hpp, check_protect).
                if (pub != nullptr) orcsan::check_protect(pub);
#endif
                return ptr;
            }
            pub = get_unmarked(ptr);
            tsan_release_protection(guard);  // previous post loses coverage
            // The loop's re-read of addr is the post-publish validation a
            // liberate pass's asym::heavy() pairs with.
            asym::publish(guard, pub);
        }
    }

    void protect_ptr(T* ptr, int idx) noexcept {
        auto& slot = tl_[thread_id()].guard[idx];
        tsan_release_protection(slot);
        asym::publish(slot, get_unmarked(ptr));
    }

    void clear_one(int idx) noexcept { clear_one_for(thread_id(), idx); }

    void retire(T* ptr) {
#ifdef ORCGC_ORCSAN
        orcsan::on_manual_retire(ptr);
#endif
        auto& slot = tl_[thread_id()];
        slot.retired.push_back(ptr);
        metrics_.note_retired();
        if (slot.retired.size() >= liberate_threshold()) liberate(slot.retired);
    }

    /// Retired minus freed: values trapped at guards were retired and not yet
    /// freed, so the balance covers them without walking the handoff slots.
    std::size_t unreclaimed_count() const noexcept { return metrics_.unreclaimed(); }

  private:
    /// Pointer + version tag, CASed as a unit (DWCAS). The tag makes each
    /// handoff attempt unique so a liberator never confuses an old trapped
    /// value with a new one (ABA on the handoff slot).
    struct alignas(16) Handoff {
        T* ptr = nullptr;
        std::uint64_t tag = 0;
        bool operator==(const Handoff&) const = default;
    };

    struct alignas(kCacheLineSize) Slot {
        std::atomic<T*> guard[kMaxHPs] = {};
        std::atomic<Handoff> handoff[kMaxHPs] = {};
        std::vector<T*> retired;
    };

    std::size_t liberate_threshold() const noexcept {
        return static_cast<std::size_t>(kMaxHPs) * thread_id_watermark() + kMaxHPs + 8;
    }

    void clear_one_for(int tid, int idx) noexcept {
        auto& slot = tl_[tid];
        tsan_release_protection(slot.guard[idx]);
        // Release suffices for the clear: a liberator reading the stale
        // non-null guard hands off conservatively, and the handoff CAS below
        // is an acq_rel RMW that always takes the latest trapped value.
        slot.guard[idx].store(nullptr, std::memory_order_release);
        // Collect any value trapped at this guard; we are now responsible
        // for liberating it.
        Handoff cur = slot.handoff[idx].load(std::memory_order_acquire);
        while (cur.ptr != nullptr) {
            if (slot.handoff[idx].compare_exchange_weak(cur, Handoff{nullptr, cur.tag + 1},
                                                        std::memory_order_acq_rel)) {
                // Collected, not retired anew: the value was already counted
                // when its original owner called retire().
                slot.retired.push_back(cur.ptr);
                break;
            }
        }
    }

    /// Hands off every value in `vs` that some guard posts to that guard
    /// (swapping out any previous handoff, which joins our responsibility
    /// set), then frees the values no guard posts. Values that remain posted
    /// but could not be handed off (CAS races) stay buffered in `vs`.
    void liberate(std::vector<T*>& vs) {
        metrics_.note_scan();
        // Scan-side half of the asymmetric pair: every value in vs was
        // unlinked before retire() buffered it, so a guard post this fence
        // misses was ordered after the unlink — that reader's validation
        // re-read rejects the node before dereferencing.
        asym::heavy();
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            for (int idx = 0; idx < kMaxHPs; ++idx) {
                auto& slot = tl_[it];
                T* posted = slot.guard[idx].load(std::memory_order_acquire);
                if (posted == nullptr) continue;
                auto pos = std::find(vs.begin(), vs.end(), posted);
                if (pos == vs.end()) continue;
                Handoff h = slot.handoff[idx].load(std::memory_order_acquire);
                if (h.ptr == posted) continue;  // already trapped at this guard
                if (slot.handoff[idx].compare_exchange_strong(h, Handoff{posted, h.tag + 1},
                                                              std::memory_order_acq_rel)) {
                    vs.erase(pos);
                    if (h.ptr != nullptr) vs.push_back(h.ptr);  // take over old handoff
                }
                // On CAS failure the guard owner is concurrently collecting
                // this slot; `posted` stays buffered and is re-checked below.
            }
        }
        // Free the leftovers that are not posted anywhere; keep the rest.
        std::vector<T*> hazards;
        hazards.reserve(static_cast<std::size_t>(wm) * kMaxHPs);
        for (int it = 0; it < wm; ++it) {
            for (int idx = 0; idx < kMaxHPs; ++idx) {
                if (T* g = tl_[it].guard[idx].load(std::memory_order_acquire)) {
                    hazards.push_back(g);
                }
            }
        }
        std::vector<T*> keep;
        std::uint64_t freed = 0;
        for (T* ptr : vs) {
            if (std::find(hazards.begin(), hazards.end(), ptr) != hazards.end()) {
                keep.push_back(ptr);
            } else {
                ORC_ANNOTATE_HAPPENS_AFTER(ptr);  // liberate scan found no guard
#ifdef ORCGC_ORCSAN
                orcsan::on_manual_free(ptr);
#endif
                delete ptr;
                ++freed;
            }
        }
        vs.swap(keep);
        if (freed != 0) metrics_.note_freed(freed);
    }

    Slot tl_[kMaxThreads];
    telemetry::SchemeMetrics metrics_{kName};
};

}  // namespace orcgc
