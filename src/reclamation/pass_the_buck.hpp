// Pass-the-buck (Herlihy, Luchangco, Moir — DISC 2002, "The Repeat Offender
// Problem").
//
// Guard posting works like hazard pointers; Liberate() differs: instead of
// keeping a value buffered until no guard posts it, the liberator *hands it
// off* to the guard that traps it using a double-word CAS (pointer + version
// tag), taking in exchange whatever value was previously handed off to that
// guard. A guard owner collects its handoff when it clears or re-posts.
// Bound: O(H·t²) — each Liberate pass may hand off one value per guard and
// carry away one, and every thread may hold a full retired buffer.
//
// This is the scheme the paper credits as the origin of PTP's shared-
// responsibility idea; PTP (pass_the_pointer.hpp) tightens the bound to
// O(H·t) by pushing single pointers instead of scanning whole lists.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <vector>

#include "reclamation/scheme_base.hpp"

namespace orcgc {

namespace detail {
/// Pointer + version tag, CASed as a unit (DWCAS). The tag makes each
/// handoff attempt unique so a liberator never confuses an old trapped
/// value with a new one (ABA on the handoff slot).
template <typename T>
struct alignas(16) PtbHandoff {
    T* ptr = nullptr;
    std::uint64_t tag = 0;
    bool operator==(const PtbHandoff&) const = default;
};

template <typename T, int kMaxHPs>
struct PtbSlotState {
    std::atomic<T*> guard[kMaxHPs] = {};
    std::atomic<PtbHandoff<T>> handoff[kMaxHPs] = {};
};
}  // namespace detail

template <typename T, int kMaxHPs = 4>
class PassTheBuck
    : public SchemeBase<PassTheBuck<T, kMaxHPs>, T, kMaxHPs, detail::PtbSlotState<T, kMaxHPs>> {
    using Base =
        SchemeBase<PassTheBuck<T, kMaxHPs>, T, kMaxHPs, detail::PtbSlotState<T, kMaxHPs>>;
    using Slot = typename Base::Slot;
    using Handoff = detail::PtbHandoff<T>;

  public:
    static constexpr const char* kName = "PTB";
    static constexpr bool kUsesEras = false;

    ~PassTheBuck() {
        // Single-threaded teardown: free trapped handoffs here; the base
        // destructor then frees the buffered retire bags.
        std::uint64_t freed = 0;
        for (auto& slot : this->tl_) {
            for (auto& h : slot.handoff) {
                Handoff cur = h.load(std::memory_order_acquire);
                if (cur.ptr != nullptr) {
                    Base::free_object(cur.ptr);
                    ++freed;
                }
            }
        }
        this->note_freed_objects(freed);
    }

    void begin_op() noexcept {}

    void end_op() noexcept {
        const int tid = thread_id();
        for (int idx = 0; idx < kMaxHPs; ++idx) clear_one_for(tid, idx);
    }

    T* get_protected(const std::atomic<T*>& addr, int idx) noexcept {
        return this->protect_pointer_loop(addr, this->my_slot().guard[idx]);
    }

    void protect_ptr(T* ptr, int idx) noexcept {
        Base::publish_pointer(this->my_slot().guard[idx], get_unmarked(ptr));
    }

    void clear_one(int idx) noexcept { clear_one_for(thread_id(), idx); }

    void retire(T* ptr) {
        Slot& slot = this->my_slot();
        this->note_retire(ptr);
        this->buffer_retired(slot, ptr);
        if (this->past_scan_threshold(slot)) liberate(slot);
    }

    /// Retired minus freed: values trapped at guards were retired and not yet
    /// freed, so the balance covers them without walking the handoff slots.
    using Base::unreclaimed_count;

  private:
    void clear_one_for(int tid, int idx) noexcept {
        Slot& slot = this->tl_[tid];
        // Release suffices for the clear: a liberator reading the stale
        // non-null guard hands off conservatively, and the handoff CAS below
        // is an acq_rel RMW that always takes the latest trapped value.
        Base::clear_pointer(slot.guard[idx]);
        // Collect any value trapped at this guard; we are now responsible
        // for liberating it.
        Handoff cur = slot.handoff[idx].load(std::memory_order_acquire);
        while (cur.ptr != nullptr) {
            if (slot.handoff[idx].compare_exchange_weak(cur, Handoff{nullptr, cur.tag + 1},
                                                        std::memory_order_acq_rel)) {
                // Collected, not retired anew: the value was already counted
                // when its original owner called retire().
                this->buffer_retired(slot, cur.ptr);
                break;
            }
        }
    }

    /// Hands off every buffered value that some guard posts to that guard
    /// (swapping out any previous handoff, which joins our responsibility
    /// set), then frees the values no guard posts. Values that remain posted
    /// but could not be handed off (CAS races) stay buffered.
    void liberate(Slot& me) {
        std::vector<T*>& vs = me.retired[0];
        // Scan-side half of the asymmetric pair: every value in vs was
        // unlinked before retire() buffered it, so a guard post this fence
        // misses was ordered after the unlink — that reader's validation
        // re-read rejects the node before dereferencing.
        this->enter_scan();
        const int wm = thread_id_watermark();
        for (int it = 0; it < wm; ++it) {
            for (int idx = 0; idx < kMaxHPs; ++idx) {
                Slot& slot = this->tl_[it];
                T* posted = slot.guard[idx].load(std::memory_order_acquire);
                if (posted == nullptr) continue;
                auto pos = std::find(vs.begin(), vs.end(), posted);
                if (pos == vs.end()) continue;
                Handoff h = slot.handoff[idx].load(std::memory_order_acquire);
                if (h.ptr == posted) continue;  // already trapped at this guard
                if (slot.handoff[idx].compare_exchange_strong(h, Handoff{posted, h.tag + 1},
                                                              std::memory_order_acq_rel)) {
                    vs.erase(pos);
                    if (h.ptr != nullptr) vs.push_back(h.ptr);  // take over old handoff
                }
                // On CAS failure the guard owner is concurrently collecting
                // this slot; `posted` stays buffered and is re-checked below.
            }
        }
        // Free the leftovers that are not posted anywhere; keep the rest.
        std::vector<T*> hazards;
        hazards.reserve(static_cast<std::size_t>(wm) * kMaxHPs);
        for (int it = 0; it < wm; ++it) {
            for (int idx = 0; idx < kMaxHPs; ++idx) {
                if (T* g = this->tl_[it].guard[idx].load(std::memory_order_acquire)) {
                    hazards.push_back(g);
                }
            }
        }
        this->template sweep_retired<true>(me, [&](T* ptr) {
            return std::find(hazards.begin(), hazards.end(), ptr) == hazards.end();
        });
    }
};

}  // namespace orcgc
