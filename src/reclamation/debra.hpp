// DEBRA — distributed epoch-based reclamation (Brown, "Reclaiming memory
// for lock-free data structures: there has to be a better way",
// arXiv 1712.01044 / PODC 2015).
//
// Epoch-based like EBR, with the two costs EBR pays per quiescence cycle
// amortized away:
//
//   * Announcements carry a quiescent BIT in the same word as the epoch
//     ((epoch << 1) | q), so leaving a critical section is one store and
//     entering re-publishes only when the epoch actually moved.
//   * Epoch advance is *distributed*: instead of EBR's full reservation
//     scan per attempt, each retire() inspects exactly one registered
//     slot and the clock CASes forward only after a full round of slots
//     checked out (announced the current epoch or quiescent). No thread
//     ever takes an O(t) hit on the retire fast path.
//
// Per-thread garbage lives in three limbo bags rotated on epoch change:
// entering epoch e frees bag[(e+1) % 3] — the nodes retired at epoch e-2,
// whose two-epoch grace window just completed. (Full DEBRA+ adds a
// neutralizing signal to cancel stalled readers; this is plain DEBRA — the
// quiescence detection is signal-free, and one stalled reader pins the
// clock, so the bound stays unbounded like EBR's Table-1 row.)
//
// Deliberate deviation from the paper: Brown amortizes the advance check in
// leaveQstate (the operation prologue); we drive it from retire() so
// read-only operations keep paying zero heavy fences — the repo's
// asymmetric-fence story (one asym::heavy() per round, issued at round
// start via enter_scan) — and epoch progress stays proportional to the
// retire rate, exactly like EBR's kScanFrequency trigger. The shared
// global_era() clock is trusted the same way EBR trusts it: only
// quiescence-proven advances move it while a DEBRA instance is live.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/marked_ptr.hpp"
#include "reclamation/scheme_base.hpp"

namespace orcgc {

namespace detail {
struct DebraSlotState {
    /// (epoch << 1) | quiescent-bit; starts quiescent at epoch 0.
    std::atomic<std::uint64_t> ann{1};
    std::uint64_t local_epoch = 0;  // owner-only: epoch the bags last rotated to
    int scan_idx = 0;               // amortized advance cursor over the registry
    std::uint64_t round_epoch = 0;  // epoch the current check round started at
};
}  // namespace detail

template <typename T, int kMaxHPs = 4>
class Debra : public SchemeBase<Debra<T, kMaxHPs>, T, kMaxHPs, detail::DebraSlotState, T*,
                                /*kBags=*/3> {
    using Base = SchemeBase<Debra<T, kMaxHPs>, T, kMaxHPs, detail::DebraSlotState, T*, 3>;
    using Slot = typename Base::Slot;

  public:
    static constexpr const char* kName = "DEBRA";
    static constexpr bool kUsesEras = false;
    static constexpr std::uint64_t kQuiescentBit = 1;

    /// Enter: rotate bags if the epoch moved, then announce "active at e".
    /// The changed-word guard mirrors EBR's: the common begin/end cycle
    /// always flips the quiescent bit, so it publishes every time, but the
    /// publish itself is fence-free (asym::publish).
    void begin_op() noexcept {
        Slot& s = this->my_slot();
        const std::uint64_t e = global_era().load(std::memory_order_acquire);
        maybe_rotate(s, e);
        const std::uint64_t word = e << 1;
        if (s.ann.load(std::memory_order_relaxed) != word) {
            asym::publish(s.ann, word);
        }
    }

    /// Leave: one release store sets the quiescent bit (coarse reader
    /// release on the shared clock, like every era scheme).
    void end_op() noexcept {
        Slot& s = this->my_slot();
        Base::clear_era(s.ann, (s.local_epoch << 1) | kQuiescentBit);
    }

    /// Inside a critical section a plain load is safe (the announcement is
    /// the protection), exactly as under EBR.
    T* get_protected(const std::atomic<T*>& addr, int /*idx*/) noexcept {
        T* ptr = addr.load(std::memory_order_acquire);
        Base::san_check_protect(get_unmarked(ptr));
        return ptr;
    }
    void protect_ptr(T* /*ptr*/, int /*idx*/) noexcept {}
    void clear_one(int /*idx*/) noexcept {}

    /// Bag the node under the current epoch, then run one amortized step of
    /// the distributed epoch-advance protocol.
    void retire(T* ptr) {
        Slot& s = this->my_slot();
        this->note_retire(ptr);
        const std::uint64_t e = global_era().load(std::memory_order_acquire);
        maybe_rotate(s, e);
        this->buffer_retired(s, ptr, static_cast<int>(e % 3));
        amortized_advance(s, e);
    }

  private:
    /// Entering epoch e: bag[(e+1) % 3] holds nodes retired at epoch e-2
    /// (or older epochs congruent mod 3 — skipping epochs only lengthens
    /// their grace), and the clock reaching e proves their window closed.
    void maybe_rotate(Slot& s, std::uint64_t e) {
        if (s.local_epoch == e) return;
        s.local_epoch = e;
        this->note_scan_pass();
        Base::acquire_era_edge();
        this->template sweep_retired<false>(s, [](T*) { return true; },
                                            static_cast<int>((e + 1) % 3));
    }

    /// One slot per retire: a full round over the registry (every slot
    /// quiescent or announced at >= e) CASes the clock from e to e+1. The
    /// asym::heavy() at round start is the scan-side fence for the whole
    /// round — an announcement it misses was published after it, i.e. that
    /// reader entered at the current (or a newer) epoch and passes the
    /// check by value anyway (same argument as EBR's try_advance). A
    /// mid-round epoch change restarts the round.
    void amortized_advance(Slot& s, std::uint64_t e) {
        if (s.scan_idx == 0 || s.round_epoch != e) {
            s.round_epoch = e;
            s.scan_idx = 0;
            this->enter_scan();
        }
        const std::uint64_t word = this->tl_[s.scan_idx].ann.load(std::memory_order_acquire);
        if ((word & kQuiescentBit) == 0 && (word >> 1) < e) return;  // lagging: retry this slot
        if (++s.scan_idx >= thread_id_watermark()) {
            s.scan_idx = 0;
            std::uint64_t cur = e;
            global_era().compare_exchange_strong(cur, e + 1, std::memory_order_acq_rel);
        }
    }
};

}  // namespace orcgc
