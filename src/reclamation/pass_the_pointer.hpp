// Pass-the-pointer (PTP) — the paper's manual reclamation scheme (§3.1,
// Algorithm 2).
//
// Protection is identical to hazard pointers. Retiring differs: there are no
// thread-local retired lists at all. retire(p) scans the published hazard
// pointers; if some slot hp[t][i] protects p, responsibility for freeing p is
// *handed over* by atomically exchanging p into the paired handovers[t][i]
// slot — taking out whatever pointer was parked there before and continuing
// the scan with it. A pointer is only ever moved further down the scan order
// or deleted, so the scan terminates, and at any instant there are at most
// t·H parked pointers plus one in-flight pointer per thread: the O(H·t)
// bound that is the scheme's headline property (Table 1, last rows).
//
// clear() on a slot also drains the paired handover (the "optional" lines
// 16–19 of Algorithm 2); without it a parked pointer would wait for the slot
// to be reused, which delays — but never breaks — reclamation.
#pragma once

#include <atomic>
#include <cstddef>

#include "reclamation/scheme_base.hpp"

namespace orcgc {

namespace detail {
template <typename T, int kMaxHPs>
struct PtpSlotState {
    std::atomic<T*> hp[kMaxHPs] = {};
    // Separate line from hp: any thread writes handovers, only the owner
    // writes hp (§3.1 "separate bi-dimensional array ... avoid
    // false-sharing").
    alignas(kCacheLineSize) std::atomic<T*> handovers[kMaxHPs] = {};
};
}  // namespace detail

template <typename T, int kMaxHPs = 4>
class PassThePointer : public SchemeBase<PassThePointer<T, kMaxHPs>, T, kMaxHPs,
                                         detail::PtpSlotState<T, kMaxHPs>> {
    using Base =
        SchemeBase<PassThePointer<T, kMaxHPs>, T, kMaxHPs, detail::PtpSlotState<T, kMaxHPs>>;

  public:
    static constexpr const char* kName = "PTP";
    static constexpr bool kUsesEras = false;

    ~PassThePointer() {
        // Single-threaded teardown: anything still parked is unreachable.
        std::uint64_t freed = 0;
        for (auto& slot : this->tl_) {
            for (auto& h : slot.handovers) {
                if (T* ptr = h.exchange(nullptr, std::memory_order_acq_rel)) {
                    ORC_ANNOTATE_HAPPENS_AFTER(ptr);
                    Base::free_object(ptr);
                    ++freed;
                }
            }
        }
        this->note_freed_objects(freed);
    }

    void begin_op() noexcept {}

    void end_op() noexcept {
        const int tid = thread_id();
        for (int idx = 0; idx < kMaxHPs; ++idx) clear_one_for(tid, idx);
    }

    /// Algorithm 2 lines 4–11. Publication used exchange() — the paper found
    /// it faster than mov+mfence on AMD (§5); asym::publish removes the full
    /// fence from this path entirely (the scan-side asym::heavy() in
    /// handover_or_delete is the new synchronizing edge), and its seqcst mode
    /// reproduces the old exchange for bench_publish_ablation's A/B rows.
    T* get_protected(const std::atomic<T*>& addr, int idx) noexcept {
        return this->protect_pointer_loop(addr, this->my_slot().hp[idx]);
    }

    void protect_ptr(T* ptr, int idx) noexcept {
        Base::publish_pointer(this->my_slot().hp[idx], get_unmarked(ptr));
    }

    /// Algorithm 2 lines 13–20: unpublish and drain the paired handover.
    void clear_one(int idx) noexcept { clear_one_for(thread_id(), idx); }

    /// Algorithm 2 line 22. No buffering: the handover scan runs per retire.
    void retire(T* ptr) {
        this->note_retire(ptr);
        handover_or_delete(ptr, 0);
    }

    /// Retired minus freed — i.e. the pointers currently parked in handover
    /// slots (the scheme has no other buffering, so this *is* the unreclaimed
    /// population).
    using Base::unreclaimed_count;

  private:
    void clear_one_for(int tid, int idx) noexcept {
        auto& slot = this->tl_[tid];
        Base::clear_pointer(slot.hp[idx]);
        if (slot.handovers[idx].load(std::memory_order_acquire) != nullptr) {
            if (T* ptr = slot.handovers[idx].exchange(nullptr, std::memory_order_acq_rel)) {
                // We just unprotected the slot that parked this pointer; we
                // inherit the delete-or-handover duty, starting at our own
                // scan position (earlier threads' stable protections would
                // have been seen by the scan that parked it here).
                handover_or_delete(ptr, tid);
            }
        }
    }

    /// Algorithm 2 lines 24–37.
    void handover_or_delete(T* ptr, int start_tid) {
        // Scan-side half of the asymmetric pair: ptr was unlinked before
        // retire()/the drain handed it here, so a publish this fence misses
        // was ordered after the unlink and that reader's validation re-read
        // rejects it.
        this->enter_scan();
        const int wm = thread_id_watermark();
        for (int it = start_tid; it < wm; ++it) {
            for (int idx = 0; idx < kMaxHPs;) {
                if (this->tl_[it].hp[idx].load(std::memory_order_acquire) == ptr) {
                    ptr = this->tl_[it].handovers[idx].exchange(ptr, std::memory_order_acq_rel);
                    if (ptr == nullptr) return;
                    // The swapped-out pointer may itself be protected by this
                    // same slot; if so re-park here before moving on.
                    if (this->tl_[it].hp[idx].load(std::memory_order_acquire) == ptr) continue;
                }
                ++idx;
            }
        }
        ORC_ANNOTATE_HAPPENS_AFTER(ptr);  // full scan found no protection
        Base::free_object(ptr);
        this->note_freed_objects(1);
    }
};

}  // namespace orcgc
